"""Table IV: char-LM per-epoch hours and parallel efficiency.

Same harness as Table III for the character model: small vocabulary, full
softmax, baseline OOM beyond 24 GPUs, 6.6x speedup at 8x GPUs.
"""

from repro.perf import ALL_TECHNIQUES, BASELINE, CHAR_LM_1B, PerfModel
from repro.report import format_table

PAPER = {
    8: (25.7, 1.00, 23.2, 1.00),
    16: (14.5, 0.89, 12.9, 0.96),
    24: (10.6, 0.81, 8.2, 0.94),
    32: (None, None, 6.8, 0.86),
    64: (None, None, 3.5, 0.82),
}


def compute():
    model = PerfModel(CHAR_LM_1B)
    rows = []
    for g, (p_wo, _, p_w, p_w_eff) in PAPER.items():
        oom = model.is_oom(g, BASELINE)
        wo = "OOM *" if oom else f"{model.epoch_hours(g, BASELINE):.1f}"
        w = f"{model.epoch_hours(g, ALL_TECHNIQUES):.1f}"
        eff = f"{model.parallel_efficiency(g, ALL_TECHNIQUES):.0%}"
        rows.append([g, "OOM *" if p_wo is None else p_wo, wo, p_w, w,
                     f"{p_w_eff:.0%}", eff])
    return model, rows


def test_table4_char_lm_time(benchmark, report, save_structured):
    model, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        [
            "GPUs",
            "paper w/o (h)",
            "model w/o (h)",
            "paper w/ (h)",
            "model w/ (h)",
            "paper eff",
            "model eff",
        ],
        rows,
        title="Table IV — char LM per-epoch time on 1-Billion-Word "
        "(* = out of GPU memory)",
    )
    speedup = model.epoch_hours(8, ALL_TECHNIQUES) / model.epoch_hours(
        64, ALL_TECHNIQUES
    )
    footer = f"\nSpeedup 8 -> 64 GPUs with techniques: {speedup:.1f}x (paper: 6.6x)"
    report("table4_char_lm_time", table + footer)
    save_structured(
        "table4_char_lm_time",
        ["gpus", "paper_without_h", "model_without_h", "paper_with_h",
         "model_with_h", "paper_eff", "model_eff"],
        rows,
        meta={"table": "IV", "workload": "char-lm-1b"},
    )
    assert model.is_oom(32, BASELINE)
    assert 5.0 < speedup < 8.0
