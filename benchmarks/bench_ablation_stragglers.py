"""Ablation: synchronous-straggler cost vs GPU count.

Synchronous SGD steps at the pace of the slowest rank.  This bench
computes the expected straggler slowdown (extreme-value formula vs
Monte-Carlo) across GPU counts and jitter levels, and derives the
efficiency ceiling jitter alone imposes — contextualizing the
efficiency fade of Tables III/IV (90% -> 40% for the word LM).

The analytic prediction is cross-checked against the two-stream
timeline: injecting a deliberate straggler (``inject_straggler``) into a
scheduled run must shift the measured step time in the direction — and
by the amount — ``expected_max_gaussian`` predicts.

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer GPU counts and
Monte-Carlo steps).
"""

import os

import numpy as np

from repro.cluster import Timeline, inject_straggler
from repro.perf import (
    efficiency_ceiling,
    expected_max_gaussian,
    simulate_synchronous_step,
    straggler_slowdown,
    timeline_synchronous_step,
)
from repro.report import format_table

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
WORLDS = (8, 64) if FAST else (8, 16, 32, 64, 192)
CVS = (0.05, 0.10, 0.20)
MC_STEPS = 500 if FAST else 3000
MC_CHECK_STEPS = 800 if FAST else 4000


def sweep():
    rng = np.random.default_rng(0)
    rows = []
    for world in WORLDS:
        row = [world]
        for cv in CVS:
            analytic = straggler_slowdown(world, cv)
            mc = simulate_synchronous_step(world, 1.0, cv, rng, n_steps=MC_STEPS)
            row.append(f"{analytic:.3f} / {mc:.3f}")
        row.append(f"{efficiency_ceiling(world, 0.10):.0%}")
        rows.append(row)
    return rows


def timeline_straggler_check(world=8, comm_s=0.1, slowdown=1.4):
    """Measure a clean and a deliberately-slowed timeline run."""
    clean = timeline_synchronous_step(Timeline(world), 1.0, comm_s, n_steps=3)
    slowed = timeline_synchronous_step(
        inject_straggler(Timeline(world), rank=world - 1, slowdown=slowdown),
        1.0,
        comm_s,
        n_steps=3,
    )
    return clean, slowed


def test_ablation_stragglers(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["GPUs"] + [f"slowdown cv={cv} (formula/MC)" for cv in CVS]
        + ["efficiency ceiling (cv=0.1)"],
        rows,
        title="Synchronous straggler cost: expected max of G per-rank "
        "step times (paper efficiency at 64 GPUs: word 40%, char 82%)",
    )
    clean, slowed = timeline_straggler_check()
    footer = (
        "\nJitter alone caps efficiency in the 80-95% band — it explains "
        "the char LM's gentle fade but not the word LM's collapse, which "
        "the model attributes to its low arithmetic intensity.\n"
        f"Timeline cross-check: injecting a 1.4x straggler moves the "
        f"measured step from {clean:.3f}s to {slowed:.3f}s — the slowest "
        "rank gates the step, exactly as the extreme-value model assumes."
    )
    report("ablation_stragglers", table + footer)

    # Formula and Monte-Carlo agree; the ceiling decreases with G but
    # stays above the char LM's measured efficiencies.
    mc64 = simulate_synchronous_step(
        64, 1.0, 0.1, np.random.default_rng(1), n_steps=MC_CHECK_STEPS
    )
    assert abs(expected_max_gaussian(64, 1.0, 0.1) - mc64) / mc64 < 0.07
    assert efficiency_ceiling(64, 0.10) > 0.8

    # Acceptance gate: a deliberate straggler shifts the timeline in the
    # predicted direction and by the predicted amount (slowdown * compute
    # + comm), and a rank running at the expected-max multiple reproduces
    # the analytic step time.
    assert slowed > clean
    assert slowed == 1.4 * 1.0 + 0.1
    predicted = expected_max_gaussian(16, 1.0, 0.1)
    tl = inject_straggler(Timeline(16), rank=0, slowdown=predicted)
    assert timeline_synchronous_step(tl, 1.0, n_steps=2) == predicted
