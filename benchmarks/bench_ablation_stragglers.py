"""Ablation: synchronous-straggler cost vs GPU count.

Synchronous SGD steps at the pace of the slowest rank.  This bench
computes the expected straggler slowdown (extreme-value formula vs
Monte-Carlo) across GPU counts and jitter levels, and derives the
efficiency ceiling jitter alone imposes — contextualizing the
efficiency fade of Tables III/IV (90% -> 40% for the word LM).
"""

import numpy as np

from repro.perf import (
    efficiency_ceiling,
    expected_max_gaussian,
    simulate_synchronous_step,
    straggler_slowdown,
)
from repro.report import format_table

WORLDS = (8, 16, 32, 64, 192)
CVS = (0.05, 0.10, 0.20)


def sweep():
    rng = np.random.default_rng(0)
    rows = []
    for world in WORLDS:
        row = [world]
        for cv in CVS:
            analytic = straggler_slowdown(world, cv)
            mc = simulate_synchronous_step(world, 1.0, cv, rng, n_steps=3000)
            row.append(f"{analytic:.3f} / {mc:.3f}")
        row.append(f"{efficiency_ceiling(world, 0.10):.0%}")
        rows.append(row)
    return rows


def test_ablation_stragglers(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["GPUs"] + [f"slowdown cv={cv} (formula/MC)" for cv in CVS]
        + ["efficiency ceiling (cv=0.1)"],
        rows,
        title="Synchronous straggler cost: expected max of G per-rank "
        "step times (paper efficiency at 64 GPUs: word 40%, char 82%)",
    )
    footer = (
        "\nJitter alone caps efficiency in the 80-95% band — it explains "
        "the char LM's gentle fade but not the word LM's collapse, which "
        "the model attributes to its low arithmetic intensity."
    )
    report("ablation_stragglers", table + footer)

    # Formula and Monte-Carlo agree; the ceiling decreases with G but
    # stays above the char LM's measured efficiencies.
    mc64 = simulate_synchronous_step(
        64, 1.0, 0.1, np.random.default_rng(1), n_steps=4000
    )
    assert expected_max_gaussian(64, 1.0, 0.1) == np.float64(
        expected_max_gaussian(64, 1.0, 0.1)
    )
    assert abs(expected_max_gaussian(64, 1.0, 0.1) - mc64) / mc64 < 0.07
    assert efficiency_ceiling(64, 0.10) > 0.8
