"""Micro-benchmarks of the simulated collectives (real wall-clock via
pytest-benchmark) plus the ring vs recursive-doubling cost-model
crossover study called out in DESIGN.md's ablation list, and the
lockstep-verifier overhead gate (docs/SPMD_VERIFY.md).

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer rounds).
"""

import os
import time

import numpy as np

from repro.cluster import (
    Communicator,
    INFINIBAND_FDR,
    LockstepVerifier,
    recursive_doubling_allreduce_time,
    ring_allreduce_time,
)
from repro.report import format_table

WORLD = 8
SHAPE = (512, 256)
FAST = bool(os.environ.get("REPRO_BENCH_FAST"))


def make_arrays(seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(SHAPE).astype(np.float32) for _ in range(WORLD)]


def test_bench_allreduce(benchmark):
    comm = Communicator(WORLD, track_memory=False)
    arrays = make_arrays()
    result = benchmark(lambda: comm.allreduce(arrays))
    np.testing.assert_allclose(result[0], sum(arrays), rtol=1e-4)


def test_bench_allgather(benchmark):
    comm = Communicator(WORLD, track_memory=False)
    arrays = make_arrays(1)
    result = benchmark(lambda: comm.allgather(arrays))
    assert result[0].shape == (WORLD * SHAPE[0], SHAPE[1])


def test_bench_reduce_scatter(benchmark):
    comm = Communicator(WORLD, track_memory=False)
    arrays = make_arrays(2)
    result = benchmark(lambda: comm.reduce_scatter(arrays))
    assert result[0].shape == (SHAPE[0] // WORLD, SHAPE[1])


def test_bench_lockstep_overhead(benchmark, report):
    """Acceptance gate: the lockstep verifier (sample hashing) must add
    less than 5% to allreduce wall time — it observes, it never copies."""
    rounds = 3 if FAST else 6
    iters = 8 if FAST else 25
    arrays = make_arrays(3)

    plain = Communicator(WORLD, track_memory=False)
    verified = Communicator(WORLD, track_memory=False)
    verifier = LockstepVerifier.attach(verified)

    def run(comm):
        for _ in range(iters):
            comm.allreduce(arrays)

    def measure():
        import gc

        run(plain)  # warmup both arms out of the timed region
        run(verified)
        ratios = []
        times = {"plain": [], "verified": []}
        # Pair the arms within each round and gate on the best paired
        # ratio: machine noise (GC, frequency scaling) that hits one
        # whole round cancels out instead of counting as "overhead".
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(rounds):
                gc.collect()
                t0 = time.perf_counter()
                run(plain)
                t1 = time.perf_counter()
                run(verified)
                t2 = time.perf_counter()
                times["plain"].append(t1 - t0)
                times["verified"].append(t2 - t1)
                ratios.append((t2 - t1) / (t1 - t0))
        finally:
            if gc_was_enabled:
                gc.enable()
        ratios.sort()
        return (min(times["plain"]), min(times["verified"]),
                ratios[0], ratios[len(ratios) // 2])

    best_plain, best_verified, best_ratio, median_ratio = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    verifier.check("bench: end")
    overhead = best_ratio - 1.0
    report(
        "micro_collectives_lockstep_overhead",
        f"allreduce x{iters}, world {WORLD}, payload {SHAPE} f32\n"
        f"plain    : {best_plain * 1e3:8.2f} ms (best of {rounds})\n"
        f"verified : {best_verified * 1e3:8.2f} ms (best of {rounds})\n"
        f"overhead : {overhead:+.2%} best / {median_ratio - 1.0:+.2%} "
        f"median paired ratio (budget +5% on best)",
    )
    assert verifier.collectives_observed > 0
    assert overhead < 0.05, (
        f"lockstep verifier overhead {overhead:.2%} exceeds the 5% budget"
    )


def test_ring_vs_recursive_doubling_crossover(benchmark, report):
    """Cost-model ablation: recursive doubling wins for small messages
    (latency-bound), the ring wins for the paper's large gradients."""

    def crossover_table():
        rows = []
        for nbytes in (1_000, 10_000, 100_000, 1_000_000, 100_000_000):
            ring = ring_allreduce_time(64, nbytes, INFINIBAND_FDR)
            rd = recursive_doubling_allreduce_time(64, nbytes, INFINIBAND_FDR)
            rows.append(
                [nbytes, f"{ring * 1e6:.1f}", f"{rd * 1e6:.1f}",
                 "ring" if ring < rd else "recursive-doubling"]
            )
        return rows

    rows = benchmark.pedantic(crossover_table, rounds=1, iterations=1)
    table = format_table(
        ["message bytes", "ring (us)", "recursive-doubling (us)", "winner"],
        rows,
        title="Allreduce algorithm crossover at 64 GPUs on FDR Infiniband",
    )
    report("micro_collectives_crossover", table)
    # Large messages (the embedding-gradient regime) must favour the ring.
    assert rows[-1][-1] == "ring"
