"""Micro-benchmarks of the simulated collectives (real wall-clock via
pytest-benchmark) plus the ring vs recursive-doubling cost-model
crossover study called out in DESIGN.md's ablation list.
"""

import numpy as np

from repro.cluster import (
    Communicator,
    INFINIBAND_FDR,
    recursive_doubling_allreduce_time,
    ring_allreduce_time,
)
from repro.report import format_table

WORLD = 8
SHAPE = (512, 256)


def make_arrays(seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(SHAPE).astype(np.float32) for _ in range(WORLD)]


def test_bench_allreduce(benchmark):
    comm = Communicator(WORLD, track_memory=False)
    arrays = make_arrays()
    result = benchmark(lambda: comm.allreduce(arrays))
    np.testing.assert_allclose(result[0], sum(arrays), rtol=1e-4)


def test_bench_allgather(benchmark):
    comm = Communicator(WORLD, track_memory=False)
    arrays = make_arrays(1)
    result = benchmark(lambda: comm.allgather(arrays))
    assert result[0].shape == (WORLD * SHAPE[0], SHAPE[1])


def test_bench_reduce_scatter(benchmark):
    comm = Communicator(WORLD, track_memory=False)
    arrays = make_arrays(2)
    result = benchmark(lambda: comm.reduce_scatter(arrays))
    assert result[0].shape == (SHAPE[0] // WORLD, SHAPE[1])


def test_ring_vs_recursive_doubling_crossover(benchmark, report):
    """Cost-model ablation: recursive doubling wins for small messages
    (latency-bound), the ring wins for the paper's large gradients."""

    def crossover_table():
        rows = []
        for nbytes in (1_000, 10_000, 100_000, 1_000_000, 100_000_000):
            ring = ring_allreduce_time(64, nbytes, INFINIBAND_FDR)
            rd = recursive_doubling_allreduce_time(64, nbytes, INFINIBAND_FDR)
            rows.append(
                [nbytes, f"{ring * 1e6:.1f}", f"{rd * 1e6:.1f}",
                 "ring" if ring < rd else "recursive-doubling"]
            )
        return rows

    rows = benchmark.pedantic(crossover_table, rounds=1, iterations=1)
    table = format_table(
        ["message bytes", "ring (us)", "recursive-doubling (us)", "winner"],
        rows,
        title="Allreduce algorithm crossover at 64 GPUs on FDR Infiniband",
    )
    report("micro_collectives_crossover", table)
    # Large messages (the embedding-gradient regime) must favour the ring.
    assert rows[-1][-1] == "ring"
