"""Ablation: burstiness and the uniqueness technique's savings.

Real text repeats locally (Church & Gale burstiness); the i.i.d. Zipf
streams used for most experiments therefore *understate* the paper's
savings — within-batch duplication is what the unique exchange converts
into reduced traffic.  This bench sweeps the cache-model repetition
probability and measures, per step, the actual wire-byte ratio between
the baseline and unique exchanges.
"""

import numpy as np

from repro.cluster import Communicator
from repro.core import AllGatherExchange, UniqueExchange
from repro.data import ZipfMandelbrot, batch_duplication, make_bursty_tokens
from repro.nn import SparseGrad
from repro.report import format_table

WORLD, K, DIM = 8, 512, 64
DIST = ZipfMandelbrot(vocab_size=50_000, exponent=1.56, shift=6.0)
P_REPEATS = (0.0, 0.2, 0.4, 0.6)


def sweep():
    rows = []
    for p in P_REPEATS:
        stream = make_bursty_tokens(
            DIST, WORLD * K * 4, np.random.default_rng(1), p_repeat=p,
            window=64,
        )
        dup = batch_duplication(stream, K)
        rng = np.random.default_rng(2)
        grads = [
            SparseGrad(
                indices=stream[r * K : (r + 1) * K],
                values=rng.standard_normal((K, DIM)).astype(np.float32),
            )
            for r in range(WORLD)
        ]
        c_base, c_uniq = Communicator(WORLD), Communicator(WORLD)
        AllGatherExchange().exchange(c_base, grads)
        result = UniqueExchange().exchange(c_uniq, grads)
        rows.append(
            [
                p,
                f"{dup:.2f}x",
                int(result[0].indices.size),
                f"{c_base.ledger.total_wire_bytes_per_rank / c_uniq.ledger.total_wire_bytes_per_rank:.1f}x",
                f"{c_base.peak_bytes_per_rank / c_uniq.peak_bytes_per_rank:.1f}x",
            ]
        )
    return rows


def test_ablation_burstiness(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["p_repeat", "per-rank duplication", "Ug", "wire saving", "memory saving"],
        rows,
        title=f"Burstiness vs uniqueness savings (G={WORLD}, K={K}, D={DIM}; "
        "i.i.d. streams understate real-text gains)",
    )
    report("ablation_burstiness", table)

    # Savings grow monotonically with burstiness, and Ug shrinks.
    wire = [float(r[3].rstrip("x")) for r in rows]
    ugs = [r[2] for r in rows]
    assert wire == sorted(wire)
    assert ugs == sorted(ugs, reverse=True)
    assert wire[-1] > wire[0]
