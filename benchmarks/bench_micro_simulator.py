"""Micro-benchmark: the batched rank-execution fast path at G >= 512.

Measures the simulator's steps/sec on the Table-V miniature config
(``bench_table5_tieba_weak_scaling``) at ``world_size=512``, three ways:

* **per_rank** — the slow path: one Python forward/backward/optimizer
  pass per simulated rank (``batched=False``);
* **batched** — the fast path: all ranks' numpy work stacked along a
  leading rank axis (``batched=True``), with stacked-block gradient
  sync, shared post-sync gradients and group-pooled optimizer
  replication;
* **exec phase** — the two rank-execution loops in isolation (no sync,
  no optimizer), the part the batched executor actually replaces.

The fast path must be **bit-exact**: a differential arm re-trains
per-rank vs batched over several seeds and asserts identical losses,
parameters and optimizer step counts, bit for bit.

Headline figures land in ``results/BENCH_simulator.json`` via the
``bench_metrics`` fixture.  ``PRE_PR_MS_PER_STEP`` pins the measured
full-step latency of this config *before* the fast path existed (the
per-rank loop plus the then-current per-parameter sync and per-replica
optimizer updates, measured on the reference box; methodology in
``docs/PERFORMANCE.md``) so the recorded speedup-vs-baseline survives
later slow-path improvements.  Gates assert conservative floors —
roughly half the speedups measured on the reference box — so CI noise
does not flake the job; the JSON records the true measured factors.

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer measured steps
and differential seeds).
"""

import os
import time

import numpy as np

from repro.data import BatchSpec, TIEBA, make_corpus
from repro.optim import Adam
from repro.report import format_table
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
)

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

WORLD = 512
MINI_VOCAB = 150
MINI_CFG = CharLMConfig(
    vocab_size=MINI_VOCAB, embedding_dim=8, hidden_dim=12, depth=2, dropout=0.0
)

#: Full-step ms/step of this exact config before the batched fast path
#: (per-rank execution, per-parameter stacked sync, per-replica Adam).
PRE_PR_MS_PER_STEP = 530.4

WARMUP_STEPS = 1 if FAST else 2
MEASURE_BATCHED = 4 if FAST else 8
MEASURE_PER_RANK = 2 if FAST else 3
DIFF_SEEDS = 2 if FAST else 5
DIFF_WORLD = 16
DIFF_STEPS = 3


def make_trainer(batched: bool, world: int = WORLD, seed: int = 3):
    corpus = make_corpus(TIEBA.scaled(MINI_VOCAB), 20_000, seed=seed)
    cfg = TrainConfig(
        world_size=world, batch=BatchSpec(2, 8), base_lr=4e-3, batched=batched
    )
    return DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            MINI_CFG, rng, dropout_rng=np.random.default_rng(rank)
        ),
        lambda params, lr: Adam(params, lr),
        corpus.train,
        corpus.valid,
        cfg,
    )


def time_steps(trainer, n: int) -> float:
    """Best (min) wall-clock seconds per ``train_step`` over ``n`` steps.

    Min-over-rounds is the robust estimator here: noise on a loaded CI
    runner only ever *adds* time, so the minimum tracks the true cost.
    """
    for _ in range(WARMUP_STEPS):
        trainer.train_step()
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        trainer.train_step()
        best = min(best, time.perf_counter() - start)
    return best


def time_exec_phase() -> tuple[float, float]:
    """Seconds per rank-execution phase: (per_rank_loop, batched_step)."""
    rounds = 2 if FAST else 3
    slow = make_trainer(batched=False)
    slow.train_step()  # warm caches and arena-equivalents
    rngs = slow.seed_assignment.rank_generators(step=slow.data_step)
    per_rank_s = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for rank, replica in enumerate(slow.replicas):
            batch = slow.batcher.batch(rank, 0)
            replica.step(batch, rngs[rank], loss_scale=1.0)
        per_rank_s = min(per_rank_s, time.perf_counter() - start)
        for replica in slow.replicas:
            replica.zero_grad()

    fast = make_trainer(batched=True)
    fast.train_step()
    batched_s = float("inf")
    for _ in range(rounds + 2):
        start = time.perf_counter()
        fast.batched_executor.step(fast.batcher.step_batches(0))
        batched_s = min(batched_s, time.perf_counter() - start)
        for replica in fast.replicas:
            replica.zero_grad()
    return per_rank_s, batched_s


def differential(seed: int) -> None:
    """Assert per-rank and batched training are bit-identical."""
    slow = make_trainer(batched=False, world=DIFF_WORLD, seed=seed)
    fast = make_trainer(batched=True, world=DIFF_WORLD, seed=seed)
    assert fast.batched_executor is not None
    for step in range(DIFF_STEPS):
        slow_loss = slow.train_step()
        fast_loss = fast.train_step()
        assert slow_loss == fast_loss, (
            f"seed {seed}, step {step}: losses diverged"
        )
    for rs, rf in zip(slow.replicas, fast.replicas):
        for (name, ps), (_, pf) in zip(
            rs.named_parameters(), rf.named_parameters()
        ):
            assert np.array_equal(ps.data, pf.data), (
                f"seed {seed}: param {name} diverged"
            )
    for os_, of in zip(slow.optimizers, fast.optimizers):
        assert os_._t == of._t, f"seed {seed}: optimizer step count diverged"


def run_arms():
    per_rank_s = time_steps(make_trainer(batched=False), MEASURE_PER_RANK)
    batched_s = time_steps(make_trainer(batched=True), MEASURE_BATCHED)
    exec_per_rank_s, exec_batched_s = time_exec_phase()
    return per_rank_s, batched_s, exec_per_rank_s, exec_batched_s


def test_simulator(benchmark, report, bench_metrics):
    per_rank_s, batched_s, exec_slow_s, exec_fast_s = benchmark.pedantic(
        run_arms, rounds=1, iterations=1
    )
    for seed in range(DIFF_SEEDS):
        differential(seed)

    speedup = per_rank_s / batched_s
    exec_speedup = exec_slow_s / exec_fast_s
    vs_pre_pr = PRE_PR_MS_PER_STEP / (batched_s * 1e3)

    ms = bench_metrics.gauge(
        "repro_bench_sim_ms_per_step",
        "Full train_step wall-clock at G=512, by arm",
        labelnames=("arm",),
    )
    ms.set(per_rank_s * 1e3, arm="per_rank")
    ms.set(batched_s * 1e3, arm="batched")
    sps = bench_metrics.gauge(
        "repro_bench_sim_steps_per_s",
        "Training steps per second at G=512, by arm",
        labelnames=("arm",),
    )
    sps.set(1.0 / per_rank_s, arm="per_rank")
    sps.set(1.0 / batched_s, arm="batched")
    ex = bench_metrics.gauge(
        "repro_bench_sim_exec_ms",
        "Rank-execution phase wall-clock (no sync/optimizer), by arm",
        labelnames=("arm",),
    )
    ex.set(exec_slow_s * 1e3, arm="per_rank")
    ex.set(exec_fast_s * 1e3, arm="batched")
    bench_metrics.gauge(
        "repro_bench_sim_full_step_speedup",
        "per_rank / batched full-step time, same tree",
    ).set(speedup)
    bench_metrics.gauge(
        "repro_bench_sim_exec_speedup",
        "per_rank / batched rank-execution-phase time",
    ).set(exec_speedup)
    bench_metrics.gauge(
        "repro_bench_sim_pre_pr_ms_per_step",
        "Pinned pre-fast-path full-step baseline (reference box)",
    ).set(PRE_PR_MS_PER_STEP)
    bench_metrics.gauge(
        "repro_bench_sim_speedup_vs_pre_pr",
        "Pinned pre-fast-path baseline / measured batched step",
    ).set(vs_pre_pr)
    bench_metrics.gauge(
        "repro_bench_sim_differential_seeds",
        "Seeds over which per-rank vs batched was verified bit-exact",
    ).set(DIFF_SEEDS)

    table = format_table(
        ["arm", "full step (ms)", "steps/s", "exec phase (ms)"],
        [
            [
                "per_rank",
                round(per_rank_s * 1e3, 1),
                round(1.0 / per_rank_s, 2),
                round(exec_slow_s * 1e3, 1),
            ],
            [
                "batched",
                round(batched_s * 1e3, 1),
                round(1.0 / batched_s, 2),
                round(exec_fast_s * 1e3, 1),
            ],
        ],
        title=f"Simulator fast path at G={WORLD} (Table-V mini config)",
    )
    footer = (
        f"\nfull-step speedup:  {speedup:.2f}x (same tree)"
        f"\nexec-phase speedup: {exec_speedup:.2f}x"
        f"\nvs pre-fast-path baseline {PRE_PR_MS_PER_STEP:.1f} ms: "
        f"{vs_pre_pr:.2f}x"
        f"\nbit-exact differential: {DIFF_SEEDS} seeds x {DIFF_STEPS} steps"
    )
    report("micro_simulator", table + footer)

    # Gates: conservative floors (roughly half the reference-box
    # factors) so shared-runner noise cannot flake CI; the JSON above
    # records the true measured numbers.
    assert speedup >= 3.5, (
        f"batched full step only {speedup:.2f}x faster than per-rank"
    )
    assert exec_speedup >= 3.5, (
        f"batched execution only {exec_speedup:.2f}x faster than per-rank"
    )
    assert batched_s * 1e3 < PRE_PR_MS_PER_STEP, (
        "batched step slower than the pinned pre-fast-path baseline"
    )
