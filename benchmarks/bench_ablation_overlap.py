"""Ablation: what would communication/computation overlap add?

The paper's TF-1.4 stack synchronizes after backward completes.  This
bench sweeps the overlappable fraction for both workloads at several GPU
counts, bounding the additional speedup a modern overlapped runtime
would deliver *on top of* the paper's three techniques — and showing the
compute-rich char LM could hide essentially all of its communication.
"""

from repro.perf import (
    ALL_TECHNIQUES,
    CHAR_LM_1B,
    WORD_LM_1B,
    PerfModel,
    overlap_speedup,
    perfect_overlap_bound,
)
from repro.report import format_table

FRACTIONS = (0.0, 0.5, 1.0)


def sweep():
    rows = []
    for workload in (WORD_LM_1B, CHAR_LM_1B):
        model = PerfModel(workload)
        for world in (16, 64):
            cost = model.iteration_cost(world, ALL_TECHNIQUES)
            comm = (
                cost.dense_allreduce + cost.input_exchange + cost.output_exchange
            )
            speedups = [
                overlap_speedup(workload, world, ALL_TECHNIQUES, f)
                for f in FRACTIONS
            ]
            rows.append(
                [
                    workload.name,
                    world,
                    f"{comm / cost.total:.1%}",
                    *[f"{s:.3f}x" for s in speedups],
                ]
            )
    return rows


def test_ablation_overlap(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["workload", "GPUs", "comm share", "f=0", "f=0.5", "f=1.0"],
        rows,
        title="Overlap ablation: speedup over the sequential schedule "
        "(on top of uniqueness+seeding+compression)",
    )
    char_bound = perfect_overlap_bound(CHAR_LM_1B, 64, ALL_TECHNIQUES)
    word_bound = perfect_overlap_bound(WORD_LM_1B, 64, ALL_TECHNIQUES)
    footer = (
        f"\nPerfect-overlap bounds at 64 GPUs: char LM {char_bound:.3f}x, "
        f"word LM {word_bound:.3f}x — with the paper's techniques already "
        "shrinking comm, overlap adds percents, not factors."
    )
    report("ablation_overlap", table + footer)

    assert 1.0 <= word_bound < 1.5
    assert 1.0 <= char_bound < 1.5
