"""Ablation: what would communication/computation overlap add?

The paper's TF-1.4 stack synchronizes after backward completes.  This
bench sweeps the overlappable fraction for both workloads at several GPU
counts, bounding the additional speedup a modern overlapped runtime
would deliver *on top of* the paper's three techniques — and showing the
compute-rich char LM could hide essentially all of its communication.

Each analytic figure is cross-checked against the two-stream timeline:
``timeline_overlapped_time`` actually schedules head compute, per-bucket
collectives on the shared link, tail compute, and the completion
barrier, and must land within 5% of the closed form (in practice they
agree to machine precision).

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer GPU counts).
"""

import os

from repro.perf import (
    ALL_TECHNIQUES,
    CHAR_LM_1B,
    WORD_LM_1B,
    PerfModel,
    overlap_speedup,
    overlapped_time,
    perfect_overlap_bound,
    timeline_overlapped_time,
)
from repro.report import format_table

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
FRACTIONS = (0.0, 0.5, 1.0)
WORLDS = (16,) if FAST else (16, 64)


def sweep():
    rows = []
    worst_rel = 0.0
    for workload in (WORD_LM_1B, CHAR_LM_1B):
        model = PerfModel(workload)
        for world in WORLDS:
            cost = model.iteration_cost(world, ALL_TECHNIQUES)
            comm = (
                cost.dense_allreduce + cost.input_exchange + cost.output_exchange
            )
            speedups = [
                overlap_speedup(workload, world, ALL_TECHNIQUES, f)
                for f in FRACTIONS
            ]
            for f in FRACTIONS:
                analytic = overlapped_time(cost, f)
                scheduled = timeline_overlapped_time(
                    cost, f, world=world, n_buckets=8
                )
                worst_rel = max(worst_rel, abs(scheduled - analytic) / analytic)
            rows.append(
                [
                    workload.name,
                    world,
                    f"{comm / cost.total:.1%}",
                    *[f"{s:.3f}x" for s in speedups],
                ]
            )
    return rows, worst_rel


def test_ablation_overlap(benchmark, report):
    rows, worst_rel = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["workload", "GPUs", "comm share", "f=0", "f=0.5", "f=1.0"],
        rows,
        title="Overlap ablation: speedup over the sequential schedule "
        "(on top of uniqueness+seeding+compression)",
    )
    bound_world = WORLDS[-1]
    char_bound = perfect_overlap_bound(CHAR_LM_1B, bound_world, ALL_TECHNIQUES)
    word_bound = perfect_overlap_bound(WORD_LM_1B, bound_world, ALL_TECHNIQUES)
    footer = (
        f"\nPerfect-overlap bounds at {bound_world} GPUs: char LM "
        f"{char_bound:.3f}x, word LM {word_bound:.3f}x — with the paper's "
        "techniques already shrinking comm, overlap adds percents, not "
        "factors.\nTimeline cross-check: scheduled vs analytic iteration "
        f"time diverge by at most {worst_rel:.2e} (tolerance 5%)."
    )
    report("ablation_overlap", table + footer)

    assert 1.0 <= word_bound < 1.5
    assert 1.0 <= char_bound < 1.5
    # Acceptance gate: the scheduled timeline must reproduce the analytic
    # overlap model within 5% at every sampled fraction.
    assert worst_rel < 0.05
