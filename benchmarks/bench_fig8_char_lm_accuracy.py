"""Figure 8: char-LM validation perplexity vs epochs at 16/32/64 GPUs.

Real training of the RHN character model at miniature scale.  Shape
under test (paper): perplexity gaps between GPU counts shrink with
epochs — 4% at epoch 1, ~1-2% by epoch 2+ — and all counts converge.
"""

import numpy as np

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import Adam
from repro.report import format_series, format_table
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
)

VOCAB = 98  # the English character vocabulary size
MODEL = CharLMConfig(
    vocab_size=VOCAB, embedding_dim=8, hidden_dim=12, depth=2, dropout=0.0
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 8_000, seed=31)
WORLDS = (2, 4, 8)  # stand-ins for 16/32/64
EPOCHS = 2


def train_curves():
    curves = {}
    for world in WORLDS:
        cfg = TrainConfig(
            world_size=world,
            batch=BatchSpec(2, 10),
            base_lr=3e-3,
            gpus_per_node=2,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: CharLanguageModel(
                MODEL, rng, dropout_rng=np.random.default_rng(500 + rank)
            ),
            lambda params, lr: Adam(params, lr),
            CORPUS.train,
            CORPUS.valid,
            cfg,
        )
        points = []
        # Full epochs, so larger G takes fewer optimizer steps per epoch.
        for _ in range(EPOCHS):
            stats = trainer.train_epoch(evals_per_epoch=2)
            points.extend((p.epoch, p.perplexity) for p in stats.eval_points)
        curves[world] = points
    return curves


def test_fig8_char_lm_accuracy(benchmark, report):
    curves = benchmark.pedantic(train_curves, rounds=1, iterations=1)
    lines = [
        "Figure 8 — char LM validation perplexity vs epochs "
        "(simulated GPU counts stand in for 16/32/64)",
        "",
    ]
    for world, points in curves.items():
        lines.append(
            format_series(
                f"{world} gpu",
                [round(e, 2) for e, _ in points],
                [round(p, 2) for _, p in points],
            )
        )
    early = {w: pts[0][1] for w, pts in curves.items()}
    final = {w: pts[-1][1] for w, pts in curves.items()}
    early_gap = max(early.values()) / min(early.values()) - 1
    final_gap = max(final.values()) / min(final.values()) - 1
    lines.append("")
    lines.append(
        format_table(
            ["GPUs", "early ppl", "final ppl"],
            [[w, round(early[w], 2), round(final[w], 2)] for w in WORLDS],
            title=(
                "Perplexity gap across GPU counts: "
                f"early {early_gap:.1%} -> final {final_gap:.1%} "
                "(paper: 4-5% at epoch 1 -> ~1% later)"
            ),
        )
    )
    report("fig8_char_lm_accuracy", "\n".join(lines))

    for w in WORLDS:
        assert final[w] < early[w]
    # The cross-GPU gap must shrink as training progresses.
    assert final_gap < early_gap or final_gap < 0.05
