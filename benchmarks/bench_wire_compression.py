"""Wire compression on the unique-index ALLGATHER: measured bytes + pipeline.

The uniqueness exchange (paper §III-A) ships every rank's sorted unique
word indices to every other rank — Θ(G·K) int64 traffic that §III-C's
FP16 value codec cannot touch.  This bench measures what the lossless
frame codecs of :mod:`repro.core.wire` actually remove from that wire:

1. **Byte-reduction sweep** — word-LM-shaped Zipf batches
   (1B-Word exponent/shift, 100K vocabulary) across GPU counts up to
   G=128 and per-rank batch sizes; the reported factor is *measured*
   from the cost ledger (logical bytes / encoded wire bytes), not
   estimated.  Gate: >= 4x at G=128 with the paper's 32x20 batch.
2. **Pipelined-time model gate** — the analytic chunked makespan of
   :func:`repro.perf.pipelined_transfer_time` vs the same schedule
   executed on a real Timeline, within 5% everywhere (the same
   regression guard style as ``bench_ablation_overlap``).
3. **Bit-exactness** — a real mini word-LM training run under
   ``wire_codec="delta"`` finishes with weights identical bit-for-bit
   to the uncompressed run.

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer GPU counts and
batch shapes).
"""

import os

import numpy as np

from repro.cluster import Communicator
from repro.cluster.interconnect import LinkSpec
from repro.core.wire import DeltaBitpackCodec, RunLengthCodec, iencoded_allgather
from repro.data import BatchSpec, ONE_BILLION_WORD, ZipfMandelbrot, make_corpus
from repro.optim import SGD
from repro.perf import (
    CodecThroughput,
    calibrate_codec_throughput,
    pipelined_transfer_time,
    timeline_pipelined_transfer,
)
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

VOCAB = 100_000  # the paper's word-LM vocabulary
ZIPF = ZipfMandelbrot(
    vocab_size=VOCAB,
    exponent=ONE_BILLION_WORD.zipf_exponent,
    shift=ONE_BILLION_WORD.zipf_shift,
)

GPU_COUNTS = [8, 128] if FAST else [8, 32, 128]
#: Tokens per rank per step: the paper's 32 seqs x 20 steps, plus a
#: smaller and a larger shape to show the K-dependence.
BATCH_TOKENS = [640] if FAST else [160, 640, 2560]
PAPER_BATCH = 640


def _rank_indices(world: int, tokens: int, seed: int = 0) -> list[np.ndarray]:
    """Per-rank sorted unique word indices of one simulated step."""
    rng = np.random.default_rng(seed)
    return [
        np.unique(ZIPF.sample(tokens, rng).astype(np.int64))
        for _ in range(world)
    ]


def measure_reduction(world: int, tokens: int, codec) -> tuple[float, int, int]:
    """(measured logical/wire factor, logical bytes, wire bytes)."""
    vectors = _rank_indices(world, tokens)
    comm = Communicator(world, track_memory=False)
    iencoded_allgather(comm, vectors, codec, tag="idx").wait()
    wire = comm.ledger.total_wire_bytes_per_rank
    factor = comm.ledger.compression_factor("idx")
    logical = int(round(wire * factor))
    return factor, logical, wire


def byte_sweep():
    rows = []
    paper_factor = None
    for world in GPU_COUNTS:
        for tokens in BATCH_TOKENS:
            factor, logical, wire = measure_reduction(
                world, tokens, DeltaBitpackCodec()
            )
            rle_factor, _, _ = measure_reduction(
                world, tokens, RunLengthCodec()
            )
            mean_k = np.mean(
                [v.size for v in _rank_indices(world, tokens)]
            )
            rows.append(
                [world, tokens, int(mean_k), f"{logical / 1024:.1f}",
                 f"{wire / 1024:.1f}", f"{factor:.2f}x", f"{rle_factor:.2f}x"]
            )
            if world == 128 and tokens == PAPER_BATCH:
                paper_factor = factor
    return rows, paper_factor


LINK = LinkSpec(bandwidth=16e9, latency=5e-6)
TP = CodecThroughput(encode_bps=50e9, decode_bps=80e9)

PIPE_SWEEP = [
    # (logical bytes per rank, chunk bytes, world)
    (256 << 10, None, 8),
    (256 << 10, 32 << 10, 8),
    (4 << 20, 256 << 10, 8),
    (4 << 20, 256 << 10, 32),
    (64 << 20, 4 << 20, 32),
]


def pipeline_gate():
    rows = []
    worst_rel = 0.0
    for logical, chunk, world in PIPE_SWEEP:
        analytic = pipelined_transfer_time(
            logical, world, LINK, TP, chunk_bytes=chunk, encoded_ratio=4.0
        )
        scheduled = timeline_pipelined_transfer(
            logical, world, LINK, TP, chunk_bytes=chunk, encoded_ratio=4.0
        )
        rel = abs(scheduled - analytic) / analytic
        worst_rel = max(worst_rel, rel)
        rows.append(
            [f"{logical >> 10} KiB", "-" if chunk is None else f"{chunk >> 10} KiB",
             world, f"{analytic * 1e3:.3f}", f"{scheduled * 1e3:.3f}",
             f"{rel:.2e}"]
        )
    return rows, worst_rel


TRAIN_VOCAB = 120
TRAIN_MODEL = WordLMConfig(
    vocab_size=TRAIN_VOCAB, embedding_dim=8, hidden_dim=10, projection_dim=8,
    num_samples=12,
)
TRAIN_STEPS = 20 if FAST else 60


def bit_exact_check() -> tuple[bool, float]:
    corpus = make_corpus(ONE_BILLION_WORD.scaled(TRAIN_VOCAB), 20_000, seed=5)
    finals = []
    factors = []
    for spec in (None, "delta"):
        cfg = TrainConfig(
            world_size=4, batch=BatchSpec(2, 8), base_lr=0.3, wire_codec=spec
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(TRAIN_MODEL, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train,
            corpus.valid,
            cfg,
        )
        for _ in range(TRAIN_STEPS):
            trainer.train_step()
        finals.append(
            {
                name: p.data.copy()
                for name, p in trainer.replicas[0].named_parameters()
            }
        )
        factors.append(trainer.comm.ledger.compression_factor(":indices"))
    base, wired = finals
    exact = set(base) == set(wired) and all(
        np.array_equal(base[k], wired[k]) for k in base
    )
    return exact, factors[1]


def run_all():
    sweep_rows, paper_factor = byte_sweep()
    pipe_rows, worst_rel = pipeline_gate()
    exact, train_factor = bit_exact_check()
    return sweep_rows, paper_factor, pipe_rows, worst_rel, exact, train_factor


def test_wire_compression(benchmark, report, bench_metrics):
    (sweep_rows, paper_factor, pipe_rows, worst_rel, exact, train_factor) = (
        benchmark.pedantic(run_all, rounds=1, iterations=1)
    )

    factor_gauge = bench_metrics.gauge(
        "repro_bench_compression_factor",
        "Measured logical/wire reduction", labelnames=("setting",),
    )
    factor_gauge.set(paper_factor, setting="paper_g128")
    factor_gauge.set(train_factor, setting="training")
    bench_metrics.gauge(
        "repro_bench_pipeline_rel_err",
        "Worst analytic-vs-timeline relative error",
    ).set(worst_rel)
    bench_metrics.gauge(
        "repro_bench_bit_exact", "1 when delta training matched baseline"
    ).set(int(exact))
    # Host-measured codec throughput, published via the perf-layer hook.
    for codec in (DeltaBitpackCodec(), RunLengthCodec()):
        calibrate_codec_throughput(
            codec, nbytes=1 << 20, repeats=2, registry=bench_metrics
        )

    sweep = format_table(
        ["GPUs", "tokens/rank", "mean K", "logical KiB", "wire KiB",
         "delta", "rle"],
        sweep_rows,
        title="Unique-index ALLGATHER wire reduction (1B-Word Zipf, "
        f"vocab {VOCAB:,}; measured from the cost ledger)",
    )
    pipe = format_table(
        ["logical/rank", "chunk", "GPUs", "analytic ms", "timeline ms",
         "rel err"],
        pipe_rows,
        title="Chunked encode/transmit pipeline: analytic model vs "
        "executed Timeline schedule",
    )
    trailer = (
        f"G=128 paper-batch measured reduction: {paper_factor:.2f}x "
        "(gate: >= 4x)\n"
        f"analytic-vs-timeline worst relative error: {worst_rel:.2e} "
        "(gate: < 5%)\n"
        f"delta-codec training bit-exact vs uncompressed: {exact} "
        f"(measured index compression during training: {train_factor:.2f}x)"
    )
    report("wire_compression", f"{sweep}\n\n{pipe}\n\n{trailer}")

    # The ISSUE's acceptance gates.
    assert paper_factor is not None and paper_factor >= 4.0
    assert worst_rel < 0.05
    assert exact
    assert train_factor > 1.0
