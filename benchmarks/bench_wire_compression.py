"""Wire compression on the unique-index ALLGATHER: measured bytes + pipeline.

The uniqueness exchange (paper §III-A) ships every rank's sorted unique
word indices to every other rank — Θ(G·K) int64 traffic that §III-C's
FP16 value codec cannot touch.  This bench measures what the lossless
frame codecs of :mod:`repro.core.wire` actually remove from that wire:

1. **Byte-reduction sweep** — word-LM-shaped Zipf batches
   (1B-Word exponent/shift, 100K vocabulary) across GPU counts up to
   G=128 and per-rank batch sizes; the reported factor is *measured*
   from the cost ledger (logical bytes / encoded wire bytes), not
   estimated.  Gate: >= 4x at G=128 with the paper's 32x20 batch.
2. **Pipelined-time model gate** — the analytic chunked makespan of
   :func:`repro.perf.pipelined_transfer_time` vs the same schedule
   executed on a real Timeline, within 5% everywhere (the same
   regression guard style as ``bench_ablation_overlap``).
3. **Bit-exactness** — a real mini word-LM training run under
   ``wire_codec="delta"`` finishes with weights identical bit-for-bit
   to the uncompressed run.

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer GPU counts and
batch shapes).
"""

import os

import numpy as np

from repro.cluster import Communicator
from repro.cluster.interconnect import LinkSpec
from repro.core.wire import (
    DeltaBitpackCodec,
    EntropyCodec,
    RunLengthCodec,
    iencoded_allgather,
)
from repro.core.wire.cost import codec_throughput
from repro.data import BatchSpec, ONE_BILLION_WORD, ZipfMandelbrot, make_corpus
from repro.optim import SGD
from repro.perf import (
    CodecThroughput,
    calibrate_codec_throughput,
    fused_reduce_time,
    pipelined_transfer_time,
    timeline_fused_reduce,
    timeline_pipelined_transfer,
    uniform_fused_plan,
)
from repro.perf.hardware import PAPER_PLATFORM
from repro.perf.model import CHAR_LM_TIEBA, WORD_LM_1B
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))

VOCAB = 100_000  # the paper's word-LM vocabulary
ZIPF = ZipfMandelbrot(
    vocab_size=VOCAB,
    exponent=ONE_BILLION_WORD.zipf_exponent,
    shift=ONE_BILLION_WORD.zipf_shift,
)

GPU_COUNTS = [8, 128] if FAST else [8, 32, 128]
#: Tokens per rank per step: the paper's 32 seqs x 20 steps, plus a
#: smaller and a larger shape to show the K-dependence.
BATCH_TOKENS = [640] if FAST else [160, 640, 2560]
PAPER_BATCH = 640


def _rank_indices(world: int, tokens: int, seed: int = 0) -> list[np.ndarray]:
    """Per-rank sorted unique word indices of one simulated step."""
    rng = np.random.default_rng(seed)
    return [
        np.unique(ZIPF.sample(tokens, rng).astype(np.int64))
        for _ in range(world)
    ]


def measure_reduction(world: int, tokens: int, codec) -> tuple[float, int, int]:
    """(measured logical/wire factor, logical bytes, wire bytes)."""
    vectors = _rank_indices(world, tokens)
    comm = Communicator(world, track_memory=False)
    iencoded_allgather(comm, vectors, codec, tag="idx").wait()
    wire = comm.ledger.total_wire_bytes_per_rank
    factor = comm.ledger.compression_factor("idx")
    logical = int(round(wire * factor))
    return factor, logical, wire


def byte_sweep():
    rows = []
    paper_factor = None
    paper_entropy_factor = None
    for world in GPU_COUNTS:
        for tokens in BATCH_TOKENS:
            factor, logical, wire = measure_reduction(
                world, tokens, DeltaBitpackCodec()
            )
            rle_factor, _, _ = measure_reduction(
                world, tokens, RunLengthCodec()
            )
            ent_factor, _, _ = measure_reduction(
                world, tokens, EntropyCodec()
            )
            mean_k = np.mean(
                [v.size for v in _rank_indices(world, tokens)]
            )
            rows.append(
                [world, tokens, int(mean_k), f"{logical / 1024:.1f}",
                 f"{wire / 1024:.1f}", f"{factor:.2f}x", f"{rle_factor:.2f}x",
                 f"{ent_factor:.2f}x"]
            )
            if world == 128 and tokens == PAPER_BATCH:
                paper_factor = factor
                paper_entropy_factor = ent_factor
    return rows, paper_factor, paper_entropy_factor


LINK = LinkSpec(bandwidth=16e9, latency=5e-6)
TP = CodecThroughput(encode_bps=50e9, decode_bps=80e9)

PIPE_SWEEP = [
    # (logical bytes per rank, chunk bytes, world)
    (256 << 10, None, 8),
    (256 << 10, 32 << 10, 8),
    (4 << 20, 256 << 10, 8),
    (4 << 20, 256 << 10, 32),
    (64 << 20, 4 << 20, 32),
]


def pipeline_gate():
    rows = []
    worst_rel = 0.0
    for logical, chunk, world in PIPE_SWEEP:
        analytic = pipelined_transfer_time(
            logical, world, LINK, TP, chunk_bytes=chunk, encoded_ratio=4.0
        )
        scheduled = timeline_pipelined_transfer(
            logical, world, LINK, TP, chunk_bytes=chunk, encoded_ratio=4.0
        )
        rel = abs(scheduled - analytic) / analytic
        worst_rel = max(worst_rel, rel)
        rows.append(
            [f"{logical >> 10} KiB", "-" if chunk is None else f"{chunk >> 10} KiB",
             world, f"{analytic * 1e3:.3f}", f"{scheduled * 1e3:.3f}",
             f"{rel:.2e}"]
        )
    return rows, worst_rel


TRAIN_VOCAB = 120
TRAIN_MODEL = WordLMConfig(
    vocab_size=TRAIN_VOCAB, embedding_dim=8, hidden_dim=10, projection_dim=8,
    num_samples=12,
)
TRAIN_STEPS = 20 if FAST else 60


def bit_exact_check() -> tuple[bool, float]:
    corpus = make_corpus(ONE_BILLION_WORD.scaled(TRAIN_VOCAB), 20_000, seed=5)
    finals = []
    factors = []
    for spec in (None, "delta"):
        cfg = TrainConfig(
            world_size=4, batch=BatchSpec(2, 8), base_lr=0.3, wire_codec=spec
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(TRAIN_MODEL, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train,
            corpus.valid,
            cfg,
        )
        for _ in range(TRAIN_STEPS):
            trainer.train_step()
        finals.append(
            {
                name: p.data.copy()
                for name, p in trainer.replicas[0].named_parameters()
            }
        )
        factors.append(trainer.comm.ledger.compression_factor(":indices"))
    base, wired = finals
    exact = set(base) == set(wired) and all(
        np.array_equal(base[k], wired[k]) for k in base
    )
    return exact, factors[1]


def run_all():
    sweep_rows, paper_factor, paper_entropy = byte_sweep()
    pipe_rows, worst_rel = pipeline_gate()
    exact, train_factor = bit_exact_check()
    return (
        sweep_rows, paper_factor, paper_entropy, pipe_rows, worst_rel,
        exact, train_factor,
    )


def test_wire_compression(benchmark, report, bench_metrics):
    (
        sweep_rows, paper_factor, paper_entropy, pipe_rows, worst_rel,
        exact, train_factor,
    ) = benchmark.pedantic(run_all, rounds=1, iterations=1)

    factor_gauge = bench_metrics.gauge(
        "repro_bench_compression_factor",
        "Measured logical/wire reduction", labelnames=("setting",),
    )
    factor_gauge.set(paper_factor, setting="paper_g128")
    factor_gauge.set(paper_entropy, setting="paper_g128_entropy")
    factor_gauge.set(train_factor, setting="training")
    bench_metrics.gauge(
        "repro_bench_pipeline_rel_err",
        "Worst analytic-vs-timeline relative error",
    ).set(worst_rel)
    bench_metrics.gauge(
        "repro_bench_bit_exact", "1 when delta training matched baseline"
    ).set(int(exact))
    # Host-measured codec throughput, published via the perf-layer hook.
    for codec in (DeltaBitpackCodec(), RunLengthCodec()):
        calibrate_codec_throughput(
            codec, nbytes=1 << 20, repeats=2, registry=bench_metrics
        )

    sweep = format_table(
        ["GPUs", "tokens/rank", "mean K", "logical KiB", "wire KiB",
         "delta", "rle", "entropy"],
        sweep_rows,
        title="Unique-index ALLGATHER wire reduction (1B-Word Zipf, "
        f"vocab {VOCAB:,}; measured from the cost ledger)",
    )
    pipe = format_table(
        ["logical/rank", "chunk", "GPUs", "analytic ms", "timeline ms",
         "rel err"],
        pipe_rows,
        title="Chunked encode/transmit pipeline: analytic model vs "
        "executed Timeline schedule",
    )
    trailer = (
        f"G=128 paper-batch measured reduction: {paper_factor:.2f}x "
        "(gate: >= 4x)\n"
        f"G=128 paper-batch entropy-codec reduction: {paper_entropy:.2f}x "
        "(gate: > delta)\n"
        f"analytic-vs-timeline worst relative error: {worst_rel:.2e} "
        "(gate: < 5%)\n"
        f"delta-codec training bit-exact vs uncompressed: {exact} "
        f"(measured index compression during training: {train_factor:.2f}x)"
    )
    report("wire_compression", f"{sweep}\n\n{pipe}\n\n{trailer}")

    # The ISSUE's acceptance gates.
    assert paper_factor is not None and paper_factor >= 4.0
    assert paper_entropy is not None and paper_entropy > paper_factor
    assert worst_rel < 0.05
    assert exact
    assert train_factor > 1.0


# ---------------------------------------------------------------------------
# Fused compress-reduce arm: dense-gradient allreduce step-time wins on the
# paper's Table III / Table V configurations, plus the recurrence gate.
# ---------------------------------------------------------------------------

#: (workload, GPUs): Table III word LM at G=32, Table V Tieba char LM at
#: the paper's largest weak-scaling point.
FUSED_CONFIGS = [
    (WORD_LM_1B, 32),
    (CHAR_LM_TIEBA, 24),
]
FUSED_CHUNK = 4 << 20


def fused_step_time_sweep():
    """Raw vs fused-FP16 dense allreduce time per step, analytic plans.

    The dense gradient is ``dense_param_count`` float32s; FP16 on the
    wire halves every hop.  Both sides use the same chunked fused ring
    (identical scheduling), so the win isolates the codec, and each
    plan's closed recurrence is cross-checked against the Timeline
    replay (the <= 1e-9 ISSUE gate).
    """
    rows = []
    wins = []
    worst_rel = 0.0
    tp = codec_throughput("fp16")
    for workload, world in FUSED_CONFIGS:
        dense_bytes = int(workload.dense_param_count) * 4
        link = PAPER_PLATFORM.fabric.ring_link(world)
        raw_plan = uniform_fused_plan(
            dense_bytes, world, chunk_bytes=FUSED_CHUNK, charge_codec=False
        )
        fp16_plan = uniform_fused_plan(
            dense_bytes, world, encoded_ratio=2.0, chunk_bytes=FUSED_CHUNK
        )
        raw_t = fused_reduce_time(raw_plan, link, None)
        fused_t = fused_reduce_time(fp16_plan, link, tp)
        for plan, plan_tp in ((raw_plan, None), (fp16_plan, tp)):
            analytic = fused_reduce_time(plan, link, plan_tp)
            replay = timeline_fused_reduce(plan, link, plan_tp)
            worst_rel = max(worst_rel, abs(replay - analytic) / analytic)
        win = raw_t / fused_t
        wins.append(win)
        rows.append(
            [workload.name, world, f"{dense_bytes / 1e6:.0f} MB",
             f"{raw_t * 1e3:.1f}", f"{fused_t * 1e3:.1f}", f"{win:.2f}x"]
        )
    return rows, wins, worst_rel


def test_wire(benchmark, report, bench_metrics):
    rows, wins, worst_rel = benchmark.pedantic(
        fused_step_time_sweep, rounds=1, iterations=1
    )

    win_gauge = bench_metrics.gauge(
        "repro_bench_fused_reduce_win",
        "Raw/fused dense-allreduce time ratio", labelnames=("workload",),
    )
    for (workload, world), win in zip(FUSED_CONFIGS, wins):
        win_gauge.set(win, workload=workload.name)
    bench_metrics.gauge(
        "repro_bench_fused_recurrence_rel_err",
        "Worst fused recurrence-vs-timeline relative error",
    ).set(worst_rel)

    table = format_table(
        ["workload", "GPUs", "dense grad", "raw ms", "fused fp16 ms", "win"],
        rows,
        title="Fused compress-reduce: dense-gradient ring allreduce on the "
        "paper platform (analytic plans, Timeline-verified)",
    )
    trailer = (
        f"fused recurrence vs Timeline worst relative error: "
        f"{worst_rel:.2e} (gate: <= 1e-9)\n"
        "step-time gate: fused fp16 beats raw on every config"
    )
    report("wire_fused", f"{table}\n\n{trailer}")

    assert worst_rel <= 1e-9
    assert all(win > 1.0 for win in wins)
