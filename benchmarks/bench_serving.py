"""Serving-path benchmark: continuous batching vs naive decode.

Drives the same deterministic Zipfian/bursty request stream through the
continuous-batching :class:`~repro.serve.ServingEngine` (per-request
state caching, replica-sharded embedding lookups on the simulated
cluster) and the naive one-request-at-a-time baseline, then reports the
latency story the paper-era serving stack would publish: makespan
speedup, p50/p99 TTFT, per-token latency, goodput under an SLO, and the
cache counters.

Gates (regressions fail the benchmark):

* continuous batching must beat naive decode on makespan;
* tokens must be identical between the two (scheduling is not allowed
  to change numerics);
* p99 TTFT must stay under a generous ceiling derived from the naive
  arm — batching that *worsens* tail admission latency is a regression.

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer requests).
"""

import os

from repro.cluster.communicator import Communicator
from repro.report import format_table
from repro.serve import (
    ArrivalSpec,
    ServeConfig,
    ServingEngine,
    TrafficConfig,
    WordLMDecoder,
    generate_traffic,
    naive_serve,
    percentile,
    report_to_registry,
)
from repro.train.config import WordLMConfig
from repro.train.word_lm import WordLanguageModel

import numpy as np

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
REQUESTS = 24 if FAST else 64
VOCAB = 120
WORLDS = (2,) if FAST else (2, 4)

MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=16, hidden_dim=32, projection_dim=16,
    num_samples=8,
)

TRAFFIC = TrafficConfig(
    num_requests=REQUESTS,
    vocab_size=VOCAB,
    prompt_pool=12,
    arrivals=ArrivalSpec(
        calm_rate=100.0, burst_rate=1000.0, mean_calm_s=0.05, mean_burst_s=0.05
    ),
    slo_s=2.0,
    seed=0,
)

CONFIG = ServeConfig(
    max_batch=8,
    seed=0,
    drop_expired=False,
    decode_token_s=2e-3,
    prefill_token_s=5e-4,
)


def make_decoder():
    return WordLMDecoder(WordLanguageModel(MODEL, np.random.default_rng(0)))


def run_arms():
    requests = generate_traffic(TRAFFIC)
    naive = naive_serve(make_decoder(), requests, CONFIG)
    continuous = {
        world: ServingEngine(
            make_decoder(), Communicator(world), CONFIG
        ).run(requests)
        for world in WORLDS
    }
    return naive, continuous


def test_serving(benchmark, report, bench_metrics):
    naive, continuous = benchmark.pedantic(run_arms, rounds=1, iterations=1)

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    for world, rep in continuous.items():
        for c, n in zip(rep.requests, naive.requests):
            assert c.tokens == n.tokens, (
                f"world {world}, request {c.request_id}: batching changed "
                f"the tokens"
            )
        assert rep.makespan_s < naive.makespan_s, (
            f"continuous batching on {world} GPUs ({rep.makespan_s:.4f}s) "
            f"failed to beat naive decode ({naive.makespan_s:.4f}s)"
        )
        # Tail-latency gate: generous, but catches pathological queueing.
        naive_p99 = percentile(naive.ttft_values(), 99)
        p99 = percentile(rep.ttft_values(), 99)
        assert p99 < naive_p99, (
            f"world {world}: p99 TTFT {p99:.4f}s regressed past the naive "
            f"arm's {naive_p99:.4f}s"
        )

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    rows = []
    naive_summary = naive.summary()
    rows.append([
        "naive", "1", f"{naive_summary['makespan_s']:.4f}", "1.00",
        f"{naive_summary['p50_ttft_s']:.4f}",
        f"{naive_summary['p99_ttft_s']:.4f}",
        f"{naive_summary['p99_token_latency_s']:.4f}",
        f"{naive_summary['goodput_rps']:.1f}",
        f"{naive_summary['tokens_per_s']:.0f}",
    ])
    for world, rep in continuous.items():
        s = rep.summary()
        rows.append([
            "continuous", str(world), f"{s['makespan_s']:.4f}",
            f"{naive.makespan_s / s['makespan_s']:.2f}",
            f"{s['p50_ttft_s']:.4f}", f"{s['p99_ttft_s']:.4f}",
            f"{s['p99_token_latency_s']:.4f}",
            f"{s['goodput_rps']:.1f}", f"{s['tokens_per_s']:.0f}",
        ])
    table = format_table(
        ["engine", "GPUs", "makespan (s)", "speedup", "p50 TTFT",
         "p99 TTFT", "p99 tok-lat", "goodput", "tok/s"],
        rows,
        title=f"Serving {REQUESTS} Zipfian/bursty requests "
        f"(max_batch={CONFIG.max_batch}, token-identical arms)",
    )
    widest = continuous[max(WORLDS)]
    cache = widest.cache_stats
    footer = (
        f"\nWidest run: {cache['hits']} cache hits / {cache['misses']} "
        f"misses / {cache['evictions']} evictions, "
        f"{widest.recomputes} recomputes, "
        f"{widest.wire_bytes_per_rank} wire B/rank over "
        f"{widest.decode_steps} decode steps."
    )
    report("serving", table + footer)

    # ------------------------------------------------------------------
    # metrics -> BENCH_serving.json
    # ------------------------------------------------------------------
    widest_summary = report_to_registry(widest, bench_metrics)
    gauge = bench_metrics.gauge(
        "repro_bench_serve_makespan_seconds",
        "Serving makespan by arm", labelnames=("arm",),
    )
    gauge.set(naive.makespan_s, arm="naive")
    for world, rep in continuous.items():
        gauge.set(rep.makespan_s, arm=f"continuous-{world}")
    bench_metrics.gauge(
        "repro_bench_serve_speedup",
        "Naive / continuous makespan at the widest world",
    ).set(naive.makespan_s / widest.makespan_s)
    assert widest_summary["total_tokens"] == naive.total_tokens
