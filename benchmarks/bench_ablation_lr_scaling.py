"""Ablation: the ln(nodes) learning-rate scaling rule (Section IV-B).

When the global batch grows with G, each epoch takes proportionally
fewer optimizer steps; without compensation, convergence-per-epoch
suffers.  The paper multiplies the base rate by ``ln(nodes)``.  This
bench trains the same model at 16 simulated GPUs under three rules —
no scaling, the paper's ln(nodes), and linear scaling (the vision-world
Goyal et al. rule) — plus the small-G reference, comparing perplexity
after a fixed number of epochs.
"""

import math

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

VOCAB = 300
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 24_000, seed=37)
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=10, hidden_dim=16, projection_dim=10,
    num_samples=20,
)
BASE_LR = 0.25
WORLD = 16
GPUS_PER_NODE = 2  # 8 nodes at 16 GPUs, so ln(nodes) = 2.08
EPOCHS = 2


def run(effective_lr: float, world: int = WORLD) -> float:
    cfg = TrainConfig(
        world_size=world,
        batch=BatchSpec(2, 8),
        base_lr=effective_lr,
        gpus_per_node=world,  # one "node": disables the built-in rule so
        # the bench controls the rate explicitly
    )
    trainer = DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )
    for _ in range(EPOCHS):
        trainer.train_epoch(evals_per_epoch=1)
    return perplexity(trainer.evaluate())


def test_ablation_lr_scaling(benchmark, report):
    nodes = WORLD // GPUS_PER_NODE
    arms = {
        "reference (2 GPUs, base lr)": (BASE_LR, 2),
        "16 GPUs, no scaling": (BASE_LR, WORLD),
        "16 GPUs, ln(nodes) (paper)": (BASE_LR * math.log(nodes), WORLD),
        "16 GPUs, linear (Goyal)": (BASE_LR * nodes, WORLD),
    }
    results = benchmark.pedantic(
        lambda: {k: run(lr, w) for k, (lr, w) in arms.items()},
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, round(arms[name][0], 3), round(ppl, 2)]
        for name, ppl in results.items()
    ]
    table = format_table(
        ["arm", "effective lr", f"val ppl after {EPOCHS} epochs"],
        rows,
        title="Learning-rate scaling rules at large batch "
        f"(vocab {VOCAB}; paper: base x ln(nodes))",
    )
    report("ablation_lr_scaling", table)

    no_scale = results["16 GPUs, no scaling"]
    ln_scale = results["16 GPUs, ln(nodes) (paper)"]
    linear = results["16 GPUs, linear (Goyal)"]
    # The paper's rule beats not scaling at all...
    assert ln_scale < no_scale
    # ...and avoids the instability the aggressive linear rule risks on
    # RNN LMs (it must be at least as good here).
    assert ln_scale <= linear * 1.05
