"""Ablation: FP16 compression with and without compression-scaling.

Section III-C / V-A: naive FP16 communication loses small-gradient mass
to the half-precision floor; multiplying by F before the down-cast
(compression-scaling) recovers FP32-level accuracy — the paper reports
word-LM epoch-1 perplexity 84.12 (compressed) vs 84.68 (uncompressed).

Real training at miniature scale.  Miniature gradients are ~1000x larger
relative to FP16's range than paper-scale ones, so to reproduce the
underflow phenomenon the "naive" arm uses a deflating scale (the same
operating point a naive cast hits at paper scale); the properly-scaled
arm must match FP32 closely.
"""

import numpy as np

from repro.core import Fp16Codec
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

VOCAB = 200
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=10, hidden_dim=14, projection_dim=10,
    num_samples=16,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 30_000, seed=8)
STEPS = 120

ARMS = [
    ("fp32 (no compression)", None, None),
    ("fp16 + scaling F=512", Fp16Codec(scale=512.0), None),
    ("fp16 + scaling F=1024", Fp16Codec(scale=1024.0), None),
    # Deflating scale emulates the naive cast's paper-scale underflow.
    ("fp16 naive (underflow regime)", Fp16Codec(scale=1e-7), None),
    # The full wire stack: FP16 value traffic plus the lossless
    # delta-bitpacked index gather (PR 4) — compresses the Θ(G·K)
    # index bytes fp16 alone cannot touch, with zero numeric cost
    # beyond fp16's.
    ("fp16+delta wire policy", None, "fp16+delta"),
]


def run_all():
    results = {}
    for label, codec, wire_spec in ARMS:
        cfg = TrainConfig(
            world_size=4, batch=BatchSpec(2, 8), base_lr=0.3, codec=codec,
            wire_codec=wire_spec,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(MODEL, rng, dtype=np.float32),
            lambda params, lr: SGD(params, lr),
            CORPUS.train,
            CORPUS.valid,
            cfg,
        )
        for _ in range(STEPS):
            trainer.train_step()
        results[label] = (
            perplexity(trainer.evaluate()),
            trainer.comm.ledger.total_wire_bytes_per_rank,
        )
    return results


def test_ablation_compression_scaling(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ref_ppl, ref_bytes = results["fp32 (no compression)"]
    rows = [
        [label, round(ppl, 2), f"{ppl / ref_ppl - 1:+.1%}",
         f"{nbytes / ref_bytes:.2f}x"]
        for label, (ppl, nbytes) in results.items()
    ]
    table = format_table(
        ["arm", "val ppl", "vs fp32", "wire bytes"],
        rows,
        title="Compression-scaling ablation (word LM, 4 GPUs, real "
        "training; paper: 84.12 compressed vs 84.68 fp32)",
    )
    report("ablation_compression_scaling", table)

    scaled_ppl = results["fp16 + scaling F=512"][0]
    naive_ppl = results["fp16 naive (underflow regime)"][0]
    # Properly-scaled fp16 matches fp32 (the paper's claim)...
    assert abs(scaled_ppl / ref_ppl - 1) < 0.03
    # ...while the underflow regime visibly degrades learning.
    assert naive_ppl > ref_ppl * 1.15
    # And compression halves the value-traffic-dominated wire volume.
    # Value traffic halves (index traffic is unchanged int64).
    assert results["fp16 + scaling F=512"][1] < ref_bytes * 0.6
    # The full wire policy also compresses the index gather, so it must
    # move fewer bytes than fp16-on-values alone while matching fp32
    # accuracy as closely as scaled fp16 does.
    full_ppl, full_bytes = results["fp16+delta wire policy"]
    assert full_bytes < results["fp16 + scaling F=512"][1]
    assert abs(full_ppl / ref_ppl - 1) < 0.03
