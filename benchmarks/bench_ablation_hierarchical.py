"""Ablation: flat ring vs hierarchical (two-level) allreduce.

The paper's implementation uses flat CUDA-aware-MPI rings (Table II);
NCCL-style hierarchical collectives exploit the PCIe/Infiniband tier gap
instead.  This bench quantifies, on the paper's exact fabric, how much
of the dense-gradient allreduce time (the char LM's 852 MB per step)
hierarchy would recover — and verifies the small-message regime where it
loses.
"""

import numpy as np

from repro.cluster import Communicator, ring_allreduce_time
from repro.cluster.hierarchical import (
    hierarchical_allreduce,
    hierarchical_allreduce_time,
)
from repro.cluster.interconnect import PAPER_CLUSTER_FABRIC
from repro.report import format_table

CHAR_LM_GRAD_BYTES = 213_000_000 * 4  # the char LM's dense gradient


def model_sweep():
    rows = []
    for world in (8, 16, 32, 64, 192):
        link = PAPER_CLUSTER_FABRIC.ring_link(world)
        flat = ring_allreduce_time(world, CHAR_LM_GRAD_BYTES, link)
        hier = hierarchical_allreduce_time(
            world, CHAR_LM_GRAD_BYTES, PAPER_CLUSTER_FABRIC
        )
        rows.append(
            [world, f"{flat * 1e3:.0f}", f"{hier * 1e3:.0f}",
             f"{flat / hier:.2f}x" if world > 8 else "1.00x (single node)"]
        )
    return rows


def test_ablation_hierarchical(benchmark, report):
    rows = benchmark.pedantic(model_sweep, rounds=1, iterations=1)
    table = format_table(
        ["GPUs", "flat ring (ms)", "hierarchical (ms)", "speedup"],
        rows,
        title="Dense 852 MB gradient allreduce on the paper's fabric "
        "(PCIe 32 GB/s intra-node, FDR IB 15 GB/s inter-node)",
    )

    # Functional spot-check at 16 ranks.
    world = 16
    rng = np.random.default_rng(0)
    arrays = [rng.standard_normal(4096).astype(np.float32) for _ in range(world)]
    c = Communicator(world, track_memory=False)
    out = hierarchical_allreduce(c, arrays)
    # Different reduction order than a flat sum: fp32-roundoff tolerance.
    np.testing.assert_allclose(out[0], sum(arrays), rtol=1e-3, atol=1e-5)

    small = hierarchical_allreduce_time(64, 1024, PAPER_CLUSTER_FABRIC)
    small_flat = ring_allreduce_time(
        64, 1024, PAPER_CLUSTER_FABRIC.ring_link(64)
    )
    footer = (
        f"\nSmall-message check (1 KB at 64 GPUs): flat "
        f"{small_flat * 1e6:.0f} us vs hierarchical {small * 1e6:.0f} us — "
        "extra phases lose when latency dominates."
    )
    report("ablation_hierarchical", table + footer)

    # Hierarchy must win for the large multi-node messages.
    for row in rows:
        if row[0] in (16, 32, 64, 192):
            assert float(row[1]) > float(row[2])
