"""Micro-benchmarks: real training-step throughput of this implementation.

pytest-benchmark timings of the actual SPMD step (forward + backward +
exchange + optimizer) for both model families, plus per-layer forward
costs — the library's own performance regression net.
"""

import numpy as np

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.nn import LSTM, RHN
from repro.optim import SGD, Adam
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 500
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 60_000, seed=9)


def word_trainer():
    cfg = TrainConfig(world_size=4, batch=BatchSpec(4, 20), base_lr=0.2)
    model_cfg = WordLMConfig(
        vocab_size=VOCAB, embedding_dim=32, hidden_dim=64, projection_dim=32,
        num_samples=64,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(model_cfg, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


def char_trainer():
    cfg = TrainConfig(world_size=4, batch=BatchSpec(4, 20), base_lr=1e-3)
    model_cfg = CharLMConfig(
        vocab_size=VOCAB, embedding_dim=16, hidden_dim=32, depth=3, dropout=0.1
    )
    return DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            model_cfg, rng, dropout_rng=np.random.default_rng(rank)
        ),
        lambda params, lr: Adam(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


def test_bench_word_lm_train_step(benchmark):
    trainer = word_trainer()
    trainer.train_step()  # warm up caches
    benchmark(trainer.train_step)
    tokens_per_step = trainer.config.batch.global_batch_tokens(4)
    benchmark.extra_info["tokens_per_step"] = tokens_per_step


def test_bench_char_lm_train_step(benchmark):
    trainer = char_trainer()
    trainer.train_step()
    benchmark(trainer.train_step)


def test_bench_lstm_forward(benchmark):
    lstm = LSTM(64, 128, np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((16, 50, 64))
    benchmark(lambda: lstm.forward(x))


def test_bench_rhn_forward(benchmark):
    rhn = RHN(64, 128, 5, np.random.default_rng(0))
    x = np.random.default_rng(1).standard_normal((16, 20, 64))
    benchmark(lambda: rhn.forward(x))


def test_bench_word_lm_evaluate(benchmark):
    trainer = word_trainer()
    benchmark(trainer.evaluate)
