"""Ablation: per-tensor vs bucketed dense-gradient allreduce.

Section V-B attributes the char LM's weak compression gains to per-tensor
overhead across its >20 tensors.  Bucketing fuses them: latency (and
per-bucket casts) are paid once per bucket.  This bench measures the
modeled step time of the char LM's dense gradients exchanged per-tensor
vs bucketed at several bucket sizes, on the paper's 64-GPU fabric.
"""

import numpy as np

from repro.cluster import Communicator
from repro.core.bucketing import bucketed_allreduce, plan_buckets
from repro.core.compression import Fp16Codec
from repro.report import format_table

#: A char-LM-like tensor inventory: 10 RHN micro-layers x (recurrent
#: weight + bias) plus embedding/softmax — 24 tensors, ~213M params total.
TENSOR_SHAPES = (
    [(1792, 3584)] * 10          # recurrent weights
    + [(3584,)] * 10             # biases
    + [(128, 3584), (98, 128), (98, 1792), (98,)]
)
WORLD = 8


def make_tensors(seed=0):
    rng = np.random.default_rng(seed)
    return [
        [rng.standard_normal(s).astype(np.float32) * 1e-3 for s in TENSOR_SHAPES]
        for _ in range(WORLD)
    ]


def sweep():
    tensors = make_tensors()
    rows = []

    # Per-tensor baseline.
    c = Communicator(WORLD, track_memory=False)
    for i in range(len(TENSOR_SHAPES)):
        c.allreduce([tensors[r][i] for r in range(WORLD)], tag=f"t{i}")
    rows.append(["per-tensor", len(c.ledger.events), f"{c.ledger.total_time_s * 1e3:.1f}"])

    for bucket_mb in (1, 4, 16, 64, 1024):
        c = Communicator(WORLD, track_memory=False)
        bucketed_allreduce(c, tensors, bucket_bytes=bucket_mb * 1024 * 1024)
        rows.append(
            [f"bucketed {bucket_mb} MB", len(c.ledger.events),
             f"{c.ledger.total_time_s * 1e3:.1f}"]
        )
    return rows, tensors


def test_ablation_bucketing(benchmark, report):
    rows, tensors = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["strategy", "collectives", "modeled time (ms)"],
        rows,
        title=f"Char-LM dense gradients ({len(TENSOR_SHAPES)} tensors) "
        f"allreduced across {WORLD} GPUs",
    )

    # Correctness: bucketed+fp16 equals per-tensor within codec tolerance.
    c = Communicator(WORLD, track_memory=False)
    out = bucketed_allreduce(
        c, tensors, bucket_bytes=16 * 1024 * 1024, codec=Fp16Codec(1024.0)
    )
    expected = sum(t[0] for t in tensors)
    np.testing.assert_allclose(out[0][0], expected, atol=2e-3)

    report("ablation_bucketing", table)
    per_tensor_ms = float(rows[0][2])
    best_ms = min(float(r[2]) for r in rows[1:])
    # Fusing must reduce both collective count and modeled time.
    assert rows[1][1] < rows[0][1]
    assert best_ms <= per_tensor_ms
