"""Figure 1: types (unique words) vs tokens across the four corpora.

Regenerates the log-log curves and the pooled power-law fit.  The paper
reports ``U = 7.02 N^0.64`` with R² = 1.00 and a ~100x token/type gap at
N = 40M; at our synthetic scale (4M tokens) the fitted exponent lands in
the same 0.6-0.7 band and the gap at the largest N is reported alongside.
"""

import numpy as np

from repro.data import FIGURE1_PRESETS, fit_heaps_law, make_corpus, type_token_curve
from repro.report import format_series, format_table

N_TOKENS = 4_000_000


def generate_curves():
    curves = {}
    for preset in FIGURE1_PRESETS:
        corpus = make_corpus(preset, N_TOKENS, seed=42)
        ns, us = type_token_curve(corpus.tokens, num_points=14)
        curves[preset.name] = (ns, us)
    return curves


def test_fig1_types_vs_tokens(benchmark, report):
    curves = benchmark.pedantic(generate_curves, rounds=1, iterations=1)

    lines = ["Figure 1 — Types (U) vs Tokens (N), log-spaced checkpoints", ""]
    rows = []
    pooled_n, pooled_u = [], []
    for name, (ns, us) in curves.items():
        lines.append(format_series(name, ns.tolist(), us.tolist()))
        fit = fit_heaps_law(ns, us)
        gap = ns[-1] / us[-1]
        rows.append([name, round(fit.exponent, 3), round(fit.coefficient, 2),
                     round(fit.r_squared, 4), round(gap, 1)])
        pooled_n.extend(ns.tolist())
        pooled_u.extend(us.tolist())
        assert 0.5 < fit.exponent < 0.8
        assert fit.r_squared > 0.99

    pooled = fit_heaps_law(np.array(pooled_n), np.array(pooled_u))
    lines.append("")
    lines.append(
        format_table(
            ["dataset", "exponent", "coeff", "R^2", "N/U gap @ max N"],
            rows,
            title="Per-dataset Heaps fits (paper, pooled: U = 7.02 N^0.64, R^2 = 1.00)",
        )
    )
    lines.append(
        f"\nPooled fit: U = {pooled.coefficient:.2f} N^{pooled.exponent:.3f} "
        f"(R^2 = {pooled.r_squared:.4f})"
    )
    report("fig1_types_vs_tokens", "\n".join(lines))
    assert 0.55 < pooled.exponent < 0.75
