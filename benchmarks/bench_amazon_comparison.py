"""Section V-D: comparison with prior large-scale LM work (Puri et al.).

The paper trains its RHN char LM on Amazon Reviews with 64 Titan X GPUs
and compares against 128 V100s: BPC 1.208 vs 1.218 after one epoch,
taking 14x longer on 41x less powerful hardware — a normalized gain of
~2.9x (3.3x at 3 epochs).

This bench reproduces (a) the *normalized-compute* arithmetic from the
platform specs, (b) the model's epoch-hour estimate for the Amazon-scale
char workload, and (c) a real miniature BPC measurement on the synthetic
Amazon-like character stream.
"""

import numpy as np

from repro.data import AMAZON_REVIEWS, BatchSpec, make_corpus
from repro.optim import Adam
from repro.perf import (
    ALL_TECHNIQUES,
    CHAR_LM_1B,
    PAPER_PLATFORM,
    PRIOR_WORK_PLATFORM,
    PerfModel,
)
from repro.report import format_table
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    bits_per_char,
)

PAPER_BPC_OURS = 1.208
PAPER_BPC_PRIOR = 1.218
PAPER_TIME_RATIO = 14.0


def compute_normalized_gain():
    ours = PAPER_PLATFORM.aggregate_peak_flops(64)
    prior = PRIOR_WORK_PLATFORM.aggregate_peak_flops(128)
    compute_ratio = prior / ours
    gain = compute_ratio / PAPER_TIME_RATIO
    # Model estimate for one epoch of the 38.76B-char Amazon corpus.
    workload = CHAR_LM_1B.scaled(tokens_per_epoch=38.76e9)
    hours = PerfModel(workload).epoch_hours(64, ALL_TECHNIQUES)
    return compute_ratio, gain, hours


def train_mini_bpc():
    vocab = 98
    cfg_model = CharLMConfig(
        vocab_size=vocab, embedding_dim=8, hidden_dim=14, depth=2, dropout=0.0
    )
    corpus = make_corpus(AMAZON_REVIEWS.scaled(vocab), 40_000, seed=77)
    cfg = TrainConfig(world_size=4, batch=BatchSpec(2, 10), base_lr=3e-3)
    trainer = DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            cfg_model, rng, dropout_rng=np.random.default_rng(rank)
        ),
        lambda params, lr: Adam(params, lr),
        corpus.train,
        corpus.valid,
        cfg,
    )
    initial = bits_per_char(trainer.evaluate())
    for _ in range(100):
        trainer.train_step()
    final = bits_per_char(trainer.evaluate())
    return initial, final


def test_amazon_comparison(benchmark, report):
    compute_ratio, gain, hours = benchmark.pedantic(
        compute_normalized_gain, rounds=1, iterations=1
    )
    initial_bpc, final_bpc = train_mini_bpc()
    table = format_table(
        ["quantity", "paper", "measured/model"],
        [
            ["peak compute ratio (V100x128 / TitanXx64)", "41x", f"{compute_ratio:.0f}x"],
            ["time ratio (ours / prior)", "14x", "(paper constant)"],
            ["normalized gain", "2.9x", f"{gain:.1f}x"],
            ["model epoch hours (Amazon, 64 GPUs)", "17.6", f"{hours:.1f}"],
            ["BPC after 1 epoch (paper scale)", PAPER_BPC_OURS, "-"],
            ["prior work BPC", PAPER_BPC_PRIOR, "-"],
            ["miniature BPC before training", "-", f"{initial_bpc:.3f}"],
            ["miniature BPC after training", "-", f"{final_bpc:.3f}"],
        ],
        title="Section V-D — comparison with Puri et al. on Amazon Reviews",
    )
    note = (
        "\nNote: the model's epoch estimate extrapolates the Table-IV "
        "calibration to Amazon's 38.76B chars; the paper's own 17.6h "
        "implies a larger effective batch for that run."
    )
    report("amazon_comparison", table + note)

    assert compute_ratio == 41.0 or abs(compute_ratio - 41) < 1
    assert gain == np.float64(compute_ratio / 14)
    assert 2.5 < gain < 3.5
    # The miniature model genuinely compresses text.
    assert final_bpc < initial_bpc
