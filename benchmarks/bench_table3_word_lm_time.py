"""Table III: word-LM per-epoch hours and parallel efficiency.

Runs the calibrated performance model over 8-64 GPUs with and without
the paper's techniques, reproducing the hours, the efficiency columns,
the OOM cells, and the peak-memory trajectory (3.9/7.1/10.3 GB baseline
vs ~1.2 GB flat).
"""

from repro.perf import ALL_TECHNIQUES, BASELINE, WORD_LM_1B, PerfModel
from repro.report import format_table

PAPER = {
    # GPUs: (without_hours, without_eff, with_hours, with_eff)
    8: (35.1, 1.00, 14.6, 1.00),
    16: (41.1, 0.43, 8.1, 0.90),
    24: (40.4, 0.29, 6.4, 0.76),
    32: (None, None, 5.4, 0.67),
    64: (None, None, 4.5, 0.40),
}


def compute():
    model = PerfModel(WORD_LM_1B)
    rows = []
    for g, (p_wo, p_wo_eff, p_w, p_w_eff) in PAPER.items():
        oom = model.is_oom(g, BASELINE)
        wo = "OOM *" if oom else f"{model.epoch_hours(g, BASELINE):.1f}"
        wo_eff = (
            "-" if oom else f"{model.parallel_efficiency(g, BASELINE):.0%}"
        )
        w = f"{model.epoch_hours(g, ALL_TECHNIQUES):.1f}"
        w_eff = f"{model.parallel_efficiency(g, ALL_TECHNIQUES):.0%}"
        mem_wo = "OOM" if oom else f"{model.peak_memory_bytes(g, BASELINE) / 1e9:.1f}"
        mem_w = f"{model.peak_memory_bytes(g, ALL_TECHNIQUES) / 1e9:.2f}"
        rows.append(
            [
                g,
                "OOM *" if p_wo is None else p_wo,
                wo,
                wo_eff,
                p_w,
                w,
                w_eff,
                mem_wo,
                mem_w,
            ]
        )
    return model, rows


def test_table3_word_lm_time(benchmark, report, save_structured):
    model, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    table = format_table(
        [
            "GPUs",
            "paper w/o (h)",
            "model w/o (h)",
            "model w/o eff",
            "paper w/ (h)",
            "model w/ (h)",
            "model w/ eff",
            "mem w/o (GB)",
            "mem w/ (GB)",
        ],
        rows,
        title="Table III — word LM per-epoch time on 1-Billion-Word "
        "(* = out of GPU memory)",
    )
    mem_red = model.peak_memory_bytes(24, BASELINE) / model.peak_memory_bytes(
        24, ALL_TECHNIQUES
    )
    speed = model.epoch_hours(8, BASELINE) / model.epoch_hours(64, ALL_TECHNIQUES)
    footer = (
        f"\nMemory reduction at 24 GPUs: {mem_red:.1f}x (paper: 8.6x)"
        f"\nSpeedup 8-GPU baseline -> 64-GPU w/ techniques: {speed:.1f}x "
        f"(paper: 7.7x)"
    )
    report("table3_word_lm_time", table + footer)
    save_structured(
        "table3_word_lm_time",
        ["gpus", "paper_without_h", "model_without_h", "model_without_eff",
         "paper_with_h", "model_with_h", "model_with_eff",
         "mem_without_gb", "mem_with_gb"],
        rows,
        meta={"table": "III", "workload": "word-lm-1b"},
    )
    assert model.is_oom(32, BASELINE) and model.is_oom(64, BASELINE)
    assert 6 < mem_red < 13
