"""Figure 7: sampled-softmax seeding strategies vs accuracy.

Real training with the word LM at 8 simulated GPUs, one run per
strategy: per-rank seeds (the accuracy reference "G"), Zipf's-freq,
log2 G, loge G, log10 G, and a single shared seed.  The paper's finding:
Zipf's-freq matches G-seed accuracy while using only ~G^0.64 distinct
seeds — the pareto-optimal point — and accuracy degrades as the seed
count shrinks toward one.

Alongside accuracy, the bench reports each strategy's measured
output-embedding exchange volume, making the accuracy/communication
trade-off explicit.
"""

from repro.core.seeding import SeedStrategy, num_seed_groups
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

WORLD = 8
VOCAB = 300
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=10, hidden_dim=14, projection_dim=10,
    num_samples=24,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 40_000, seed=13)
STRATEGIES = (
    SeedStrategy.PER_RANK,
    SeedStrategy.ZIPF_FREQ,
    SeedStrategy.LOG2,
    SeedStrategy.LOGE,
    SeedStrategy.LOG10,
    SeedStrategy.ALL_SAME,
)
STEPS = 120


def run_all():
    results = {}
    for strategy in STRATEGIES:
        cfg = TrainConfig(
            world_size=WORLD,
            batch=BatchSpec(2, 8),
            base_lr=0.3,
            seed_strategy=strategy,
            data_seed=7,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(MODEL, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train,
            CORPUS.valid,
            cfg,
        )
        for _ in range(STEPS):
            trainer.train_step()
        out_bytes = sum(
            b
            for scope, b in trainer.comm.ledger.bytes_by_scope().items()
            if "loss_layer" in scope
        )
        results[strategy] = (perplexity(trainer.evaluate()), out_bytes)
    return results


def test_fig7_seeding(benchmark, report):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ref_ppl, ref_bytes = results[SeedStrategy.PER_RANK]
    rows = []
    for strategy in STRATEGIES:
        ppl, nbytes = results[strategy]
        rows.append(
            [
                strategy.value,
                num_seed_groups(strategy, WORLD),
                round(ppl, 2),
                f"{ppl / ref_ppl - 1:+.1%}",
                f"{nbytes / ref_bytes:.2f}x",
            ]
        )
    table = format_table(
        ["strategy", "# seeds", "val ppl", "vs G seeds", "output-emb bytes"],
        rows,
        title=(
            "Figure 7 — seeding strategies (8 GPUs; paper: Zipf's-freq "
            "matches G seeds and is pareto optimal)"
        ),
    )
    report("fig7_seeding", table)

    zipf_ppl, zipf_bytes = results[SeedStrategy.ZIPF_FREQ]
    # Zipf-freq matches the accuracy reference...
    assert zipf_ppl < ref_ppl * 1.10
    # ...while moving fewer output-embedding bytes.
    assert zipf_bytes < ref_bytes
    # Fewer seeds, monotonically less traffic.
    same_bytes = results[SeedStrategy.ALL_SAME][1]
    assert same_bytes < zipf_bytes
