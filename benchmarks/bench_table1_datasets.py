"""Table I: dataset statistics.

Prints the paper's full-scale metadata next to measured statistics of the
synthetic stand-ins (vocabulary regime, Zipf exponent of the generated
stream), documenting what each substitute preserves.
"""

import numpy as np

from repro.data import PRESETS, fit_zipf_exponent, make_corpus
from repro.report import format_table


def measure():
    rows = []
    for name, preset in PRESETS.items():
        scaled = preset.scaled(min(preset.vocab_size, 50_000))
        corpus = make_corpus(scaled, 500_000, seed=7)
        counts = np.bincount(corpus.tokens)
        zipf = fit_zipf_exponent(counts, min_count=3)
        rows.append(
            [
                name,
                preset.language,
                preset.unit,
                "-" if preset.full_chars is None else f"{preset.full_chars / 1e9:.2f}B",
                "-" if preset.full_words is None else f"{preset.full_words / 1e9:.2f}B",
                "-" if preset.full_bytes is None else f"{preset.full_bytes / 1024**3:.2f}GB",
                preset.vocab_size,
                round(zipf, 2),
            ]
        )
    return rows


def test_table1_datasets(benchmark, report):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        [
            "dataset",
            "language",
            "unit",
            "# chars (paper)",
            "# words (paper)",
            "bytes (paper)",
            "synthetic |V|",
            "measured zipf s",
        ],
        rows,
        title="Table I — datasets (paper metadata + synthetic stand-in stats)",
    )
    report("table1_datasets", table)
    # Every measured stream is genuinely Zipfian.
    for row in rows:
        assert 0.9 < row[-1] < 2.2
