"""Shared benchmark fixtures: result output directory and report helper."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a report block and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture
def save_structured(results_dir):
    """Persist a table as CSV + JSON next to the text reports."""

    def _save(name: str, headers, rows, meta=None) -> None:
        from repro.report import write_results

        write_results(results_dir, name, headers, rows, meta=meta)

    return _save
