"""Shared benchmark fixtures: result output directory and report helper."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """Print a report block and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report


@pytest.fixture
def bench_metrics(results_dir, request):
    """A telemetry registry persisted as ``BENCH_<name>.json`` at teardown.

    Benchmarks publish their headline figures (gates, measured factors,
    calibrated throughputs) as gauges/counters; whatever ends up in the
    registry is exported with :func:`repro.telemetry.to_json` so result
    files share the exact-value format of ``train --telemetry-dir``.
    """
    import json

    from repro.telemetry import MetricsRegistry, to_json

    registry = MetricsRegistry()
    yield registry
    if not len(registry):
        return
    name = request.node.name
    if name.startswith("test_"):
        name = name[len("test_"):]
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(to_json(registry), indent=2) + "\n")


@pytest.fixture
def save_structured(results_dir):
    """Persist a table as CSV + JSON next to the text reports."""

    def _save(name: str, headers, rows, meta=None) -> None:
        from repro.report import write_results

        write_results(results_dir, name, headers, rows, meta=meta)

    return _save
