"""Figure 5: word-LM validation perplexity vs epochs at 16/32/64 GPUs.

Real training at miniature scale (the simulated GPU counts 4/8/16 stand
in for the paper's 16/32/64; all other mechanics — LR scaling by
ln(nodes), per-rank sharding, unique exchange — are the paper's).  The
shape under test: **larger GPU counts start with worse perplexity at
epoch 1 but become indistinguishable with more epochs** (paper: 84.3 /
87.9 / 95.3 at epoch 1 converging to 73.5 / 72.1 / 72.4 at epoch 2).
"""

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.report import format_series, format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 500
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=10, hidden_dim=16, projection_dim=10,
    num_samples=24,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 16_000, seed=21)
WORLDS = (4, 8, 16)  # stand-ins for the paper's 16/32/64
EPOCHS = 2


def train_curves():
    curves = {}
    for world in WORLDS:
        cfg = TrainConfig(
            world_size=world,
            batch=BatchSpec(2, 8),
            base_lr=0.25,
            gpus_per_node=2,  # keeps the ln(nodes) LR rule active
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(MODEL, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train,
            CORPUS.valid,
            cfg,
        )
        points = []
        # Full epochs: larger G takes proportionally fewer optimizer
        # steps per epoch — the mechanism behind the paper's epoch-1 gap.
        for _ in range(EPOCHS):
            stats = trainer.train_epoch(evals_per_epoch=2)
            points.extend(
                (p.epoch, p.perplexity) for p in stats.eval_points
            )
        curves[world] = points
    return curves


def test_fig5_word_lm_accuracy(benchmark, report):
    curves = benchmark.pedantic(train_curves, rounds=1, iterations=1)
    lines = [
        "Figure 5 — word LM validation perplexity vs epochs "
        "(simulated GPU counts stand in for 16/32/64)",
        "",
    ]
    for world, points in curves.items():
        xs = [round(e, 2) for e, _ in points]
        ys = [round(p, 2) for _, p in points]
        lines.append(format_series(f"{world} gpu", xs, ys))

    first = {w: pts[0][1] for w, pts in curves.items()}
    final = {w: pts[-1][1] for w, pts in curves.items()}
    lines.append("")
    lines.append(
        format_table(
            ["GPUs", "early ppl", "final ppl"],
            [[w, round(first[w], 2), round(final[w], 2)] for w in WORLDS],
            title="Early vs final perplexity (paper: early gap closes)",
        )
    )
    report("fig5_word_lm_accuracy", "\n".join(lines))

    # Shape assertions (paper: 95.3 > 87.9 > 84.3 at epoch 1, converging
    # to 72-73 by epoch 2): larger G starts worse, all learn, and final
    # perplexities converge to a band tighter than the early spread.
    for w in WORLDS:
        assert final[w] < first[w]
    assert first[WORLDS[-1]] > first[WORLDS[0]]
    spread_first = max(first.values()) / min(first.values())
    spread_final = max(final.values()) / min(final.values())
    assert spread_final < spread_first
    assert spread_final < 1.3
