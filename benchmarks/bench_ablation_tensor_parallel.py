"""Ablation: uniqueness exchange vs vocab-sharded tensor parallelism.

The paper's uniqueness technique keeps the output embedding replicated
and dedupes its gradient exchange; Megatron-style tensor parallelism
shards the vocabulary over ``t`` model ranks instead, paying a logit
all-reduce per step while cutting the data-axis gradient exchange to
per-shard row ranges across ``d = G/t`` replicas.  This bench sweeps
the world size at a fixed global batch and measures actual per-rank
wire bytes for both:

* **flat unique** — ``G`` data-parallel ranks running the paper's
  index-allgather + value-allreduce (:class:`UniqueExchange`);
* **mesh sharded** — a ``(1, t, G/t)`` hybrid mesh running
  :func:`sparse_mesh_exchange` (vocab split into ``t`` ranges, each
  range exchanged over its data subgroup) plus the tensor-axis logit
  all-reduce of the vocab-parallel sampled softmax.

The flat exchange's allgather grows with the *world* (every rank
contributes its token indices to everyone), while the mesh exchange
gathers per-range uniques over the ``t``-times-smaller data axis — so
tensor parallelism must win on wire volume at scale, which is the gate.
"""

import os

import numpy as np

from repro.cluster import Communicator, MeshCommunicator, hybrid_mesh
from repro.core import UniqueExchange
from repro.core.mesh_exchange import sparse_mesh_exchange
from repro.nn import SparseGrad
from repro.report import format_table

VOCAB, DIM = 8192, 64
TOKENS_PER_RANK = 128          # K: sparse rows contributed per GPU
SAMPLES = 64                   # sampled-softmax candidates per step
TENSOR = 8                     # t: vocab shards on the mesh arm
WORLDS = (32, 128) if os.environ.get("REPRO_BENCH_FAST") else (32, 128, 512)


def rank_grads(world, seed=0):
    rng = np.random.default_rng(seed)
    return [
        SparseGrad(
            indices=rng.integers(0, VOCAB, TOKENS_PER_RANK),
            values=rng.standard_normal(
                (TOKENS_PER_RANK, DIM)
            ).astype(np.float32),
        )
        for _ in range(world)
    ]


def flat_wire_bytes(world, grads):
    c = Communicator(world, track_memory=False)
    UniqueExchange().exchange(c, grads)
    return c.ledger.total_wire_bytes_per_rank


def mesh_wire_bytes(world, grads):
    mc = MeshCommunicator(
        Communicator(world, track_memory=False),
        hybrid_mesh(f"pipe=1,tensor={TENSOR},data=", world),
    )
    d = world // TENSOR
    # Same global token multiset: each data replica carries the rows of
    # the t model ranks that form it in the flat arm.
    replica_grads = [
        SparseGrad(
            indices=np.concatenate(
                [grads[k * TENSOR + j].indices for j in range(TENSOR)]
            ),
            values=np.concatenate(
                [grads[k * TENSOR + j].values for j in range(TENSOR)]
            ),
        )
        for k in range(d)
    ]
    sparse_mesh_exchange(mc, replica_grads, VOCAB, tag="embedding")
    # The price of vocab sharding: every step all-reduces the sampled
    # logits over the tensor axis (batch of t*K positions, 1+S columns).
    logits = [
        np.zeros((TENSOR * TOKENS_PER_RANK, 1 + SAMPLES), dtype=np.float32)
        for _ in range(world)
    ]
    mc.allreduce("tensor", logits, tag="vocab_softmax.logits")
    return mc.comm.ledger.total_wire_bytes_per_rank


def sweep():
    rows = []
    for world in WORLDS:
        grads = rank_grads(world, seed=world)
        flat_b = flat_wire_bytes(world, grads)
        mesh_b = mesh_wire_bytes(world, grads)
        rows.append([world, flat_b, mesh_b, flat_b / mesh_b])
    return rows


def test_ablation_tensor_parallel(benchmark, report, bench_metrics):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["GPUs", "flat unique (B/rank)", f"mesh t={TENSOR} (B/rank)",
         "flat/mesh"],
        [[r[0], r[1], r[2], f"{r[3]:.2f}"] for r in rows],
        title=(
            f"Output-embedding exchange, vocab {VOCAB}, "
            f"{TOKENS_PER_RANK} rows/GPU: uniqueness vs tensor parallel"
        ),
    )
    report("ablation_tensor_parallel", table)

    ratio = bench_metrics.gauge(
        "bench_tensor_parallel_wire_ratio",
        "flat-unique / mesh-sharded per-rank wire bytes, by world size",
        labelnames=("gpus",),
    )
    for world, _, _, r in rows:
        ratio.set(r, gpus=str(world))

    # Gate 1: the flat exchange's per-rank wire volume grows with the
    # world; the sharded exchange grows strictly slower.
    flat_growth = rows[-1][1] / rows[0][1]
    mesh_growth = rows[-1][2] / rows[0][2]
    assert flat_growth > mesh_growth
    # Gate 2: at the largest swept world, vocab sharding wins outright.
    assert rows[-1][3] > 1.0
