"""Ablation: where does the uniqueness technique stop winning?

Sweeps the duplication factor (tokens per type, ``G*K / Ug``) by varying
the vocabulary against a fixed batch, measuring actual wire bytes for
both exchange strategies.  The analytic boundary — uniqueness wins iff
the batch repeats each type more than ~2x on average — is checked
against the measurements, and the natural-language operating points
(Figure 1's ~100x, the char LM's vocabulary saturation) are marked.
"""

import numpy as np

from repro.cluster import Communicator
from repro.core import (
    AllGatherExchange,
    UniqueExchange,
    crossover_duplication_factor,
    unique_wins_comm,
)
from repro.nn import SparseGrad
from repro.report import format_table

WORLD, TOKENS, DIM = 8, 512, 64


def sweep():
    rng = np.random.default_rng(0)
    rows = []
    for vocab in (16, 64, 256, 1024, 4096, 16_384, 10**6):
        grads = []
        for _ in range(WORLD):
            if vocab >= WORLD * TOKENS:
                # Effectively duplication-free: all-distinct ids.
                base = len(grads) * TOKENS
                idx = np.arange(base, base + TOKENS)
            else:
                idx = rng.integers(0, vocab, TOKENS)
            grads.append(
                SparseGrad(
                    indices=idx,
                    values=rng.standard_normal((TOKENS, DIM)).astype(np.float32),
                )
            )
        c_base = Communicator(WORLD, track_memory=False)
        c_uniq = Communicator(WORLD, track_memory=False)
        AllGatherExchange().exchange(c_base, grads)
        result = UniqueExchange().exchange(c_uniq, grads)
        ug = int(result[0].indices.size)
        dup = WORLD * TOKENS / ug
        base_b = c_base.ledger.total_wire_bytes_per_rank
        uniq_b = c_uniq.ledger.total_wire_bytes_per_rank
        predicted = unique_wins_comm(WORLD, TOKENS, DIM, ug, idx_bytes=8)
        rows.append(
            [
                vocab,
                ug,
                f"{dup:.1f}x",
                f"{base_b / uniq_b:.2f}x",
                "unique" if uniq_b < base_b else "baseline",
                "unique" if predicted else "baseline",
            ]
        )
    return rows


def test_ablation_crossover(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    boundary = crossover_duplication_factor(WORLD, TOKENS, DIM, idx_bytes=8)
    table = format_table(
        ["vocab", "Ug", "duplication G*K/Ug", "base/unique bytes",
         "measured winner", "predicted winner"],
        rows,
        title=f"Unique-exchange crossover sweep (G={WORLD}, K={TOKENS}, "
        f"D={DIM}); analytic boundary: duplication > {boundary:.2f}x",
    )
    footer = (
        "\nNatural-language batches sit far left (Figure 1: ~100x "
        "duplication); only pathological all-distinct batches cross the "
        "boundary — uniqueness is a Zipf optimization, not a free one."
    )
    report("ablation_crossover", table + footer)

    # Prediction matches measurement at every sweep point.
    for row in rows:
        assert row[4] == row[5], row
    # Both regimes are actually exercised.
    winners = {row[4] for row in rows}
    assert winners == {"unique", "baseline"}
