"""Resilience overhead: checkpoint cadence model + supervised recovery cost.

Two questions, answered on the simulated clock:

1. **Cadence**: what does the Young/Daly model charge for checkpointing
   at different intervals, and does its optimum actually minimize the
   expected overhead fraction ``C/tau + tau/2M``?  Swept over a grid of
   checkpoint costs and MTBFs representative of the paper's Hero-run
   regime (hours-long runs, minutes-long checkpoint writes).
2. **Recovery**: how much simulated time does a fault plan (transient
   link faults with exponential backoff, plus a permanent rank loss with
   elastic shrink) add to a short supervised training run, relative to
   the identical fault-free run?  The overhead decomposes into
   checkpoint writes, retry backoff, and the rewound steps' replayed
   collectives — all visible on the merged timeline.

Set ``REPRO_BENCH_FAST=1`` for the CI smoke mode (fewer steps).
"""

import os

import numpy as np

from repro.cluster import ChaosCommunicator, FaultEvent, FaultKind, FaultPlan
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.perf import (
    daly_interval,
    expected_overhead_fraction,
    optimal_checkpoint_steps,
    young_interval,
)
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    ResilientRunner,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
STEPS = 6 if FAST else 12
VOCAB = 60
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)

#: (checkpoint cost C, MTBF M) pairs in simulated seconds — from "fast
#: NVMe snapshot" to "slow parallel-FS write on flaky hardware".
REGIMES = [(30.0, 3600.0), (120.0, 3600.0), (120.0, 14400.0), (600.0, 7200.0)]


def cadence_rows():
    rows = []
    for cost, mtbf in REGIMES:
        tau_y = young_interval(cost, mtbf)
        tau_d = daly_interval(cost, mtbf)
        rows.append(
            [
                f"{cost:.0f}",
                f"{mtbf:.0f}",
                f"{tau_y:.0f}",
                f"{tau_d:.0f}",
                f"{expected_overhead_fraction(tau_y, cost, mtbf):.2%}",
                f"{optimal_checkpoint_steps(60.0, cost, mtbf)}",
            ]
        )
    return rows


def make_trainer(cfg, comm):
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg, comm=comm,
    )


def run_arm(plan, tmp, world=3):
    cfg = TrainConfig(world_size=world, batch=BatchSpec(2, 6), base_lr=0.2)
    comm = ChaosCommunicator(world, plan=plan, track_memory=False)
    runner = ResilientRunner(
        make_trainer, cfg, tmp / "ckpt.npz", comm=comm,
        checkpoint_every=max(2, STEPS // 3),
        base_backoff_s=0.05, checkpoint_cost_s=0.2,
    )
    runner.run(STEPS)
    return runner


def chaos_plan():
    return FaultPlan(
        [
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=3,
                       rank=1, retries=2),
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=9,
                       rank=0, retries=1),
            FaultEvent(FaultKind.RANK_LOSS, collective_index=2 * STEPS,
                       rank=2),
        ],
        seed=0,
    )


def test_resilience_overhead(benchmark, report, tmp_path, bench_metrics):
    cadence = format_table(
        ["C (s)", "MTBF (s)", "Young tau (s)", "Daly tau (s)",
         "overhead @ Young", "steps @ 60 s/step"],
        cadence_rows(),
        title="Young/Daly checkpoint cadence across cost/MTBF regimes",
    )

    def both_arms():
        clean_dir = tmp_path / "clean"
        chaos_dir = tmp_path / "chaos"
        clean_dir.mkdir(exist_ok=True)
        chaos_dir.mkdir(exist_ok=True)
        clean = run_arm(FaultPlan(), clean_dir)
        chaotic = run_arm(chaos_plan(), chaos_dir)
        return clean, chaotic

    clean, chaotic = benchmark.pedantic(both_arms, rounds=1, iterations=1)
    t_clean = clean.total_simulated_time()
    t_chaos = chaotic.total_simulated_time()
    retries = sum(1 for e in chaotic.events if e.kind == "retry")
    # The rank loss rebuilt the communicator (and its ledger), so the
    # backoff charges live on the merged timeline trace; dur is in us.
    backoff_s = sum(
        e["dur"] for e in chaotic.chrome_trace()
        if e["name"].startswith("retry-backoff:") and e["pid"] == 0
    ) / 1e6
    footer = (
        f"\nSupervised run, {STEPS} steps on 3 GPUs: fault-free "
        f"{t_clean:.4f}s vs chaos {t_chaos:.4f}s simulated "
        f"({t_chaos / t_clean - 1.0:+.1%}); {retries} retries charged "
        f"{backoff_s:.2f}s backoff; world ended at "
        f"{chaotic.trainer.config.world_size} after the rank loss."
    )
    report("resilience_overhead", cadence + footer)

    sim_gauge = bench_metrics.gauge(
        "repro_bench_simulated_seconds",
        "Total simulated run time by arm", labelnames=("arm",),
    )
    sim_gauge.set(t_clean, arm="clean")
    sim_gauge.set(t_chaos, arm="chaos")
    bench_metrics.gauge(
        "repro_bench_fault_overhead_fraction",
        "Chaos-arm simulated slowdown over the fault-free arm",
    ).set(t_chaos / t_clean - 1.0)
    bench_metrics.gauge(
        "repro_bench_backoff_seconds", "Rank-0 retry backoff charged"
    ).set(backoff_s)
    bench_metrics.counter(
        "repro_bench_recovery_events_total",
        "Recovery events in the chaos arm", labelnames=("kind",),
    )
    for event in chaotic.events:
        bench_metrics.get("repro_bench_recovery_events_total").inc(
            kind=event.kind
        )
    bench_metrics.gauge(
        "repro_bench_final_world_size", "World size after the rank loss"
    ).set(chaotic.trainer.config.world_size)

    # Acceptance gates.
    # Young's tau is the exact argmin of the first-order overhead.
    for cost, mtbf in REGIMES:
        tau = young_interval(cost, mtbf)
        best = expected_overhead_fraction(tau, cost, mtbf)
        for probe in np.linspace(0.3 * tau, 3.0 * tau, 61):
            assert expected_overhead_fraction(float(probe), cost, mtbf) >= (
                best - 1e-12
            )
    # Faults cost simulated time, and the loop still finishes the run.
    assert t_chaos > t_clean
    assert chaotic.trainer.global_step == STEPS
    assert chaotic.trainer.config.world_size == 2
    assert retries >= 1 and backoff_s > 0.0
