"""Ablation: sampled-softmax candidate count S.

The paper fixes S = 1024 candidates per GPU (Section IV-B) as the
compute/accuracy compromise that makes a 100K-vocabulary softmax
affordable.  This bench sweeps S at miniature scale, measuring real
validation perplexity and the measured output-embedding exchange volume
— the two sides of the trade-off (more candidates: better gradient
estimates but more rows to synchronize), plus the full-softmax anchor.
"""

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

VOCAB = 400
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 40_000, seed=29)
SAMPLE_COUNTS = (4, 16, 64, 256)
STEPS = 150


def run(num_samples: int):
    cfg = TrainConfig(world_size=4, batch=BatchSpec(2, 8), base_lr=0.3)
    model_cfg = WordLMConfig(
        vocab_size=VOCAB, embedding_dim=10, hidden_dim=14, projection_dim=10,
        num_samples=num_samples,
    )
    trainer = DistributedTrainer(
        lambda rng, rank: WordLanguageModel(model_cfg, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )
    for _ in range(STEPS):
        trainer.train_step()
    out_bytes = sum(
        b
        for scope, b in trainer.comm.ledger.bytes_by_scope().items()
        if "loss_layer" in scope
    )
    return perplexity(trainer.evaluate()), out_bytes


def test_ablation_sampled_softmax(benchmark, report):
    results = benchmark.pedantic(
        lambda: {s: run(s) for s in SAMPLE_COUNTS}, rounds=1, iterations=1
    )
    rows = [
        [s, f"{s / VOCAB:.0%}", round(ppl, 2), f"{nbytes / 1e6:.2f}"]
        for s, (ppl, nbytes) in results.items()
    ]
    table = format_table(
        ["samples S", "of vocab", "val ppl", "output-emb MB/GPU"],
        rows,
        title=f"Sampled-softmax candidate sweep (vocab {VOCAB}, {STEPS} "
        "steps; paper uses S = 1% of |V| = 1024 of 100K)",
    )
    report("ablation_sampled_softmax", table)

    ppls = [results[s][0] for s in SAMPLE_COUNTS]
    traffic = [results[s][1] for s in SAMPLE_COUNTS]
    # Exchange volume grows monotonically with S — the cost side.
    assert traffic == sorted(traffic)
    # Tiny candidate sets visibly hurt accuracy vs the best arm...
    best = min(ppls)
    assert ppls[0] > best * 1.05
    # ...while a *small percentage* of the vocabulary already attains it
    # (the paper's S = 1% of |V| sits in this regime): going past the
    # interior optimum buys nothing but traffic.
    assert min(ppls[1], ppls[2]) <= ppls[-1] + 0.5
