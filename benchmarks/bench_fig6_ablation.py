"""Figure 6: cumulative speedup from uniqueness, seeding, compression.

Paper values (word LM, 1-Billion-Word):

================  =====  =====
technique          16gpu  24gpu
================  =====  =====
baseline            1.0    1.0
+uniqueness         4.0    5.1
+seeding            4.3    5.4
+compression        5.1    6.3
================  =====  =====

Reproduced from the performance model; the bench asserts ordering
(every technique strictly helps), uniqueness dominating the gain, and
the total landing near the paper's factors.
"""

from repro.perf import (
    ALL_TECHNIQUES,
    BASELINE,
    UNIQUE_ONLY,
    UNIQUE_SEEDING,
    WORD_LM_1B,
    PerfModel,
)
from repro.report import format_table

PAPER = {
    16: {"+uniqueness": 4.0, "+seeding": 4.3, "+compression": 5.1},
    24: {"+uniqueness": 5.1, "+seeding": 5.4, "+compression": 6.3},
}

STACKS = [
    ("baseline", BASELINE),
    ("+uniqueness", UNIQUE_ONLY),
    ("+seeding", UNIQUE_SEEDING),
    ("+compression", ALL_TECHNIQUES),
]


def compute():
    model = PerfModel(WORD_LM_1B)
    out = {}
    for g in (16, 24):
        base = model.epoch_hours(g, BASELINE)
        out[g] = {
            label: base / model.epoch_hours(g, tech) for label, tech in STACKS
        }
    return out


def test_fig6_ablation(benchmark, report):
    speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for label, _ in STACKS:
        paper16 = PAPER[16].get(label, 1.0)
        paper24 = PAPER[24].get(label, 1.0)
        rows.append(
            [
                label,
                paper16,
                round(speedups[16][label], 2),
                paper24,
                round(speedups[24][label], 2),
            ]
        )
    table = format_table(
        ["stack", "paper 16gpu", "model 16gpu", "paper 24gpu", "model 24gpu"],
        rows,
        title="Figure 6 — cumulative speedup over the no-technique baseline",
    )
    report("fig6_ablation", table)

    for g in (16, 24):
        s = speedups[g]
        # Strict cumulative ordering.
        assert (
            s["baseline"]
            < s["+uniqueness"]
            < s["+seeding"]
            < s["+compression"]
        )
        # Total factor in the paper's neighbourhood.
        assert s["+compression"] > 3.5
    # The gap widens with more GPUs, as the paper observes.
    assert speedups[24]["+compression"] > speedups[16]["+compression"]
