"""Ablation: vocabulary truncation (Section IV-A).

The paper keeps the 100K most frequent of 2M-24M distinct words, noting
the cut covers 99% of running text and shrinks the model from 9.8 GB to
1.3 GB.  This bench sweeps the truncation on a Zipfian corpus:
coverage, model size, and — by real training — the perplexity cost of
each cut, showing the Zipf head's dominance makes aggressive truncation
nearly free.
"""

import numpy as np

from repro.data import (
    BatchSpec,
    ONE_BILLION_WORD,
    Vocabulary,
    coverage_of_top_k,
    make_corpus,
)
from repro.optim import SGD
from repro.perf import word_lm_footprint
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

FULL_TYPES = 2_000
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(FULL_TYPES), 60_000, seed=12)
CUTS = (2_000, 500, 150, 50)
STEPS = 100


def run_cut(max_vocab: int) -> tuple[float, float, int]:
    vocab = Vocabulary.from_token_ids(CORPUS.tokens, max_size=max_vocab)
    train = vocab.encode(CORPUS.train)
    valid = vocab.encode(CORPUS.valid)
    coverage = vocab.coverage(CORPUS.tokens)
    model_cfg = WordLMConfig(
        vocab_size=vocab.size,
        embedding_dim=10,
        hidden_dim=14,
        projection_dim=10,
        num_samples=min(16, vocab.size - 1),
    )
    cfg = TrainConfig(world_size=4, batch=BatchSpec(2, 8), base_lr=0.3)
    trainer = DistributedTrainer(
        lambda rng, rank: WordLanguageModel(model_cfg, rng),
        lambda params, lr: SGD(params, lr),
        train,
        valid,
        cfg,
    )
    for _ in range(STEPS):
        trainer.train_step()
    footprint = word_lm_footprint(model_cfg, cfg.batch).parameters
    return coverage, perplexity(trainer.evaluate()), footprint


def test_ablation_vocab_truncation(benchmark, report):
    results = benchmark.pedantic(
        lambda: {cut: run_cut(cut) for cut in CUTS}, rounds=1, iterations=1
    )
    rows = []
    for cut, (coverage, ppl, params) in results.items():
        rows.append(
            [cut, f"{coverage:.1%}", round(ppl, 2), f"{params / 1e3:.0f} KB"]
        )
    table = format_table(
        ["vocab cut", "token coverage", "val ppl", "embedding params"],
        rows,
        title=f"Vocabulary truncation on a {FULL_TYPES}-type Zipf corpus "
        "(paper: 100K of 2M-24M types covers 99% of text)",
    )
    # The paper's own coverage fact at its scale, from the Zipf pmf.
    counts = np.bincount(CORPUS.tokens, minlength=FULL_TYPES)
    cov_quarter = coverage_of_top_k(counts, FULL_TYPES // 4)
    footer = (
        f"\nTop 25% of types cover {cov_quarter:.1%} of tokens — the Zipf "
        "head dominance behind the paper's 100K cut."
    )
    report("ablation_vocab_truncation", table + footer)

    cov_full, ppl_full, _ = results[CUTS[0]]
    cov_mid, ppl_mid, _ = results[500]
    # A 4x cut keeps high coverage and near-full perplexity...
    assert cov_mid > 0.9
    assert ppl_mid < ppl_full * 1.25
    # ...and perplexity falls as the vocabulary shrinks (fewer classes),
    # which is why the paper compares like-for-like vocabularies only.
    assert results[50][1] < results[2000][1]
