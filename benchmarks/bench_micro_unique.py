"""Micro-benchmark: unique exchange vs baseline allgather exchange.

Measures real wall-clock of both strategies on a Zipf-realistic batch
and reports the measured wire-volume and peak-scratch ratios — the
microscopic version of the paper's headline reductions.
"""

import numpy as np

from repro.cluster import Communicator
from repro.core import AllGatherExchange, UniqueExchange
from repro.data import ZipfMandelbrot
from repro.nn import SparseGrad
from repro.report import format_table

WORLD = 8
TOKENS = 2048     # K per GPU
DIM = 128         # embedding dim
VOCAB = 50_000


def make_grads(seed=0):
    dist = ZipfMandelbrot(vocab_size=VOCAB, exponent=1.56, shift=2.7)
    rng = np.random.default_rng(seed)
    return [
        SparseGrad(
            indices=dist.sample(TOKENS, rng),
            values=rng.standard_normal((TOKENS, DIM)).astype(np.float32),
        )
        for _ in range(WORLD)
    ]


def test_bench_unique_exchange(benchmark):
    grads = make_grads()
    comm = Communicator(WORLD, track_memory=False)
    result = benchmark(lambda: UniqueExchange().exchange(comm, grads))
    assert result[0].indices.size <= min(WORLD * TOKENS, VOCAB)


def test_bench_allgather_exchange(benchmark):
    grads = make_grads(1)
    comm = Communicator(WORLD, track_memory=False)
    result = benchmark(lambda: AllGatherExchange().exchange(comm, grads))
    assert result[0].n_tokens == WORLD * TOKENS


def test_volume_and_memory_ratios(benchmark, report):
    def measure():
        grads = make_grads(2)
        c_base, c_uniq = Communicator(WORLD), Communicator(WORLD)
        AllGatherExchange().exchange(c_base, grads)
        res = UniqueExchange().exchange(c_uniq, grads)
        return {
            "ug": int(res[0].indices.size),
            "base_bytes": c_base.ledger.total_wire_bytes_per_rank,
            "uniq_bytes": c_uniq.ledger.total_wire_bytes_per_rank,
            "base_peak": c_base.peak_bytes_per_rank,
            "uniq_peak": c_uniq.peak_bytes_per_rank,
        }

    m = benchmark.pedantic(measure, rounds=1, iterations=1)
    gap = WORLD * TOKENS / m["ug"]
    table = format_table(
        ["quantity", "baseline", "unique", "ratio"],
        [
            ["wire bytes / rank", m["base_bytes"], m["uniq_bytes"],
             f"{m['base_bytes'] / m['uniq_bytes']:.1f}x"],
            ["peak scratch / rank", m["base_peak"], m["uniq_peak"],
             f"{m['base_peak'] / m['uniq_peak']:.1f}x"],
            ["rows exchanged", WORLD * TOKENS, m["ug"], f"{gap:.1f}x"],
        ],
        title=(
            f"Unique vs allgather exchange: G={WORLD}, K={TOKENS}, "
            f"D={DIM}, Zipf vocab {VOCAB}"
        ),
    )
    report("micro_unique_exchange", table)
    assert m["uniq_bytes"] < m["base_bytes"]
    assert m["uniq_peak"] < m["base_peak"]
