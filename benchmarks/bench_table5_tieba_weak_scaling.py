"""Table V: the hero weak-scaling run on Tieba (6 -> 192 GPUs).

Two halves:

* **time** — the performance model under weak scaling (data and GPUs
  both grow 1x/4x/32x): paper reports 27/28/34 hours, i.e. only 1.25x
  more time for 32x more data;
* **accuracy** — real miniature training on the Tieba-preset synthetic
  Chinese stream: more data + more (simulated) GPUs at constant time
  budget improves perplexity, the paper's "35% better accuracy" effect,
  plus the compression-ratio metric of Section V-C.
"""

import os

import numpy as np

from repro.data import BatchSpec, TIEBA, make_corpus
from repro.optim import Adam
from repro.perf import ALL_TECHNIQUES, CHAR_LM_TIEBA, PerfModel
from repro.report import format_table
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    accuracy_improvement,
    bits_per_char,
    compression_ratio,
    perplexity,
)

PAPER_ROWS = {
    6: (1.07, 3, 768, 27, 17.06),
    24: (4.29, 12, 3_072, 28, 13.6),
    192: (34.36, 93, 12_288, 34, 11.1),
}

#: Miniature training scale: data grows with the GPU count, weak-scaling
#: style (6 -> 24 uses 4x the corpus).
MINI_VOCAB = 150
MINI_CFG = CharLMConfig(
    vocab_size=MINI_VOCAB, embedding_dim=8, hidden_dim=12, depth=2, dropout=0.0
)

FAST = bool(os.environ.get("REPRO_BENCH_FAST"))
#: Training steps for the miniature accuracy run.  The weak-scaling
#: ordering (8-GPU ppl < 2-GPU ppl) already holds at the smoke budget.
MINI_STEPS = 40 if FAST else 80


def model_hours():
    rows = {}
    for g, (chars_b, _, _, paper_h, _) in PAPER_ROWS.items():
        workload = CHAR_LM_TIEBA.scaled(tokens_per_epoch=chars_b * 1e9)
        rows[g] = PerfModel(workload).epoch_hours(g, ALL_TECHNIQUES)
    return rows


def mini_weak_scaling():
    """Real training: 2 GPUs/20k chars vs 8 GPUs/80k chars, same steps."""
    results = {}
    for world, n_tokens in ((2, 20_000), (8, 80_000)):
        corpus = make_corpus(TIEBA.scaled(MINI_VOCAB), n_tokens, seed=3)
        cfg = TrainConfig(
            world_size=world, batch=BatchSpec(2, 8), base_lr=4e-3
        )
        trainer = DistributedTrainer(
            lambda rng, rank: CharLanguageModel(
                MINI_CFG, rng, dropout_rng=np.random.default_rng(rank)
            ),
            lambda params, lr: Adam(params, lr),
            corpus.train,
            corpus.valid,
            cfg,
        )
        for _ in range(MINI_STEPS):
            trainer.train_step()
        results[world] = perplexity(trainer.evaluate())
    return results


def test_table5_time_model(benchmark, report):
    hours = benchmark.pedantic(model_hours, rounds=1, iterations=1)
    base = hours[6]
    rows = []
    for g, (chars_b, gb, batch, paper_h, paper_ppl) in PAPER_ROWS.items():
        rows.append(
            [
                chars_b,
                gb,
                g,
                batch,
                paper_h,
                round(hours[g], 1),
                f"{hours[g] / base:.2f}x",
                paper_ppl,
            ]
        )
    table = format_table(
        [
            "chars (B)",
            "corpus (GB)",
            "GPUs",
            "batch",
            "paper (h)",
            "model (h)",
            "time increase",
            "paper ppl",
        ],
        rows,
        title="Table V — Tieba weak scaling (time model)",
    )
    bpc = bits_per_char(np.log(11.1))
    ratio = compression_ratio(93.12 * 1024**3, 34.36e9, bpc)
    footer = (
        f"\nPaper accuracy improvement 3GB -> 93GB: "
        f"{accuracy_improvement(17.06, 11.1):.0%} (paper: 35%)"
        f"\nCompression ratio at ppl 11.1: {ratio:.1f} (paper: 6.3; "
        f"prior work on Amazon: 6.8)"
    )
    report("table5_tieba_time", table + footer)
    assert hours[24] / base < 1.15
    assert 1.1 < hours[192] / base < 1.4


def test_table5_accuracy_mini(benchmark, report):
    results = benchmark.pedantic(mini_weak_scaling, rounds=1, iterations=1)
    improvement = accuracy_improvement(results[2], results[8])
    table = format_table(
        ["GPUs", "corpus chars", "validation ppl"],
        [[2, "20k", round(results[2], 2)], [8, "80k", round(results[8], 2)]],
        title="Table V (miniature, real training) — more data + GPUs at "
        "fixed step budget improves accuracy",
    )
    footer = (
        f"\nMiniature accuracy improvement: {improvement:.0%} "
        f"(paper at 32x scale: 35%)"
    )
    report("table5_tieba_accuracy", table + footer)
    # Weak scaling must help accuracy, the paper's central hero claim.
    assert results[8] < results[2]
