"""Section III-A worked example: 256 GPUs, K = 19,200, D = 1792.

Paper: the baseline ALLGATHER needs 35.2 GB per GPU; the uniqueness
technique needs 0.137 GB — a 256x memory saving.
"""

from repro.core import (
    baseline_allgather_comm_bytes,
    expected_global_unique,
    unique_comm_bytes,
    worked_example_256_gpus,
)
from repro.report import format_table


def compute():
    ex = worked_example_256_gpus()  # the paper's coeff=1 arithmetic
    ex_heaps = worked_example_256_gpus(coeff=7.02)  # Figure-1 fit variant
    return ex, ex_heaps


def test_memory_worked_example(benchmark, report):
    ex, ex_heaps = benchmark.pedantic(compute, rounds=1, iterations=1)
    g, k, d = ex.gpus, ex.local_batch_tokens, ex.embedding_dim
    u = expected_global_unique(g * k)
    rows = [
        ["baseline memory / GPU", "35.2 GB", f"{ex.baseline_memory_bytes / 1e9:.1f} GB"],
        ["unique memory / GPU", "0.137 GB", f"{ex.unique_memory_bytes / 1e9:.3f} GB"],
        ["memory reduction", "256x", f"{ex.reduction_factor:.0f}x"],
        [
            "with Figure-1 coeff 7.02",
            "-",
            f"{ex_heaps.unique_memory_bytes / 1e9:.2f} GB "
            f"({ex_heaps.reduction_factor:.0f}x)",
        ],
        [
            "baseline comm / GPU",
            "-",
            f"{baseline_allgather_comm_bytes(g, k, d) / 1e9:.1f} GB",
        ],
        [
            "unique comm / GPU",
            "-",
            f"{unique_comm_bytes(g, k, d, u) / 1e9:.3f} GB",
        ],
    ]
    table = format_table(
        ["quantity", "paper", "computed"],
        rows,
        title=(
            "Section III-A worked example — 256 GPUs, K = 150 x 128 = "
            "19,200 tokens, D = 1792, FP32"
        ),
    )
    report("memory_worked_example", table)
    assert ex.baseline_memory_bytes / 1e9 == round(ex.baseline_memory_bytes / 1e9, 9)
    assert abs(ex.baseline_memory_bytes / 1e9 - 35.2) < 0.5
    assert ex.unique_memory_bytes / 1e9 < 0.2
    assert ex.reduction_factor > 150
