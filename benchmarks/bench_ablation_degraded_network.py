"""Ablation: sensitivity to network health.

The paper's techniques shrink communication so far that the job barely
notices network trouble: this bench degrades the Infiniband tier 2x/4x
and recomputes Table III's 24-GPU row for both the baseline and the
full technique stack.  The baseline — whose ALLGATHER saturates the
fabric — slows dramatically; the unique path barely moves.
"""

from repro.cluster.failures import degrade_fabric
from repro.perf import ALL_TECHNIQUES, BASELINE, PAPER_PLATFORM, WORD_LM_1B, PerfModel
from repro.perf.hardware import Platform
from repro.report import format_table

WORLD = 24
FACTORS = (1.0, 2.0, 4.0)


def sweep():
    rows = []
    healthy = PerfModel(WORD_LM_1B, PAPER_PLATFORM)
    base_h = healthy.epoch_hours(WORLD, BASELINE)
    tech_h = healthy.epoch_hours(WORLD, ALL_TECHNIQUES)
    for factor in FACTORS:
        fabric = degrade_fabric(PAPER_PLATFORM.fabric, inter_factor=factor)
        platform = Platform(
            device=PAPER_PLATFORM.device, fabric=fabric,
            max_gpus=PAPER_PLATFORM.max_gpus,
        )
        model = PerfModel(WORD_LM_1B, platform)
        b = model.epoch_hours(WORLD, BASELINE)
        t = model.epoch_hours(WORLD, ALL_TECHNIQUES)
        rows.append(
            [
                f"{factor:.0f}x slower IB",
                f"{b:.1f}",
                f"{b / base_h:.2f}x",
                f"{t:.2f}",
                f"{t / tech_h:.2f}x",
            ]
        )
    return rows


def test_ablation_degraded_network(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["network", "baseline (h)", "baseline slowdown",
         "techniques (h)", "techniques slowdown"],
        rows,
        title=f"Word LM at {WORLD} GPUs under Infiniband degradation",
    )
    report("ablation_degraded_network", table)

    base_4x = float(rows[-1][2].rstrip("x"))
    tech_4x = float(rows[-1][4].rstrip("x"))
    # The baseline suffers multi-fold; the techniques barely notice.
    assert base_4x > 2.0
    assert tech_4x < 1.2
