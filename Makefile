# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test lint bench examples results clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src/repro

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

results: lint test bench
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build *.egg-info .pytest_benchmarks .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
