# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test test-chaos test-mesh test-telemetry test-serve lint verify-spmd bench bench-smoke bench-wire bench-serve bench-sim examples results clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Chaos suite: fault-plan replay, differential (faulted-vs-clean)
# equivalence over 5 fixed seeds, the resilience benchmark smoke, and a
# 90% line-coverage floor on the recovery loop (stdlib-only tracer).
test-chaos:
	PYTHONPATH=src REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		tests/cluster/test_chaos.py tests/train/test_resilience.py
	PYTHONPATH=src REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_resilience_overhead.py --benchmark-only
	PYTHONPATH=src $(PYTHON) tools/check_coverage.py \
		--target src/repro/train/resilience.py --min-percent 90 \
		tests/train/test_resilience.py

# Mesh suite (docs/MESH.md): device-mesh geometry + per-axis collective
# semantics, tensor/pipeline-parallel layer bit-exactness properties,
# the sharded data-axis gradient exchange, hybrid-mesh training
# equivalence + elastic shrink, the `train --mesh` CLI paths, and the
# tensor-parallel crossover benchmark with its wire-volume gates.
test-mesh:
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/cluster/test_mesh.py tests/nn/test_parallel.py \
		tests/core/test_mesh_exchange.py \
		tests/train/test_mesh_training.py
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/test_cli.py -k "TestTrainMesh"
	PYTHONPATH=src REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_ablation_tensor_parallel.py --benchmark-only

# Telemetry suite: registry/exporter semantics, merged-trace validity
# (per-rank pid/tid tracks, no negative or overlapping timestamps), the
# exporter-agreement CLI check, and the trace-accounting regressions.
test-telemetry:
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/telemetry tests/cluster/test_trace_export.py \
		tests/cluster/test_tracing.py
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/test_cli.py -k "telemetry or trace"

# Serving suite (docs/SERVING.md): continuous-batching differential
# (token-identical vs naive decode over 5 seeds), the 200-case property
# suites (no silent drops, eviction safety, token conservation under
# faults), the chaos-composition tests, the serve-bench CLI paths, the
# traffic edge cases, and a 90% line-coverage floor on src/repro/serve.
test-serve:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/serve \
		tests/data/test_zipf.py tests/data/test_burstiness.py
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/test_cli.py -k "ServeBench"
	PYTHONPATH=src $(PYTHON) tools/check_coverage.py \
		--target src/repro/serve --min-percent 90 tests/serve

lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src/repro

# SPMD collective-matching verification (docs/SPMD_VERIFY.md): the
# static REPRO010-012 taint pass over the library and benchmarks, a
# dynamic fault-plan replay under the LockstepVerifier, and the unit
# suites for both layers.
verify-spmd:
	PYTHONPATH=src $(PYTHON) -m repro.cli verify-spmd src/repro benchmarks
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/analysis/test_spmd_rules.py tests/cluster/test_lockstep.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Fast overlap/straggler ablations with their timeline-vs-analytic
# acceptance gates — cheap enough to run on every CI push.
bench-smoke:
	PYTHONPATH=src REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_ablation_overlap.py \
		benchmarks/bench_ablation_stragglers.py --benchmark-only

# Wire-compression smoke: measured byte-reduction + pipeline-model +
# bit-exactness gates of the codec stack (see docs/COMPRESSION.md).
bench-wire:
	PYTHONPATH=src REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_wire_compression.py --benchmark-only

# Simulator fast-path smoke: batched-vs-per-rank speedup gates at
# G=512 plus the bit-exactness differential (see docs/PERFORMANCE.md).
bench-sim:
	PYTHONPATH=src REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_micro_simulator.py --benchmark-only

# Serving smoke: continuous-vs-naive makespan and p99-TTFT regression
# gates plus the token-identity check (see docs/SERVING.md).
bench-serve:
	PYTHONPATH=src REPRO_BENCH_FAST=1 $(PYTHON) -m pytest -q \
		benchmarks/bench_serving.py --benchmark-only

examples:
	@for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex || exit 1; done

results: lint test bench
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf build *.egg-info .pytest_benchmarks .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
