#!/usr/bin/env python
"""Strong-scaling study of the word LM (the Table III / Figure 6 story).

Part 1 — *measured*, at miniature scale: wire bytes and peak scratch
memory per simulated GPU for the baseline ALLGATHER vs the unique
exchange, as the GPU count grows.  Shows the baseline's Θ(G·K·D) growth
against the unique path's Θ(G·K + Ug·D).

Part 2 — *modeled*, at paper scale: per-epoch hours, parallel
efficiency, and OOM cells for 8-64 Titan X GPUs, via the calibrated
performance model.

Run:  python examples/scaling_word_lm.py
"""

import numpy as np

from repro.cluster import Communicator
from repro.core import AllGatherExchange, UniqueExchange
from repro.data import ZipfMandelbrot
from repro.nn import SparseGrad
from repro.perf import ALL_TECHNIQUES, BASELINE, WORD_LM_1B, PerfModel
from repro.report import format_table

K, DIM, VOCAB = 512, 64, 20_000


def measured_scaling() -> None:
    dist = ZipfMandelbrot(vocab_size=VOCAB, exponent=1.56, shift=2.7)
    rng = np.random.default_rng(0)
    rows = []
    for world in (2, 4, 8, 16):
        grads = [
            SparseGrad(
                indices=dist.sample(K, rng),
                values=rng.standard_normal((K, DIM)).astype(np.float32),
            )
            for _ in range(world)
        ]
        c_base, c_uniq = Communicator(world), Communicator(world)
        AllGatherExchange().exchange(c_base, grads)
        result = UniqueExchange().exchange(c_uniq, grads)
        rows.append(
            [
                world,
                world * K,
                int(result[0].indices.size),
                f"{c_base.ledger.total_wire_bytes_per_rank / 1e6:.2f}",
                f"{c_uniq.ledger.total_wire_bytes_per_rank / 1e6:.2f}",
                f"{c_base.peak_bytes_per_rank / 1e6:.2f}",
                f"{c_uniq.peak_bytes_per_rank / 1e6:.2f}",
            ]
        )
    print(
        format_table(
            [
                "GPUs",
                "tokens G*K",
                "types Ug",
                "base MB/GPU (wire)",
                "uniq MB/GPU (wire)",
                "base MB/GPU (peak)",
                "uniq MB/GPU (peak)",
            ],
            rows,
            title="Measured: embedding-gradient exchange cost per step "
            f"(K={K}, D={DIM}, Zipf vocab {VOCAB})",
        )
    )


def modeled_scaling() -> None:
    model = PerfModel(WORD_LM_1B)
    rows = []
    for g in (8, 16, 24, 32, 64):
        oom = model.is_oom(g, BASELINE)
        rows.append(
            [
                g,
                "OOM" if oom else f"{model.epoch_hours(g, BASELINE):.1f}",
                f"{model.epoch_hours(g, ALL_TECHNIQUES):.1f}",
                f"{model.parallel_efficiency(g, ALL_TECHNIQUES):.0%}",
                "-" if oom else
                f"{model.epoch_hours(g, BASELINE) / model.epoch_hours(g, ALL_TECHNIQUES):.1f}x",
            ]
        )
    print()
    print(
        format_table(
            ["GPUs", "baseline (h)", "techniques (h)", "efficiency", "speedup"],
            rows,
            title="Modeled at paper scale: word LM on 1-Billion-Word, "
            "Titan X cluster (Table III)",
        )
    )


if __name__ == "__main__":
    measured_scaling()
    modeled_scaling()
