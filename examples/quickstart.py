#!/usr/bin/env python
"""Quickstart: distributed word-LM training with the paper's techniques.

Trains a miniature word language model across 8 simulated GPUs on a
synthetic Zipfian corpus, with all three of the paper's optimizations
enabled (uniqueness, seeding, FP16 compression), and reports:

* validation perplexity before/after training,
* communication volume vs the ALLGATHER baseline,
* replica-consistency check (all 8 model copies bit-identical).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Fp16Codec, SeedStrategy
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    max_replica_divergence,
    perplexity,
)

WORLD = 8          # simulated GPUs
VOCAB = 500        # miniature vocabulary (paper: 100,000)
STEPS = 150


def build_trainer(use_unique: bool) -> DistributedTrainer:
    model_cfg = WordLMConfig(
        vocab_size=VOCAB,
        embedding_dim=16,
        hidden_dim=32,
        projection_dim=16,
        num_samples=32,
    )
    train_cfg = TrainConfig(
        world_size=WORLD,
        batch=BatchSpec(sequences_per_rank=2, seq_len=10),
        base_lr=0.3,
        use_unique=use_unique,
        codec=Fp16Codec(scale=512.0) if use_unique else None,
        seed_strategy=SeedStrategy.ZIPF_FREQ if use_unique else SeedStrategy.PER_RANK,
    )
    corpus = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 60_000, seed=0)
    return DistributedTrainer(
        model_factory=lambda rng, rank: WordLanguageModel(model_cfg, rng),
        optimizer_factory=lambda params, lr: SGD(params, lr),
        train_tokens=corpus.train,
        valid_tokens=corpus.valid,
        config=train_cfg,
    )


def main() -> None:
    print(f"Training a word LM on {WORLD} simulated GPUs "
          f"(vocab {VOCAB}, Zipfian synthetic 1-Billion-Word stand-in)\n")

    trainer = build_trainer(use_unique=True)
    ppl_before = perplexity(trainer.evaluate())
    for step in range(STEPS):
        loss = trainer.train_step()
        if (step + 1) % 50 == 0:
            print(f"  step {step + 1:4d}  train loss {loss:.3f}  "
                  f"val ppl {perplexity(trainer.evaluate()):.1f}")
    ppl_after = perplexity(trainer.evaluate())

    print(f"\nValidation perplexity: {ppl_before:.1f} -> {ppl_after:.1f}")
    print(f"Replica divergence across {WORLD} GPUs: "
          f"{max_replica_divergence(trainer.replicas):.2e} (must be 0)")

    # Compare communication volume against the ALLGATHER baseline.
    baseline = build_trainer(use_unique=False)
    for _ in range(10):
        baseline.train_step()
    probe = build_trainer(use_unique=True)
    for _ in range(10):
        probe.train_step()
    b = baseline.comm.ledger.total_wire_bytes_per_rank
    u = probe.comm.ledger.total_wire_bytes_per_rank
    print(f"\nWire bytes per GPU over 10 steps:")
    print(f"  baseline ALLGATHER : {b / 1e6:8.2f} MB")
    print(f"  paper's techniques : {u / 1e6:8.2f} MB  ({b / u:.1f}x less)")


if __name__ == "__main__":
    main()
