#!/usr/bin/env python
"""The seeding trade-off (Section III-B / Figure 7).

Trains the same word LM under different sampled-softmax seed strategies
and prints, for each: the number of distinct seeds, the validation
perplexity reached, and the output-embedding communication it cost —
making the paper's accuracy/communication spectrum concrete.

Expected picture (as in Figure 7): per-rank seeds ("G") give the best
accuracy at the highest cost; a single shared seed gives the worst
accuracy at the lowest cost; Zipf's-freq sits on the pareto frontier,
matching G-seed accuracy at a fraction of the traffic.

Run:  python examples/seeding_tradeoff.py
"""

from repro.core.seeding import SeedStrategy, num_seed_groups, seed_group_sizes
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

WORLD = 8
VOCAB = 300
STEPS = 120

MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=12, hidden_dim=16, projection_dim=12,
    num_samples=24,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 40_000, seed=4)


def train(strategy: SeedStrategy) -> tuple[float, int]:
    cfg = TrainConfig(
        world_size=WORLD,
        batch=BatchSpec(2, 8),
        base_lr=0.3,
        seed_strategy=strategy,
    )
    trainer = DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train,
        CORPUS.valid,
        cfg,
    )
    for _ in range(STEPS):
        trainer.train_step()
    out_bytes = sum(
        b
        for scope, b in trainer.comm.ledger.bytes_by_scope().items()
        if "loss_layer" in scope
    )
    return perplexity(trainer.evaluate()), out_bytes


def main() -> None:
    rows = []
    for strategy in SeedStrategy:
        ppl, nbytes = train(strategy)
        sizes = seed_group_sizes(strategy, WORLD)
        rows.append(
            [
                strategy.value,
                num_seed_groups(strategy, WORLD),
                "/".join(map(str, sizes)),
                round(ppl, 2),
                f"{nbytes / 1e6:.2f}",
            ]
        )
    print(
        format_table(
            ["strategy", "# seeds", "group sizes", "val ppl", "out-emb MB/GPU"],
            rows,
            title=f"Seeding strategies on {WORLD} simulated GPUs, "
            f"{STEPS} steps (paper Figure 7)",
        )
    )
    print(
        "\nZipf's-freq groups GPUs like word frequencies distribute: a "
        "large head group sharing one seed, small tail groups adding "
        "diversity — the pareto-optimal point the paper identifies."
    )


if __name__ == "__main__":
    main()
