#!/usr/bin/env python
"""Neural LM vs count-based n-gram baselines, on i.i.d. and bursty data.

On an i.i.d. Zipf stream the unigram distribution is the information-
theoretic optimum — a neural model can only *approach* it, making the
n-gram an honest sanity anchor.  On a *bursty* stream (the cache model
of real text), context carries information and higher-order / neural
models pull ahead.

Run:  python examples/baselines_comparison.py
"""

import numpy as np

from repro.data import (
    BatchSpec,
    ONE_BILLION_WORD,
    ZipfMandelbrot,
    make_bursty_tokens,
    make_corpus,
)
from repro.optim import SGD
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    NGramModel,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

VOCAB = 120
STEPS = 250


def neural_ppl(train: np.ndarray, valid: np.ndarray) -> float:
    cfg = TrainConfig(world_size=4, batch=BatchSpec(2, 10), base_lr=0.3)
    model_cfg = WordLMConfig(
        vocab_size=VOCAB, embedding_dim=12, hidden_dim=20, projection_dim=12,
        num_samples=20,
    )
    trainer = DistributedTrainer(
        lambda rng, rank: WordLanguageModel(model_cfg, rng),
        lambda params, lr: SGD(params, lr),
        train, valid, cfg,
    )
    for _ in range(STEPS):
        trainer.train_step()
    return perplexity(trainer.evaluate())


def evaluate_stream(name: str, train: np.ndarray, valid: np.ndarray) -> list:
    uni = NGramModel(VOCAB, order=1).fit(train)
    bi = NGramModel(VOCAB, order=2).fit(train)
    tri = NGramModel(VOCAB, order=3).fit(train)
    return [
        name,
        round(uni.perplexity(valid), 2),
        round(bi.perplexity(valid), 2),
        round(tri.perplexity(valid), 2),
        round(neural_ppl(train, valid), 2),
    ]


def main() -> None:
    rows = []

    iid = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 60_000, seed=14)
    rows.append(evaluate_stream("i.i.d. Zipf", iid.train, iid.valid))

    dist = ZipfMandelbrot(
        vocab_size=VOCAB,
        exponent=ONE_BILLION_WORD.zipf_exponent,
        shift=ONE_BILLION_WORD.zipf_shift * VOCAB / ONE_BILLION_WORD.vocab_size,
    )
    bursty = make_bursty_tokens(
        dist, 60_000, np.random.default_rng(15), p_repeat=0.45, window=30
    )
    split = int(bursty.size * 0.95)
    rows.append(
        evaluate_stream("bursty (cache model)", bursty[:split], bursty[split:])
    )

    print(
        format_table(
            ["stream", "unigram ppl", "bigram ppl", "trigram ppl", "neural ppl"],
            rows,
            title="Neural LM vs n-gram baselines "
            f"(vocab {VOCAB}, {STEPS} training steps)",
        )
    )
    print(
        "\nOn i.i.d. data the unigram is optimal — every model converges "
        "toward it and none can beat it.  Burstiness makes context "
        "informative, but over a ~30-token recency window only the "
        "recurrent model can exploit it: the LSTM beats the unigram while "
        "fixed-order n-grams, blind past 1-2 tokens, cannot — the core "
        "argument for neural LMs on real text."
    )


if __name__ == "__main__":
    main()
