#!/usr/bin/env python
"""End-to-end on real text: tokenize -> train distributed -> generate.

Uses the library's real-text front end (``repro.data.text``) on an
embedded public-domain excerpt (Lewis Carroll, *Alice's Adventures in
Wonderland*, 1865), trains a character LM across 4 simulated GPUs with
the paper's techniques, and samples continuations — the noisy-channel
"prior" role the paper's introduction motivates, demonstrated.

Run:  python examples/text_generation.py
"""

import numpy as np

from repro.core import Fp16Codec
from repro.data import BatchSpec, CharTokenizer, encode_corpus
from repro.optim import Adam
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    bits_per_char,
    generate,
)

ALICE = """
Alice was beginning to get very tired of sitting by her sister on the
bank, and of having nothing to do: once or twice she had peeped into
the book her sister was reading, but it had no pictures or
conversations in it, and what is the use of a book, thought Alice,
without pictures or conversations? So she was considering in her own
mind, as well as she could, for the hot day made her feel very sleepy
and stupid, whether the pleasure of making a daisy-chain would be worth
the trouble of getting up and picking the daisies, when suddenly a
White Rabbit with pink eyes ran close by her. There was nothing so very
remarkable in that; nor did Alice think it so very much out of the way
to hear the Rabbit say to itself, oh dear! Oh dear! I shall be late!
When she thought it over afterwards, it occurred to her that she ought
to have wondered at this, but at the time it all seemed quite natural;
but when the Rabbit actually took a watch out of its waistcoat-pocket,
and looked at it, and then hurried on, Alice started to her feet, for
it flashed across her mind that she had never before seen a rabbit with
either a waistcoat-pocket, or a watch to take out of it, and burning
with curiosity, she ran across the field after it, and fortunately was
just in time to see it pop down a large rabbit-hole under the hedge.
"""

WORLD = 4
STEPS = 300


def main() -> None:
    corpus = encode_corpus(ALICE * 8, tokenizer=CharTokenizer())
    print(f"Corpus: {corpus.tokens.size} characters, "
          f"{corpus.vocab_size} distinct symbols\n")

    split = int(corpus.tokens.size * 0.95)
    train, valid = corpus.tokens[:split], corpus.tokens[split:]

    model_cfg = CharLMConfig(
        vocab_size=corpus.vocab_size, embedding_dim=16, hidden_dim=48,
        depth=2, dropout=0.0,
    )
    cfg = TrainConfig(
        world_size=WORLD, batch=BatchSpec(4, 20), base_lr=4e-3,
        codec=Fp16Codec(512.0),
    )
    trainer = DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            model_cfg, rng, dropout_rng=np.random.default_rng(rank),
            stateful=True,
        ),
        lambda params, lr: Adam(params, lr),
        train, valid, cfg,
    )

    print(f"Training on {WORLD} simulated GPUs "
          f"(unique exchange + FP16 compression, stateful BPTT)...")
    for step in range(STEPS):
        trainer.train_step()
        if (step + 1) % 100 == 0:
            bpc = bits_per_char(trainer.evaluate())
            print(f"  step {step + 1:4d}: validation {bpc:.2f} bits/char")

    prompt_text = "alice "
    prompt = np.array([corpus.stoi(c) for c in prompt_text], dtype=np.int64)
    print(f"\nSampling from the model (prompt: {prompt_text!r}):\n")
    for temperature in (0.5, 1.0):
        sample = generate(
            trainer.replicas[0], prompt, 120,
            np.random.default_rng(0), temperature=temperature,
        )
        text = corpus.decode(sample, sep="")
        print(f"  T={temperature}: {prompt_text}{text!s}\n")


if __name__ == "__main__":
    main()
