#!/usr/bin/env python
"""Mixed-precision training: the failure, the fix, the recipe.

Three arms on the same miniature word LM held in **FP16 parameters**:

1. naive FP16 SGD — per-step updates fall below FP16's resolution at the
   weight magnitude and silently vanish ("update swamping");
2. FP32 master weights — updates accumulate in FP32 and training works;
3. master weights + dynamic loss scaling — the full recipe of the
   paper's mixed-precision references [33, 34], robust to the occasional
   overflow as well.

An FP64 reference run anchors the comparison.

Run:  python examples/mixed_precision_training.py
"""

import numpy as np

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD, MasterWeightOptimizer
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    perplexity,
)

VOCAB = 200
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=10, hidden_dim=14, projection_dim=10,
    num_samples=16,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 30_000, seed=19)
STEPS = 120
# A small rate makes per-step updates tiny relative to the weights —
# the regime where FP16's ~1e-3 relative resolution starts to swamp.
LR = 0.02


def run(dtype, optimizer_factory, loss_scale=None) -> float:
    cfg = TrainConfig(
        world_size=2, batch=BatchSpec(2, 8), base_lr=LR, loss_scale=loss_scale
    )
    trainer = DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng, dtype=dtype),
        optimizer_factory,
        CORPUS.train, CORPUS.valid, cfg,
    )
    for _ in range(STEPS):
        trainer.train_step()
    return perplexity(trainer.evaluate())


def swamping_demo() -> None:
    """The isolated failure: 100 updates of 1e-5 on an FP16 weight of 1.0."""
    from repro.nn import Parameter

    naive = Parameter(np.ones(1, np.float16))
    opt_naive = SGD([naive], lr=1e-4)
    mastered = Parameter(np.ones(1, np.float16))
    opt_master = MasterWeightOptimizer(
        [mastered], lambda p, lr: SGD(p, lr), lr=1e-4
    )
    for _ in range(100):
        naive.accumulate_grad(np.full(1, 0.1, np.float16))
        mastered.accumulate_grad(np.full(1, 0.1, np.float16))
        opt_naive.step()
        opt_master.step()
    print("Update swamping in isolation — 100 updates of 1e-5 on w = 1.0:")
    print(f"  naive fp16     : w = {float(naive.data[0]):.6f}  (nothing happened)")
    print(f"  fp32 masters   : w = {float(mastered.data[0]):.6f}  "
          "(the 1e-3 drift landed)\n")


def main() -> None:
    swamping_demo()
    arms = [
        (
            "fp64 reference",
            run(np.float64, lambda p, lr: SGD(p, lr)),
        ),
        (
            "fp16 naive SGD",
            run(np.float16, lambda p, lr: SGD(p, lr)),
        ),
        (
            "fp16 + fp32 master weights",
            run(
                np.float16,
                lambda p, lr: MasterWeightOptimizer(
                    p, lambda m, l: SGD(m, l), lr=lr
                ),
            ),
        ),
        (
            "fp16 + masters + dynamic loss scaling",
            run(
                np.float16,
                lambda p, lr: MasterWeightOptimizer(
                    p, lambda m, l: SGD(m, l), lr=lr
                ),
                loss_scale="dynamic",
            ),
        ),
    ]
    ref = arms[0][1]
    rows = [
        [name, round(ppl, 2), f"{ppl / ref - 1:+.1%}"] for name, ppl in arms
    ]
    print(
        format_table(
            ["arm", "val perplexity", "vs fp64"],
            rows,
            title=f"Mixed-precision training (word LM, {STEPS} steps, lr={LR})",
        )
    )
    print(
        "\nAt this miniature scale naive FP16 only drifts percent-level "
        "behind (early gradients are large); at production scale — tiny "
        "per-step updates over millions of steps — the isolated swamping "
        "effect above compounds into full stalls.  FP32 master weights "
        "track the FP64 trajectory exactly, and loss scaling keeps the "
        "FP16 backward out of the underflow region — the recipe the "
        "paper's Section III-C borrows for communication."
    )


if __name__ == "__main__":
    main()
