#!/usr/bin/env python
"""Elastic training: survive a rank failure mid-run.

The paper's hero run holds 192 GPUs for 34 hours — long enough that
hardware *will* misbehave.  This example runs the standard recovery
pattern on the simulated cluster:

1. train with periodic checkpoints;
2. a rank dies mid-step (injected via ``FailingCommunicator``) — the
   synchronous collective surfaces the failure to every rank;
3. a replacement job restores the last checkpoint on fresh hardware and
   continues — bit-identical to a run that never crashed (verified).

Run:  python examples/elastic_training.py
"""

import pathlib
import tempfile

import numpy as np

from repro.cluster import Communicator
from repro.cluster.failures import FailingCommunicator, RankFailureError
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    load_checkpoint,
    max_replica_divergence,
    perplexity,
    save_checkpoint,
)

VOCAB = 150
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=12, hidden_dim=16, projection_dim=12,
    num_samples=16,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 30_000, seed=41)
WORLD = 4
TOTAL_STEPS = 60
CHECKPOINT_EVERY = 20


def build_trainer(comm=None) -> DistributedTrainer:
    cfg = TrainConfig(world_size=WORLD, batch=BatchSpec(2, 8), base_lr=0.3)
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
        comm=comm,
    )


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="elastic-"))
    ckpt = workdir / "latest.npz"

    # Reference: the run that never crashes.
    reference = build_trainer()
    for _ in range(TOTAL_STEPS):
        reference.train_step()

    # The flaky run: rank 2 will die somewhere after step 45.
    flaky_comm = FailingCommunicator(
        WORLD, fail_after=10**9, failing_rank=2, track_memory=False
    )
    victim = build_trainer(comm=flaky_comm)
    step = 0
    print(f"training {TOTAL_STEPS} steps, checkpoint every "
          f"{CHECKPOINT_EVERY}; rank 2 will fail mid-step...")
    crash_armed = False
    try:
        while step < TOTAL_STEPS:
            victim.train_step()
            step += 1
            if step % CHECKPOINT_EVERY == 0:
                save_checkpoint(ckpt, victim)
                print(f"  step {step:3d}: checkpoint written "
                      f"(val ppl {perplexity(victim.evaluate()):.2f})")
            if step == 45 and not crash_armed:
                flaky_comm.fail_after = flaky_comm._collectives + 3
                crash_armed = True
    except RankFailureError as exc:
        print(f"  step {step + 1:3d}: CRASH — {exc}")

    # Replacement job: new communicator ("new hardware"), restore, finish.
    revived = build_trainer()
    resumed_at = load_checkpoint(ckpt, revived)
    print(f"  restored checkpoint at step {resumed_at}; resuming...")
    for _ in range(TOTAL_STEPS - resumed_at):
        revived.train_step()

    worst = max(
        float(np.abs(a.data - b.data).max())
        for (_, a), (_, b) in zip(
            reference.replicas[0].named_parameters(),
            revived.replicas[0].named_parameters(),
        )
    )
    print(f"\nfinal val ppl: reference "
          f"{perplexity(reference.evaluate()):.3f}, recovered "
          f"{perplexity(revived.evaluate()):.3f}")
    print(f"max parameter delta vs the never-crashed run: {worst:.1e} "
          "(bit-identical recovery)")
    print(f"replica divergence after recovery: "
          f"{max_replica_divergence(revived.replicas):.1e}")


if __name__ == "__main__":
    main()
