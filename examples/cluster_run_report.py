#!/usr/bin/env python
"""Simulated cluster runs: sweep configurations, tabulate outcomes.

Uses :class:`repro.sim.SimulatedRun` to execute the same miniature
training job across GPU counts and both exchange strategies on a
deliberately small simulated device, producing the OOM/throughput table
a real cluster sweep would — the Table III story as one script.

Run:  python examples/cluster_run_report.py
"""

from repro.cluster import DeviceSpec
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.report import format_table
from repro.sim import SimulatedRun
from repro.train import TrainConfig, WordLanguageModel, WordLMConfig

#: A deliberately tiny "GPU" so the baseline's Θ(G·K·D) scratch hits the
#: wall inside the sweep, as the paper's 12 GB cards did at 32 ranks.
DEVICE = DeviceSpec(name="mini-gpu", memory_bytes=400_000, peak_flops=1e12)

VOCAB = 150
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=24, hidden_dim=24, projection_dim=24,
    num_samples=24,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 40_000, seed=6)
STEPS = 30


def run(world: int, use_unique: bool):
    cfg = TrainConfig(
        world_size=world,
        batch=BatchSpec(4, 16),
        base_lr=0.3,
        use_unique=use_unique,
    )
    sim = SimulatedRun(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS,
        cfg,
        device_spec=DEVICE,
    )
    return sim.execute(steps=STEPS)


def main() -> None:
    rows = []
    for world in (2, 4, 8, 16):
        base = run(world, use_unique=False)
        uniq = run(world, use_unique=True)
        rows.append(
            [
                world,
                "OOM *" if base.oom else f"{base.final_perplexity:.1f}",
                "OOM" if base.oom else f"{base.peak_memory_bytes / 1e6:.2f}",
                f"{uniq.final_perplexity:.1f}",
                f"{uniq.peak_memory_bytes / 1e6:.2f}",
                f"{uniq.wire_bytes_per_rank / 1e6:.1f}",
            ]
        )
    print(
        format_table(
            [
                "GPUs",
                "baseline ppl",
                "baseline peak MB",
                "unique ppl",
                "unique peak MB",
                "unique wire MB",
            ],
            rows,
            title=f"Simulated sweep on {DEVICE.memory_bytes / 1e6:.1f} MB "
            f"devices, {STEPS} steps (* = out of memory, as in Table III)",
        )
    )
    print("\nPer-run detail of the largest unique-exchange run:")
    print(run(16, use_unique=True).summary())


if __name__ == "__main__":
    main()
