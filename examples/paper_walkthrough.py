#!/usr/bin/env python
"""A guided walkthrough of the paper's figures, with its literal numbers.

* **Figure 2** — the sentence "I want a pen and a" through an input
  embedding: word-indices [4343, 9665, 1, 3852, 6163, 1], the repeated
  "a" sharing one embedding row.
* **Figure 3** — why ALLREDUCE breaks: GPU1's first token maps to word
  1234, GPU2's to word 9854 — same gradient-row position, different
  embedding rows.
* **Figure 4** — the uniqueness exchange on the figure's exact indices:
  GPU1 holds [5, 3, 9, 4, 3, 8], GPU2 [3, 9, 5, 3, 3, 8, 8, 4]; both
  derive the global unique set [3, 4, 5, 8, 9].
* **Section III-A** — the 256-GPU worked example: 35.2 GB -> 0.137 GB.

Run:  python examples/paper_walkthrough.py
"""

import numpy as np

from repro.cluster import Communicator
from repro.core import local_unique_reduce, unique_exchange, worked_example_256_gpus
from repro.nn import Embedding, SparseGrad


def figure2_embedding_lookup() -> None:
    print("=" * 70)
    print("Figure 2 — input embedding lookup")
    print("=" * 70)
    # The paper's example: |V| = 10,000, D = 1024, K = 6 tokens.
    rng = np.random.default_rng(0)
    emb = Embedding(10_000, 1024, rng)
    sentence = ["I", "want", "a", "pen", "and", "a"]
    word_indices = np.array([[4343, 9665, 1, 3852, 6163, 1]])
    activations, cache = emb.forward(word_indices)
    print(f"tokens: {sentence}")
    print(f"word indices: {word_indices[0].tolist()}")
    print(f"activation matrix: {activations.shape[1]} x {activations.shape[2]} "
          "(K x D, dense)")
    same = np.array_equal(activations[0, 2], activations[0, 5])
    print(f"rows 3 and 6 (both 'a') identical: {same}")

    # Back-propagation: the repeated 'a' accumulates two gradient rows.
    grad = rng.standard_normal(activations.shape)
    emb.backward(grad, cache)
    merged = emb.weight.merged_sparse_grad()
    expected_row_1 = grad[0, 2] + grad[0, 5]
    got_row_1 = merged.values[merged.indices.tolist().index(1)]
    print(f"gradient of row 1 ('a') is the sum of token grads 3 and 6: "
          f"{np.allclose(got_row_1, expected_row_1)}\n")


def figure3_why_allreduce_breaks() -> None:
    print("=" * 70)
    print("Figure 3 — why plain ALLREDUCE breaks for embeddings")
    print("=" * 70)
    gpu1 = SparseGrad(
        indices=np.array([1234, 777, 42]), values=np.ones((3, 4))
    )
    gpu2 = SparseGrad(
        indices=np.array([9854, 1234, 99]), values=np.full((3, 4), 2.0)
    )
    print("GPU1 token 1 -> word", gpu1.indices[0], "; GPU2 token 1 -> word",
          gpu2.indices[0])
    # Summing the raw K x D matrices would fuse gradients of different
    # words; the correct accumulation is by *word index*:
    wrong = gpu1.values + gpu2.values
    right = (gpu1.to_dense(10_000) + gpu2.to_dense(10_000))[1234]
    print(f"naive positional sum of token-1 rows: {wrong[0][0]} "
          "(fuses words 1234 and 9854 — wrong)")
    print(f"index-aware accumulation of word 1234: {right[0]} "
          "(GPU1's token 1 + GPU2's token 2 — right)\n")


def figure4_unique_exchange() -> None:
    print("=" * 70)
    print("Figure 4 — the uniqueness exchange, on the figure's indices")
    print("=" * 70)
    d = 2
    gpu1 = SparseGrad(
        indices=np.array([5, 3, 9, 4, 3, 8]),
        values=np.arange(12, dtype=float).reshape(6, d),
    )
    gpu2 = SparseGrad(
        indices=np.array([3, 9, 5, 3, 3, 8, 8, 4]),
        values=np.arange(16, dtype=float).reshape(8, d),
    )
    print("GPU1 word indices:", gpu1.indices.tolist())
    print("GPU2 word indices:", gpu2.indices.tolist())
    print("GPU1 locally-unique (J-hat):",
          local_unique_reduce(gpu1).indices.tolist())
    print("GPU2 locally-unique (J-hat):",
          local_unique_reduce(gpu2).indices.tolist())

    comm = Communicator(2, track_memory=False)
    result = unique_exchange(comm, [gpu1, gpu2])
    print("global unique set (I-hat):", result.global_indices.tolist())
    print(f"Ug = {result.num_global_unique} "
          f"(vs G*K = {gpu1.n_tokens + gpu2.n_tokens} token rows)")
    dense = result.as_sparse_grad().to_dense(10)
    reference = gpu1.to_dense(10) + gpu2.to_dense(10)
    print("allreduced M-hat equals the dense reference:",
          np.allclose(dense, reference))
    print("wire bytes per GPU:", comm.ledger.bytes_by_op(), "\n")


def section3a_worked_example() -> None:
    print("=" * 70)
    print("Section III-A — the 256-GPU worked example")
    print("=" * 70)
    ex = worked_example_256_gpus()
    print(f"G = {ex.gpus}, K = {ex.local_batch_tokens}, D = {ex.embedding_dim}")
    print(f"baseline ALLGATHER : {ex.baseline_memory_bytes / 1e9:7.1f} GB/GPU "
          "(paper: 35.2)")
    print(f"unique exchange    : {ex.unique_memory_bytes / 1e9:7.3f} GB/GPU "
          "(paper: 0.137)")
    print(f"memory reduction   : {ex.reduction_factor:7.0f}x (paper: 256x)")


if __name__ == "__main__":
    figure2_embedding_lookup()
    figure3_why_allreduce_breaks()
    figure4_unique_exchange()
    section3a_worked_example()
