#!/usr/bin/env python
"""Zipf's-law analysis of the synthetic corpora (the Figure 1 story).

For each dataset stand-in: generate a stream, plot (textually) the
types-vs-tokens curve, fit Heaps' law, and show the vocabulary-coverage
fact that justifies the paper's 100K-word truncation (Section IV-A).

Run:  python examples/zipf_analysis.py
"""

import numpy as np

from repro.data import (
    FIGURE1_PRESETS,
    coverage_of_top_k,
    fit_heaps_law,
    fit_zipf_exponent,
    make_corpus,
    token_type_gap,
    type_token_curve,
)
from repro.report import format_table

N_TOKENS = 1_000_000


def ascii_loglog(ns, us, width=60, height=12) -> str:
    """A minimal log-log scatter of the (N, U) curve."""
    grid = [[" "] * width for _ in range(height)]
    ln, lu = np.log(ns), np.log(us)
    lu_min, lu_max = np.log(ns[0] / 100), np.log(ns[-1])
    for x, y in zip(ln, lu):
        col = int((x - ln[0]) / (ln[-1] - ln[0]) * (width - 1))
        row = int((y - lu_min) / (lu_max - lu_min) * (height - 1))
        grid[height - 1 - min(row, height - 1)][col] = "*"
    # The x = y reference line ("batch" in Figure 1).
    for x in ln:
        col = int((x - ln[0]) / (ln[-1] - ln[0]) * (width - 1))
        row = int((x - lu_min) / (lu_max - lu_min) * (height - 1))
        if 0 <= row < height and grid[height - 1 - row][col] == " ":
            grid[height - 1 - row][col] = "."
    return "\n".join("".join(r) for r in grid)


def main() -> None:
    rows = []
    for preset in FIGURE1_PRESETS:
        scaled = preset.scaled(min(preset.vocab_size, 200_000))
        corpus = make_corpus(scaled, N_TOKENS, seed=1)
        ns, us = type_token_curve(corpus.tokens, num_points=12)
        heaps = fit_heaps_law(ns, us)
        counts = np.bincount(corpus.tokens)
        zipf = fit_zipf_exponent(counts, min_count=3)
        top1pct = coverage_of_top_k(counts, max(1, counts.size // 100))
        rows.append(
            [
                preset.name,
                round(zipf, 2),
                f"U = {heaps.coefficient:.2f} N^{heaps.exponent:.3f}",
                round(heaps.r_squared, 4),
                f"{token_type_gap(corpus.tokens):.0f}x",
                f"{top1pct:.1%}",
            ]
        )
        if preset.name == "1b":
            print(f"Types vs tokens for '{preset.name}' "
                  "(*: data, .: the x = y 'batch' line):\n")
            print(ascii_loglog(ns, us))
            print()

    print(
        format_table(
            [
                "dataset",
                "zipf s",
                "heaps fit",
                "R^2",
                "N/U gap @ 1M",
                "top-1% types cover",
            ],
            rows,
            title="Figure 1 statistics on the synthetic corpora "
            "(paper: U = 7.02 N^0.64, R^2 = 1.00, ~100x gap)",
        )
    )
    print(
        "\nThe last column is the Section IV-A observation: a small "
        "frequency-ranked head of the type inventory covers nearly all "
        "running text, so a 100K vocabulary suffices for corpora with "
        "millions of types."
    )


if __name__ == "__main__":
    main()
