#!/usr/bin/env python
"""Zipf shapes learning too: head words learn first, tail words barely.

Trains a word LM on a Zipfian corpus and reports validation perplexity
*per frequency bucket* (log-spaced over the frequency-ranked vocabulary),
at several points during training.  The head — a handful of types
carrying most tokens — converges within a few dozen steps; the tail
stays near chance.  This is the accuracy-side counterpart of the
communication asymmetry the paper exploits, and the real justification
for vocabulary truncation (Section IV-A): the ids a truncation drops are
precisely the ones the model never learned.

Run:  python examples/head_vs_tail.py
"""

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus, make_eval_batches
from repro.optim import SGD
from repro.report import format_table
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    bucketed_nll,
)

VOCAB = 400
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=12, hidden_dim=20, projection_dim=12,
    num_samples=24,
)
CHECKPOINTS = (0, 40, 160, 400)
N_BUCKETS = 4


def main() -> None:
    corpus = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 80_000, seed=23)
    eval_batches = make_eval_batches(
        corpus.valid, BatchSpec(2, 10), max_batches=8
    )
    cfg = TrainConfig(world_size=4, batch=BatchSpec(2, 10), base_lr=0.3)
    trainer = DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        corpus.train, corpus.valid, cfg,
    )

    snapshots = {}
    done = 0
    for target in CHECKPOINTS:
        while done < target:
            trainer.train_step()
            done += 1
        snapshots[target] = bucketed_nll(
            trainer.replicas[0], eval_batches, n_buckets=N_BUCKETS
        )

    bounds = snapshots[CHECKPOINTS[0]].boundaries
    labels = []
    lo = 0
    for b in bounds:
        labels.append(f"ids {lo}-{b - 1}")
        lo = b
    rows = []
    for i, label in enumerate(labels):
        row = [label, snapshots[CHECKPOINTS[0]].token_counts[i]]
        for step in CHECKPOINTS:
            ppl = snapshots[step].perplexity[i]
            row.append("-" if ppl != ppl else round(ppl, 1))  # NaN guard
        rows.append(row)
    print(
        format_table(
            ["frequency bucket", "tokens"] + [f"ppl @ step {s}" for s in CHECKPOINTS],
            rows,
            title=f"Per-bucket validation perplexity while training "
            f"(vocab {VOCAB}, 4 simulated GPUs)",
        )
    )
    print(
        "\nThe head bucket carries most tokens and collapses toward its "
        "entropy almost immediately; tail buckets barely move — the "
        "learning-side face of Zipf's law."
    )


if __name__ == "__main__":
    main()
