#!/usr/bin/env python
"""Weak scaling on a Chinese-sized character vocabulary (the Table V
"hero run" story).

Two parts:

1. **Real miniature training** — a char LM over a Tieba-like Zipfian
   stream with a large character vocabulary, trained at two weak-scaling
   points (2 GPUs / 1x data, 8 GPUs / 4x data).  More GPUs + more data
   at the same step budget improves perplexity — the paper's "35% better
   accuracy for 1.25x the time" effect, plus the compression-ratio
   metric of Section V-C.

2. **Paper-scale model** — per-epoch hours for the 6/24/192-GPU runs on
   3/12/93 GB via the calibrated performance model.

Run:  python examples/tieba_weak_scaling.py
"""

import numpy as np

from repro.data import BatchSpec, TIEBA, make_corpus
from repro.optim import Adam
from repro.perf import ALL_TECHNIQUES, CHAR_LM_TIEBA, PerfModel
from repro.report import format_table
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    accuracy_improvement,
    bits_per_char,
    compression_ratio,
    perplexity,
)

VOCAB = 400  # miniature stand-in for Tieba's 15,437 characters
MODEL = CharLMConfig(
    vocab_size=VOCAB, embedding_dim=10, hidden_dim=16, depth=2, dropout=0.0
)
STEPS = 100


def train_point(world: int, n_tokens: int) -> float:
    corpus = make_corpus(TIEBA.scaled(VOCAB), n_tokens, seed=9)
    cfg = TrainConfig(world_size=world, batch=BatchSpec(2, 10), base_lr=4e-3)
    trainer = DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            MODEL, rng, dropout_rng=np.random.default_rng(rank)
        ),
        lambda params, lr: Adam(params, lr),
        corpus.train,
        corpus.valid,
        cfg,
    )
    for _ in range(STEPS):
        trainer.train_step()
    return perplexity(trainer.evaluate())


def main() -> None:
    print("Part 1 — real miniature weak scaling "
          f"(char LM, vocab {VOCAB}, {STEPS} steps)\n")
    small = train_point(world=2, n_tokens=30_000)
    large = train_point(world=8, n_tokens=120_000)
    rows = [
        [2, "30k", round(small, 2), "-"],
        [8, "120k", round(large, 2),
         f"{accuracy_improvement(small, large):.0%} better"],
    ]
    print(format_table(
        ["GPUs", "corpus", "val perplexity", "vs 2-GPU point"], rows
    ))

    print("\nPart 2 — paper-scale time model (Table V)\n")
    rows = []
    base_h = None
    for g, chars_b, gb, paper_h, paper_ppl in (
        (6, 1.07, 3, 27, 17.06),
        (24, 4.29, 12, 28, 13.6),
        (192, 34.36, 93, 34, 11.1),
    ):
        model = PerfModel(CHAR_LM_TIEBA.scaled(tokens_per_epoch=chars_b * 1e9))
        h = model.epoch_hours(g, ALL_TECHNIQUES)
        base_h = base_h or h
        rows.append([g, gb, paper_h, round(h, 1), f"{h / base_h:.2f}x", paper_ppl])
    print(format_table(
        ["GPUs", "corpus GB", "paper (h)", "model (h)", "time increase",
         "paper ppl"],
        rows,
    ))

    bpc = bits_per_char(np.log(11.1))
    ratio = compression_ratio(93.12 * 1024**3, 34.36e9, bpc)
    print(f"\nCompression ratio at the paper's final perplexity 11.1: "
          f"{ratio:.1f} (paper reports 6.3; prior work's Amazon result: 6.8)")


if __name__ == "__main__":
    main()
