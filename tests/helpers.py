"""Shared test utilities: finite-difference gradient checking."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.nn.parameter import Parameter


def numerical_grad(
    f: Callable[[], float], array: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array``.

    Mutates ``array`` in place during probing and restores it.
    """
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f()
        flat[i] = orig - eps
        f_minus = f()
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_param_grad(
    f: Callable[[], float],
    param: Parameter,
    analytic: np.ndarray,
    eps: float = 1e-6,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Assert the analytic gradient of ``param`` matches finite differences."""
    numeric = numerical_grad(f, param.data, eps=eps)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
