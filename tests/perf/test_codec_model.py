"""Tests for the perf-layer codec model (repro.perf.codec_model).

The central gate: the analytic pipelined makespan must equal the
makespan measured by executing the same chunk schedule on a real
Timeline — the Timeline's contention rules are the model, so any
divergence is a modeling bug, not noise.
"""

import numpy as np
import pytest

from repro.cluster.interconnect import LinkSpec
from repro.core.wire.codecs import DeltaBitpackCodec
from repro.core.wire.cost import (
    DEFAULT_CODEC_THROUGHPUTS,
    codec_throughput,
    compressed_transfer_seconds,
    compression_wins,
    slowest_throughput,
)
from repro.perf import (
    CodecThroughput,
    calibrate_codec_throughput,
    fused_reduce_time,
    pipelined_transfer_time,
    serial_transfer_time,
    timeline_fused_reduce,
    timeline_pipelined_transfer,
    uniform_fused_plan,
)

LINK = LinkSpec(bandwidth=16e9, latency=5e-6)
TP = CodecThroughput(encode_bps=50e9, decode_bps=80e9)


class TestAnalyticMatchesTimeline:
    @pytest.mark.parametrize("total", [64 << 10, 1 << 20, 100 << 20])
    @pytest.mark.parametrize("chunk", [None, 64 << 10, 4 << 20])
    @pytest.mark.parametrize("world", [2, 8, 32])
    def test_exact_agreement(self, total, chunk, world):
        kwargs = dict(
            logical_bytes=total, world=world, link=LINK, throughput=TP,
            chunk_bytes=chunk, encoded_ratio=4.0,
        )
        analytic = pipelined_transfer_time(**kwargs)
        measured = timeline_pipelined_transfer(**kwargs)
        assert analytic == pytest.approx(measured, rel=1e-12)

    def test_measured_frame_sizes_agree_too(self):
        """Data-dependent encoded sizes: feed real frame sizes back in."""
        rng = np.random.default_rng(0)
        vecs = np.sort(rng.choice(1_000_000, 65_536, replace=False)).astype(
            np.int64
        )
        chunk_elems = (64 << 10) // 8
        codec = DeltaBitpackCodec()
        encoded = [
            int(codec.encode(vecs[i:i + chunk_elems]).nbytes)
            for i in range(0, vecs.size, chunk_elems)
        ]
        kwargs = dict(
            logical_bytes=vecs.nbytes, world=8, link=LINK, throughput=TP,
            chunk_bytes=64 << 10, encoded_chunk_bytes=encoded,
        )
        analytic = pipelined_transfer_time(**kwargs)
        measured = timeline_pipelined_transfer(**kwargs)
        assert analytic == pytest.approx(measured, rel=1e-12)


class TestPipelineShape:
    def test_single_chunk_degenerates_to_serial(self):
        total = 1 << 20
        serial = serial_transfer_time(total, total // 4, 8, LINK, TP)
        piped = pipelined_transfer_time(
            total, 8, LINK, TP, chunk_bytes=None, encoded_ratio=4.0
        )
        assert piped == pytest.approx(serial, rel=1e-12)

    def test_bandwidth_bound_chunking_wins(self):
        """Where pipelining exists to win: big transfer, fat chunks."""
        total = 100 << 20
        serial = pipelined_transfer_time(
            total, 32, LINK, TP, chunk_bytes=None, encoded_ratio=4.0
        )
        piped = pipelined_transfer_time(
            total, 32, LINK, TP, chunk_bytes=4 << 20, encoded_ratio=4.0
        )
        assert piped < serial

    def test_latency_bound_overchunking_loses(self):
        """Each extra chunk pays (world-1) link latencies: over-chunking
        a small transfer is correctly *slower* than one chunk."""
        total = 256 << 10
        one = pipelined_transfer_time(
            total, 16, LINK, TP, chunk_bytes=None, encoded_ratio=4.0
        )
        many = pipelined_transfer_time(
            total, 16, LINK, TP, chunk_bytes=4 << 10, encoded_ratio=4.0
        )
        assert many > one

    def test_ragged_last_chunk_handled(self):
        t = pipelined_transfer_time(
            (1 << 20) + 12345, 4, LINK, TP, chunk_bytes=256 << 10
        )
        assert t > 0

    def test_input_validation(self):
        with pytest.raises(ValueError, match="logical_bytes"):
            pipelined_transfer_time(0, 4, LINK, TP)
        with pytest.raises(ValueError, match="chunk_bytes"):
            pipelined_transfer_time(1 << 20, 4, LINK, TP, chunk_bytes=-1)
        with pytest.raises(ValueError, match="encoded_ratio"):
            pipelined_transfer_time(1 << 20, 4, LINK, TP, encoded_ratio=0)
        with pytest.raises(ValueError, match="entries"):
            pipelined_transfer_time(
                1 << 20, 4, LINK, TP, chunk_bytes=256 << 10,
                encoded_chunk_bytes=[1, 2],
            )
        with pytest.raises(ValueError, match="world size"):
            from repro.cluster.timeline import Timeline

            timeline_pipelined_transfer(
                1 << 20, 4, LINK, TP, timeline=Timeline(8)
            )


class TestCalibration:
    def test_calibration_measures_positive_throughput(self):
        tp = calibrate_codec_throughput(
            DeltaBitpackCodec(), nbytes=64 << 10, repeats=1
        )
        assert tp.encode_bps > 0 and tp.decode_bps > 0

    def test_calibration_validation(self):
        with pytest.raises(ValueError, match="nbytes"):
            calibrate_codec_throughput(DeltaBitpackCodec(), nbytes=4)
        with pytest.raises(ValueError, match="repeats"):
            calibrate_codec_throughput(DeltaBitpackCodec(), repeats=0)

    def test_default_table_lookup(self):
        tp = codec_throughput("delta")
        assert tp.encode_bps > 0
        # Unknown codecs inherit the slowest entry of the table in use
        # (for the defaults, the entropy codec's).
        assert codec_throughput("nonesuch") == slowest_throughput(
            DEFAULT_CODEC_THROUGHPUTS
        )
        assert codec_throughput("nonesuch") == codec_throughput("entropy")


class TestThroughputFallback:
    """Satellite fix: unknown codecs inherit the slowest entry of the
    table *in use*, not ``DEFAULT_CODEC_THROUGHPUTS["delta"]``."""

    def test_calibrated_table_falls_back_to_its_own_slowest(self):
        calibrated = {
            "delta": CodecThroughput(encode_bps=9e9, decode_bps=9e9),
            "rle": CodecThroughput(encode_bps=1e9, decode_bps=2e9),
        }
        tp = codec_throughput("nonesuch", calibrated)
        assert tp == calibrated["rle"]
        assert tp != DEFAULT_CODEC_THROUGHPUTS["delta"]

    def test_asymmetric_codec_ranked_by_bottleneck_direction(self):
        table = {
            "a": CodecThroughput(encode_bps=100e9, decode_bps=3e9),
            "b": CodecThroughput(encode_bps=5e9, decode_bps=5e9),
        }
        assert slowest_throughput(table) == table["a"]

    def test_empty_calibrated_table_degrades_to_slowest_default(self):
        assert codec_throughput("nonesuch", {}) == slowest_throughput(
            DEFAULT_CODEC_THROUGHPUTS
        )

    def test_known_name_in_calibrated_table_wins(self):
        calibrated = {"delta": CodecThroughput(1e9, 1e9)}
        assert codec_throughput("delta", calibrated) == calibrated["delta"]


class TestMemoizationSafety:
    """Satellite fix: the lru-cached crossover helpers key on
    *by-value* frozen dataclasses, so recalibrating (constructing a new
    CodecThroughput) must change the answer — a poisoned cache keyed on
    identity or name would keep returning the stale figure."""

    def test_recalibration_changes_transfer_seconds_after_prior_query(self):
        slow = CodecThroughput(encode_bps=1e9, decode_bps=1e9)
        fast = CodecThroughput(encode_bps=100e9, decode_bps=100e9)
        nbytes = 1 << 20
        before = compressed_transfer_seconds(nbytes, nbytes // 4, 8, LINK, slow)
        after = compressed_transfer_seconds(nbytes, nbytes // 4, 8, LINK, fast)
        assert after < before
        # Equal-by-value keys still hit the cache deterministically.
        again = compressed_transfer_seconds(
            nbytes, nbytes // 4, 8, LINK, CodecThroughput(1e9, 1e9)
        )
        assert again == before

    def test_recalibration_can_flip_compression_wins(self):
        nbytes = 1 << 20
        glacial = CodecThroughput(encode_bps=1e6, decode_bps=1e6)
        assert not compression_wins(nbytes, nbytes // 8, 8, LINK, glacial)
        assert compression_wins(nbytes, nbytes // 8, 8, LINK, TP)

    def test_new_link_spec_is_a_new_cache_key(self):
        nbytes = 1 << 20
        fat = LinkSpec(bandwidth=100e9, latency=1e-6)
        t_thin = compressed_transfer_seconds(nbytes, nbytes // 4, 8, LINK, TP)
        t_fat = compressed_transfer_seconds(nbytes, nbytes // 4, 8, fat, TP)
        assert t_fat < t_thin


FUSED_LINK = LinkSpec(bandwidth=16e9, latency=5e-6)


class TestFusedRecurrence:
    """The fused-reduce closed recurrence must match a Timeline replay
    of the identical schedule to <=1e-9 relative error (ISSUE gate)."""

    @pytest.mark.parametrize("world", [1, 2, 4, 16])
    @pytest.mark.parametrize("chunk", [None, 64 << 10])
    @pytest.mark.parametrize("allgather", [True, False])
    @pytest.mark.parametrize("hop_recode", [False, True])
    def test_recurrence_matches_timeline_replay(
        self, world, chunk, allgather, hop_recode
    ):
        plan = uniform_fused_plan(
            4 << 20, world, encoded_ratio=3.0, chunk_bytes=chunk,
            allgather=allgather, hop_recode=hop_recode,
        )
        analytic = fused_reduce_time(plan, FUSED_LINK, TP)
        replay = timeline_fused_reduce(plan, FUSED_LINK, TP)
        assert analytic == pytest.approx(replay, rel=1e-9)
        if world > 1 or not hop_recode:
            assert analytic > 0
        else:
            # Degenerate single-rank ring: a frame codec never touches
            # the payload, so the fused op rightly charges nothing.
            assert analytic == 0.0

    def test_raw_plan_matches_classic_ring_models(self):
        from repro.cluster.collectives import (
            ring_allreduce_time,
            ring_reduce_scatter_time,
        )

        nbytes = 8 << 20
        for world in (2, 4, 32):
            shard = -(-nbytes // world)
            ar = uniform_fused_plan(nbytes, world, charge_codec=False)
            assert fused_reduce_time(ar, FUSED_LINK, None) == pytest.approx(
                ring_allreduce_time(world, world * shard, FUSED_LINK),
                rel=1e-12,
            )
            rs = uniform_fused_plan(
                nbytes, world, charge_codec=False, allgather=False
            )
            assert fused_reduce_time(rs, FUSED_LINK, None) == pytest.approx(
                ring_reduce_scatter_time(world, world * shard, FUSED_LINK),
                rel=1e-12,
            )

    def test_uniform_plan_matches_measured_plan_for_fp16(self):
        from repro.core.compression import Fp16Codec
        from repro.core.wire.fused import plan_fused_reduce

        world, n = 4, 4096
        rng = np.random.default_rng(7)
        arrays = [
            rng.standard_normal(n).astype(np.float32) for _ in range(world)
        ]
        measured = plan_fused_reduce(arrays, Fp16Codec(), chunk_bytes=2048)
        uniform = uniform_fused_plan(
            arrays[0].nbytes, world, encoded_ratio=2.0, chunk_bytes=2048
        )
        assert measured == uniform

    def test_recode_plan_ships_partials_not_totals(self):
        plan = uniform_fused_plan(
            1 << 20, 8, encoded_ratio=4.0, hop_recode=True
        )
        summable = uniform_fused_plan(1 << 20, 8, encoded_ratio=4.0)
        # Recode decodes only the (world-1)-hop accumulated shard;
        # summable decodes the whole gathered payload.
        assert sum(plan.final_decode) < sum(summable.final_decode)
        assert plan.hop_recode and not summable.hop_recode

    def test_chunking_pipelines_the_fused_ring(self):
        big = uniform_fused_plan(64 << 20, 16, encoded_ratio=2.0)
        chunked = uniform_fused_plan(
            64 << 20, 16, encoded_ratio=2.0, chunk_bytes=1 << 20
        )
        assert fused_reduce_time(chunked, FUSED_LINK, TP) < fused_reduce_time(
            big, FUSED_LINK, TP
        )

    def test_plan_validation(self):
        with pytest.raises(ValueError, match="logical_bytes"):
            uniform_fused_plan(0, 4)
        with pytest.raises(ValueError, match="world"):
            uniform_fused_plan(1 << 20, 0)
