"""Tests for the perf-layer codec model (repro.perf.codec_model).

The central gate: the analytic pipelined makespan must equal the
makespan measured by executing the same chunk schedule on a real
Timeline — the Timeline's contention rules are the model, so any
divergence is a modeling bug, not noise.
"""

import numpy as np
import pytest

from repro.cluster.interconnect import LinkSpec
from repro.core.wire.codecs import DeltaBitpackCodec
from repro.core.wire.cost import codec_throughput
from repro.perf import (
    CodecThroughput,
    calibrate_codec_throughput,
    pipelined_transfer_time,
    serial_transfer_time,
    timeline_pipelined_transfer,
)

LINK = LinkSpec(bandwidth=16e9, latency=5e-6)
TP = CodecThroughput(encode_bps=50e9, decode_bps=80e9)


class TestAnalyticMatchesTimeline:
    @pytest.mark.parametrize("total", [64 << 10, 1 << 20, 100 << 20])
    @pytest.mark.parametrize("chunk", [None, 64 << 10, 4 << 20])
    @pytest.mark.parametrize("world", [2, 8, 32])
    def test_exact_agreement(self, total, chunk, world):
        kwargs = dict(
            logical_bytes=total, world=world, link=LINK, throughput=TP,
            chunk_bytes=chunk, encoded_ratio=4.0,
        )
        analytic = pipelined_transfer_time(**kwargs)
        measured = timeline_pipelined_transfer(**kwargs)
        assert analytic == pytest.approx(measured, rel=1e-12)

    def test_measured_frame_sizes_agree_too(self):
        """Data-dependent encoded sizes: feed real frame sizes back in."""
        rng = np.random.default_rng(0)
        vecs = np.sort(rng.choice(1_000_000, 65_536, replace=False)).astype(
            np.int64
        )
        chunk_elems = (64 << 10) // 8
        codec = DeltaBitpackCodec()
        encoded = [
            int(codec.encode(vecs[i:i + chunk_elems]).nbytes)
            for i in range(0, vecs.size, chunk_elems)
        ]
        kwargs = dict(
            logical_bytes=vecs.nbytes, world=8, link=LINK, throughput=TP,
            chunk_bytes=64 << 10, encoded_chunk_bytes=encoded,
        )
        analytic = pipelined_transfer_time(**kwargs)
        measured = timeline_pipelined_transfer(**kwargs)
        assert analytic == pytest.approx(measured, rel=1e-12)


class TestPipelineShape:
    def test_single_chunk_degenerates_to_serial(self):
        total = 1 << 20
        serial = serial_transfer_time(total, total // 4, 8, LINK, TP)
        piped = pipelined_transfer_time(
            total, 8, LINK, TP, chunk_bytes=None, encoded_ratio=4.0
        )
        assert piped == pytest.approx(serial, rel=1e-12)

    def test_bandwidth_bound_chunking_wins(self):
        """Where pipelining exists to win: big transfer, fat chunks."""
        total = 100 << 20
        serial = pipelined_transfer_time(
            total, 32, LINK, TP, chunk_bytes=None, encoded_ratio=4.0
        )
        piped = pipelined_transfer_time(
            total, 32, LINK, TP, chunk_bytes=4 << 20, encoded_ratio=4.0
        )
        assert piped < serial

    def test_latency_bound_overchunking_loses(self):
        """Each extra chunk pays (world-1) link latencies: over-chunking
        a small transfer is correctly *slower* than one chunk."""
        total = 256 << 10
        one = pipelined_transfer_time(
            total, 16, LINK, TP, chunk_bytes=None, encoded_ratio=4.0
        )
        many = pipelined_transfer_time(
            total, 16, LINK, TP, chunk_bytes=4 << 10, encoded_ratio=4.0
        )
        assert many > one

    def test_ragged_last_chunk_handled(self):
        t = pipelined_transfer_time(
            (1 << 20) + 12345, 4, LINK, TP, chunk_bytes=256 << 10
        )
        assert t > 0

    def test_input_validation(self):
        with pytest.raises(ValueError, match="logical_bytes"):
            pipelined_transfer_time(0, 4, LINK, TP)
        with pytest.raises(ValueError, match="chunk_bytes"):
            pipelined_transfer_time(1 << 20, 4, LINK, TP, chunk_bytes=-1)
        with pytest.raises(ValueError, match="encoded_ratio"):
            pipelined_transfer_time(1 << 20, 4, LINK, TP, encoded_ratio=0)
        with pytest.raises(ValueError, match="entries"):
            pipelined_transfer_time(
                1 << 20, 4, LINK, TP, chunk_bytes=256 << 10,
                encoded_chunk_bytes=[1, 2],
            )
        with pytest.raises(ValueError, match="world size"):
            from repro.cluster.timeline import Timeline

            timeline_pipelined_transfer(
                1 << 20, 4, LINK, TP, timeline=Timeline(8)
            )


class TestCalibration:
    def test_calibration_measures_positive_throughput(self):
        tp = calibrate_codec_throughput(
            DeltaBitpackCodec(), nbytes=64 << 10, repeats=1
        )
        assert tp.encode_bps > 0 and tp.decode_bps > 0

    def test_calibration_validation(self):
        with pytest.raises(ValueError, match="nbytes"):
            calibrate_codec_throughput(DeltaBitpackCodec(), nbytes=4)
        with pytest.raises(ValueError, match="repeats"):
            calibrate_codec_throughput(DeltaBitpackCodec(), repeats=0)

    def test_default_table_lookup(self):
        tp = codec_throughput("delta")
        assert tp.encode_bps > 0
        # Unknown codecs get the conservative delta entry.
        assert codec_throughput("nonesuch") == tp
