"""Property-based tests on the performance model's structural laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.perf import (
    ALL_TECHNIQUES,
    BASELINE,
    CHAR_LM_1B,
    UNIQUE_ONLY,
    WORD_LM_1B,
    PerfModel,
)

WORKLOADS = [WORD_LM_1B, CHAR_LM_1B]
worlds = st.integers(1, 200)


class TestMonotonicity:
    @given(g1=st.integers(1, 64), g2=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_technique_epoch_hours_decrease_with_gpus(self, g1, g2):
        """Within the paper's evaluated range (<= 64 GPUs), adding GPUs
        never makes an epoch meaningfully slower with the techniques.
        (Past ~150 GPUs the modeled overhead growth deliberately turns
        the curve — the efficiency collapse Table III foreshadows.)"""
        lo, hi = sorted((g1, g2))
        if lo == hi:
            return
        model = PerfModel(WORD_LM_1B)
        # 5% tolerance: the calibrated overhead gives the curve a shallow
        # minimum near ~40 GPUs, so the tail of the evaluated range is
        # near-flat rather than strictly decreasing.
        assert model.epoch_hours(hi, ALL_TECHNIQUES) <= model.epoch_hours(
            lo, ALL_TECHNIQUES
        ) * 1.05

    @given(g=worlds)
    @settings(max_examples=50, deadline=None)
    def test_baseline_never_cheaper_than_uniqueness(self, g):
        """Uniqueness alone (no cast overheads) strictly dominates the
        baseline at every scale.  The FULL stack can lose at trivial G
        for the char LM — the Section V-B cast-overhead effect — which
        is why the comparison pins UNIQUE_ONLY."""
        for workload in WORKLOADS:
            model = PerfModel(workload)
            assert model.epoch_hours(g, BASELINE) >= model.epoch_hours(
                g, UNIQUE_ONLY
            )

    @given(g=worlds)
    @settings(max_examples=50)
    def test_baseline_memory_grows_with_world(self, g):
        model = PerfModel(WORD_LM_1B)
        if g < 200:
            assert model.peak_memory_bytes(
                g + 1, BASELINE
            ) >= model.peak_memory_bytes(g, BASELINE)

    @given(g=worlds)
    @settings(max_examples=50)
    def test_oom_monotone_in_world(self, g):
        """If a configuration OOMs at G GPUs it OOMs at G+1 (baseline
        scratch only grows)."""
        model = PerfModel(WORD_LM_1B)
        if g < 200 and model.is_oom(g, BASELINE):
            assert model.is_oom(g + 1, BASELINE)


class TestStructuralBounds:
    @given(g=worlds)
    @settings(max_examples=50)
    def test_unique_rows_bounded(self, g):
        for workload in WORKLOADS:
            model = PerfModel(workload)
            ug = model.unique_input_rows(g)
            assert 0 < ug <= workload.vocab_size
            assert ug <= g * workload.local_batch_tokens

    @given(g=st.integers(2, 200))
    @settings(max_examples=50, deadline=None)
    def test_seeding_never_increases_output_rows(self, g):
        model = PerfModel(WORD_LM_1B)
        seeded = model.unique_output_rows(g, seeding=True)
        unseeded = model.unique_output_rows(g, seeding=False)
        assert seeded <= unseeded + 1e-9

    @given(g=worlds)
    @settings(max_examples=50, deadline=None)
    def test_iteration_cost_components_nonnegative(self, g):
        for workload in WORKLOADS:
            for tech in (BASELINE, UNIQUE_ONLY, ALL_TECHNIQUES):
                cost = PerfModel(workload).iteration_cost(g, tech)
                for value in (
                    cost.compute,
                    cost.dense_allreduce,
                    cost.input_exchange,
                    cost.output_exchange,
                    cost.local_update,
                    cost.overhead,
                    cost.cast_overhead,
                ):
                    assert value >= 0

    @given(g=st.integers(8, 200))
    @settings(max_examples=50, deadline=None)
    def test_efficiency_in_unit_interval(self, g):
        model = PerfModel(CHAR_LM_1B)
        eff = model.parallel_efficiency(g, ALL_TECHNIQUES)
        assert 0 < eff <= 1.05  # tiny tolerance for single-node boundary

    @given(g=worlds)
    @settings(max_examples=30, deadline=None)
    def test_compression_never_increases_word_lm_time(self, g):
        """For the word LM (no cast-overhead penalty) compression can
        only shrink wire terms."""
        from repro.perf import UNIQUE_SEEDING

        model = PerfModel(WORD_LM_1B)
        assert model.epoch_hours(g, ALL_TECHNIQUES) <= model.epoch_hours(
            g, UNIQUE_SEEDING
        ) + 1e-12
