"""Tests for the Young/Daly checkpoint-cadence cost model."""

import numpy as np
import pytest

from repro.perf import (
    checkpoint_cost_seconds,
    daly_interval,
    expected_overhead_fraction,
    optimal_checkpoint_steps,
    young_interval,
)


class TestCheckpointCost:
    def test_bytes_over_bandwidth(self):
        assert checkpoint_cost_seconds(10**9, 1e9) == pytest.approx(1.0)
        assert checkpoint_cost_seconds(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            checkpoint_cost_seconds(-1)
        with pytest.raises(ValueError):
            checkpoint_cost_seconds(10, write_bandwidth=0.0)


class TestYoungInterval:
    def test_formula(self):
        assert young_interval(2.0, 100.0) == pytest.approx(20.0)

    def test_minimizes_overhead_fraction(self):
        """Young's tau is the exact argmin of C/tau + tau/2M."""
        C, M = 3.0, 700.0
        tau_star = young_interval(C, M)
        best = expected_overhead_fraction(tau_star, C, M)
        for tau in np.linspace(tau_star * 0.2, tau_star * 5.0, 201):
            assert expected_overhead_fraction(float(tau), C, M) >= (
                best - 1e-12
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 10.0)
        with pytest.raises(ValueError):
            young_interval(1.0, 0.0)


class TestDalyInterval:
    def test_approaches_young_when_cost_is_small(self):
        C, M = 1e-4, 3600.0
        assert daly_interval(C, M) == pytest.approx(
            young_interval(C, M), rel=1e-2
        )

    def test_shorter_than_young_for_moderate_cost(self):
        # The -C correction dominates the higher-order terms here.
        C, M = 10.0, 1000.0
        assert daly_interval(C, M) < young_interval(C, M)

    def test_saturates_at_mtbf_for_huge_cost(self):
        assert daly_interval(5000.0, 100.0) == 100.0
        assert daly_interval(200.0, 100.0) == 100.0

    def test_never_below_checkpoint_cost(self):
        assert daly_interval(150.0, 100.0) >= 150.0 or (
            daly_interval(150.0, 100.0) == 100.0
        )
        # Just under the 2M saturation threshold the floor applies.
        assert daly_interval(199.0, 100.0) >= 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            daly_interval(-1.0, 10.0)
        with pytest.raises(ValueError):
            daly_interval(1.0, -10.0)


class TestOverheadFraction:
    def test_components(self):
        # tau=10, C=1, M=50: 1/10 write + 10/100 expected rework.
        assert expected_overhead_fraction(10.0, 1.0, 50.0) == pytest.approx(
            0.2
        )

    def test_zero_cost_leaves_only_rework(self):
        assert expected_overhead_fraction(10.0, 0.0, 50.0) == pytest.approx(
            0.1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_overhead_fraction(0.0, 1.0, 10.0)
        with pytest.raises(ValueError):
            expected_overhead_fraction(1.0, -1.0, 10.0)
        with pytest.raises(ValueError):
            expected_overhead_fraction(1.0, 1.0, 0.0)


class TestOptimalSteps:
    def test_rounds_interval_to_steps(self):
        # Young: sqrt(2*2*100) = 20s; at 3s/step -> 7 steps.
        assert optimal_checkpoint_steps(
            3.0, 2.0, 100.0, use_daly=False
        ) == 7

    def test_floor_of_one_step(self):
        assert optimal_checkpoint_steps(1e6, 1.0, 10.0) == 1

    def test_daly_default_differs_from_young_when_cost_matters(self):
        young_steps = optimal_checkpoint_steps(
            1.0, 50.0, 1000.0, use_daly=False
        )
        daly_steps = optimal_checkpoint_steps(1.0, 50.0, 1000.0)
        assert daly_steps < young_steps

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_checkpoint_steps(0.0, 1.0, 10.0)
