"""Tests for hardware presets, footprints, and efficiency arithmetic."""

import pytest

from repro.data.batching import BatchSpec
from repro.perf import (
    PAPER_PLATFORM,
    PRIOR_WORK_PLATFORM,
    char_lm_footprint,
    parallel_efficiency,
    scaling_speedup,
    speedup,
    weak_scaling_time_increase,
    word_lm_footprint,
)
from repro.train.config import PAPER_CHAR_LM, PAPER_WORD_LM, WordLMConfig


class TestPlatform:
    def test_paper_cluster_dimensions(self):
        assert PAPER_PLATFORM.gpus_per_node == 8
        assert PAPER_PLATFORM.max_gpus == 400  # 50 nodes x 8
        assert PAPER_PLATFORM.num_nodes(192) == 24

    def test_aggregate_flops(self):
        """0.39 PFLOP/s peak at 64 Titan X, as in Section V-D."""
        assert PAPER_PLATFORM.aggregate_peak_flops(64) == pytest.approx(
            0.39e15, rel=0.01
        )

    def test_prior_work_is_16_pflops(self):
        """128 V100 = 16 PFLOP/s, the paper's '41x more powerful'."""
        assert PRIOR_WORK_PLATFORM.aggregate_peak_flops(128) == pytest.approx(
            16e15, rel=0.01
        )
        ratio = PRIOR_WORK_PLATFORM.aggregate_peak_flops(
            128
        ) / PAPER_PLATFORM.aggregate_peak_flops(64)
        assert ratio == pytest.approx(41, rel=0.02)

    def test_world_bounds(self):
        with pytest.raises(ValueError):
            PAPER_PLATFORM.aggregate_peak_flops(0)
        with pytest.raises(ValueError):
            PAPER_PLATFORM.aggregate_peak_flops(401)


class TestFootprints:
    def test_vocab_truncation_claim(self):
        """Section IV-B: ~800K vocab needs ~8x the memory of 100K —
        the motivation for truncating the vocabulary."""
        batch = BatchSpec(32, 20)
        full = word_lm_footprint(WordLMConfig(vocab_size=800_000), batch)
        cut = word_lm_footprint(PAPER_WORD_LM, batch)
        assert 5 < full.total / cut.total < 9

    def test_100k_word_lm_near_paper_figure(self):
        """Paper: ~1.3 GB for the truncated-vocabulary model."""
        fp = word_lm_footprint(PAPER_WORD_LM, BatchSpec(32, 20))
        assert fp.total == pytest.approx(1.3e9, rel=0.6)

    def test_char_lm_dominated_by_activations(self):
        """Depth-10 RHN over 19,200-token batches caches per-micro-layer
        state: activations dwarf the 98-symbol embeddings."""
        fp = char_lm_footprint(PAPER_CHAR_LM, BatchSpec(128, 150))
        assert fp.activations > fp.parameters

    def test_breakdown_total(self):
        fp = word_lm_footprint(PAPER_WORD_LM, BatchSpec(32, 20))
        assert fp.total == (
            fp.parameters + fp.gradients + fp.optimizer_state + fp.activations
        )

    def test_optimizer_slots(self):
        batch = BatchSpec(32, 20)
        sgd = word_lm_footprint(PAPER_WORD_LM, batch, optimizer_slots=0)
        adam = word_lm_footprint(PAPER_WORD_LM, batch, optimizer_slots=2)
        assert adam.optimizer_state == 2 * adam.parameters
        assert sgd.optimizer_state == 0


class TestEfficiencyArithmetic:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert scaling_speedup(35.1, 4.5) == pytest.approx(7.8, abs=0.1)

    def test_parallel_efficiency_paper_row(self):
        """Table III row: 14.6h at 8 GPUs -> 8.1h at 16 is 90%."""
        assert parallel_efficiency(14.6, 8.1, 16, 8) == pytest.approx(0.90, abs=0.01)

    def test_weak_scaling_ratio(self):
        assert weak_scaling_time_increase(27.0, 34.0) == pytest.approx(1.26, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 1.0, 4, 8)
        with pytest.raises(ValueError):
            weak_scaling_time_increase(-1.0, 1.0)
