"""Tests for the analytic performance model: Tables III/IV/V shapes.

These assert the *shape* claims of the paper's evaluation — who wins,
rough factors, crossovers, OOM onset — not exact wall-clock hours (the
model is calibrated, not fitted point-by-point; see EXPERIMENTS.md for
the paper-vs-model numbers).
"""

import pytest

from repro.perf import (
    ALL_TECHNIQUES,
    BASELINE,
    CHAR_LM_1B,
    CHAR_LM_TIEBA,
    UNIQUE_ONLY,
    UNIQUE_SEEDING,
    WORD_LM_1B,
    PerfModel,
    TechniqueSet,
)

WORD = PerfModel(WORD_LM_1B)
CHAR = PerfModel(CHAR_LM_1B)


class TestTechniqueSet:
    def test_labels(self):
        assert BASELINE.label == "baseline"
        assert UNIQUE_ONLY.label == "+uniqueness"
        assert ALL_TECHNIQUES.label == "+uniqueness+seeding+compression"

    def test_seeding_requires_unique(self):
        with pytest.raises(ValueError):
            TechniqueSet(unique=False, seeding=True)


class TestTableIIIWordLM:
    def test_baseline_ooms_at_32_gpus(self):
        """The '*' cells: OOM at >= 32 GPUs without the techniques."""
        assert not WORD.is_oom(24, BASELINE)
        assert WORD.is_oom(32, BASELINE)
        assert WORD.is_oom(64, BASELINE)

    def test_techniques_never_oom_through_64(self):
        for g in (8, 16, 24, 32, 64):
            assert not WORD.is_oom(g, ALL_TECHNIQUES)

    def test_baseline_memory_grows_linearly(self):
        """Paper: 3.9 / 7.1 / 10.3 GB at 8/16/24 GPUs (~0.4 GB per GPU)."""
        m8 = WORD.peak_memory_bytes(8, BASELINE)
        m16 = WORD.peak_memory_bytes(16, BASELINE)
        m24 = WORD.peak_memory_bytes(24, BASELINE)
        step1 = (m16 - m8) / 8
        step2 = (m24 - m16) / 8
        assert step1 == pytest.approx(step2, rel=1e-6)  # linear
        assert 0.3e9 < step1 < 0.5e9  # ~0.41 GB per GPU
        assert m8 == pytest.approx(3.9e9, rel=0.2)
        assert m24 == pytest.approx(10.3e9, rel=0.15)

    def test_technique_memory_flat(self):
        """Paper: 1.19 GB at 8 GPUs -> 1.21 GB at 64 GPUs."""
        m8 = WORD.peak_memory_bytes(8, ALL_TECHNIQUES)
        m64 = WORD.peak_memory_bytes(64, ALL_TECHNIQUES)
        assert m64 / m8 < 1.1
        assert m8 < 2e9

    def test_memory_reduction_factor(self):
        """Paper: 8.6x at 24 GPUs."""
        ratio = WORD.peak_memory_bytes(24, BASELINE) / WORD.peak_memory_bytes(
            24, ALL_TECHNIQUES
        )
        assert 6 < ratio < 13

    def test_with_technique_hours_match_paper_band(self):
        """Paper: 14.6 / 8.1 / 6.4 / 5.4 / 4.5 hours at 8/16/24/32/64."""
        paper = {8: 14.6, 16: 8.1, 24: 6.4, 32: 5.4, 64: 4.5}
        for g, hours in paper.items():
            assert WORD.epoch_hours(g, ALL_TECHNIQUES) == pytest.approx(
                hours, rel=0.25
            )

    def test_baseline_fails_to_scale(self):
        """Paper: baseline time *rises* from 35.1h (8) to 41.1h (16)."""
        assert WORD.epoch_hours(16, BASELINE) > WORD.epoch_hours(8, BASELINE)

    def test_technique_scales_strongly(self):
        assert WORD.epoch_hours(64, ALL_TECHNIQUES) < WORD.epoch_hours(
            8, ALL_TECHNIQUES
        ) / 2.5

    def test_parallel_efficiency_band(self):
        """Paper: 90% / 76% / 67% / 40% at 16/24/32/64 GPUs."""
        paper = {16: 0.90, 24: 0.76, 32: 0.67, 64: 0.40}
        for g, eff in paper.items():
            assert WORD.parallel_efficiency(g, ALL_TECHNIQUES) == pytest.approx(
                eff, abs=0.12
            )


class TestFigure6Ablation:
    @pytest.mark.parametrize("g,total", [(16, 5.1), (24, 6.3)])
    def test_cumulative_speedup_total(self, g, total):
        """Full stack vs baseline: 5.1x at 16 GPUs, 6.3x at 24."""
        speedup = WORD.epoch_hours(g, BASELINE) / WORD.epoch_hours(
            g, ALL_TECHNIQUES
        )
        assert speedup == pytest.approx(total, rel=0.35)

    @pytest.mark.parametrize("g", [16, 24])
    def test_each_technique_strictly_helps(self, g):
        t_base = WORD.epoch_hours(g, BASELINE)
        t_uniq = WORD.epoch_hours(g, UNIQUE_ONLY)
        t_seed = WORD.epoch_hours(g, UNIQUE_SEEDING)
        t_all = WORD.epoch_hours(g, ALL_TECHNIQUES)
        assert t_base > t_uniq > t_seed > t_all

    def test_uniqueness_dominates_the_gain(self):
        """Paper: uniqueness alone is 4.0x of the 5.1x at 16 GPUs."""
        base = WORD.epoch_hours(16, BASELINE)
        uniq_share = (base - WORD.epoch_hours(16, UNIQUE_ONLY)) / (
            base - WORD.epoch_hours(16, ALL_TECHNIQUES)
        )
        assert uniq_share > 0.7

    def test_speedup_grows_with_gpus(self):
        """Paper: 5.1x (16) -> 6.3x (24): the types/tokens gap widens."""
        s16 = WORD.epoch_hours(16, BASELINE) / WORD.epoch_hours(16, ALL_TECHNIQUES)
        s24 = WORD.epoch_hours(24, BASELINE) / WORD.epoch_hours(24, ALL_TECHNIQUES)
        assert s24 > s16


class TestTableIVCharLM:
    def test_baseline_ooms_beyond_24(self):
        assert not CHAR.is_oom(24, BASELINE)
        assert CHAR.is_oom(32, BASELINE)

    def test_with_technique_hours_match_paper_band(self):
        """Paper: 23.2 / 12.9 / 8.2 / 6.8 / 3.5 hours."""
        paper = {8: 23.2, 16: 12.9, 24: 8.2, 32: 6.8, 64: 3.5}
        for g, hours in paper.items():
            assert CHAR.epoch_hours(g, ALL_TECHNIQUES) == pytest.approx(
                hours, rel=0.25
            )

    def test_baseline_gap_smaller_than_word_lm(self):
        """Char vocab saturates at 98 types, so uniqueness helps less:
        baseline/technique ratio at 16 GPUs is ~1.1x (vs ~5x for words)."""
        char_ratio = CHAR.epoch_hours(16, BASELINE) / CHAR.epoch_hours(
            16, ALL_TECHNIQUES
        )
        word_ratio = WORD.epoch_hours(16, BASELINE) / WORD.epoch_hours(
            16, ALL_TECHNIQUES
        )
        assert 1.0 < char_ratio < 1.6
        assert word_ratio > 3 * char_ratio

    def test_efficiency_band(self):
        """Paper: 96% / 94% / 86% / 82% at 16/24/32/64 GPUs."""
        paper = {16: 0.96, 24: 0.94, 32: 0.86, 64: 0.82}
        for g, eff in paper.items():
            assert CHAR.parallel_efficiency(g, ALL_TECHNIQUES) == pytest.approx(
                eff, abs=0.12
            )

    def test_compression_overhead_limits_char_gain(self):
        """Paper: only ~2% gain from compression for char LM (cast
        overhead on >20 tensors)."""
        t_no = CHAR.epoch_hours(16, UNIQUE_ONLY)
        t_yes = CHAR.epoch_hours(
            16, TechniqueSet(unique=True, compression=True)
        )
        gain = (t_no - t_yes) / t_no
        assert -0.05 < gain < 0.1

    def test_unique_rows_saturate_at_char_vocab(self):
        """Section V-B: unique characters hit the vocabulary ceiling."""
        assert CHAR.unique_input_rows(8) == 98.0
        assert CHAR.unique_input_rows(64) == 98.0


class TestTableVTiebaWeakScaling:
    @staticmethod
    def hours(gpus: int, data_factor: float) -> float:
        w = CHAR_LM_TIEBA.scaled(tokens_per_epoch=1.07e9 * data_factor)
        return PerfModel(w).epoch_hours(gpus, ALL_TECHNIQUES)

    def test_time_increases_match_paper(self):
        """Paper: 27h -> 28h (1.04x at 4x data) -> 34h (1.25x at 32x)."""
        t6 = self.hours(6, 1)
        t24 = self.hours(24, 4)
        t192 = self.hours(192, 32)
        assert t6 == pytest.approx(27.0, rel=0.15)
        assert t24 / t6 == pytest.approx(1.04, abs=0.08)
        assert t192 / t6 == pytest.approx(1.25, abs=0.1)

    def test_15k_vocab_benefits_from_unique(self):
        """Tieba's 15,437-char vocabulary is ~150x English: the unique
        path saturates at |V| rather than G*K."""
        m = PerfModel(CHAR_LM_TIEBA)
        assert m.unique_input_rows(192) == 15_437.0

    def test_never_oom_at_192(self):
        m = PerfModel(CHAR_LM_TIEBA)
        assert not m.is_oom(192, ALL_TECHNIQUES)


class TestModelValidation:
    def test_world_bounds(self):
        with pytest.raises(ValueError):
            WORD.epoch_hours(0, BASELINE)
        with pytest.raises(ValueError):
            WORD.epoch_hours(500, BASELINE)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            WORD_LM_1B.scaled(compute_seconds_per_iter=0.0)
        with pytest.raises(ValueError):
            WORD_LM_1B.scaled(baseline_inefficiency=0.5)
        with pytest.raises(ValueError):
            WORD_LM_1B.scaled(vocab_size=0)

    def test_iteration_cost_components_positive(self):
        cost = WORD.iteration_cost(16, ALL_TECHNIQUES)
        assert cost.compute > 0
        assert cost.dense_allreduce > 0
        assert cost.input_exchange > 0
        assert cost.output_exchange > 0
        assert cost.total > cost.compute

    def test_full_softmax_has_no_output_exchange(self):
        cost = CHAR.iteration_cost(16, ALL_TECHNIQUES)
        assert cost.output_exchange == 0.0


class TestOOMOnset:
    def test_word_lm_baseline_onset_at_32(self):
        """Table III's '*' boundary: first OOM between 24 and 32 GPUs."""
        onset = WORD.oom_onset(BASELINE)
        assert onset is not None
        assert 24 < onset <= 32

    def test_char_lm_baseline_onset_at_32(self):
        onset = CHAR.oom_onset(BASELINE)
        assert onset is not None
        assert 24 < onset <= 32

    def test_techniques_never_oom(self):
        assert WORD.oom_onset(ALL_TECHNIQUES) is None
        assert CHAR.oom_onset(ALL_TECHNIQUES) is None
