"""Tests for the computational-intensity analysis."""

import pytest

from repro.data.batching import BatchSpec
from repro.perf import (
    ALL_TECHNIQUES,
    CHAR_LM_1B,
    WORD_LM_1B,
    achieved_flops_per_gpu,
    aggregate_achieved_flops,
    char_lm_flops_per_iteration,
    intensity_report,
    word_lm_flops_per_iteration,
)
from repro.train.config import PAPER_CHAR_LM, PAPER_WORD_LM


class TestFlopCounts:
    def test_word_lm_near_paper_figure(self):
        """Paper: 136 GFLOP per iteration for the word LM."""
        flops = word_lm_flops_per_iteration(PAPER_WORD_LM, BatchSpec(32, 20))
        assert flops == pytest.approx(136e9, rel=0.5)

    def test_char_lm_same_magnitude_as_paper_figure(self):
        """Paper: 2,721 GFLOP per iteration for the char LM.

        Our 3x fwd+bwd convention over the depth-10 RHN gives ~7.5 TFLOP;
        the paper's figure sits between our forward-only (~2.5 TFLOP) and
        full counts — its counting convention is unstated, so the test
        pins the order of magnitude, not the constant.
        """
        flops = char_lm_flops_per_iteration(PAPER_CHAR_LM, BatchSpec(128, 150))
        assert 1e12 < flops < 1e13
        forward_only = flops / 3
        assert forward_only == pytest.approx(2721e9, rel=0.35)

    def test_char_lm_is_compute_richer(self):
        """The 20x intensity gap that explains the efficiency difference."""
        word = word_lm_flops_per_iteration(PAPER_WORD_LM, BatchSpec(32, 20))
        char = char_lm_flops_per_iteration(PAPER_CHAR_LM, BatchSpec(128, 150))
        assert char > 10 * word


class TestAchievedThroughput:
    def test_word_lm_2_44_tflops(self):
        """Paper: 2.44 TFLOP/s = 40% of Titan X peak."""
        assert achieved_flops_per_gpu(fraction=0.40) == pytest.approx(
            2.44e12, rel=0.01
        )

    def test_char_lm_3_9_tflops(self):
        """Paper: 3.95 TFLOP/s = 64% of peak."""
        assert achieved_flops_per_gpu(fraction=0.64) == pytest.approx(
            3.9e12, rel=0.02
        )

    def test_tieba_aggregate_0_76_pflops(self):
        """Paper Section V-C: 0.76 PFLOP/s total on 192 GPUs."""
        assert aggregate_achieved_flops(192, fraction=0.64) == pytest.approx(
            0.76e15, rel=0.02
        )

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            achieved_flops_per_gpu(fraction=0.0)
        with pytest.raises(ValueError):
            achieved_flops_per_gpu(fraction=1.5)


class TestIntensityReports:
    def test_char_lm_is_compute_bound(self):
        report = intensity_report(CHAR_LM_1B, 16, ALL_TECHNIQUES)
        assert report.bound == "compute"
        assert report.compute_fraction > 0.7

    def test_word_lm_less_compute_dominated_at_scale(self):
        """At 64 GPUs the word LM's compute share collapses — the
        low-intensity story behind its 40% efficiency."""
        r16 = intensity_report(WORD_LM_1B, 16, ALL_TECHNIQUES)
        r64 = intensity_report(WORD_LM_1B, 64, ALL_TECHNIQUES)
        assert r64.compute_fraction < r16.compute_fraction
        assert r64.compute_fraction < 0.5

    def test_fractions_sum_to_one(self):
        report = intensity_report(WORD_LM_1B, 32, ALL_TECHNIQUES)
        total = (
            report.compute_seconds
            + report.communication_seconds
            + report.overhead_seconds
        )
        assert report.total_seconds == pytest.approx(total)
        assert 0 < report.compute_fraction < 1
