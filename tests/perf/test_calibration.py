"""Tests for performance-model calibration from published rows."""

import pytest

from repro.perf import (
    ALL_TECHNIQUES,
    CHAR_LM_1B,
    WORD_LM_1B,
    PerfModel,
    calibrate_workload,
)

TABLE3_WITH = {8: 14.6, 16: 8.1, 24: 6.4, 32: 5.4, 64: 4.5}
TABLE4_WITH = {8: 23.2, 16: 12.9, 24: 8.2, 32: 6.8, 64: 3.5}


class TestWordLMCalibration:
    def test_fits_table3_tightly(self):
        result = calibrate_workload(WORD_LM_1B, TABLE3_WITH)
        assert result.max_relative_error < 0.05

    def test_rederived_constants_near_preset(self):
        """The shipped preset constants are reproducible artifacts, not
        arbitrary tuning: re-deriving from Table III lands nearby."""
        result = calibrate_workload(WORD_LM_1B, TABLE3_WITH)
        assert result.compute_seconds_per_iter == pytest.approx(
            WORD_LM_1B.compute_seconds_per_iter, rel=0.15
        )

    def test_applied_workload_reproduces_rows(self):
        result = calibrate_workload(WORD_LM_1B, TABLE3_WITH)
        model = PerfModel(result.apply(WORD_LM_1B))
        for g, hours in TABLE3_WITH.items():
            assert model.epoch_hours(g, ALL_TECHNIQUES) == pytest.approx(
                hours, rel=0.06
            )


class TestCharLMCalibration:
    def test_fits_table4(self):
        result = calibrate_workload(CHAR_LM_1B, TABLE4_WITH, quadratic=False)
        assert result.max_relative_error < 0.08
        assert result.compute_seconds_per_iter == pytest.approx(
            CHAR_LM_1B.compute_seconds_per_iter, rel=0.1
        )

    def test_compute_dominates_char_lm(self):
        """The calibrated split must reflect the workload's intensity:
        char-LM compute per iteration far exceeds its overhead at 64."""
        result = calibrate_workload(CHAR_LM_1B, TABLE4_WITH, quadratic=False)
        assert result.compute_seconds_per_iter > 3 * (
            result.overhead_linear * 64
        )


class TestValidation:
    def test_needs_two_rows(self):
        with pytest.raises(ValueError):
            calibrate_workload(WORD_LM_1B, {8: 14.6})

    def test_positive_hours_required(self):
        with pytest.raises(ValueError):
            calibrate_workload(WORD_LM_1B, {8: 14.6, 16: -1.0})

    def test_constants_never_negative(self):
        # Rows that the comm model alone over-explains must clip, not
        # produce negative compute.
        tiny = {8: 1e-4, 16: 1e-4}
        result = calibrate_workload(WORD_LM_1B, tiny, quadratic=False)
        assert result.compute_seconds_per_iter >= 0
        assert result.overhead_linear >= 0

    def test_quadratic_auto_selection(self):
        # Two rows -> linear only, even for a quadratic-preset workload.
        result = calibrate_workload(WORD_LM_1B, {8: 14.6, 64: 4.5})
        assert result.overhead_quadratic == 0.0
