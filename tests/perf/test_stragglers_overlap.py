"""Tests for straggler and overlap analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Timeline, inject_straggler
from repro.perf import (
    ALL_TECHNIQUES,
    CHAR_LM_1B,
    WORD_LM_1B,
    PerfModel,
    efficiency_ceiling,
    expected_max_gaussian,
    overlap_speedup,
    overlapped_time,
    perfect_overlap_bound,
    simulate_synchronous_step,
    straggler_slowdown,
    timeline_overlapped_time,
    timeline_synchronous_step,
)


class TestStragglers:
    def test_single_rank_no_penalty(self):
        assert expected_max_gaussian(1, 2.0, 0.5) == 2.0
        assert straggler_slowdown(1, 0.3) == 1.0

    def test_slowdown_grows_with_world(self):
        vals = [straggler_slowdown(g, 0.1) for g in (2, 8, 64, 512)]
        assert vals == sorted(vals)
        assert vals[-1] < 1.5  # sqrt(2 ln G) grows slowly

    def test_formula_tracks_monte_carlo(self):
        rng = np.random.default_rng(0)
        for world in (4, 16, 64):
            mc = simulate_synchronous_step(world, 1.0, 0.1, rng, n_steps=4000)
            approx = expected_max_gaussian(world, 1.0, 0.1)
            assert approx == pytest.approx(mc, rel=0.07)

    def test_zero_jitter_is_free(self):
        rng = np.random.default_rng(1)
        assert simulate_synchronous_step(32, 1.0, 0.0, rng) == pytest.approx(1.0)

    def test_efficiency_ceiling_decreasing(self):
        c16 = efficiency_ceiling(16, cv=0.1)
        c64 = efficiency_ceiling(64, cv=0.1)
        assert 0 < c64 < c16 <= 1.0

    def test_ceiling_above_paper_measurements(self):
        """Jitter alone cannot explain all of Table III's fade — the
        ceiling at plausible cv must sit above the measured 40%@64."""
        assert efficiency_ceiling(64, cv=0.15) > 0.40

    @given(world=st.integers(1, 512), cv=st.floats(0.0, 0.9))
    @settings(max_examples=50)
    def test_slowdown_at_least_one(self, world, cv):
        assert straggler_slowdown(world, cv) >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_max_gaussian(0, 1.0, 0.1)
        with pytest.raises(ValueError):
            straggler_slowdown(4, 1.5)
        with pytest.raises(ValueError):
            simulate_synchronous_step(0, 1.0, 0.1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            efficiency_ceiling(4, 0.1, reference_world=8)


class TestOverlap:
    def test_zero_overlap_is_sequential(self):
        cost = PerfModel(WORD_LM_1B).iteration_cost(64, ALL_TECHNIQUES)
        assert overlapped_time(cost, 0.0) == pytest.approx(cost.total)

    def test_full_overlap_hides_comm_up_to_compute(self):
        cost = PerfModel(WORD_LM_1B).iteration_cost(64, ALL_TECHNIQUES)
        t = overlapped_time(cost, 1.0)
        comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
        hidden = min(comm, cost.compute)
        assert t == pytest.approx(cost.total - hidden)

    def test_speedup_monotone_in_fraction(self):
        speedups = [
            overlap_speedup(CHAR_LM_1B, 64, ALL_TECHNIQUES, f)
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)

    def test_char_lm_hides_all_comm(self):
        """The compute-rich char LM can hide its entire dense allreduce."""
        cost = PerfModel(CHAR_LM_1B).iteration_cost(64, ALL_TECHNIQUES)
        comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
        assert cost.compute > comm  # fully hideable
        bound = perfect_overlap_bound(CHAR_LM_1B, 64, ALL_TECHNIQUES)
        assert bound == pytest.approx(cost.total / (cost.total - comm))

    def test_fraction_validation(self):
        cost = PerfModel(WORD_LM_1B).iteration_cost(16, ALL_TECHNIQUES)
        with pytest.raises(ValueError):
            overlapped_time(cost, -0.1)
        with pytest.raises(ValueError):
            overlapped_time(cost, 1.1)


class TestTimelineOverlap:
    """The analytic overlap model vs the scheduled two-stream timeline.

    These are two independent derivations of the same quantity: the
    closed form assumes max(C, (1-f)C + comm) + trailing; the timeline
    actually schedules head compute, per-bucket collectives on a shared
    link, tail compute, and a completion barrier.  They must agree."""

    @pytest.mark.parametrize("fraction", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_matches_analytic_model(self, fraction):
        cost = PerfModel(WORD_LM_1B).iteration_cost(32, ALL_TECHNIQUES)
        analytic = overlapped_time(cost, fraction)
        scheduled = timeline_overlapped_time(cost, fraction)
        assert scheduled == pytest.approx(analytic, rel=1e-9)

    def test_compute_rich_model_agrees_too(self):
        cost = PerfModel(CHAR_LM_1B).iteration_cost(64, ALL_TECHNIQUES)
        for f in (0.0, 0.5, 1.0):
            assert timeline_overlapped_time(cost, f) == pytest.approx(
                overlapped_time(cost, f), rel=1e-9
            )

    def test_bucket_count_does_not_change_total(self):
        """The link serializes buckets back-to-back, so splitting the
        same comm volume into more buckets moves no extra time."""
        cost = PerfModel(WORD_LM_1B).iteration_cost(32, ALL_TECHNIQUES)
        times = {
            timeline_overlapped_time(cost, 0.5, n_buckets=n)
            for n in (1, 4, 16)
        }
        assert len({round(t, 12) for t in times}) == 1

    def test_external_timeline_accumulates(self):
        tl = Timeline(8)
        cost = PerfModel(WORD_LM_1B).iteration_cost(32, ALL_TECHNIQUES)
        t1 = timeline_overlapped_time(cost, 0.5, timeline=tl)
        t2 = timeline_overlapped_time(cost, 0.5, timeline=tl)
        assert t1 == pytest.approx(t2)
        assert tl.makespan == pytest.approx(t1 + t2)

    def test_straggler_shifts_timeline_as_predicted(self):
        """A deliberate straggler injected into the timeline must move
        the measured step in the direction (and by the amount) the
        synchronous-step model predicts: slowest rank gates the step."""
        clean = timeline_synchronous_step(Timeline(8), 1.0, 0.1, n_steps=3)
        slowed = timeline_synchronous_step(
            inject_straggler(Timeline(8), rank=3, slowdown=1.5),
            1.0,
            0.1,
            n_steps=3,
        )
        assert clean == pytest.approx(1.1)
        assert slowed == pytest.approx(1.5 * 1.0 + 0.1)
        assert slowed > clean

    def test_straggler_penalty_consistent_with_gaussian_model(self):
        """expected_max_gaussian(G, mu, sigma) predicts the per-step
        compute gate; a timeline whose slowest rank runs at that exact
        multiple measures the same step time."""
        world, mu, sigma = 16, 1.0, 0.1
        predicted = expected_max_gaussian(world, mu, sigma)
        tl = inject_straggler(Timeline(world), rank=0, slowdown=predicted / mu)
        measured = timeline_synchronous_step(tl, mu, comm_s=0.0, n_steps=2)
        assert measured == pytest.approx(predicted)

    def test_validation(self):
        cost = PerfModel(WORD_LM_1B).iteration_cost(32, ALL_TECHNIQUES)
        with pytest.raises(ValueError):
            timeline_overlapped_time(cost, 1.5)
        with pytest.raises(ValueError):
            timeline_overlapped_time(cost, 0.5, n_buckets=0)
        with pytest.raises(ValueError):
            timeline_overlapped_time(cost, 0.5, timeline=Timeline(4), world=8)
        with pytest.raises(ValueError):
            timeline_synchronous_step(Timeline(2), -1.0)
