"""Tests for straggler and overlap analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.perf import (
    ALL_TECHNIQUES,
    CHAR_LM_1B,
    WORD_LM_1B,
    PerfModel,
    efficiency_ceiling,
    expected_max_gaussian,
    overlap_speedup,
    overlapped_time,
    perfect_overlap_bound,
    simulate_synchronous_step,
    straggler_slowdown,
)


class TestStragglers:
    def test_single_rank_no_penalty(self):
        assert expected_max_gaussian(1, 2.0, 0.5) == 2.0
        assert straggler_slowdown(1, 0.3) == 1.0

    def test_slowdown_grows_with_world(self):
        vals = [straggler_slowdown(g, 0.1) for g in (2, 8, 64, 512)]
        assert vals == sorted(vals)
        assert vals[-1] < 1.5  # sqrt(2 ln G) grows slowly

    def test_formula_tracks_monte_carlo(self):
        rng = np.random.default_rng(0)
        for world in (4, 16, 64):
            mc = simulate_synchronous_step(world, 1.0, 0.1, rng, n_steps=4000)
            approx = expected_max_gaussian(world, 1.0, 0.1)
            assert approx == pytest.approx(mc, rel=0.07)

    def test_zero_jitter_is_free(self):
        rng = np.random.default_rng(1)
        assert simulate_synchronous_step(32, 1.0, 0.0, rng) == pytest.approx(1.0)

    def test_efficiency_ceiling_decreasing(self):
        c16 = efficiency_ceiling(16, cv=0.1)
        c64 = efficiency_ceiling(64, cv=0.1)
        assert 0 < c64 < c16 <= 1.0

    def test_ceiling_above_paper_measurements(self):
        """Jitter alone cannot explain all of Table III's fade — the
        ceiling at plausible cv must sit above the measured 40%@64."""
        assert efficiency_ceiling(64, cv=0.15) > 0.40

    @given(world=st.integers(1, 512), cv=st.floats(0.0, 0.9))
    @settings(max_examples=50)
    def test_slowdown_at_least_one(self, world, cv):
        assert straggler_slowdown(world, cv) >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_max_gaussian(0, 1.0, 0.1)
        with pytest.raises(ValueError):
            straggler_slowdown(4, 1.5)
        with pytest.raises(ValueError):
            simulate_synchronous_step(0, 1.0, 0.1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            efficiency_ceiling(4, 0.1, reference_world=8)


class TestOverlap:
    def test_zero_overlap_is_sequential(self):
        cost = PerfModel(WORD_LM_1B).iteration_cost(64, ALL_TECHNIQUES)
        assert overlapped_time(cost, 0.0) == pytest.approx(cost.total)

    def test_full_overlap_hides_comm_up_to_compute(self):
        cost = PerfModel(WORD_LM_1B).iteration_cost(64, ALL_TECHNIQUES)
        t = overlapped_time(cost, 1.0)
        comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
        hidden = min(comm, cost.compute)
        assert t == pytest.approx(cost.total - hidden)

    def test_speedup_monotone_in_fraction(self):
        speedups = [
            overlap_speedup(CHAR_LM_1B, 64, ALL_TECHNIQUES, f)
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)

    def test_char_lm_hides_all_comm(self):
        """The compute-rich char LM can hide its entire dense allreduce."""
        cost = PerfModel(CHAR_LM_1B).iteration_cost(64, ALL_TECHNIQUES)
        comm = cost.dense_allreduce + cost.input_exchange + cost.output_exchange
        assert cost.compute > comm  # fully hideable
        bound = perfect_overlap_bound(CHAR_LM_1B, 64, ALL_TECHNIQUES)
        assert bound == pytest.approx(cost.total / (cost.total - comm))

    def test_fraction_validation(self):
        cost = PerfModel(WORD_LM_1B).iteration_cost(16, ALL_TECHNIQUES)
        with pytest.raises(ValueError):
            overlapped_time(cost, -0.1)
        with pytest.raises(ValueError):
            overlapped_time(cost, 1.1)
