"""Tests for the unique-exchange crossover analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Communicator
from repro.core import (
    AllGatherExchange,
    UniqueExchange,
    breakeven_unique_rows,
    crossover_duplication_factor,
    unique_wins_comm,
)
from repro.nn import SparseGrad


class TestBreakeven:
    def test_single_gpu_never_crosses(self):
        assert breakeven_unique_rows(1, 100, 64) == float("inf")

    def test_large_d_limit(self):
        """For D -> inf the crossover duplication factor -> 2."""
        factor = crossover_duplication_factor(8, 1000, 100_000)
        assert factor == pytest.approx(2.0, rel=0.01)

    def test_unique_wins_under_zipf_duplication(self):
        g, k, d = 64, 19_200, 1792
        # Zipf gives Ug ~ (GK)^0.64 << GK: uniqueness wins easily.
        assert unique_wins_comm(g, k, d, u_global=(g * k) ** 0.64)

    def test_unique_loses_without_duplication(self):
        g, k, d = 8, 1000, 512
        assert not unique_wins_comm(g, k, d, u_global=g * k)

    def test_breakeven_is_the_boundary(self):
        g, k, d = 8, 1000, 512
        u_star = breakeven_unique_rows(g, k, d)
        assert unique_wins_comm(g, k, d, u_star * 0.99)
        assert not unique_wins_comm(g, k, d, u_star * 1.01)

    @given(
        g=st.integers(2, 64),
        k=st.integers(16, 4096),
        d=st.integers(8, 2048),
    )
    @settings(max_examples=60)
    def test_property_boundary_consistent(self, g, k, d):
        u_star = breakeven_unique_rows(g, k, d)
        if u_star <= 0:
            return  # index traffic alone exceeds the baseline (tiny D)
        assert unique_wins_comm(g, k, d, max(0.0, u_star - 1))


class TestMeasuredCrossover:
    """The analytic boundary matches actual ledger byte counts."""

    @staticmethod
    def measured_bytes(world, vocab, tokens, dim, seed=0):
        rng = np.random.default_rng(seed)
        grads = [
            SparseGrad(
                indices=rng.permutation(vocab)[:tokens]
                if vocab >= tokens
                else rng.integers(0, vocab, tokens),
                values=rng.standard_normal((tokens, dim)).astype(np.float32),
            )
            for _ in range(world)
        ]
        c_base = Communicator(world, track_memory=False)
        c_uniq = Communicator(world, track_memory=False)
        AllGatherExchange().exchange(c_base, grads)
        UniqueExchange().exchange(c_uniq, grads)
        return (
            c_base.ledger.total_wire_bytes_per_rank,
            c_uniq.ledger.total_wire_bytes_per_rank,
        )

    def test_high_duplication_unique_wins_measured(self):
        base, uniq = self.measured_bytes(8, vocab=30, tokens=200, dim=64)
        assert uniq < base

    def test_all_distinct_unique_loses_measured(self):
        """Each rank holds disjoint, never-repeating types: the unique
        path's 2x allreduce factor makes it worse, as predicted."""
        world, tokens, dim = 4, 128, 64
        grads = [
            SparseGrad(
                indices=np.arange(r * tokens, (r + 1) * tokens),
                values=np.ones((tokens, dim), np.float32),
            )
            for r in range(world)
        ]
        c_base = Communicator(world, track_memory=False)
        c_uniq = Communicator(world, track_memory=False)
        AllGatherExchange().exchange(c_base, grads)
        UniqueExchange().exchange(c_uniq, grads)
        assert (
            c_uniq.ledger.total_wire_bytes_per_rank
            > c_base.ledger.total_wire_bytes_per_rank
        )
