"""Seeded randomized property tests for the two core techniques.

Driven by the in-repo :mod:`tests.proptest` helper (no external
property-testing dependency): 200 random cases per property, shrinking
by halving on failure, and a reproducing ``seed=/case=`` pair in every
failure message.

Properties
----------
* Exchange equivalence, bit-for-bit: the paper's unique exchange and the
  dense allgather baseline must densify to *identical* arrays — not just
  close.  Gradient values are small-integer-valued floats, so every
  partial sum is exactly representable and summation order cannot leak
  into the comparison; any mismatch is a real algorithmic divergence.
* FP16 codec round-trip: with a power-of-two scale (exact division on
  decode) and inputs bounded away from saturation, the decode error is
  within the half-precision rounding bound
  ``2**-11 * |x| + 2**-24 / scale`` elementwise.
"""

import numpy as np
import pytest

from repro.cluster import Communicator
from repro.core.compression import FP16_MAX, Fp16Codec
from repro.core.sparse_exchange import AllGatherExchange, UniqueExchange
from repro.nn.parameter import SparseGrad

from ..proptest import run_property

N_CASES = 200

_DTYPES = (np.float32, np.float64)


# ---------------------------------------------------------------------------
# Property 1: unique exchange ≡ dense allgather exchange, bit for bit.
# ---------------------------------------------------------------------------


def _gen_exchange_case(rng):
    return {
        "world": int(rng.integers(1, 6)),
        "vocab": int(rng.integers(2, 65)),
        "tokens": int(rng.integers(1, 33)),
        "dim": int(rng.integers(1, 9)),
        "dtype_index": int(rng.integers(0, len(_DTYPES))),
    }


def _integer_valued_grads(params, rng):
    """Per-rank SparseGrads whose float values are small exact integers."""
    dtype = _DTYPES[params["dtype_index"]]
    return [
        SparseGrad(
            indices=rng.integers(0, params["vocab"], params["tokens"]),
            values=rng.integers(
                -4, 5, (params["tokens"], params["dim"])
            ).astype(dtype),
        )
        for _ in range(params["world"])
    ]


def _prop_exchange_equivalence(params, rng):
    grads = _integer_valued_grads(params, rng)
    dense = AllGatherExchange().exchange(
        Communicator(params["world"], track_memory=False), grads
    )
    unique = UniqueExchange().exchange(
        Communicator(params["world"], track_memory=False), grads
    )
    for rank in range(params["world"]):
        lhs = dense[rank].to_dense(params["vocab"])
        rhs = unique[rank].to_dense(params["vocab"])
        assert lhs.dtype == rhs.dtype, (lhs.dtype, rhs.dtype)
        assert np.array_equal(lhs, rhs), (
            f"rank {rank}: unique exchange diverged from allgather by "
            f"{np.max(np.abs(lhs - rhs))}"
        )


def test_unique_exchange_matches_allgather_bit_for_bit():
    assert (
        run_property(
            _prop_exchange_equivalence,
            _gen_exchange_case,
            n_cases=N_CASES,
            seed=0,
        )
        == N_CASES
    )


# ---------------------------------------------------------------------------
# Property 2: FP16 codec round-trip error within the rounding bound.
# ---------------------------------------------------------------------------


def _gen_codec_case(rng):
    return {
        "n": int(rng.integers(1, 257)),
        "scale_exp": int(rng.integers(1, 11)),
        "dtype_index": int(rng.integers(0, len(_DTYPES))),
    }


def _prop_codec_roundtrip(params, rng):
    dtype = _DTYPES[params["dtype_index"]]
    scale = 2.0 ** params["scale_exp"]
    # Bounded away from the saturation clip so the error is pure rounding.
    bound = FP16_MAX / scale * 0.99
    x = (rng.uniform(-bound, bound, params["n"])).astype(dtype)
    codec = Fp16Codec(scale=scale)
    wire = codec.encode(x)
    assert wire.dtype == np.float16
    decoded = codec.decode(wire, x.dtype)
    assert decoded.dtype == x.dtype
    # FP16 relative rounding error is 2^-11 (half ulp) plus an absolute
    # term of half the smallest subnormal step, 2^-24, undone by scale.
    tolerance = 2.0**-11 * np.abs(x) + 2.0**-24 / scale
    error = np.abs(decoded.astype(np.float64) - x.astype(np.float64))
    worst = int(np.argmax(error - tolerance))
    assert np.all(error <= tolerance), (
        f"round-trip error {error[worst]} exceeds bound {tolerance[worst]} "
        f"at x={x[worst]} (scale={scale})"
    )


def test_fp16_codec_roundtrip_error_bound():
    assert (
        run_property(
            _prop_codec_roundtrip, _gen_codec_case, n_cases=N_CASES, seed=0
        )
        == N_CASES
    )


# ---------------------------------------------------------------------------
# Meta-tests: the helper itself reports seeds and shrinks failures.
# ---------------------------------------------------------------------------


def test_failure_reports_reproducing_seed_and_shrinks():
    def gen(rng):
        return {"n": int(rng.integers(50, 200)), "label": "fixed"}

    def prop(params, rng):
        assert params["n"] < 5, f"n={params['n']} too big"

    with pytest.raises(AssertionError) as excinfo:
        run_property(prop, gen, n_cases=10, seed=7)
    message = str(excinfo.value)
    assert "seed=7" in message
    assert "case=0" in message
    assert "shrunk params" in message
    # Halving stops at the smallest still-failing value: 5 <= n < 10.
    shrunk = eval(message.split("shrunk params ")[1].split(";")[0])
    assert 5 <= shrunk["n"] < 10
    assert shrunk["label"] == "fixed"


def test_shrinking_skips_out_of_domain_candidates():
    def gen(rng):
        return {"n": 64}

    def prop(params, rng):
        if params["n"] < 8:
            raise ValueError("out of domain")
        assert params["n"] < 8

    with pytest.raises(AssertionError) as excinfo:
        run_property(prop, gen, n_cases=1, seed=0)
    shrunk = eval(str(excinfo.value).split("shrunk params ")[1].split(";")[0])
    assert shrunk["n"] == 8


def test_passing_property_runs_all_cases():
    count = run_property(
        lambda params, rng: None, lambda rng: {"n": 1}, n_cases=25, seed=3
    )
    assert count == 25


def test_rejects_nonpositive_case_count():
    with pytest.raises(ValueError):
        run_property(lambda p, r: None, lambda r: {}, n_cases=0)
