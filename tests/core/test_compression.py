"""Tests for the FP16 compression-scaling codec (Section III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.compression import Fp16Codec, IdentityCodec, wire_bytes_ratio


class TestIdentityCodec:
    def test_passthrough(self):
        codec = IdentityCodec()
        x = np.random.default_rng(0).standard_normal(10).astype(np.float32)
        np.testing.assert_array_equal(codec.encode(x), x)
        np.testing.assert_array_equal(codec.decode(x, np.float32), x)

    def test_wire_ratio_one(self):
        assert wire_bytes_ratio(IdentityCodec()) == 1.0


class TestFp16Codec:
    def test_wire_format_is_half_precision(self):
        codec = Fp16Codec()
        x = np.ones(5, np.float32)
        assert codec.encode(x).dtype == np.float16

    def test_wire_ratio_half(self):
        """The paper's '50% communication reduction'."""
        assert wire_bytes_ratio(Fp16Codec()) == 0.5

    def test_roundtrip_error_bounded(self):
        codec = Fp16Codec(scale=512.0)
        x = np.random.default_rng(1).standard_normal(1000).astype(np.float32)
        back = codec.decode(codec.encode(x), np.float32)
        # FP16 has ~1e-3 relative precision.
        np.testing.assert_allclose(back, x, rtol=2e-3, atol=1e-6)

    def test_scaling_preserves_small_gradients(self):
        """Compression-scaling's purpose: values below the FP16 subnormal
        floor survive when scaled up first."""
        tiny = np.full(100, 1e-8, np.float32)
        naive = Fp16Codec(scale=1.0)
        scaled = Fp16Codec(scale=1024.0)
        assert np.all(naive.decode(naive.encode(tiny), np.float32) == 0.0)
        back = scaled.decode(scaled.encode(tiny), np.float32)
        np.testing.assert_allclose(back, tiny, rtol=1e-2)

    def test_scaled_beats_naive_on_gradient_like_data(self):
        """Aggregate fidelity: scaling reduces reconstruction error on a
        realistic small-magnitude gradient distribution."""
        rng = np.random.default_rng(2)
        grads = (rng.standard_normal(10_000) * 1e-5).astype(np.float32)
        naive = Fp16Codec(scale=1.0)
        scaled = Fp16Codec(scale=1024.0)
        err_naive = np.abs(naive.decode(naive.encode(grads), np.float32) - grads).sum()
        err_scaled = np.abs(scaled.decode(scaled.encode(grads), np.float32) - grads).sum()
        assert err_scaled < err_naive / 10

    def test_saturation_instead_of_inf(self):
        codec = Fp16Codec(scale=1024.0)
        x = np.array([1e6], np.float32)
        encoded = codec.encode(x)
        assert np.isfinite(encoded).all()

    def test_paper_scale_factors_accepted(self):
        for f in (256.0, 512.0, 1024.0):
            Fp16Codec(scale=f)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Fp16Codec(scale=0.0)

    def test_decode_requires_fp16(self):
        with pytest.raises(ValueError):
            Fp16Codec().decode(np.zeros(3, np.float32), np.float32)

    def test_encode_requires_float(self):
        with pytest.raises(ValueError):
            Fp16Codec().encode(np.zeros(3, np.int64))

    @given(
        x=hnp.arrays(
            np.float32,
            (50,),
            elements=st.floats(-10, 10, allow_nan=False, width=32),
        ),
        scale=st.sampled_from([256.0, 512.0, 1024.0]),
    )
    @settings(max_examples=50)
    def test_roundtrip_relative_error_property(self, x, scale):
        codec = Fp16Codec(scale=scale)
        back = codec.decode(codec.encode(x), np.float32)
        np.testing.assert_allclose(back, x, rtol=2e-3, atol=1e-4)
