"""Tests for the data-axis mesh gradient exchange vs the flat path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Communicator, MeshCommunicator, hybrid_mesh
from repro.core.mesh_exchange import (
    MeshShardLayout,
    dense_mesh_allreduce,
    sparse_mesh_exchange,
)
from repro.core.sparse_exchange import UniqueExchange
from repro.nn.parameter import SparseGrad


def mesh_comm(spec, world):
    return MeshCommunicator(
        Communicator(world, track_memory=False), hybrid_mesh(spec, world)
    )


def sparse_grads(n, vocab, tokens, dim, seed=0):
    rng = np.random.default_rng(seed)
    return [
        SparseGrad(
            indices=rng.integers(0, vocab, tokens),
            values=rng.standard_normal((tokens, dim)),
        )
        for _ in range(n)
    ]


class TestLayout:
    def test_shard_and_data_coordinates(self):
        mc = mesh_comm("pipe=2,tensor=2,data=2", 8)
        layout = MeshShardLayout(mc.mesh)
        assert layout.num_shards == 4
        assert layout.data_size == 2
        for rank in range(8):
            shard, k = layout.shard_of[rank], layout.data_of[rank]
            assert layout.rank_of[(shard, k)] == rank
        # A data subgroup's members all carry the same shard index.
        for g in mc.mesh.groups("data"):
            assert len({layout.shard_of[r] for r in g.ranks}) == 1

    def test_requires_hybrid_axes(self):
        from repro.cluster import DeviceMesh

        with pytest.raises(ValueError, match="hybrid_mesh"):
            MeshShardLayout(DeviceMesh(("node", "local"), (2, 2)))


class TestDenseExchange:
    def test_trivial_mesh_matches_flat_allreduce_bitwise(self):
        world = 4
        mc = mesh_comm("pipe=1,tensor=1,data=G", world)
        rng = np.random.default_rng(0)
        grads = [rng.standard_normal((5, 3)) for _ in range(world)]
        flat = Communicator(world, track_memory=False).allreduce(
            [g.copy() for g in grads]
        )
        out = dense_mesh_allreduce(mc, grads, average=False)
        for o, f in zip(out, flat):
            np.testing.assert_array_equal(o, f)

    def test_hybrid_mesh_sums_per_data_subgroup(self):
        mc = mesh_comm("pipe=2,tensor=2,data=2", 8)
        rng = np.random.default_rng(1)
        grads = [rng.standard_normal((4, 3)) for _ in range(2)]
        out = dense_mesh_allreduce(mc, grads, average=False)
        expected = grads[0] + grads[1]
        for o in out:
            np.testing.assert_allclose(o, expected, rtol=1e-12)

    def test_average_divides_by_data_size(self):
        mc = mesh_comm("data=G", 4)
        grads = [np.full(6, 1.0) for _ in range(4)]
        out = dense_mesh_allreduce(mc, grads, average=True)
        np.testing.assert_array_equal(out[0], np.ones(6))

    def test_replica_count_checked(self):
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        with pytest.raises(ValueError, match="replica"):
            dense_mesh_allreduce(mc, [np.ones(4)] * 4)

    def test_shape_preserved(self):
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        grads = [np.ones((3, 2, 5)) for _ in range(2)]
        out = dense_mesh_allreduce(mc, grads, average=False)
        assert out[0].shape == (3, 2, 5)

    def test_charges_data_axis_collective(self):
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        dense_mesh_allreduce(mc, [np.ones(8)] * 2, tag="w")
        ev = mc.comm.ledger.events[-1]
        assert ev.op == "mesh_allreduce"
        assert ev.tag == "data:w"


class TestSparseExchange:
    @given(
        world=st.integers(1, 5),
        vocab=st.integers(2, 30),
        tokens=st.integers(1, 16),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=30, deadline=None)
    def test_trivial_mesh_matches_flat_unique_exchange(
        self, world, vocab, tokens, seed
    ):
        grads = sparse_grads(world, vocab, tokens, 3, seed=seed)
        flat = UniqueExchange().exchange(
            Communicator(world, track_memory=False), grads
        )
        mc = mesh_comm("pipe=1,tensor=1,data=G", world)
        out = sparse_mesh_exchange(mc, grads, vocab, average=False)
        for o, f in zip(out, flat):
            np.testing.assert_array_equal(o.indices, f.indices)
            np.testing.assert_array_equal(
                o.to_dense(vocab), f.to_dense(vocab)
            )

    def test_indices_globally_sorted_and_unique(self):
        mc = mesh_comm("pipe=2,tensor=2,data=2", 8)
        grads = sparse_grads(2, 40, 20, 3, seed=2)
        out = sparse_mesh_exchange(mc, grads, 40, average=False)
        for o in out:
            assert np.all(np.diff(o.indices) > 0)

    def test_hybrid_mesh_sums_per_data_subgroup(self):
        vocab = 25
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        grads = sparse_grads(2, vocab, 10, 3, seed=3)
        out = sparse_mesh_exchange(mc, grads, vocab, average=False)
        expected = grads[0].to_dense(vocab) + grads[1].to_dense(vocab)
        for o in out:
            np.testing.assert_allclose(
                o.to_dense(vocab), expected, rtol=1e-12
            )

    def test_average_divides_by_data_size(self):
        vocab = 10
        mc = mesh_comm("data=G", 4)
        grads = [
            SparseGrad(indices=np.array([1]), values=np.ones((1, 2)))
            for _ in range(4)
        ]
        out = sparse_mesh_exchange(mc, grads, vocab, average=True)
        np.testing.assert_array_equal(out[0].values, np.ones((1, 2)))

    def test_replica_count_checked(self):
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        with pytest.raises(ValueError, match="replica"):
            sparse_mesh_exchange(mc, sparse_grads(4, 10, 5, 2), 10)

    def test_empty_contributions_are_fine(self):
        mc = mesh_comm("pipe=2,tensor=2,data=2", 8)
        grads = [
            SparseGrad(
                indices=np.empty(0, dtype=np.int64),
                values=np.empty((0, 3)),
            )
            for _ in range(2)
        ]
        out = sparse_mesh_exchange(mc, grads, 20, average=False)
        for o in out:
            assert o.indices.size == 0

    def test_uses_allgather_then_allreduce_on_data_axis(self):
        mc = mesh_comm("pipe=1,tensor=2,data=2", 4)
        sparse_mesh_exchange(mc, sparse_grads(2, 12, 6, 2), 12, tag="emb")
        ops = [(e.op, e.tag) for e in mc.comm.ledger.events]
        assert ("mesh_allgather", "data:emb:indices") in ops
        assert ("mesh_allreduce", "data:emb:values") in ops
