"""Tests for the exchange strategies: baseline vs unique."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Communicator, DeviceOOMError, DeviceSpec
from repro.core.compression import Fp16Codec
from repro.core.sparse_exchange import AllGatherExchange, UniqueExchange
from repro.nn.parameter import SparseGrad


def comm(world=4, **kw):
    kw.setdefault("track_memory", False)
    return Communicator(world, **kw)


def random_grads(world, vocab, tokens, dim, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return [
        SparseGrad(
            indices=rng.integers(0, vocab, tokens),
            values=rng.standard_normal((tokens, dim)).astype(dtype),
        )
        for _ in range(world)
    ]


class TestEquivalence:
    """The central invariant: strategies differ in cost, not semantics."""

    @given(
        world=st.integers(1, 5),
        vocab=st.integers(2, 30),
        tokens=st.integers(1, 20),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_same_applied_update(self, world, vocab, tokens, seed):
        grads = random_grads(world, vocab, tokens, 3, seed=seed)
        base = AllGatherExchange().exchange(comm(world), grads)
        uniq = UniqueExchange().exchange(comm(world), grads)
        np.testing.assert_allclose(
            base[0].to_dense(vocab), uniq[0].to_dense(vocab), rtol=1e-9, atol=1e-12
        )

    def test_every_rank_gets_same_result(self):
        grads = random_grads(3, 20, 8, 2)
        for strategy in (AllGatherExchange(), UniqueExchange()):
            results = strategy.exchange(comm(3), grads)
            assert len(results) == 3
            for r in results[1:]:
                np.testing.assert_array_equal(r.indices, results[0].indices)
                np.testing.assert_allclose(r.values, results[0].values)


class TestCostSeparation:
    def test_unique_moves_fewer_bytes_with_duplicates(self):
        """With a Zipf-heavy batch, unique exchange must win on volume."""
        world, dim = 8, 64
        rng = np.random.default_rng(1)
        # Heavy duplication: 256 tokens drawn from only 20 types.
        grads = [
            SparseGrad(
                indices=rng.integers(0, 20, 256),
                values=rng.standard_normal((256, dim)),
            )
            for _ in range(world)
        ]
        c_base, c_uniq = comm(world), comm(world)
        AllGatherExchange().exchange(c_base, grads)
        UniqueExchange().exchange(c_uniq, grads)
        assert (
            c_uniq.ledger.total_wire_bytes_per_rank
            < c_base.ledger.total_wire_bytes_per_rank / 4
        )

    def test_baseline_can_oom_where_unique_fits(self):
        """Reproduces the Table III/IV '*' cells in miniature."""
        device = DeviceSpec(name="small", memory_bytes=300_000, peak_flops=1e12)
        world, tokens, dim = 8, 80, 64
        # Heavy duplication (50 types): Ug stays tiny while the baseline
        # must hold all 8 * 80 dense rows.
        grads = random_grads(world, 50, tokens, dim, seed=2)
        with pytest.raises(DeviceOOMError):
            AllGatherExchange().exchange(
                Communicator(world, device_spec=device), grads
            )
        UniqueExchange().exchange(
            Communicator(world, device_spec=device), grads
        )  # must not raise

    def test_unique_peak_memory_below_baseline(self):
        world, tokens, dim = 4, 100, 32
        grads = random_grads(world, 50, tokens, dim, seed=3)
        c_base = Communicator(world)
        c_uniq = Communicator(world)
        AllGatherExchange().exchange(c_base, grads)
        UniqueExchange().exchange(c_uniq, grads)
        assert c_uniq.peak_bytes_per_rank < c_base.peak_bytes_per_rank


class TestAsyncExchange:
    @pytest.mark.parametrize(
        "strategy_cls", [AllGatherExchange, UniqueExchange]
    )
    def test_iexchange_matches_blocking(self, strategy_cls):
        grads = random_grads(3, 20, 10, 3, seed=6)
        blocking = strategy_cls().exchange(comm(3), grads)
        pending = strategy_cls().iexchange(comm(3), grads)
        assert not pending.is_complete()
        overlapped = pending.wait()
        assert pending.is_complete()
        for b, o in zip(blocking, overlapped):
            np.testing.assert_array_equal(b.indices, o.indices)
            np.testing.assert_allclose(b.values, o.values, rtol=1e-12)

    @pytest.mark.parametrize(
        "strategy_cls", [AllGatherExchange, UniqueExchange]
    )
    def test_wait_is_idempotent(self, strategy_cls):
        grads = random_grads(2, 10, 6, 2, seed=7)
        pending = strategy_cls().iexchange(comm(2), grads)
        assert pending.wait() is pending.wait()

    def test_allgather_defers_value_stage_to_wait(self):
        """Only the index allgather is in flight after issue: the value
        allgather is deferred so the blocking peak-memory profile (one
        Θ(G·K·D) buffer at a time) is preserved byte-for-byte."""
        c = comm(3)
        pending = AllGatherExchange().iexchange(
            c, random_grads(3, 20, 8, 4, seed=8)
        )
        assert len(c.pending_work) == 1
        pending.wait()
        assert c.pending_work == ()

    def test_iexchange_peak_memory_matches_blocking(self):
        world, tokens, dim = 4, 100, 32
        grads = random_grads(world, 50, tokens, dim, seed=9)
        c_block = Communicator(world)
        c_async = Communicator(world)
        AllGatherExchange().exchange(c_block, grads)
        AllGatherExchange().iexchange(c_async, grads).wait()
        assert c_async.peak_bytes_per_rank == c_block.peak_bytes_per_rank

    def test_validation_fires_at_issue(self):
        with pytest.raises(ValueError):
            AllGatherExchange().iexchange(comm(3), random_grads(2, 10, 4, 2))


class TestCompression:
    def test_fp16_equivalence_within_tolerance(self):
        grads = random_grads(4, 25, 16, 4, seed=4, dtype=np.float32)
        exact = UniqueExchange().exchange(comm(4), grads)
        lossy = UniqueExchange(codec=Fp16Codec(512.0)).exchange(comm(4), grads)
        np.testing.assert_allclose(
            exact[0].to_dense(25), lossy[0].to_dense(25), atol=5e-3
        )

    def test_fp16_halves_baseline_value_traffic(self):
        grads = random_grads(4, 25, 16, 4, seed=5, dtype=np.float32)
        c_plain, c_fp16 = comm(4), comm(4)
        AllGatherExchange().exchange(c_plain, grads)
        AllGatherExchange(codec=Fp16Codec()).exchange(c_fp16, grads)
        # Index traffic unchanged; value traffic halved.
        plain = c_plain.ledger.bytes_by_op()["allgather"]
        fp16 = c_fp16.ledger.bytes_by_op()["allgather"]
        idx_bytes = 3 * 16 * 8  # (G-1) * tokens * int64
        assert (fp16 - idx_bytes) * 2 == plain - idx_bytes


class TestValidation:
    def test_rank_count_checked(self):
        with pytest.raises(ValueError):
            AllGatherExchange().exchange(comm(3), random_grads(2, 10, 4, 2))

    def test_dim_mismatch_checked(self):
        grads = [
            SparseGrad(np.array([0]), np.ones((1, 2))),
            SparseGrad(np.array([0]), np.ones((1, 3))),
        ]
        with pytest.raises(ValueError):
            AllGatherExchange().exchange(comm(2), grads)

    def test_strategy_names(self):
        assert AllGatherExchange().name == "allgather"
        assert UniqueExchange().name == "unique"
