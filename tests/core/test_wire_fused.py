"""Fused compress-reduce collectives: numerics, accounting, schedules.

Three contracts are pinned here:

* **Numerics** — fused results are bit-identical to the reference
  folds: the unfused encode → allreduce → decode path for summable
  value codecs, the plain rank-order fold for frame codecs (exact
  integer addition) and for ``codec=None``.
* **Accounting** — the raw fused ring's makespan equals the classic
  ring cost models exactly; wire bytes land on the ledger under the
  ``fused-<codec>`` scope; encoded hop bytes for a recoding ring are
  the *measured* sizes of the actual partial sums.
* **Schedule equivalence** — the live Timeline elapsed time equals
  :func:`repro.perf.codec_model.fused_reduce_time` on the same plan
  (the ≤1e-9 hop-recoding recurrence gate, exercised across codec
  regimes, chunkings, and world sizes).
"""

import numpy as np
import pytest

from repro.cluster.collectives import (
    allreduce_arrays,
    reduce_scatter_arrays,
    ring_allreduce_time,
    ring_reduce_scatter_time,
)
from repro.cluster.communicator import Communicator
from repro.cluster.lockstep import LockstepVerifier
from repro.core.compression import Fp16Codec
from repro.core.wire import (
    DeltaBitpackCodec,
    EntropyCodec,
    RunLengthCodec,
    icompressed_allreduce,
    icompressed_reduce_scatter,
    plan_fused_reduce,
)
from repro.core.wire.cost import codec_throughput
from repro.perf.codec_model import fused_reduce_time, timeline_fused_reduce

RNG = np.random.default_rng(20260808)


def _floats(world, n):
    return [RNG.standard_normal(n).astype(np.float32) for _ in range(world)]


def _indices(world, n, vocab=10**7):
    return [
        np.sort(RNG.integers(0, vocab, n)).astype(np.int64)
        for _ in range(world)
    ]


class TestFusedNumerics:
    def test_raw_allreduce_matches_plain_fold_bitwise(self):
        arrays = _floats(4, 256)
        comm = Communicator(4)
        got = icompressed_allreduce(comm, [a.copy() for a in arrays]).wait()
        want = allreduce_arrays([a.copy() for a in arrays])
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_fp16_allreduce_matches_unfused_encode_reduce_decode(self):
        codec = Fp16Codec(512.0)
        arrays = _floats(4, 300)
        comm = Communicator(4)
        got = icompressed_allreduce(
            comm, [a.copy() for a in arrays], codec=codec
        ).wait()
        encoded = [codec.encode(a) for a in arrays]
        reduced = allreduce_arrays(encoded, shared_result=True)[0]
        want = codec.decode(reduced, np.dtype(np.float32))
        for g in got:
            assert np.array_equal(g, want)

    @pytest.mark.parametrize(
        "codec", [EntropyCodec(), DeltaBitpackCodec(), RunLengthCodec()]
    )
    def test_frame_codec_allreduce_matches_integer_fold(self, codec):
        arrays = _indices(4, 512)
        comm = Communicator(4)
        got = icompressed_allreduce(
            comm, [a.copy() for a in arrays], codec=codec
        ).wait()
        want = allreduce_arrays([a.copy() for a in arrays])
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_reduce_scatter_shards_match_reference(self):
        codec = Fp16Codec()
        arrays = [
            RNG.standard_normal((8, 3)).astype(np.float32) for _ in range(4)
        ]
        comm = Communicator(4)
        got = icompressed_reduce_scatter(
            comm, [a.copy() for a in arrays], codec=codec
        ).wait()
        shards = reduce_scatter_arrays([codec.encode(a) for a in arrays])
        want = [codec.decode(s, np.dtype(np.float32)) for s in shards]
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_frame_codec_reduce_scatter_matches_integer_fold(self):
        arrays = _indices(4, 16)
        comm = Communicator(4)
        got = icompressed_reduce_scatter(
            comm, [a.copy() for a in arrays], codec=EntropyCodec()
        ).wait()
        want = reduce_scatter_arrays([a.copy() for a in arrays])
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_chunked_pipeline_is_bit_identical_to_unchunked(self):
        arrays = _indices(4, 4096)
        comm = Communicator(4)
        got = icompressed_allreduce(
            comm,
            [a.copy() for a in arrays],
            codec=EntropyCodec(),
            chunk_bytes=2048,
        ).wait()
        want = allreduce_arrays([a.copy() for a in arrays])
        for g, w in zip(got, want):
            assert np.array_equal(g, w)

    def test_shared_result_hands_one_object_to_every_rank(self):
        arrays = _floats(4, 64)
        comm = Communicator(4)
        got = icompressed_allreduce(
            comm, arrays, codec=Fp16Codec(), shared_result=True
        ).wait()
        assert all(g is got[0] for g in got[1:])

    def test_world_one_is_a_codec_roundtrip(self):
        a = RNG.standard_normal(48).astype(np.float32)
        codec = Fp16Codec()
        comm = Communicator(1)
        got = icompressed_allreduce(comm, [a.copy()], codec=codec).wait()
        want = codec.decode(codec.encode(a), np.dtype(np.float32))
        assert np.array_equal(got[0], want)

    def test_zero_length_payloads_survive_every_regime(self):
        for codec, dtype in (
            (None, np.float32),
            (Fp16Codec(), np.float32),
            (EntropyCodec(), np.int64),
            (DeltaBitpackCodec(), np.int64),
        ):
            comm = Communicator(4)
            empt = [np.zeros(0, dtype=dtype) for _ in range(4)]
            got = icompressed_allreduce(comm, empt, codec=codec).wait()
            assert all(g.size == 0 and g.dtype == dtype for g in got)
            comm = Communicator(4)
            got = icompressed_reduce_scatter(
                comm, [np.zeros(0, dtype=dtype) for _ in range(4)],
                codec=codec,
            ).wait()
            assert all(g.size == 0 for g in got)

    def test_wait_is_idempotent(self):
        comm = Communicator(4)
        h = icompressed_allreduce(comm, _floats(4, 64), codec=Fp16Codec())
        first = h.wait()
        makespan = comm.timeline.makespan
        assert h.wait() is first
        assert comm.timeline.makespan == makespan


class TestFusedValidation:
    def test_frame_codec_rejects_float_payloads(self):
        comm = Communicator(4)
        with pytest.raises(ValueError, match="not summable on the wire"):
            icompressed_allreduce(
                comm, _floats(4, 64), codec=DeltaBitpackCodec()
            )

    def test_lossy_unsummable_codec_rejected(self):
        class Lossy:
            name = "lossy"
            lossless = False
            summable = False

        with pytest.raises(ValueError, match="lossy"):
            plan_fused_reduce(_indices(4, 16), Lossy())

    def test_reduce_scatter_checks_divisibility(self):
        comm = Communicator(4)
        with pytest.raises(ValueError, match="divisible"):
            icompressed_reduce_scatter(
                comm, [np.zeros(7, np.float32) for _ in range(4)]
            )

    def test_world_size_mismatch_rejected(self):
        comm = Communicator(4)
        with pytest.raises(ValueError, match="4-rank"):
            icompressed_allreduce(comm, _floats(3, 8))


class TestFusedAccounting:
    def test_raw_ring_matches_classic_cost_models_exactly(self):
        arrays = _floats(8, 1024)
        comm = Communicator(8)
        link = comm.fabric.ring_link(8)
        t0 = comm.timeline.mark()
        icompressed_allreduce(comm, [a.copy() for a in arrays]).wait()
        assert comm.timeline.elapsed_since(t0) == pytest.approx(
            ring_allreduce_time(8, arrays[0].nbytes, link), rel=1e-12
        )
        comm = Communicator(8)
        t0 = comm.timeline.mark()
        icompressed_reduce_scatter(comm, [a.copy() for a in arrays]).wait()
        assert comm.timeline.elapsed_since(t0) == pytest.approx(
            ring_reduce_scatter_time(8, arrays[0].nbytes, link), rel=1e-12
        )

    def test_ledger_charges_encoded_bytes_under_fused_scope(self):
        arrays = _indices(4, 1024)
        comm = Communicator(4)
        icompressed_allreduce(comm, arrays, codec=EntropyCodec()).wait()
        plan = plan_fused_reduce(arrays, EntropyCodec())
        hop_sum = sum(sum(r) for r in plan.rs_hop_bytes) + sum(
            sum(r) for r in plan.ag_hop_bytes
        )
        scoped = [
            e for e in comm.ledger.events if e.scope.startswith("fused-entropy")
        ]
        assert scoped, "no fused-entropy ledger events"
        assert sum(e.wire_bytes_per_rank for e in scoped) == hop_sum
        # Compressed hops ship less than raw shards would have.
        shard = arrays[0].nbytes // 4
        raw_hops = (2 * 3) * shard
        assert hop_sum < raw_hops

    def test_recode_hop_sizes_are_measured_from_real_partials(self):
        codec = EntropyCodec()
        arrays = _indices(3, 9)
        plan = plan_fused_reduce(arrays, codec)
        flats = [a.reshape(-1) for a in arrays]
        shard = 3
        for h in range(1, 3):  # hop h ships partials over h ranks
            expect = 0
            for j in range(3):
                part = flats[j][j * shard:(j + 1) * shard].copy()
                for k in range(1, h):
                    part += flats[(j + k) % 3][j * shard:(j + 1) * shard]
                expect = max(expect, int(codec.encode(part).size))
            assert plan.rs_hop_bytes[0][h - 1] == expect

    def test_lockstep_verifier_accepts_fused_traffic(self):
        comm = Communicator(4)
        LockstepVerifier.attach(comm)
        icompressed_allreduce(
            comm, _indices(4, 256), codec=EntropyCodec(), chunk_bytes=512
        ).wait()
        comm.verifier.check("fused: end")


class TestFusedScheduleEquivalence:
    """Live Timeline elapsed ≡ analytic recurrence ≡ Timeline replay."""

    @pytest.mark.parametrize("world", [2, 4, 8])
    @pytest.mark.parametrize("chunk_bytes", [None, 1024])
    @pytest.mark.parametrize("allgather", [True, False])
    def test_live_elapsed_equals_recurrence(
        self, world, chunk_bytes, allgather
    ):
        cases = [
            (None, _floats(world, 2048)),
            (Fp16Codec(), _floats(world, 2048)),
            (EntropyCodec(), _indices(world, 2048)),
        ]
        for codec, arrays in cases:
            comm = Communicator(world)
            plan = plan_fused_reduce(
                [a.copy() for a in arrays], codec,
                allgather=allgather, chunk_bytes=chunk_bytes,
            )
            link = comm.fabric.ring_link(world)
            tp = codec_throughput(codec.name) if codec is not None else None
            fn = (
                icompressed_allreduce if allgather
                else icompressed_reduce_scatter
            )
            t0 = comm.timeline.mark()
            fn(
                comm, [a.copy() for a in arrays], codec=codec,
                chunk_bytes=chunk_bytes,
            ).wait()
            live = comm.timeline.elapsed_since(t0)
            analytic = fused_reduce_time(plan, link, tp)
            assert abs(live - analytic) <= 1e-9 * max(abs(analytic), 1e-30)
            replay = timeline_fused_reduce(plan, link, tp)
            assert abs(replay - analytic) <= 1e-9 * max(abs(analytic), 1e-30)
