"""Tests for the replica gradient synchronizer."""

import numpy as np
import pytest

from repro.cluster import Communicator
from repro.core.compression import Fp16Codec
from repro.core.embedding_sync import GradientSynchronizer, concat_token_grads
from repro.core.sparse_exchange import UniqueExchange
from repro.nn import Embedding, Linear, Module
from repro.nn.parameter import Parameter, SparseGrad


class TinyModel(Module):
    """Embedding + linear: one sparse-grad and one dense-grad parameter."""

    def __init__(self, rng):
        super().__init__()
        self.emb = Embedding(12, 4, rng)
        self.lin = Linear(4, 2, rng)


def make_replicas(world, seed=0):
    return [TinyModel(np.random.default_rng(seed)) for _ in range(world)]


def run_backward(model, ids, seed):
    rng = np.random.default_rng(seed)
    out, ecache = model.emb.forward(ids)
    y, lcache = model.lin.forward(out)
    g = rng.standard_normal(y.shape)
    dx = model.lin.backward(g, lcache)
    model.emb.backward(dx, ecache)


class TestConcatTokenGrads:
    def test_none_when_empty(self):
        p = Parameter(np.zeros((4, 2)))
        assert concat_token_grads(p) is None

    def test_concatenates_contributions(self):
        p = Parameter(np.zeros((4, 2)))
        p.accumulate_sparse_grad(SparseGrad(np.array([1]), np.ones((1, 2))))
        p.accumulate_sparse_grad(SparseGrad(np.array([1, 3]), np.ones((2, 2))))
        g = concat_token_grads(p)
        np.testing.assert_array_equal(g.indices, [1, 1, 3])

    def test_does_not_coalesce(self):
        """Token-level duplicates must survive (the baseline gathers them)."""
        p = Parameter(np.zeros((4, 2)))
        p.accumulate_sparse_grad(SparseGrad(np.array([2, 2]), np.ones((2, 2))))
        g = concat_token_grads(p)
        assert g.n_tokens == 2


class TestSyncReplicas:
    def test_replicas_agree_after_sync_and_step(self):
        world = 4
        replicas = make_replicas(world)
        for r, m in enumerate(replicas):
            run_backward(m, np.array([[r, r + 1, 0]]), seed=r)
        comm = Communicator(world, track_memory=False)
        GradientSynchronizer(comm, strategy=UniqueExchange()).sync_replicas(replicas)
        # After sync, every rank holds identical gradients.
        base_dense = replicas[0].lin.weight.grad
        base_sparse = replicas[0].emb.weight.merged_sparse_grad()
        for m in replicas[1:]:
            np.testing.assert_allclose(m.lin.weight.grad, base_dense)
            merged = m.emb.weight.merged_sparse_grad()
            np.testing.assert_array_equal(merged.indices, base_sparse.indices)
            np.testing.assert_allclose(merged.values, base_sparse.values)

    def test_average_semantics(self):
        """Synced dense grad == mean of per-rank grads."""
        world = 3
        replicas = make_replicas(world)
        locals_ = []
        for r, m in enumerate(replicas):
            run_backward(m, np.array([[0, 1]]), seed=r)
            locals_.append(m.lin.weight.grad.copy())
        comm = Communicator(world, track_memory=False)
        GradientSynchronizer(comm).sync_replicas(replicas)
        np.testing.assert_allclose(
            replicas[0].lin.weight.grad, np.mean(locals_, axis=0), rtol=1e-12
        )

    def test_sum_semantics(self):
        world = 2
        replicas = make_replicas(world)
        locals_ = []
        for r, m in enumerate(replicas):
            run_backward(m, np.array([[0, 1]]), seed=r)
            locals_.append(m.lin.weight.grad.copy())
        comm = Communicator(world, track_memory=False)
        GradientSynchronizer(comm, average=False).sync_replicas(replicas)
        np.testing.assert_allclose(
            replicas[0].lin.weight.grad, np.sum(locals_, axis=0), rtol=1e-12
        )

    def test_sparse_average_matches_dense_reference(self):
        world = 3
        replicas = make_replicas(world)
        reference = np.zeros((12, 4))
        for r, m in enumerate(replicas):
            run_backward(m, np.array([[r, 2 * r, 1]]), seed=10 + r)
            reference += m.emb.weight.merged_sparse_grad().to_dense(12)
        reference /= world
        comm = Communicator(world, track_memory=False)
        GradientSynchronizer(comm, strategy=UniqueExchange()).sync_replicas(replicas)
        np.testing.assert_allclose(
            replicas[0].emb.weight.merged_sparse_grad().to_dense(12),
            reference,
            rtol=1e-12,
        )

    def test_ledger_scopes_attribute_by_parameter(self):
        world = 2
        replicas = make_replicas(world)
        for r, m in enumerate(replicas):
            run_backward(m, np.array([[0]]), seed=r)
        comm = Communicator(world, track_memory=False)
        GradientSynchronizer(comm).sync_replicas(replicas)
        scopes = set(comm.ledger.bytes_by_scope())
        assert any("emb.weight" in s for s in scopes)
        assert any("lin.weight" in s for s in scopes)

    def test_codec_applies_to_dense_traffic(self):
        world = 2
        r_plain = make_replicas(world)
        r_fp16 = make_replicas(world)
        for r in range(world):
            run_backward(r_plain[r], np.array([[0, 1]]), seed=r)
            run_backward(r_fp16[r], np.array([[0, 1]]), seed=r)
        c_plain = Communicator(world, track_memory=False)
        c_fp16 = Communicator(world, track_memory=False)
        GradientSynchronizer(c_plain).sync_replicas(r_plain)
        GradientSynchronizer(c_fp16, codec=Fp16Codec(512.0)).sync_replicas(r_fp16)
        assert (
            c_fp16.ledger.total_wire_bytes_per_rank
            < c_plain.ledger.total_wire_bytes_per_rank
        )

    def test_overlap_numerics_identical_to_blocking(self):
        """overlap=True changes scheduling only — grads stay bit-exact."""
        world = 3
        r_block = make_replicas(world)
        r_over = make_replicas(world)
        for r in range(world):
            run_backward(r_block[r], np.array([[r, r + 1, 0]]), seed=r)
            run_backward(r_over[r], np.array([[r, r + 1, 0]]), seed=r)
        c_block = Communicator(world, track_memory=False)
        c_over = Communicator(world, track_memory=False)
        GradientSynchronizer(
            c_block, strategy=UniqueExchange()
        ).sync_replicas(r_block)
        GradientSynchronizer(
            c_over, strategy=UniqueExchange(), overlap=True
        ).sync_replicas(r_over)
        for mb, mo in zip(r_block, r_over):
            np.testing.assert_array_equal(
                mo.lin.weight.grad, mb.lin.weight.grad
            )
            gb = mb.emb.weight.merged_sparse_grad()
            go = mo.emb.weight.merged_sparse_grad()
            np.testing.assert_array_equal(go.indices, gb.indices)
            np.testing.assert_array_equal(go.values, gb.values)
        assert c_over.ledger.bytes_by_op() == c_block.ledger.bytes_by_op()

    def test_overlap_preserves_ledger_scope_attribution(self):
        """Deferred finish stages must still bill their parameter scope."""
        world = 2
        r_block = make_replicas(world)
        r_over = make_replicas(world)
        for r in range(world):
            run_backward(r_block[r], np.array([[0, 1]]), seed=r)
            run_backward(r_over[r], np.array([[0, 1]]), seed=r)
        c_block = Communicator(world, track_memory=False)
        c_over = Communicator(world, track_memory=False)
        GradientSynchronizer(c_block).sync_replicas(r_block)
        GradientSynchronizer(c_over, overlap=True).sync_replicas(r_over)
        assert c_over.ledger.bytes_by_scope() == c_block.ledger.bytes_by_scope()

    def test_overlap_issues_in_reverse_parameter_order(self):
        """Backward produces grads last-layer-first; the overlapped path
        issues in that order, reported via the on_issue hook."""
        world = 2
        replicas = make_replicas(world)
        for r in range(world):
            run_backward(replicas[r], np.array([[0, 1]]), seed=r)
        issued = []
        comm = Communicator(world, track_memory=False)
        GradientSynchronizer(
            comm, overlap=True, on_issue=issued.append
        ).sync_replicas(replicas)
        names = [n for n, _ in replicas[0].named_parameters()]
        synced = [
            n
            for n, p in reversed(list(replicas[0].named_parameters()))
            if p.grad is not None or p.sparse_grads
        ]
        assert issued == synced
        assert issued == list(reversed([n for n in names if n in issued]))

    def test_replica_count_mismatch_rejected(self):
        comm = Communicator(3, track_memory=False)
        with pytest.raises(ValueError):
            GradientSynchronizer(comm).sync_replicas(make_replicas(2))

    def test_missing_grad_on_one_rank_rejected(self):
        world = 2
        replicas = make_replicas(world)
        run_backward(replicas[0], np.array([[0]]), seed=0)  # rank 1 skipped
        comm = Communicator(world, track_memory=False)
        with pytest.raises(ValueError):
            GradientSynchronizer(comm).sync_replicas(replicas)
