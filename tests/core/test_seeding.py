"""Tests for the seeding technique (Section III-B)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.seeding import (
    SeedStrategy,
    assign_seeds,
    expected_unique_sampled,
    num_seed_groups,
    seed_group_sizes,
)
from repro.nn.sampled_softmax import LogUniformSampler


class TestNumSeedGroups:
    def test_extremes(self):
        assert num_seed_groups(SeedStrategy.ALL_SAME, 64) == 1
        assert num_seed_groups(SeedStrategy.PER_RANK, 64) == 64

    def test_log_strategies_at_64_gpus(self):
        assert num_seed_groups(SeedStrategy.LOG2, 64) == 6
        assert num_seed_groups(SeedStrategy.LOGE, 64) == 4
        assert num_seed_groups(SeedStrategy.LOG10, 64) == 2

    def test_power_law_is_g_to_alpha(self):
        assert num_seed_groups(SeedStrategy.POWER_LAW, 64) == round(64**0.64)
        assert num_seed_groups(SeedStrategy.ZIPF_FREQ, 64) == round(64**0.64)

    def test_single_gpu_always_one_group(self):
        for strategy in SeedStrategy:
            assert num_seed_groups(strategy, 1) == 1

    @given(
        strategy=st.sampled_from(list(SeedStrategy)),
        world=st.integers(1, 256),
    )
    def test_bounds(self, strategy, world):
        m = num_seed_groups(strategy, world)
        assert 1 <= m <= world

    def test_validation(self):
        with pytest.raises(ValueError):
            num_seed_groups(SeedStrategy.PER_RANK, 0)


class TestGroupSizes:
    @given(
        strategy=st.sampled_from(list(SeedStrategy)),
        world=st.integers(1, 128),
    )
    @settings(max_examples=80)
    def test_sizes_partition_world(self, strategy, world):
        sizes = seed_group_sizes(strategy, world)
        assert sum(sizes) == world
        assert all(s >= 1 for s in sizes)
        assert len(sizes) == num_seed_groups(strategy, world)

    def test_zipf_freq_sizes_are_skewed(self):
        """Zipf-freq's head group must hold more GPUs than its tail group."""
        sizes = seed_group_sizes(SeedStrategy.ZIPF_FREQ, 64)
        assert sizes[0] > sizes[-1]

    def test_equal_strategies_are_balanced(self):
        sizes = seed_group_sizes(SeedStrategy.POWER_LAW, 64)
        assert max(sizes) - min(sizes) <= 1


class TestSeedAssignment:
    def test_same_group_same_seed(self):
        a = assign_seeds(SeedStrategy.LOG2, 16, base_seed=3)
        for rank in range(16):
            g = a.group_of_rank[rank]
            assert a.seed_of_rank(rank) == int(a.seed_of_group[g])

    def test_distinct_group_seeds(self):
        a = assign_seeds(SeedStrategy.PER_RANK, 32, base_seed=5)
        assert len(set(a.seed_of_group.tolist())) == 32

    def test_generators_agree_within_group(self):
        """Ranks sharing a seed draw identical candidate sets — the
        mechanism restoring output-embedding overlap."""
        a = assign_seeds(SeedStrategy.ALL_SAME, 4, base_seed=1)
        gens = a.rank_generators(step=7)
        sampler = LogUniformSampler(1000)
        draws = [sampler.sample(16, g) for g in gens]
        for d in draws[1:]:
            np.testing.assert_array_equal(draws[0], d)

    def test_generators_differ_across_groups(self):
        a = assign_seeds(SeedStrategy.PER_RANK, 4, base_seed=1)
        gens = a.rank_generators(step=7)
        sampler = LogUniformSampler(1000)
        draws = [set(sampler.sample(16, g).tolist()) for g in gens]
        assert draws[0] != draws[1]

    def test_step_keying_changes_draws(self):
        a = assign_seeds(SeedStrategy.ALL_SAME, 2, base_seed=1)
        sampler = LogUniformSampler(1000)
        d0 = sampler.sample(16, a.rank_generators(step=0)[0])
        d1 = sampler.sample(16, a.rank_generators(step=1)[0])
        assert set(d0.tolist()) != set(d1.tolist())

    def test_deterministic_by_base_seed(self):
        a = assign_seeds(SeedStrategy.LOGE, 16, base_seed=9)
        b = assign_seeds(SeedStrategy.LOGE, 16, base_seed=9)
        np.testing.assert_array_equal(a.seed_of_group, b.seed_of_group)


class TestExpectedUnion:
    def test_grows_with_groups(self):
        vals = [expected_unique_sampled(m, 64, 10_000) for m in (1, 4, 16, 64)]
        assert vals == sorted(vals)

    def test_one_group_is_sample_size(self):
        assert expected_unique_sampled(1, 64, 10_000) == pytest.approx(64, rel=0.02)

    def test_sublinear_growth(self):
        """The Zipf skew makes the union grow much slower than m*S."""
        u64 = expected_unique_sampled(64, 64, 10_000)
        assert u64 < 64 * 64 * 0.75

    def test_capped_by_vocab(self):
        assert expected_unique_sampled(100, 50, 60) <= 60

    def test_seeding_shrinks_exchange(self):
        """At 64 GPUs, Zipf-freq seeding (m=14) must touch far fewer rows
        than per-rank seeds (m=64)."""
        per_rank = expected_unique_sampled(64, 1024, 100_000)
        seeded = expected_unique_sampled(
            num_seed_groups(SeedStrategy.ZIPF_FREQ, 64), 1024, 100_000
        )
        assert seeded < per_rank * 0.5

    def test_matches_empirical_union(self):
        sampler = LogUniformSampler(2000)
        rng = np.random.default_rng(0)
        m, s = 8, 50
        unions = []
        for _ in range(30):
            union = set()
            for _ in range(m):
                union.update(sampler.sample(s, rng).tolist())
            unions.append(len(union))
        expected = expected_unique_sampled(m, s, 2000)
        assert expected == pytest.approx(np.mean(unions), rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_unique_sampled(0, 10, 100)
        with pytest.raises(ValueError):
            expected_unique_sampled(1, 0, 100)
        with pytest.raises(ValueError):
            expected_unique_sampled(1, 10, 1)
