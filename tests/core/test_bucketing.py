"""Tests for gradient bucketing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Communicator
from repro.core.bucketing import (
    bucketed_allreduce,
    ibucketed_allreduce,
    plan_buckets,
)
from repro.core.compression import Fp16Codec


def comm(world=4):
    return Communicator(world, track_memory=False)


class TestPlanBuckets:
    def test_greedy_grouping(self):
        buckets = plan_buckets([100, 100, 100], bucket_bytes=250)
        assert [b.tensor_indices for b in buckets] == [(0, 1), (2,)]
        assert buckets[0].nbytes == 200

    def test_oversized_tensor_gets_own_bucket(self):
        buckets = plan_buckets([1000, 10], bucket_bytes=100)
        assert [b.tensor_indices for b in buckets] == [(0,), (1,)]

    def test_order_preserved(self):
        buckets = plan_buckets([10, 20, 30, 40], bucket_bytes=35)
        flat = [i for b in buckets for i in b.tensor_indices]
        assert flat == [0, 1, 2, 3]

    def test_empty_input(self):
        assert plan_buckets([], 100) == []

    def test_single_oversized_tensor_is_one_bucket(self):
        (bucket,) = plan_buckets([10_000], bucket_bytes=64)
        assert bucket.tensor_indices == (0,)
        assert bucket.nbytes == 10_000

    def test_tensor_exactly_bucket_bytes_fills_one_bucket(self):
        buckets = plan_buckets([100, 1], bucket_bytes=100)
        assert [b.tensor_indices for b in buckets] == [(0,), (1,)]

    def test_zero_byte_tensors_never_force_split(self):
        buckets = plan_buckets([50, 0, 0, 50, 0], bucket_bytes=100)
        assert [b.tensor_indices for b in buckets] == [(0, 1, 2, 3, 4)]
        assert buckets[0].nbytes == 100

    def test_all_zero_byte_tensors_fit_one_bucket(self):
        buckets = plan_buckets([0, 0, 0], bucket_bytes=1)
        assert [b.tensor_indices for b in buckets] == [(0, 1, 2)]
        assert buckets[0].nbytes == 0

    def test_zero_byte_tensor_after_full_bucket(self):
        """A zero-byte tensor lands in the already-full bucket (adding it
        cannot exceed the budget) rather than opening a new one."""
        buckets = plan_buckets([100, 0], bucket_bytes=100)
        assert [b.tensor_indices for b in buckets] == [(0, 1)]

    @given(
        sizes=st.lists(st.integers(0, 500), max_size=30),
        bucket=st.integers(1, 1000),
    )
    @settings(max_examples=60)
    def test_property_partition(self, sizes, bucket):
        buckets = plan_buckets(sizes, bucket)
        flat = [i for b in buckets for i in b.tensor_indices]
        assert flat == list(range(len(sizes)))
        for b in buckets:
            # Either within the budget, or a single oversized tensor.
            assert b.nbytes <= bucket or len(b.tensor_indices) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_buckets([10], 0)
        with pytest.raises(ValueError):
            plan_buckets([-1], 10)


class TestBucketedAllreduce:
    def make_tensors(self, world, shapes, seed=0):
        rng = np.random.default_rng(seed)
        return [
            [rng.standard_normal(s) for s in shapes] for _ in range(world)
        ]

    def test_matches_per_tensor_allreduce(self):
        world = 3
        shapes = [(4,), (2, 3), (5,), (1, 1)]
        tensors = self.make_tensors(world, shapes)
        out = bucketed_allreduce(comm(world), tensors, bucket_bytes=64)
        for i in range(len(shapes)):
            expected = sum(tensors[r][i] for r in range(world))
            for r in range(world):
                np.testing.assert_allclose(out[r][i], expected, rtol=1e-12)

    def test_fewer_collectives_than_tensors(self):
        world = 2
        shapes = [(8,)] * 10
        tensors = self.make_tensors(world, shapes)
        c = comm(world)
        bucketed_allreduce(c, tensors, bucket_bytes=8 * 8 * 4)
        assert len(c.ledger.events) < 10

    def test_latency_amortized(self):
        """Bucketing pays (G-1) latency hops per bucket, not per tensor."""
        world = 8
        shapes = [(16,)] * 20
        tensors = self.make_tensors(world, shapes)
        c_bucketed = comm(world)
        bucketed_allreduce(c_bucketed, tensors, bucket_bytes=10**6)
        c_per_tensor = comm(world)
        for i in range(20):
            c_per_tensor.allreduce([tensors[r][i] for r in range(world)])
        assert c_bucketed.ledger.total_time_s < c_per_tensor.ledger.total_time_s

    def test_codec_applied_per_bucket(self):
        world = 2
        shapes = [(64,), (64,)]
        tensors = [
            [t.astype(np.float32) for t in rank_tensors]
            for rank_tensors in self.make_tensors(world, shapes)
        ]
        c = comm(world)
        out = bucketed_allreduce(
            c, tensors, bucket_bytes=10**6, codec=Fp16Codec(512.0)
        )
        expected = tensors[0][0] + tensors[1][0]
        np.testing.assert_allclose(out[0][0], expected, atol=5e-3)
        # Wire bytes halved relative to fp32.
        fp32_bytes = 2 * 64 * 4  # message bytes of the fused fp32 bucket
        assert c.ledger.events[0].wire_bytes_per_rank < fp32_bytes

    def test_empty_tensor_list(self):
        out = bucketed_allreduce(comm(2), [[], []])
        assert out == [[], []]

    def test_structure_validation(self):
        world = 2
        with pytest.raises(ValueError):
            bucketed_allreduce(comm(world), [[np.ones(3)]])  # wrong rank count
        with pytest.raises(ValueError):
            bucketed_allreduce(
                comm(world), [[np.ones(3)], [np.ones(4)]]
            )  # shape mismatch
        with pytest.raises(ValueError):
            bucketed_allreduce(
                comm(world), [[np.ones(3)], [np.ones(3), np.ones(3)]]
            )  # count mismatch


class TestAsyncBucketedAllreduce:
    def make_tensors(self, world, shapes, seed=0):
        rng = np.random.default_rng(seed)
        return [
            [rng.standard_normal(s) for s in shapes] for _ in range(world)
        ]

    def test_matches_blocking_result(self):
        world = 3
        shapes = [(4,), (2, 3), (5,)]
        tensors = self.make_tensors(world, shapes)
        blocking = bucketed_allreduce(comm(world), tensors, bucket_bytes=64)
        pending = ibucketed_allreduce(comm(world), tensors, bucket_bytes=64)
        overlapped = pending.wait()
        for r in range(world):
            for i in range(len(shapes)):
                np.testing.assert_array_equal(overlapped[r][i], blocking[r][i])

    def test_all_buckets_issued_before_wait(self):
        world = 2
        tensors = self.make_tensors(world, [(8,)] * 4)
        c = comm(world)
        pending = ibucketed_allreduce(c, tensors, bucket_bytes=8 * 8)
        assert len(pending.handles) == 4
        assert len(c.pending_work) == 4
        assert not pending.is_complete()
        pending.wait()
        assert pending.is_complete()
        assert c.pending_work == ()

    def test_buckets_serialize_on_link_in_issue_order(self):
        world = 2
        tensors = self.make_tensors(world, [(8,)] * 3)
        c = comm(world)
        pending = ibucketed_allreduce(c, tensors, bucket_bytes=8 * 8)
        starts = [h.ticket.start for h in pending.handles]
        ends = [h.ticket.end for h in pending.handles]
        assert starts == sorted(starts)
        assert starts[1:] == ends[:-1]
        pending.wait()

    def test_wait_is_idempotent(self):
        world = 2
        tensors = self.make_tensors(world, [(4,)])
        pending = ibucketed_allreduce(comm(world), tensors)
        assert pending.wait() is pending.wait()

    def test_empty_tensor_list(self):
        pending = ibucketed_allreduce(comm(2), [[], []])
        assert pending.is_complete()
        assert pending.wait() == [[], []]

    def test_codec_round_trip(self):
        world = 2
        tensors = [
            [t.astype(np.float32) for t in rank]
            for rank in self.make_tensors(world, [(32,), (32,)])
        ]
        pending = ibucketed_allreduce(
            comm(world), tensors, bucket_bytes=10**6, codec=Fp16Codec(512.0)
        )
        out = pending.wait()
        expected = tensors[0][0] + tensors[1][0]
        np.testing.assert_allclose(out[0][0], expected, atol=5e-3)
