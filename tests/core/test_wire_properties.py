"""Seeded randomized property tests for the lossless index codecs.

Driven by :mod:`tests.proptest` (200 cases per property, shrink on
failure).  Two properties per codec, per the wire-stack contract:

* **Bit-exact roundtrip** — ``decode(encode(x)) == x`` for any 1-D
  int32/int64 vector: sorted or unsorted, empty, single-element,
  duplicate-heavy, or spanning the full dtype range (maximal deltas).
* **Bounded encoded size** — the raw-frame fallback guarantees
  ``encoded_nbytes <= raw_nbytes + FRAME_HEADER_BYTES`` for *any*
  input, so a pathological payload can never inflate wire traffic by
  more than one header.

A third property checks frame concatenation: decoding the
concatenation of per-rank frames yields the rank-order concatenation
of the vectors — the exact composition the allgather relies on.
"""

import numpy as np

from repro.core.wire.codecs import (
    FRAME_HEADER_BYTES,
    DeltaBitpackCodec,
    EntropyCodec,
    RunLengthCodec,
    decode_frames,
)

from ..proptest import run_property

N_CASES = 200

_DTYPES = (np.int32, np.int64)


def _gen_vector_case(rng):
    return {
        "n": int(rng.integers(0, 513)),
        "dtype_index": int(rng.integers(0, len(_DTYPES))),
        "shape_kind": int(rng.integers(0, 5)),
        "block": int(rng.integers(1, 257)),
    }


def _make_vector(params: dict, rng) -> np.ndarray:
    """One random index vector in the shape family ``shape_kind`` picks:
    0 = sorted unique Zipf-ish draws, 1 = unsorted draws with
    duplicates, 2 = dense ranges (run-heavy), 3 = full-dtype-range
    extremes (maximal deltas), 4 = constant (all-duplicate)."""
    dtype = np.dtype(_DTYPES[params["dtype_index"]])
    n = params["n"]
    info = np.iinfo(dtype)
    kind = params["shape_kind"]
    if kind == 0:
        v = np.unique(rng.integers(0, 100_000, n).astype(dtype))
    elif kind == 1:
        v = rng.integers(0, max(1, n), n).astype(dtype)
    elif kind == 2:
        start = int(rng.integers(0, 1000))
        v = (start + np.arange(n)).astype(dtype)
    elif kind == 3:
        v = rng.integers(
            int(info.min), int(info.max), n, dtype=np.int64, endpoint=True
        ).astype(dtype)
    else:
        v = np.full(n, int(rng.integers(0, 1000)), dtype=dtype)
    return v


def _codecs(params: dict):
    return (
        DeltaBitpackCodec(block=params["block"]),
        RunLengthCodec(),
        EntropyCodec(),
    )


def _prop_roundtrip(params: dict, rng) -> None:
    vec = _make_vector(params, rng)
    for codec in _codecs(params):
        frame = codec.encode(vec)
        assert frame.dtype == np.uint8, f"{codec.name}: frame not uint8"
        back = codec.decode(frame, vec.dtype)
        assert back.dtype == vec.dtype, (
            f"{codec.name}: dtype {back.dtype} != {vec.dtype}"
        )
        assert np.array_equal(back, vec), (
            f"{codec.name}: roundtrip mismatch on {vec.dtype} shape-kind "
            f"{params['shape_kind']}"
        )


def _prop_size_bound(params: dict, rng) -> None:
    vec = _make_vector(params, rng)
    for codec in _codecs(params):
        frame = codec.encode(vec)
        assert frame.nbytes <= vec.nbytes + FRAME_HEADER_BYTES, (
            f"{codec.name}: {frame.nbytes} bytes for a {vec.nbytes}-byte "
            "input exceeds the raw-fallback bound"
        )


def _prop_concatenation(params: dict, rng) -> None:
    world = 1 + params["shape_kind"]  # reuse the shrinkable small int
    vecs = [_make_vector(params, rng) for _ in range(world)]
    for codec in _codecs(params):
        buf = np.concatenate([codec.encode(v) for v in vecs])
        got = decode_frames(buf, vecs[0].dtype)
        assert np.array_equal(got, np.concatenate(vecs)), (
            f"{codec.name}: concatenated frames did not decode to the "
            "rank-order concatenation"
        )


class TestLosslessRoundtripProperty:
    def test_roundtrip_bit_exact(self):
        assert run_property(_prop_roundtrip, _gen_vector_case, N_CASES) == N_CASES

    def test_encoded_size_bounded(self):
        assert (
            run_property(_prop_size_bound, _gen_vector_case, N_CASES) == N_CASES
        )

    def test_frame_concatenation_composes(self):
        assert (
            run_property(_prop_concatenation, _gen_vector_case, N_CASES)
            == N_CASES
        )
