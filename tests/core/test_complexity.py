"""Tests for the closed-form complexity bounds and the worked example."""

import pytest

from repro.core.complexity import (
    baseline_allgather_comm_bytes,
    baseline_allgather_memory_bytes,
    expected_global_unique,
    memory_reduction_factor,
    unique_comm_bytes,
    unique_memory_bytes,
    worked_example_256_gpus,
)

GB = 1024**3


class TestExpectedGlobalUnique:
    def test_power_law(self):
        assert expected_global_unique(10_000, alpha=0.5, coeff=1.0) == pytest.approx(100.0)

    def test_capped_at_vocab(self):
        assert expected_global_unique(10**9, vocab_size=98) == 98.0

    def test_capped_at_tokens(self):
        # coeff * N^alpha can exceed N for small N; U <= N always.
        assert expected_global_unique(2, coeff=7.02) <= 2.0

    def test_zero_tokens(self):
        assert expected_global_unique(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_global_unique(-1)
        with pytest.raises(ValueError):
            expected_global_unique(10, alpha=0.0)
        with pytest.raises(ValueError):
            expected_global_unique(10, coeff=0.0)
        with pytest.raises(ValueError):
            expected_global_unique(10, vocab_size=0)


class TestByteFormulas:
    def test_baseline_memory_is_gkd(self):
        assert baseline_allgather_memory_bytes(4, 10, 8) == 4 * 10 * 8 * 4

    def test_baseline_comm(self):
        assert baseline_allgather_comm_bytes(4, 10, 8) == 3 * 10 * 8 * 4

    def test_unique_memory(self):
        assert unique_memory_bytes(4, 10, 8, u_global=5) == 4 * 10 * 4 + 5 * 8 * 4

    def test_unique_comm_has_index_and_value_parts(self):
        got = unique_comm_bytes(4, 10, 8, u_global=5)
        idx = 3 * 10 * 4
        val = 2 * 3 / 4 * 5 * 8 * 4
        assert got == int(idx + val)

    def test_unique_wins_when_duplication_high(self):
        # 64 GPUs x 19,200 tokens but only ~19K unique types.
        g, k, d = 64, 19_200, 1792
        u = expected_global_unique(g * k)
        assert unique_memory_bytes(g, k, d, u) < baseline_allgather_memory_bytes(
            g, k, d
        )
        assert unique_comm_bytes(g, k, d, u) < baseline_allgather_comm_bytes(g, k, d)

    def test_no_advantage_without_duplication(self):
        """If every token is a distinct type (u = G*K), the value traffic
        alone matches the baseline scale — no free lunch."""
        g, k, d = 4, 10, 8
        u = g * k
        assert unique_memory_bytes(g, k, d, u) > baseline_allgather_memory_bytes(
            g, k, d
        ) / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            baseline_allgather_memory_bytes(0, 1, 1)
        with pytest.raises(ValueError):
            unique_memory_bytes(1, 1, 1, -1.0)


class TestWorkedExample:
    def test_paper_numbers(self):
        """Section III-A: 256 GPUs, K = 19,200, D = 1792 -> 35.2 GB
        baseline vs ~0.14 GB unique, a ~250x saving."""
        ex = worked_example_256_gpus()
        assert ex.gpus == 256
        assert ex.local_batch_tokens == 19_200
        assert ex.baseline_memory_bytes / GB == pytest.approx(32.8, rel=0.01)
        # (The paper quotes 35.2 GB using decimal GB: check that too.)
        assert ex.baseline_memory_bytes / 1e9 == pytest.approx(35.2, rel=0.01)
        assert ex.unique_memory_bytes / 1e9 < 0.2
        assert ex.reduction_factor > 150

    def test_heaps_coefficient_variant(self):
        """With the Figure-1 coefficient 7.02 the saving shrinks but the
        unique path still wins by >20x."""
        ex = worked_example_256_gpus(coeff=7.02)
        assert ex.reduction_factor > 20
