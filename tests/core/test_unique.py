"""Tests for the uniqueness technique (Section III-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Communicator
from repro.core.compression import Fp16Codec
from repro.core.unique import (
    iunique_exchange,
    local_unique_reduce,
    unique_exchange,
)
from repro.nn.parameter import SparseGrad


def comm(world=4, **kw):
    return Communicator(world, track_memory=False, **kw)


def random_grads(world, vocab, tokens, dim, seed=0):
    rng = np.random.default_rng(seed)
    return [
        SparseGrad(
            indices=rng.integers(0, vocab, tokens),
            values=rng.standard_normal((tokens, dim)),
        )
        for _ in range(world)
    ]


class TestLocalUniqueReduce:
    def test_figure4_example(self):
        """GPU1 of Figure 4: indices [5, 3, 9] with 3 repeated."""
        g = SparseGrad(
            indices=np.array([5, 3, 9, 3], np.int64),
            values=np.array([[1.0], [2.0], [3.0], [4.0]]),
        )
        reduced = local_unique_reduce(g)
        np.testing.assert_array_equal(reduced.indices, [3, 5, 9])
        np.testing.assert_allclose(reduced.values, [[6.0], [1.0], [3.0]])


class TestExchangeCorrectness:
    def test_matches_dense_sum(self):
        world, vocab, dim = 4, 30, 3
        grads = random_grads(world, vocab, tokens=12, dim=dim)
        result = unique_exchange(comm(world), grads)
        expected = sum(g.to_dense(vocab) for g in grads)
        np.testing.assert_allclose(
            result.as_sparse_grad().to_dense(vocab), expected, rtol=1e-12
        )

    def test_global_indices_sorted_unique(self):
        grads = random_grads(3, 20, 15, 2, seed=1)
        result = unique_exchange(comm(3), grads)
        gi = result.global_indices
        assert (np.diff(gi) > 0).all()
        union = np.unique(np.concatenate([g.indices for g in grads]))
        np.testing.assert_array_equal(gi, union)

    def test_ug_bounds(self):
        """Ui <= Ug <= min(G*K, |V|) — the Section III-A inequality."""
        world, vocab, tokens = 4, 25, 10
        grads = random_grads(world, vocab, tokens, 2, seed=2)
        result = unique_exchange(comm(world), grads)
        ug = result.num_global_unique
        assert max(result.local_unique_counts) <= ug
        assert ug <= min(world * tokens, vocab)

    def test_disjoint_ranks(self):
        """No overlap across GPUs: Ug = sum of Ui."""
        grads = [
            SparseGrad(
                indices=np.arange(r * 5, r * 5 + 5),
                values=np.full((5, 2), float(r + 1)),
            )
            for r in range(3)
        ]
        result = unique_exchange(comm(3), grads)
        assert result.num_global_unique == 15

    def test_fully_overlapping_ranks(self):
        """All GPUs hold the same word: Ug = 1, values sum across ranks."""
        grads = [
            SparseGrad(indices=np.array([7] * 4), values=np.ones((4, 2)))
            for _ in range(3)
        ]
        result = unique_exchange(comm(3), grads)
        assert result.num_global_unique == 1
        np.testing.assert_allclose(result.reduced_values, [[12.0, 12.0]])

    def test_variable_token_counts_across_ranks(self):
        grads = [
            SparseGrad(indices=np.array([1, 2]), values=np.ones((2, 2))),
            SparseGrad(indices=np.array([2, 3, 4, 2]), values=np.ones((4, 2))),
        ]
        result = unique_exchange(comm(2), grads)
        dense = result.as_sparse_grad().to_dense(5)
        np.testing.assert_allclose(dense[2], [3.0, 3.0])

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            unique_exchange(comm(3), random_grads(2, 10, 5, 2))

    def test_dim_mismatch_rejected(self):
        grads = [
            SparseGrad(indices=np.array([0]), values=np.ones((1, 2))),
            SparseGrad(indices=np.array([0]), values=np.ones((1, 3))),
        ]
        with pytest.raises(ValueError):
            unique_exchange(comm(2), grads)

    @given(
        world=st.integers(1, 5),
        vocab=st.integers(2, 40),
        tokens=st.integers(1, 25),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence_with_dense(self, world, vocab, tokens, seed):
        grads = random_grads(world, vocab, tokens, 2, seed=seed)
        result = unique_exchange(comm(world), grads)
        expected = sum(g.to_dense(vocab) for g in grads)
        np.testing.assert_allclose(
            result.as_sparse_grad().to_dense(vocab), expected, rtol=1e-9, atol=1e-12
        )


class TestAsyncExchange:
    def test_matches_blocking_result(self):
        grads = random_grads(3, 20, 12, 4, seed=7)
        blocking = unique_exchange(comm(3), grads)
        pending = iunique_exchange(comm(3), grads)
        overlapped = pending.wait()
        np.testing.assert_array_equal(
            overlapped.global_indices, blocking.global_indices
        )
        np.testing.assert_allclose(
            overlapped.reduced_values, blocking.reduced_values, rtol=1e-12
        )

    def test_index_allgather_issued_eagerly(self):
        c = comm(3)
        pending = iunique_exchange(c, random_grads(3, 20, 8, 2, seed=8))
        # Only the index allgather is in flight; the value allreduce is
        # deferred to wait() so one scratch buffer is live at a time.
        assert len(c.pending_work) == 1
        assert c.pending_work[0].op == "allgather"
        assert not pending.is_complete()
        pending.wait()
        assert pending.is_complete()
        assert c.pending_work == ()

    def test_wait_is_idempotent(self):
        pending = iunique_exchange(comm(2), random_grads(2, 10, 6, 2, seed=9))
        assert pending.wait() is pending.wait()

    def test_blocking_is_issue_plus_wait(self):
        """unique_exchange and iunique_exchange().wait() move identical
        bytes under identical op tags."""
        grads = random_grads(4, 30, 10, 3, seed=10)
        c_block, c_async = comm(4), comm(4)
        unique_exchange(c_block, grads)
        iunique_exchange(c_async, grads).wait()
        assert c_block.ledger.bytes_by_op() == c_async.ledger.bytes_by_op()

    def test_validation_fires_at_issue(self):
        with pytest.raises(ValueError):
            iunique_exchange(comm(3), random_grads(2, 10, 5, 2))


class TestExchangeCost:
    def test_wire_bytes_formula(self):
        """Index allgather Θ(G·K) + value ring-allreduce Θ(Ug·D)."""
        world, tokens, dim = 4, 10, 3
        grads = random_grads(world, 50, tokens, dim, seed=3)
        c = comm(world)
        result = unique_exchange(c, grads)
        ug = result.num_global_unique
        by_op = c.ledger.bytes_by_op()
        assert by_op["allgather"] == (world - 1) * tokens * 8  # int64 indices
        expected_ar = int(np.ceil(2 * (world - 1) / world * ug * dim * 8))
        assert by_op["allreduce"] == expected_ar

    def test_scratch_memory_is_sub_dense(self):
        """Unique exchange must spike memory far less than the dense path."""
        world, tokens, dim, vocab = 4, 64, 32, 10_000
        grads = random_grads(world, vocab, tokens, dim, seed=4)
        c = Communicator(world)  # memory tracking on
        unique_exchange(c, grads)
        dense_scratch = world * tokens * dim * 8
        assert c.peak_bytes_per_rank < dense_scratch

    def test_compression_halves_value_bytes(self):
        world = 4
        grads = random_grads(world, 40, 16, 8, seed=5)
        c_plain, c_fp16 = comm(world), comm(world)
        unique_exchange(c_plain, [SparseGrad(g.indices, g.values.astype(np.float32)) for g in grads])
        unique_exchange(
            c_fp16,
            [SparseGrad(g.indices, g.values.astype(np.float32)) for g in grads],
            codec=Fp16Codec(scale=1024.0),
        )
        plain_val = c_plain.ledger.bytes_by_op()["allreduce"]
        fp16_val = c_fp16.ledger.bytes_by_op()["allreduce"]
        assert fp16_val * 2 == plain_val

    def test_compressed_values_close_to_exact(self):
        grads = random_grads(3, 30, 20, 4, seed=6)
        grads32 = [SparseGrad(g.indices, g.values.astype(np.float32)) for g in grads]
        exact = unique_exchange(comm(3), grads32)
        compressed = unique_exchange(comm(3), grads32, codec=Fp16Codec(512.0))
        np.testing.assert_allclose(
            compressed.reduced_values, exact.reduced_values, rtol=0, atol=5e-3
        )
