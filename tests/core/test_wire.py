"""Tests for the pluggable wire-compression stack (repro.core.wire).

Covers the lossless frame codecs, the registry/spec layer, pipeline
composition, the adaptive selector, the WirePolicy configuration
object, and the chunked encoded allgather — including the central
contract: swapping ``iencoded_allgather`` for a raw ``iallgather``
never changes a single decoded bit, only the wire bytes charged.
"""

import numpy as np
import pytest

from repro.cluster import Communicator
from repro.core.compression import Fp16Codec, IdentityCodec
from repro.core.sparse_exchange import AllGatherExchange, UniqueExchange
from repro.core.wire import (
    AdaptiveCodecSelector,
    CodecPipeline,
    DeltaBitpackCodec,
    RunLengthCodec,
    WirePolicy,
    available_codecs,
    decode_frames,
    iencoded_allgather,
    make_codec,
    register_codec,
)
from repro.core.wire.codecs import FRAME_HEADER_BYTES
from repro.nn.parameter import SparseGrad


def comm(world=4, **kw):
    kw.setdefault("track_memory", False)
    return Communicator(world, **kw)


CODECS = [DeltaBitpackCodec(), RunLengthCodec()]
CODEC_IDS = [c.name for c in CODECS]

EDGE_VECTORS = [
    np.zeros(0, dtype=np.int64),
    np.array([0], dtype=np.int64),
    np.array([7, 7, 7, 7], dtype=np.int64),
    np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max], dtype=np.int64),
    np.array([np.iinfo(np.int64).max, np.iinfo(np.int64).min], dtype=np.int64),
    np.arange(100, dtype=np.int64),
    np.arange(100, dtype=np.int64)[::-1].copy(),
    np.array([5, 1, 3, 3, 2, 100, 0], dtype=np.int64),
    np.array([-4, -1, 0, 3], dtype=np.int64),
    np.zeros(0, dtype=np.int32),
    np.array([np.iinfo(np.int32).min, np.iinfo(np.int32).max], dtype=np.int32),
    np.array([9, 2, 2, 8], dtype=np.int32),
]


class TestLosslessCodecs:
    @pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
    @pytest.mark.parametrize("vec", EDGE_VECTORS, ids=repr)
    def test_roundtrip_bit_exact(self, codec, vec):
        back = codec.decode(codec.encode(vec), vec.dtype)
        assert back.dtype == vec.dtype
        np.testing.assert_array_equal(back, vec)

    @pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
    @pytest.mark.parametrize("vec", EDGE_VECTORS, ids=repr)
    def test_raw_fallback_bounds_encoded_size(self, codec, vec):
        assert codec.encode(vec).nbytes <= vec.nbytes + FRAME_HEADER_BYTES

    def test_sorted_zipf_indices_compress_hard(self):
        """The workload the codecs exist for: sorted unique word ids."""
        rng = np.random.default_rng(0)
        idx = np.unique(
            rng.choice(100_000, size=8192, replace=True).astype(np.int64)
        )
        frame = DeltaBitpackCodec().encode(idx)
        assert frame.nbytes * 4 <= idx.nbytes  # >= 4x on this shape
        np.testing.assert_array_equal(
            DeltaBitpackCodec().decode(frame, np.int64), idx
        )

    def test_rle_collapses_dense_ranges(self):
        idx = np.arange(10_000, dtype=np.int64)
        frame = RunLengthCodec().encode(idx)
        assert frame.nbytes < 100  # one run: ~34 bytes
        np.testing.assert_array_equal(
            RunLengthCodec().decode(frame, np.int64), idx
        )

    def test_frames_survive_concatenation(self):
        """The allgatherv composition property decode_frames relies on."""
        codec = DeltaBitpackCodec()
        vecs = [
            np.array([3, 1, 4], dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.arange(50, dtype=np.int64),
        ]
        buf = np.concatenate([codec.encode(v) for v in vecs])
        np.testing.assert_array_equal(
            decode_frames(buf, np.int64), np.concatenate(vecs)
        )

    def test_mixed_codec_frames_decode_together(self):
        a = RunLengthCodec().encode(np.arange(64, dtype=np.int64))
        b = DeltaBitpackCodec().encode(np.array([9, 1, 5], dtype=np.int64))
        np.testing.assert_array_equal(
            decode_frames(np.concatenate([a, b]), np.int64),
            np.concatenate([np.arange(64), [9, 1, 5]]),
        )

    def test_dtype_mismatch_is_an_error_not_a_cast(self):
        frame = DeltaBitpackCodec().encode(np.array([1, 2], dtype=np.int64))
        with pytest.raises(ValueError, match="int64"):
            decode_frames(frame, np.int32)

    def test_rejects_float_and_2d_inputs(self):
        codec = DeltaBitpackCodec()
        with pytest.raises(ValueError, match="int32/int64"):
            codec.encode(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError, match="1-D"):
            codec.encode(np.zeros((2, 2), dtype=np.int64))

    @pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
    def test_estimate_is_a_usable_upper_signal(self, codec):
        idx = np.sort(
            np.random.default_rng(1).choice(50_000, 4096, replace=False)
        ).astype(np.int64)
        est = codec.estimate_nbytes(idx)
        assert 0 < est <= idx.nbytes + FRAME_HEADER_BYTES


class TestRegistry:
    def test_builtins_registered(self):
        assert {"identity", "fp16", "delta", "rle"} <= set(available_codecs())

    def test_make_codec_with_argument(self):
        assert make_codec("delta:128").block == 128
        assert make_codec("fp16:256").scale == 256.0
        assert isinstance(make_codec("identity"), IdentityCodec)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("zstd")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codec("delta", DeltaBitpackCodec)

    def test_reserved_characters_rejected(self):
        for bad in ("", "a/b", "a+b", "a:b"):
            with pytest.raises(ValueError, match="invalid"):
                register_codec(bad, DeltaBitpackCodec)


class TestCodecPipeline:
    def test_single_stage_behaves_like_the_stage(self):
        pipe = CodecPipeline([DeltaBitpackCodec()])
        vec = np.array([1, 5, 2], dtype=np.int64)
        np.testing.assert_array_equal(
            pipe.decode(pipe.encode(vec), np.int64), vec
        )
        assert pipe.name == "delta"
        assert pipe.lossless and pipe.data_dependent

    def test_identity_then_delta_chains(self):
        pipe = CodecPipeline([IdentityCodec(), DeltaBitpackCodec()])
        vec = np.arange(100, dtype=np.int64)
        np.testing.assert_array_equal(
            pipe.decode(pipe.encode(vec), np.int64), vec
        )
        assert pipe.name == "identity+delta"
        assert pipe.wire_dtype(np.dtype(np.int64)) == np.uint8

    def test_lossy_stage_makes_pipeline_lossy(self):
        pipe = CodecPipeline([Fp16Codec()])
        assert not pipe.lossless

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            CodecPipeline([])


class TestAdaptiveSelector:
    def test_small_messages_never_encoded(self):
        sel = AdaptiveCodecSelector(min_bytes=4096)
        c = comm(4)
        tiny = [np.arange(8, dtype=np.int64)] * 4
        assert sel.select_index(tiny, c) is None
        assert sel.select_value([np.ones(8, np.float32)] * 4, c) is None

    def test_sorted_indices_pick_a_lossless_codec(self):
        sel = AdaptiveCodecSelector()
        c = comm(4)
        idx = [
            np.sort(
                np.random.default_rng(r).choice(100_000, 4096, replace=False)
            ).astype(np.int64)
            for r in range(4)
        ]
        picked = sel.select_index(idx, c, sorted_payload=True)
        assert picked is not None and picked.lossless

    def test_dense_ranges_prefer_rle(self):
        sel = AdaptiveCodecSelector()
        picked = sel.select_index(
            [np.arange(65_536, dtype=np.int64)] * 4, comm(4)
        )
        assert picked is not None and picked.name == "rle"

    def test_large_float_values_pick_fp16(self):
        sel = AdaptiveCodecSelector()
        vals = [np.ones(65_536, np.float32)] * 4
        picked = sel.select_value(vals, comm(4))
        assert isinstance(picked, Fp16Codec)

    def test_float16_and_integer_values_stay_raw(self):
        sel = AdaptiveCodecSelector()
        c = comm(4)
        assert sel.select_value([np.ones(65_536, np.float16)] * 4, c) is None
        assert sel.select_value([np.ones(65_536, np.int64)] * 4, c) is None


class TestWirePolicy:
    def test_from_spec_roles(self):
        p = WirePolicy.from_spec("fp16+delta")
        assert isinstance(p.value_codec, Fp16Codec)
        assert isinstance(p.index_codec, DeltaBitpackCodec)
        assert p.selector is None

    def test_from_spec_auto_and_none(self):
        assert WirePolicy.from_spec("auto").selector is not None
        none = WirePolicy.from_spec("none")
        assert none.is_inert

    def test_from_spec_with_codec_argument(self):
        assert WirePolicy.from_spec("delta:64").index_codec.block == 64

    def test_from_spec_rejects_bad_combinations(self):
        with pytest.raises(ValueError, match="auto"):
            WirePolicy.from_spec("auto+delta")
        with pytest.raises(ValueError, match="duplicate value"):
            WirePolicy.from_spec("fp16+identity")
        with pytest.raises(ValueError, match="duplicate index"):
            WirePolicy.from_spec("delta+rle")
        with pytest.raises(ValueError, match="unknown wire-codec"):
            WirePolicy.from_spec("gzip")
        with pytest.raises(ValueError, match="empty"):
            WirePolicy.from_spec("+")

    def test_chunk_bytes_validation(self):
        with pytest.raises(ValueError, match="positive"):
            WirePolicy.from_spec("delta", chunk_bytes=0)
        assert WirePolicy.from_spec("delta", chunk_bytes=512).chunk_bytes == 512

    def test_fixed_slot_wins_over_selector(self):
        fixed = RunLengthCodec()
        p = WirePolicy(index_codec=fixed, selector=AdaptiveCodecSelector())
        got = p.resolve_index_codec([np.arange(4, dtype=np.int64)], comm(2))
        assert got is fixed

    def test_sanitized_wraps_lossless_codec(self):
        from repro.analysis.sanitizer import SanitizedWireCodec

        p = WirePolicy.from_spec("delta").sanitized()
        assert isinstance(p.index_codec, SanitizedWireCodec)
        assert p.index_codec.name == "delta"


class TestEncodedAllgather:
    def _vectors(self, world, seed=0, n=2048, vocab=100_000):
        rng = np.random.default_rng(seed)
        return [
            np.sort(rng.choice(vocab, n + 17 * r, replace=False)).astype(
                np.int64
            )
            for r in range(world)
        ]

    @pytest.mark.parametrize("chunk_bytes", [None, 1024, 100])
    def test_matches_raw_allgather_bit_for_bit(self, chunk_bytes):
        world = 4
        vecs = self._vectors(world)
        raw = comm(world).iallgather(vecs, tag="idx").wait()
        enc = iencoded_allgather(
            comm(world), vecs, DeltaBitpackCodec(), tag="idx",
            chunk_bytes=chunk_bytes,
        ).wait()
        assert len(enc) == len(raw) == world
        for r, e in zip(raw, enc):
            assert e.dtype == r.dtype
            np.testing.assert_array_equal(e, r)

    def test_wait_is_idempotent(self):
        c = comm(2)
        pending = iencoded_allgather(
            c, self._vectors(2), DeltaBitpackCodec()
        )
        assert not pending.is_complete()
        first = pending.wait()
        assert pending.is_complete()
        assert pending.wait() is first

    def test_ledger_charges_encoded_bytes_under_codec_scope(self):
        c = comm(4)
        vecs = self._vectors(4)
        raw_bytes = comm(4)
        raw_bytes.iallgather(vecs, tag="idx").wait()
        iencoded_allgather(c, vecs, DeltaBitpackCodec(), tag="idx").wait()
        by_scope = c.ledger.bytes_by_scope()
        assert set(by_scope) == {"wire-delta"}
        assert by_scope["wire-delta"] < raw_bytes.ledger.total_wire_bytes_per_rank

    def test_compression_factor_reports_logical_over_wire(self):
        c = comm(4)
        iencoded_allgather(
            c, self._vectors(4), DeltaBitpackCodec(), tag="idx"
        ).wait()
        assert c.ledger.compression_factor("idx") > 2.0

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="per-rank arrays"):
            iencoded_allgather(
                comm(4), self._vectors(2), DeltaBitpackCodec()
            )

    def test_chunking_charges_codec_compute_on_the_timeline(self):
        c = comm(2)
        iencoded_allgather(
            c, self._vectors(2), DeltaBitpackCodec(), chunk_bytes=1024
        ).wait()
        assert c.timeline.busy_time(0, "compute") > 0.0


def _grads(world, vocab=3000, tokens=512, dim=4, seed=3):
    rng = np.random.default_rng(seed)
    return [
        SparseGrad(
            indices=rng.integers(0, vocab, tokens),
            values=rng.standard_normal((tokens, dim)),
        )
        for _ in range(world)
    ]


class TestExchangeWithWirePolicy:
    """A wire policy must change bytes on the wire, never the numerics."""

    @pytest.mark.parametrize("spec", ["delta", "rle", "delta:128"])
    @pytest.mark.parametrize("strategy_cls", [UniqueExchange, AllGatherExchange])
    def test_lossless_policy_is_bit_exact(self, spec, strategy_cls):
        grads = _grads(4)
        base = strategy_cls().exchange(comm(4), grads)
        wired = strategy_cls(
            wire=WirePolicy.from_spec(spec, chunk_bytes=1024)
        ).exchange(comm(4), grads)
        for b, w in zip(base, wired):
            np.testing.assert_array_equal(b.indices, w.indices)
            np.testing.assert_array_equal(b.values, w.values)

    def test_delta_policy_shrinks_unique_index_wire_bytes(self):
        grads = _grads(8, vocab=50_000, tokens=4096)
        c_raw, c_wire = comm(8), comm(8)
        UniqueExchange().exchange(c_raw, grads)
        UniqueExchange(wire=WirePolicy.from_spec("delta")).exchange(
            c_wire, grads
        )
        assert (
            c_wire.ledger.total_wire_bytes_per_rank
            < c_raw.ledger.total_wire_bytes_per_rank
        )
        assert c_wire.ledger.compression_factor(":indices") > 2.0

    def test_inert_policy_matches_no_policy_ledger(self):
        grads = _grads(4)
        c_none, c_inert = comm(4), comm(4)
        UniqueExchange().exchange(c_none, grads)
        UniqueExchange(wire=WirePolicy()).exchange(c_inert, grads)
        assert (
            c_none.ledger.total_wire_bytes_per_rank
            == c_inert.ledger.total_wire_bytes_per_rank
        )

    def test_auto_policy_keeps_exchange_equivalence(self):
        """'auto' compresses indices losslessly (identical index sets)
        and may route values through FP16, which is lossy by design —
        so values are held to the half-precision bound, indices to
        bit-exactness."""
        grads = _grads(4, vocab=50_000, tokens=4096)
        base = UniqueExchange().exchange(comm(4), grads)
        auto = UniqueExchange(wire=WirePolicy.from_spec("auto")).exchange(
            comm(4), grads
        )
        np.testing.assert_array_equal(base[0].indices, auto[0].indices)
        vocab = 50_000
        np.testing.assert_allclose(
            base[0].to_dense(vocab), auto[0].to_dense(vocab),
            rtol=2e-3, atol=1e-2,
        )
