"""Tests for the pluggable wire-compression stack (repro.core.wire).

Covers the lossless frame codecs, the registry/spec layer, pipeline
composition, the adaptive selector, the WirePolicy configuration
object, and the chunked encoded allgather — including the central
contract: swapping ``iencoded_allgather`` for a raw ``iallgather``
never changes a single decoded bit, only the wire bytes charged.
"""

import numpy as np
import pytest

from repro.cluster import Communicator
from repro.core.compression import Fp16Codec, IdentityCodec
from repro.core.sparse_exchange import AllGatherExchange, UniqueExchange
from repro.core.wire import (
    AdaptiveCodecSelector,
    CodecPipeline,
    DeltaBitpackCodec,
    RunLengthCodec,
    WirePolicy,
    available_codecs,
    decode_frames,
    iencoded_allgather,
    make_codec,
    register_codec,
)
from repro.core.wire.codecs import FRAME_HEADER_BYTES
from repro.nn.parameter import SparseGrad


def comm(world=4, **kw):
    kw.setdefault("track_memory", False)
    return Communicator(world, **kw)


CODECS = [DeltaBitpackCodec(), RunLengthCodec()]
CODEC_IDS = [c.name for c in CODECS]

EDGE_VECTORS = [
    np.zeros(0, dtype=np.int64),
    np.array([0], dtype=np.int64),
    np.array([7, 7, 7, 7], dtype=np.int64),
    np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max], dtype=np.int64),
    np.array([np.iinfo(np.int64).max, np.iinfo(np.int64).min], dtype=np.int64),
    np.arange(100, dtype=np.int64),
    np.arange(100, dtype=np.int64)[::-1].copy(),
    np.array([5, 1, 3, 3, 2, 100, 0], dtype=np.int64),
    np.array([-4, -1, 0, 3], dtype=np.int64),
    np.zeros(0, dtype=np.int32),
    np.array([np.iinfo(np.int32).min, np.iinfo(np.int32).max], dtype=np.int32),
    np.array([9, 2, 2, 8], dtype=np.int32),
]


class TestLosslessCodecs:
    @pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
    @pytest.mark.parametrize("vec", EDGE_VECTORS, ids=repr)
    def test_roundtrip_bit_exact(self, codec, vec):
        back = codec.decode(codec.encode(vec), vec.dtype)
        assert back.dtype == vec.dtype
        np.testing.assert_array_equal(back, vec)

    @pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
    @pytest.mark.parametrize("vec", EDGE_VECTORS, ids=repr)
    def test_raw_fallback_bounds_encoded_size(self, codec, vec):
        assert codec.encode(vec).nbytes <= vec.nbytes + FRAME_HEADER_BYTES

    def test_sorted_zipf_indices_compress_hard(self):
        """The workload the codecs exist for: sorted unique word ids."""
        rng = np.random.default_rng(0)
        idx = np.unique(
            rng.choice(100_000, size=8192, replace=True).astype(np.int64)
        )
        frame = DeltaBitpackCodec().encode(idx)
        assert frame.nbytes * 4 <= idx.nbytes  # >= 4x on this shape
        np.testing.assert_array_equal(
            DeltaBitpackCodec().decode(frame, np.int64), idx
        )

    def test_rle_collapses_dense_ranges(self):
        idx = np.arange(10_000, dtype=np.int64)
        frame = RunLengthCodec().encode(idx)
        assert frame.nbytes < 100  # one run: ~34 bytes
        np.testing.assert_array_equal(
            RunLengthCodec().decode(frame, np.int64), idx
        )

    def test_frames_survive_concatenation(self):
        """The allgatherv composition property decode_frames relies on."""
        codec = DeltaBitpackCodec()
        vecs = [
            np.array([3, 1, 4], dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.arange(50, dtype=np.int64),
        ]
        buf = np.concatenate([codec.encode(v) for v in vecs])
        np.testing.assert_array_equal(
            decode_frames(buf, np.int64), np.concatenate(vecs)
        )

    def test_mixed_codec_frames_decode_together(self):
        a = RunLengthCodec().encode(np.arange(64, dtype=np.int64))
        b = DeltaBitpackCodec().encode(np.array([9, 1, 5], dtype=np.int64))
        np.testing.assert_array_equal(
            decode_frames(np.concatenate([a, b]), np.int64),
            np.concatenate([np.arange(64), [9, 1, 5]]),
        )

    def test_dtype_mismatch_is_an_error_not_a_cast(self):
        frame = DeltaBitpackCodec().encode(np.array([1, 2], dtype=np.int64))
        with pytest.raises(ValueError, match="int64"):
            decode_frames(frame, np.int32)

    def test_rejects_float_and_2d_inputs(self):
        codec = DeltaBitpackCodec()
        with pytest.raises(ValueError, match="int32/int64"):
            codec.encode(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError, match="1-D"):
            codec.encode(np.zeros((2, 2), dtype=np.int64))

    @pytest.mark.parametrize("codec", CODECS, ids=CODEC_IDS)
    def test_estimate_is_a_usable_upper_signal(self, codec):
        idx = np.sort(
            np.random.default_rng(1).choice(50_000, 4096, replace=False)
        ).astype(np.int64)
        est = codec.estimate_nbytes(idx)
        assert 0 < est <= idx.nbytes + FRAME_HEADER_BYTES


class TestRegistry:
    def test_builtins_registered(self):
        assert {"identity", "fp16", "delta", "rle"} <= set(available_codecs())

    def test_make_codec_with_argument(self):
        assert make_codec("delta:128").block == 128
        assert make_codec("fp16:256").scale == 256.0
        assert isinstance(make_codec("identity"), IdentityCodec)

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("zstd")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codec("delta", DeltaBitpackCodec)

    def test_reserved_characters_rejected(self):
        for bad in ("", "a/b", "a+b", "a:b"):
            with pytest.raises(ValueError, match="invalid"):
                register_codec(bad, DeltaBitpackCodec)


class TestCodecPipeline:
    def test_single_stage_behaves_like_the_stage(self):
        pipe = CodecPipeline([DeltaBitpackCodec()])
        vec = np.array([1, 5, 2], dtype=np.int64)
        np.testing.assert_array_equal(
            pipe.decode(pipe.encode(vec), np.int64), vec
        )
        assert pipe.name == "delta"
        assert pipe.lossless and pipe.data_dependent

    def test_identity_then_delta_chains(self):
        pipe = CodecPipeline([IdentityCodec(), DeltaBitpackCodec()])
        vec = np.arange(100, dtype=np.int64)
        np.testing.assert_array_equal(
            pipe.decode(pipe.encode(vec), np.int64), vec
        )
        assert pipe.name == "identity+delta"
        assert pipe.wire_dtype(np.dtype(np.int64)) == np.uint8

    def test_lossy_stage_makes_pipeline_lossy(self):
        pipe = CodecPipeline([Fp16Codec()])
        assert not pipe.lossless

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError, match="at least one stage"):
            CodecPipeline([])


class TestAdaptiveSelector:
    def test_small_messages_never_encoded(self):
        sel = AdaptiveCodecSelector(min_bytes=4096)
        c = comm(4)
        tiny = [np.arange(8, dtype=np.int64)] * 4
        assert sel.select_index(tiny, c) is None
        assert sel.select_value([np.ones(8, np.float32)] * 4, c) is None

    def test_sorted_indices_pick_a_lossless_codec(self):
        sel = AdaptiveCodecSelector()
        c = comm(4)
        idx = [
            np.sort(
                np.random.default_rng(r).choice(100_000, 4096, replace=False)
            ).astype(np.int64)
            for r in range(4)
        ]
        picked = sel.select_index(idx, c, sorted_payload=True)
        assert picked is not None and picked.lossless

    def test_dense_ranges_prefer_rle(self):
        sel = AdaptiveCodecSelector()
        picked = sel.select_index(
            [np.arange(65_536, dtype=np.int64)] * 4, comm(4)
        )
        assert picked is not None and picked.name == "rle"

    def test_large_float_values_pick_fp16(self):
        sel = AdaptiveCodecSelector()
        vals = [np.ones(65_536, np.float32)] * 4
        picked = sel.select_value(vals, comm(4))
        assert isinstance(picked, Fp16Codec)

    def test_float16_and_integer_values_stay_raw(self):
        sel = AdaptiveCodecSelector()
        c = comm(4)
        assert sel.select_value([np.ones(65_536, np.float16)] * 4, c) is None
        assert sel.select_value([np.ones(65_536, np.int64)] * 4, c) is None


class TestWirePolicy:
    def test_from_spec_roles(self):
        p = WirePolicy.from_spec("fp16+delta")
        assert isinstance(p.value_codec, Fp16Codec)
        assert isinstance(p.index_codec, DeltaBitpackCodec)
        assert p.selector is None

    def test_from_spec_auto_and_none(self):
        assert WirePolicy.from_spec("auto").selector is not None
        none = WirePolicy.from_spec("none")
        assert none.is_inert

    def test_from_spec_with_codec_argument(self):
        assert WirePolicy.from_spec("delta:64").index_codec.block == 64

    def test_from_spec_rejects_bad_combinations(self):
        with pytest.raises(ValueError, match="auto"):
            WirePolicy.from_spec("auto+delta")
        with pytest.raises(ValueError, match="duplicate value"):
            WirePolicy.from_spec("fp16+identity")
        with pytest.raises(ValueError, match="duplicate index"):
            WirePolicy.from_spec("delta+rle")
        with pytest.raises(ValueError, match="unknown wire-codec"):
            WirePolicy.from_spec("gzip")
        with pytest.raises(ValueError, match="empty"):
            WirePolicy.from_spec("+")

    def test_chunk_bytes_validation(self):
        with pytest.raises(ValueError, match="positive"):
            WirePolicy.from_spec("delta", chunk_bytes=0)
        assert WirePolicy.from_spec("delta", chunk_bytes=512).chunk_bytes == 512

    def test_fixed_slot_wins_over_selector(self):
        fixed = RunLengthCodec()
        p = WirePolicy(index_codec=fixed, selector=AdaptiveCodecSelector())
        got = p.resolve_index_codec([np.arange(4, dtype=np.int64)], comm(2))
        assert got is fixed

    def test_sanitized_wraps_lossless_codec(self):
        from repro.analysis.sanitizer import SanitizedWireCodec

        p = WirePolicy.from_spec("delta").sanitized()
        assert isinstance(p.index_codec, SanitizedWireCodec)
        assert p.index_codec.name == "delta"


class TestEncodedAllgather:
    def _vectors(self, world, seed=0, n=2048, vocab=100_000):
        rng = np.random.default_rng(seed)
        return [
            np.sort(rng.choice(vocab, n + 17 * r, replace=False)).astype(
                np.int64
            )
            for r in range(world)
        ]

    @pytest.mark.parametrize("chunk_bytes", [None, 1024, 100])
    def test_matches_raw_allgather_bit_for_bit(self, chunk_bytes):
        world = 4
        vecs = self._vectors(world)
        raw = comm(world).iallgather(vecs, tag="idx").wait()
        enc = iencoded_allgather(
            comm(world), vecs, DeltaBitpackCodec(), tag="idx",
            chunk_bytes=chunk_bytes,
        ).wait()
        assert len(enc) == len(raw) == world
        for r, e in zip(raw, enc):
            assert e.dtype == r.dtype
            np.testing.assert_array_equal(e, r)

    def test_wait_is_idempotent(self):
        c = comm(2)
        pending = iencoded_allgather(
            c, self._vectors(2), DeltaBitpackCodec()
        )
        assert not pending.is_complete()
        first = pending.wait()
        assert pending.is_complete()
        assert pending.wait() is first

    def test_ledger_charges_encoded_bytes_under_codec_scope(self):
        c = comm(4)
        vecs = self._vectors(4)
        raw_bytes = comm(4)
        raw_bytes.iallgather(vecs, tag="idx").wait()
        iencoded_allgather(c, vecs, DeltaBitpackCodec(), tag="idx").wait()
        by_scope = c.ledger.bytes_by_scope()
        assert set(by_scope) == {"wire-delta"}
        assert by_scope["wire-delta"] < raw_bytes.ledger.total_wire_bytes_per_rank

    def test_compression_factor_reports_logical_over_wire(self):
        c = comm(4)
        iencoded_allgather(
            c, self._vectors(4), DeltaBitpackCodec(), tag="idx"
        ).wait()
        assert c.ledger.compression_factor("idx") > 2.0

    def test_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="per-rank arrays"):
            iencoded_allgather(
                comm(4), self._vectors(2), DeltaBitpackCodec()
            )

    def test_chunking_charges_codec_compute_on_the_timeline(self):
        c = comm(2)
        iencoded_allgather(
            c, self._vectors(2), DeltaBitpackCodec(), chunk_bytes=1024
        ).wait()
        assert c.timeline.busy_time(0, "compute") > 0.0


def _grads(world, vocab=3000, tokens=512, dim=4, seed=3):
    rng = np.random.default_rng(seed)
    return [
        SparseGrad(
            indices=rng.integers(0, vocab, tokens),
            values=rng.standard_normal((tokens, dim)),
        )
        for _ in range(world)
    ]


class TestExchangeWithWirePolicy:
    """A wire policy must change bytes on the wire, never the numerics."""

    @pytest.mark.parametrize("spec", ["delta", "rle", "delta:128"])
    @pytest.mark.parametrize("strategy_cls", [UniqueExchange, AllGatherExchange])
    def test_lossless_policy_is_bit_exact(self, spec, strategy_cls):
        grads = _grads(4)
        base = strategy_cls().exchange(comm(4), grads)
        wired = strategy_cls(
            wire=WirePolicy.from_spec(spec, chunk_bytes=1024)
        ).exchange(comm(4), grads)
        for b, w in zip(base, wired):
            np.testing.assert_array_equal(b.indices, w.indices)
            np.testing.assert_array_equal(b.values, w.values)

    def test_delta_policy_shrinks_unique_index_wire_bytes(self):
        grads = _grads(8, vocab=50_000, tokens=4096)
        c_raw, c_wire = comm(8), comm(8)
        UniqueExchange().exchange(c_raw, grads)
        UniqueExchange(wire=WirePolicy.from_spec("delta")).exchange(
            c_wire, grads
        )
        assert (
            c_wire.ledger.total_wire_bytes_per_rank
            < c_raw.ledger.total_wire_bytes_per_rank
        )
        assert c_wire.ledger.compression_factor(":indices") > 2.0

    def test_inert_policy_matches_no_policy_ledger(self):
        grads = _grads(4)
        c_none, c_inert = comm(4), comm(4)
        UniqueExchange().exchange(c_none, grads)
        UniqueExchange(wire=WirePolicy()).exchange(c_inert, grads)
        assert (
            c_none.ledger.total_wire_bytes_per_rank
            == c_inert.ledger.total_wire_bytes_per_rank
        )

    def test_auto_policy_keeps_exchange_equivalence(self):
        """'auto' compresses indices losslessly (identical index sets)
        and may route values through FP16, which is lossy by design —
        so values are held to the half-precision bound, indices to
        bit-exactness."""
        grads = _grads(4, vocab=50_000, tokens=4096)
        base = UniqueExchange().exchange(comm(4), grads)
        auto = UniqueExchange(wire=WirePolicy.from_spec("auto")).exchange(
            comm(4), grads
        )
        np.testing.assert_array_equal(base[0].indices, auto[0].indices)
        vocab = 50_000
        np.testing.assert_allclose(
            base[0].to_dense(vocab), auto[0].to_dense(vocab),
            rtol=2e-3, atol=1e-2,
        )


class TestZeroLengthPayloads:
    """Empty per-rank vectors must flow through the whole encoded path
    bit-exact — a rank with nothing to contribute is routine for sparse
    exchanges, not an edge case."""

    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_empty_vector_roundtrips_every_frame_codec(self, dtype):
        from repro.core.wire import EntropyCodec

        empty = np.zeros(0, dtype=dtype)
        for codec in (DeltaBitpackCodec(), RunLengthCodec(), EntropyCodec()):
            frame = codec.encode(empty)
            assert frame.dtype == np.uint8
            back = codec.decode(frame, empty.dtype)
            assert back.dtype == empty.dtype and back.size == 0
            # An empty frame still decodes as a frame stream element.
            assert np.array_equal(decode_frames(frame, empty.dtype), empty)

    def test_allgather_with_all_ranks_empty(self):
        world = 4
        vecs = [np.zeros(0, dtype=np.int64) for _ in range(world)]
        out = iencoded_allgather(comm(world), vecs, DeltaBitpackCodec()).wait()
        assert len(out) == world
        for o in out:
            assert o.dtype == np.int64 and o.size == 0

    def test_allgather_with_some_ranks_empty_matches_raw(self):
        world = 4
        rng = np.random.default_rng(3)
        vecs = [
            np.zeros(0, dtype=np.int64)
            if r % 2
            else np.sort(rng.choice(10_000, 64 * (r + 1), replace=False)).astype(
                np.int64
            )
            for r in range(world)
        ]
        raw = comm(world).iallgather(list(vecs), tag="mix").wait()
        enc = iencoded_allgather(
            comm(world), list(vecs), RunLengthCodec(), tag="mix"
        ).wait()
        for r, e in zip(raw, enc):
            np.testing.assert_array_equal(e, r)
        np.testing.assert_array_equal(enc[0], np.concatenate(vecs))


class TestSelectorLearning:
    """The adaptive selector's learned throughput table (satellite +
    tentpole): measured telemetry replaces the static defaults, and the
    learned table stays identical on every rank."""

    def _drive_traffic(self, c, tp):
        """Push entropy-coded index traffic through the wire layer,
        charged at the custom throughput ``tp``."""
        from repro.core.wire import EntropyCodec

        rng = np.random.default_rng(11)
        vecs = [
            np.sort(rng.choice(1_000_000, 4096, replace=False)).astype(
                np.int64
            )
            for _ in range(c.world_size)
        ]
        iencoded_allgather(
            c, vecs, EntropyCodec(), tag="learn", throughput=tp
        ).wait()
        return vecs

    def test_learn_recovers_charged_throughput(self):
        from repro.core.wire.cost import (
            DEFAULT_CODEC_THROUGHPUTS,
            CodecThroughput,
        )
        from repro.telemetry import MetricsRegistry

        c = comm(4)
        c.metrics = MetricsRegistry()
        custom = CodecThroughput(encode_bps=1e9, decode_bps=2e9)
        self._drive_traffic(c, custom)
        sel = AdaptiveCodecSelector()
        learned = sel.learn_from_metrics(c.metrics)
        assert set(learned) == {"entropy"}
        assert learned["entropy"].encode_bps == pytest.approx(1e9, abs=1.0)
        assert learned["entropy"].decode_bps == pytest.approx(2e9, abs=1.0)
        # Codecs that saw no traffic keep their defaults.
        assert sel.throughputs["delta"] == DEFAULT_CODEC_THROUGHPUTS["delta"]
        assert sel.throughputs["entropy"] == learned["entropy"]

    def test_learning_without_traffic_is_a_no_op(self):
        from repro.core.wire.cost import DEFAULT_CODEC_THROUGHPUTS
        from repro.telemetry import MetricsRegistry

        sel = AdaptiveCodecSelector()
        assert sel.learn_from_metrics(MetricsRegistry()) == {}
        assert sel.throughputs == DEFAULT_CODEC_THROUGHPUTS

    def test_learned_table_changes_selection(self):
        """A glacial learned entry must steer the crossover away from
        the codec the defaults would have picked."""
        from repro.core.wire.cost import CodecThroughput

        c = comm(4)
        idx = [np.arange(65_536, dtype=np.int64)] * 4
        default_pick = AdaptiveCodecSelector().select_index(idx, c)
        assert default_pick is not None and default_pick.name == "rle"
        crippled = AdaptiveCodecSelector(
            throughputs={
                "rle": CodecThroughput(encode_bps=1e3, decode_bps=1e3)
            }
        )
        slow_pick = crippled.select_index(idx, c)
        assert slow_pick is None or slow_pick.name != "rle"

    def test_cross_rank_determinism_under_lockstep(self):
        """Satellite: every rank learns the same table from the shared
        registry, so selector-routed traffic stays in lockstep."""
        from repro.cluster.lockstep import LockstepVerifier
        from repro.core.wire.cost import CodecThroughput
        from repro.telemetry import MetricsRegistry

        c = comm(4)
        c.metrics = MetricsRegistry()
        custom = CodecThroughput(encode_bps=1e9, decode_bps=2e9)
        self._drive_traffic(c, custom)

        # One selector instance per simulated rank, each learning
        # independently from the shared SPMD registry.
        selectors = [AdaptiveCodecSelector() for _ in range(c.world_size)]
        tables = [s.learn_from_metrics(c.metrics) for s in selectors]
        assert all(t == tables[0] for t in tables[1:])
        # Dense shifted ranges: every rank's frame encodes to the same
        # byte count, so the wire envelope itself is rank-uniform.
        vecs = [
            (np.arange(65_536) + r).astype(np.int64)
            for r in range(c.world_size)
        ]
        picks = [s.select_index(vecs, c) for s in selectors]
        names = [p.name if p is not None else None for p in picks]
        assert len(set(names)) == 1

        # The agreed pick drives a collective under the lockstep
        # verifier: identical fingerprints on every rank, no divergence.
        LockstepVerifier.attach(c)
        codec = picks[0] if picks[0] is not None else DeltaBitpackCodec()
        out = iencoded_allgather(c, vecs, codec, tag="lockstep").wait()
        report = c.verifier.check("learned-selector: end")
        assert report.verified > 0 and not report.evicted
        np.testing.assert_array_equal(out[0], np.concatenate(vecs))
