"""Traffic-generator unit tests: determinism, edge cases, validation."""

import numpy as np
import pytest

from repro.serve import ArrivalSpec, TrafficConfig, generate_traffic
from repro.serve.traffic import make_arrival_times


class TestArrivalSpec:
    def test_defaults_valid(self):
        spec = ArrivalSpec()
        assert spec.burst_rate > spec.calm_rate

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(calm_rate=-1.0)

    def test_both_rates_zero_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(calm_rate=0.0, burst_rate=0.0)

    def test_nonpositive_phase_duration_rejected(self):
        with pytest.raises(ValueError):
            ArrivalSpec(mean_calm_s=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(mean_burst_s=-1.0)


class TestMakeArrivalTimes:
    def test_empty_trace(self):
        times = make_arrival_times(0, ArrivalSpec(), np.random.default_rng(0))
        assert times.shape == (0,)
        assert times.dtype == np.float64

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            make_arrival_times(-1, ArrivalSpec(), np.random.default_rng(0))

    def test_single_request_burst(self):
        # A lone request must still get a finite, non-negative arrival.
        spec = ArrivalSpec(calm_rate=0.0, burst_rate=100.0, mean_calm_s=0.01)
        times = make_arrival_times(1, spec, np.random.default_rng(1))
        assert times.shape == (1,)
        assert np.isfinite(times[0]) and times[0] >= 0.0

    def test_zero_rate_interval_is_silent(self):
        # Calm phases at rate 0 produce no arrivals: every arrival falls
        # inside a burst phase, so gaps cluster at burst spacing with
        # occasional calm-phase silences in between.
        spec = ArrivalSpec(
            calm_rate=0.0, burst_rate=1000.0, mean_calm_s=1.0, mean_burst_s=0.05
        )
        times = make_arrival_times(200, spec, np.random.default_rng(2))
        gaps = np.diff(times)
        # Silent calm intervals show up as gaps far above burst spacing.
        assert gaps.max() > 20 * np.median(gaps)

    def test_monotone_nondecreasing(self):
        times = make_arrival_times(500, ArrivalSpec(), np.random.default_rng(3))
        assert np.all(np.diff(times) >= 0)

    def test_deterministic_in_rng_seed(self):
        spec = ArrivalSpec()
        a = make_arrival_times(100, spec, np.random.default_rng(7))
        b = make_arrival_times(100, spec, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestTrafficConfigValidation:
    def test_negative_num_requests_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=-1, vocab_size=10)

    def test_nonpositive_vocab_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=1, vocab_size=0)

    def test_nonpositive_pool_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=1, vocab_size=10, prompt_pool=0)

    def test_bad_ranges_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=1, vocab_size=10, prompt_len=(0, 4))
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=1, vocab_size=10, max_new_tokens=(5, 2))

    def test_nonpositive_slo_rejected(self):
        with pytest.raises(ValueError):
            TrafficConfig(num_requests=1, vocab_size=10, slo_s=0.0)


class TestGenerateTraffic:
    def test_empty_trace(self):
        assert generate_traffic(TrafficConfig(num_requests=0, vocab_size=10)) == []

    def test_ids_sequential_in_arrival_order(self):
        requests = generate_traffic(TrafficConfig(num_requests=20, vocab_size=40))
        assert [r.request_id for r in requests] == list(range(20))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)

    def test_deterministic_in_seed(self):
        config = TrafficConfig(num_requests=15, vocab_size=30, seed=11)
        a = generate_traffic(config)
        b = generate_traffic(config)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.prompt, rb.prompt)
            assert ra.max_new_tokens == rb.max_new_tokens
            assert ra.arrival_s == rb.arrival_s

    def test_seed_changes_stream(self):
        base = TrafficConfig(num_requests=15, vocab_size=30, seed=0)
        other = TrafficConfig(num_requests=15, vocab_size=30, seed=1)
        a = generate_traffic(base)
        b = generate_traffic(other)
        assert any(
            ra.prompt.shape != rb.prompt.shape
            or not np.array_equal(ra.prompt, rb.prompt)
            or ra.arrival_s != rb.arrival_s
            for ra, rb in zip(a, b)
        )

    def test_fields_respect_config(self):
        config = TrafficConfig(
            num_requests=25,
            vocab_size=12,
            prompt_len=(2, 5),
            max_new_tokens=(3, 6),
            slo_s=0.5,
            eos_token=0,
            seed=4,
        )
        for req in generate_traffic(config):
            assert 2 <= req.prompt.size <= 5
            assert np.all(req.prompt >= 0) and np.all(req.prompt < 12)
            assert 3 <= req.max_new_tokens <= 6
            assert req.slo_s == 0.5
            assert req.eos_token == 0

    def test_prompt_popularity_is_skewed(self):
        # Zipfian prompt choice: the hottest prompt should dominate.
        requests = generate_traffic(
            TrafficConfig(num_requests=200, vocab_size=50, prompt_pool=16, seed=5)
        )
        counts: dict[bytes, int] = {}
        for req in requests:
            counts[req.prompt.tobytes()] = counts.get(req.prompt.tobytes(), 0) + 1
        top = max(counts.values())
        assert top > 200 / 16 * 2  # far above the uniform share
