"""Property suites (200 seeded cases each) over the serving control plane.

Three invariants from the issue, driven through ``tests/proptest.py``
with the scripted :class:`~tests.serve.helpers.CountingDecoder` so each
case costs microseconds, not model math:

1. **No silent drops** — every admitted request reaches exactly one
   terminal state, and every drop has a recorded ``slo_expired`` event.
2. **Eviction safety** — the cache never evicts a pinned (active-batch)
   entry, and residency never exceeds the budget, under random
   put/get/pin/unpin/release plans.
3. **Token conservation** — total decoded tokens equals the sum of
   per-request emissions, under random arrival plans and fault
   injection (rank loss mid-flight included).
"""

import numpy as np

from repro.cluster.communicator import Communicator
from repro.cluster.failures import ChaosCommunicator, FaultPlan
from repro.serve import (
    RecurrentStateCache,
    ServeConfig,
    ServeRequest,
    ServingEngine,
)

from ..proptest import run_property
from .helpers import CountingDecoder

N_CASES = 200


def random_requests(rng, n, with_slo=False):
    requests = []
    for rid in range(n):
        slo = float(rng.uniform(0.005, 0.2)) if with_slo and rng.random() < 0.5 else float("inf")
        requests.append(
            ServeRequest(
                request_id=rid,
                prompt=rng.integers(0, 16, size=int(rng.integers(1, 6))).astype(np.int64),
                max_new_tokens=int(rng.integers(1, 8)),
                arrival_s=float(rng.uniform(0.0, 0.3)),
                slo_s=slo,
            )
        )
    return requests


def build_engine(rng, params, plan=None):
    world = params["world"]
    config = ServeConfig(
        max_batch=params["max_batch"],
        seed=int(rng.integers(0, 2**31)),
        drop_expired=params.get("drop", True),
        cache_budget_bytes=params["budget_states"] * 8,
        decode_token_s=5e-3,
        prefill_token_s=2e-3,
    )
    if plan is not None:
        comm = ChaosCommunicator(world, plan=plan)
    else:
        comm = Communicator(world)
    return ServingEngine(CountingDecoder(), comm, config)


class TestNoSilentDrops:
    """Property 1: admitted requests never vanish without an event."""

    @staticmethod
    def gen(rng):
        return {
            "n": int(rng.integers(1, 16)),
            "world": int(rng.integers(1, 4)),
            "max_batch": int(rng.integers(1, 5)),
            "budget_states": int(rng.integers(5, 40)),
            "drop": bool(rng.random() < 0.7),
        }

    @staticmethod
    def prop(params, rng):
        if params["budget_states"] < params["max_batch"]:
            raise ValueError("budget below active batch")
        requests = random_requests(rng, params["n"], with_slo=True)
        engine = build_engine(rng, params)
        report = engine.run(requests)
        sched = engine.scheduler

        all_ids = {r.request_id for r in requests}
        finished = set(sched.finished)
        dropped = set(sched.dropped)
        # exact partition: every request terminal, no overlap, none extra
        assert finished | dropped == all_ids
        assert not (finished & dropped)
        assert len(report.requests) == len(all_ids)

        # every drop is announced, and only under the deadline policy
        expiry_events = {
            rid for kind, rid, _ in sched.events if kind == "slo_expired"
        }
        assert dropped == expiry_events
        if not params["drop"]:
            assert not dropped
        for record in report.requests:
            if record.dropped:
                assert record.request_id in expiry_events
            else:
                assert record.finish_reason in ("eos", "length")
                assert len(record.tokens) >= 1

    def test_property(self):
        assert run_property(self.prop, self.gen, n_cases=N_CASES, seed=101) == N_CASES


class TestEvictionSafety:
    """Property 2: pinned entries survive any random cache plan."""

    @staticmethod
    def gen(rng):
        return {
            "budget_states": int(rng.integers(1, 12)),
            "n_ops": int(rng.integers(1, 120)),
            "id_space": int(rng.integers(1, 20)),
        }

    @staticmethod
    def prop(params, rng):
        budget = params["budget_states"] * 8
        cache = RecurrentStateCache(budget)
        pinned: set[int] = set()
        resident: set[int] = set()
        for _ in range(params["n_ops"]):
            rid = int(rng.integers(0, params["id_space"]))
            op = rng.random()
            if op < 0.4:
                want_pin = rng.random() < 0.3
                if want_pin and (len(pinned - {rid}) + 1) * 8 > budget:
                    want_pin = False  # a legal driver never over-pins
                ok = cache.put(
                    rid, (np.array([float(rid)]),), n_consumed=1, pinned=want_pin
                )
                if ok:
                    resident.add(rid)
                    (pinned.add if want_pin else pinned.discard)(rid)
                else:
                    assert not want_pin  # only unpinned puts may be refused
                    resident.discard(rid)
                    pinned.discard(rid)
            elif op < 0.6:
                entry = cache.get(rid)
                assert (entry is not None) == (rid in resident)
            elif op < 0.75 and rid in resident:
                cache.pin(rid)
                pinned.add(rid)
            elif op < 0.9 and rid in resident:
                cache.unpin(rid)
                pinned.discard(rid)
            else:
                cache.release(rid)
                resident.discard(rid)
                pinned.discard(rid)

            # puts may have evicted unpinned entries: sync the shadow set
            resident = {r for r in resident if r in cache}

            # the invariants under test
            assert cache.resident_bytes <= budget
            for pinned_id in pinned:
                assert pinned_id in cache, (
                    f"pinned request {pinned_id} was evicted"
                )
        for kind, rid in cache.events:
            if kind == "evict":
                assert rid is not None  # evictions are always recorded

    def test_property(self):
        assert run_property(self.prop, self.gen, n_cases=N_CASES, seed=202) == N_CASES

    def test_pinned_entries_survive_under_minimal_budget(self):
        # Directed worst case: budget exactly one state, pinned occupant.
        cache = RecurrentStateCache(8)
        cache.put(0, (np.array([0.0]),), 1, pinned=True)
        assert not cache.put(1, (np.array([1.0]),), 1)
        assert 0 in cache and cache.evictions == 0


class TestTokenConservation:
    """Property 3: Σ per-request emissions == total under random plans."""

    @staticmethod
    def gen(rng):
        n_loss = int(rng.integers(0, 2))
        return {
            "n": int(rng.integers(1, 14)),
            "world": int(rng.integers(2, 4)) if n_loss else int(rng.integers(1, 4)),
            "max_batch": int(rng.integers(1, 5)),
            "budget_states": int(rng.integers(5, 40)),
            "n_transient": int(rng.integers(0, 3)),
            "n_loss": n_loss,
        }

    @staticmethod
    def prop(params, rng):
        if params["budget_states"] < params["max_batch"]:
            raise ValueError("budget below active batch")
        if params["n_loss"] and params["world"] < 2:
            raise ValueError("rank loss needs a shrinkable world")
        requests = random_requests(rng, params["n"])
        plan = None
        if params["n_transient"] or params["n_loss"]:
            plan = FaultPlan.random(
                seed=int(rng.integers(0, 2**31)),
                world_size=params["world"],
                num_collectives=40,
                n_transient=params["n_transient"],
                n_rank_loss=params["n_loss"],
            )
        engine = build_engine(rng, params, plan=plan)
        report = engine.run(requests)

        expected = {r.request_id: r.max_new_tokens for r in requests}
        per_request = {r.request_id: len(r.tokens) for r in report.requests}
        # conservation: the report's total is exactly the per-request sum
        assert report.total_tokens == sum(per_request.values())
        # nothing lost to faults: every request emits its full budget
        # (no EOS, no drop policy in this property)
        assert per_request == expected
        for record in report.requests:
            assert record.finish_reason == "length"
            assert len(record.token_times_s) == len(record.tokens)
            times = record.token_times_s
            assert all(b >= a for a, b in zip(times, times[1:]))
            assert times[0] >= record.arrival_s
        if params["n_loss"]:
            assert engine.generations >= 1  # recovery path did not wedge

    def test_property(self):
        assert run_property(self.prop, self.gen, n_cases=N_CASES, seed=303) == N_CASES
