"""Scheduler unit tests: admission, retirement, deadline drops, readmission."""

import numpy as np
import pytest

from repro.serve import ContinuousBatchingScheduler, RequestState, ServeRequest


def req(rid, arrival=0.0, max_new=4, slo=float("inf"), eos=None):
    return ServeRequest(
        request_id=rid,
        prompt=np.array([1, 2], dtype=np.int64),
        max_new_tokens=max_new,
        arrival_s=arrival,
        slo_s=slo,
        eos_token=eos,
    )


class TestConstruction:
    def test_nonpositive_max_batch_rejected(self):
        with pytest.raises(ValueError):
            ContinuousBatchingScheduler([req(0)], max_batch=0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ContinuousBatchingScheduler([req(0), req(0)], max_batch=2)

    def test_queue_ordered_by_arrival_then_id(self):
        sched = ContinuousBatchingScheduler(
            [req(3, arrival=1.0), req(1, arrival=0.5), req(2, arrival=0.5)],
            max_batch=2,
        )
        assert sched.queued_ids() == (1, 2, 3)


class TestAdmission:
    def test_fifo_fill_up_to_max_batch(self):
        sched = ContinuousBatchingScheduler([req(i) for i in range(5)], 3)
        admitted, dropped = sched.poll(0.0)
        assert admitted == [0, 1, 2] and dropped == []
        assert sched.active == [0, 1, 2]
        assert sched.queued_ids() == (3, 4)

    def test_future_arrivals_not_admitted(self):
        sched = ContinuousBatchingScheduler(
            [req(0, arrival=0.0), req(1, arrival=5.0)], 4
        )
        admitted, _ = sched.poll(1.0)
        assert admitted == [0]
        assert sched.next_arrival_s(1.0) == 5.0
        assert sched.next_arrival_s(10.0) is None

    def test_retired_slot_refills(self):
        sched = ContinuousBatchingScheduler([req(i, max_new=1) for i in range(3)], 1)
        sched.poll(0.0)
        assert sched.active == [0]
        assert sched.record_token(0, 7, 0.1) == "length"
        admitted, _ = sched.poll(0.2)
        assert admitted == [1]


class TestRetirement:
    def test_length_retirement(self):
        sched = ContinuousBatchingScheduler([req(0, max_new=2)], 1)
        sched.poll(0.0)
        assert sched.record_token(0, 5, 0.1) is None
        assert sched.record_token(0, 6, 0.2) == "length"
        rec = sched.records[0]
        assert rec.state is RequestState.FINISHED
        assert rec.emitted == [5, 6]
        assert rec.token_times_s == [0.1, 0.2]
        assert rec.finish_s == 0.2
        assert ("finish", 0, 0.2) in sched.events
        assert sched.done

    def test_eos_retirement(self):
        sched = ContinuousBatchingScheduler([req(0, max_new=10, eos=9)], 1)
        sched.poll(0.0)
        assert sched.record_token(0, 9, 0.1) == "eos"
        assert sched.records[0].finish_reason == "eos"

    def test_token_on_inactive_request_rejected(self):
        sched = ContinuousBatchingScheduler([req(0), req(1)], 1)
        sched.poll(0.0)
        with pytest.raises(ValueError):
            sched.record_token(1, 5, 0.1)


class TestDeadlinePolicy:
    def test_expired_queued_request_dropped_with_event(self):
        sched = ContinuousBatchingScheduler(
            [req(0, slo=1.0), req(1, slo=1.0)], max_batch=1
        )
        sched.poll(0.0)  # 0 admitted, 1 queued
        _, dropped = sched.poll(2.0)
        assert dropped == [1]
        rec = sched.records[1]
        assert rec.state is RequestState.DROPPED
        assert rec.finish_reason == "slo_expired"
        assert ("slo_expired", 1, 2.0) in sched.events

    def test_admitted_requests_never_dropped(self):
        sched = ContinuousBatchingScheduler([req(0, slo=0.5)], 1)
        sched.poll(0.0)
        _, dropped = sched.poll(10.0)
        assert dropped == []
        assert sched.records[0].state is RequestState.ACTIVE

    def test_drop_disabled(self):
        sched = ContinuousBatchingScheduler(
            [req(0, slo=0.5), req(1, slo=0.5)], 1, drop_expired=False
        )
        sched.poll(0.0)
        _, dropped = sched.poll(10.0)
        assert dropped == []
        assert 1 in sched.queued_ids()

    def test_unarrived_request_not_dropped(self):
        sched = ContinuousBatchingScheduler([req(0, arrival=5.0, slo=0.1)], 1)
        _, dropped = sched.poll(1.0)
        assert dropped == []


class TestReadmission:
    def test_readmit_to_queue_head_keeps_tokens(self):
        sched = ContinuousBatchingScheduler([req(i, max_new=5) for i in range(3)], 2)
        sched.poll(0.0)  # active: 0, 1; queued: 2
        sched.record_token(0, 4, 0.1)
        sched.readmit(0, 0.2)
        assert sched.queued_ids() == (0, 2)
        rec = sched.records[0]
        assert rec.state is RequestState.QUEUED
        assert rec.emitted == [4]
        assert rec.readmissions == 1
        assert rec.consumed_tokens == [1, 2, 4]
        assert ("readmitted", 0, 0.2) in sched.events
        admitted, _ = sched.poll(0.3)
        assert admitted == [0]  # head of queue wins the free slot

    def test_readmit_inactive_rejected(self):
        sched = ContinuousBatchingScheduler([req(0), req(1)], 1)
        sched.poll(0.0)
        with pytest.raises(ValueError):
            sched.readmit(1, 0.1)
