"""Shared fixtures for the serving suite: tiny models and test decoders."""

import numpy as np

from repro.serve import ArrivalSpec, ServeConfig, TrafficConfig, generate_traffic
from repro.serve.decoders import CharLMDecoder, WordLMDecoder
from repro.train.char_lm import CharLanguageModel
from repro.train.config import CharLMConfig, WordLMConfig
from repro.train.word_lm import WordLanguageModel

__all__ = [
    "CountingDecoder",
    "PRESSURE_ARRIVALS",
    "make_char_decoder",
    "make_word_decoder",
    "pressure_config",
    "pressure_traffic",
]

#: Arrival process fast enough (relative to the pressure_config costs)
#: to back up the admission queue, exercising speculative prefill,
#: cache eviction, and the SLO deadline policy.
PRESSURE_ARRIVALS = ArrivalSpec(
    calm_rate=200.0, burst_rate=2000.0, mean_calm_s=0.05, mean_burst_s=0.05
)


def make_word_decoder(seed: int = 0) -> WordLMDecoder:
    config = WordLMConfig(
        vocab_size=50,
        embedding_dim=8,
        hidden_dim=12,
        projection_dim=8,
        num_samples=4,
    )
    return WordLMDecoder(
        WordLanguageModel(config, np.random.default_rng(seed))
    )


def make_char_decoder(seed: int = 0) -> CharLMDecoder:
    config = CharLMConfig(
        vocab_size=30, embedding_dim=6, hidden_dim=10, depth=3, dropout=0.0
    )
    return CharLMDecoder(
        CharLanguageModel(config, np.random.default_rng(seed))
    )


def pressure_traffic(
    n: int = 24, seed: int = 3, vocab: int = 50, **overrides
) -> list:
    kwargs = dict(
        num_requests=n,
        vocab_size=vocab,
        prompt_pool=6,
        arrivals=PRESSURE_ARRIVALS,
        seed=seed,
    )
    kwargs.update(overrides)
    return generate_traffic(TrafficConfig(**kwargs))


def pressure_config(**overrides) -> ServeConfig:
    kwargs = dict(
        max_batch=3,
        seed=1,
        drop_expired=False,
        decode_token_s=5e-3,
        prefill_token_s=2e-3,
    )
    kwargs.update(overrides)
    return ServeConfig(**kwargs)


class CountingDecoder:
    """Deterministic scripted decoder for the pure-logic property suite.

    State is a single counter of consumed tokens; the next token is
    ``(count + request-independent mix) % vocab`` via a one-hot logit
    row.  Schedule-independent by construction — the properties exercise
    the scheduler/cache/engine plumbing, not the numerics.
    """

    def __init__(self, vocab_size: int = 16, dim: int = 2):
        self.vocab_size = vocab_size
        self.embedding_weight = np.arange(
            vocab_size * dim, dtype=np.float64
        ).reshape(vocab_size, dim)
        self.steps_taken = 0

    @property
    def state_nbytes(self) -> int:
        return 8

    def init_state(self):
        return (np.zeros(1, dtype=np.float64),)

    def step(self, x, states):
        count = states[0]
        new = count + 1.0
        batch = x.shape[0]
        self.steps_taken += batch
        logits = np.zeros((batch, self.vocab_size))
        idx = (new[:, 0].astype(np.int64) + x[:, 0].astype(np.int64)) % (
            self.vocab_size
        )
        logits[np.arange(batch), idx] = 1.0
        return logits, (new,)
