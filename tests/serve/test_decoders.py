"""Decoder kernel tests: batch invariance, sampling, sharded lookup."""

import numpy as np
import pytest

from repro.cluster.communicator import Communicator
from repro.serve import sample_token, sharded_embedding_lookup
from repro.serve.decoders import stack_states, unstack_state

from .helpers import make_char_decoder, make_word_decoder


def random_rows(decoder, n, rng):
    ids = rng.integers(0, decoder.vocab_size, size=n)
    return decoder.embedding_weight[ids]


class TestStackUnstack:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        rows = [
            (rng.standard_normal(4), rng.standard_normal(4)) for _ in range(3)
        ]
        stacked = stack_states(rows)
        assert stacked[0].shape == (3, 4)
        for i, row in enumerate(rows):
            out = unstack_state(stacked, i)
            np.testing.assert_array_equal(out[0], row[0])
            np.testing.assert_array_equal(out[1], row[1])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            stack_states([])

    def test_unstack_copies(self):
        stacked = stack_states([(np.zeros(2),)])
        row = unstack_state(stacked, 0)
        row[0][:] = 7.0
        assert stacked[0][0, 0] == 0.0


class TestSampleToken:
    def test_greedy_argmax_no_rng(self):
        logits = np.array([0.1, 3.0, -1.0])
        assert sample_token(logits, None, temperature=0.0) == 1

    def test_sampled_needs_rng(self):
        with pytest.raises(ValueError):
            sample_token(np.zeros(3), None, temperature=1.0)

    def test_negative_temperature_rejected(self):
        with pytest.raises(ValueError):
            sample_token(np.zeros(3), np.random.default_rng(0), temperature=-1.0)

    def test_batched_logits_rejected(self):
        with pytest.raises(ValueError):
            sample_token(np.zeros((2, 3)), None)

    def test_deterministic_in_rng_state(self):
        logits = np.random.default_rng(1).standard_normal(20)
        a = sample_token(logits, np.random.default_rng(42), temperature=0.8)
        b = sample_token(logits, np.random.default_rng(42), temperature=0.8)
        assert a == b

    def test_sampled_tokens_follow_distribution(self):
        # A huge logit should win almost always at low temperature.
        logits = np.zeros(10)
        logits[3] = 50.0
        rng = np.random.default_rng(2)
        draws = [sample_token(logits, rng, temperature=1.0) for _ in range(50)]
        assert all(d == 3 for d in draws)


@pytest.mark.parametrize(
    "make_decoder", [make_word_decoder, make_char_decoder],
    ids=["word-lstm", "char-rhn"],
)
class TestBatchInvariance:
    """Row r of step() is a bitwise-pure function of row r of the inputs."""

    def test_rows_identical_across_batch_compositions(self, make_decoder):
        decoder = make_decoder()
        rng = np.random.default_rng(3)
        n = 6
        x = random_rows(decoder, n, rng)
        rows = [decoder.init_state() for _ in range(n)]
        # fold one warmup step so states are non-trivial
        _, warm = decoder.step(x, stack_states(rows))
        warm_rows = [unstack_state(warm, i) for i in range(n)]

        x2 = random_rows(decoder, n, rng)
        ref_logits, ref_states = decoder.step(x2, stack_states(warm_rows))

        # every contiguous sub-batch, plus a permuted composition
        compositions = [list(range(i, j)) for i in range(n) for j in range(i + 1, n + 1)]
        compositions.append([4, 0, 2])
        for members in compositions:
            logits, states = decoder.step(
                x2[members], stack_states([warm_rows[m] for m in members])
            )
            for pos, member in enumerate(members):
                np.testing.assert_array_equal(
                    logits[pos], ref_logits[member], strict=True
                )
                for part, ref_part in zip(
                    unstack_state(states, pos),
                    unstack_state(ref_states, member),
                ):
                    np.testing.assert_array_equal(part, ref_part, strict=True)

    def test_multi_step_trajectory_schedule_independent(self, make_decoder):
        # Decoding a request alone vs inside changing batches must give
        # bitwise-identical states after several steps.
        decoder = make_decoder()
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, decoder.vocab_size, size=5)

        solo = stack_states([decoder.init_state()])
        for t in tokens:
            x = decoder.embedding_weight[int(t)][np.newaxis, :]
            _, solo = decoder.step(x, solo)

        # same request in slot 1 of a 3-wide batch with random companions
        state = decoder.init_state()
        for t in tokens:
            companions = [decoder.init_state() for _ in range(2)]
            batch = stack_states([companions[0], state, companions[1]])
            x = np.vstack(
                [
                    random_rows(decoder, 1, rng),
                    decoder.embedding_weight[int(t)][np.newaxis, :],
                    random_rows(decoder, 1, rng),
                ]
            )
            _, new = decoder.step(x, batch)
            state = unstack_state(new, 1)

        for part, ref in zip(state, unstack_state(solo, 0)):
            np.testing.assert_array_equal(part, ref, strict=True)


class TestShardedEmbeddingLookup:
    def test_bitwise_equal_to_direct_gather(self):
        decoder = make_word_decoder()
        rng = np.random.default_rng(5)
        comm = Communicator(3)
        ids_per_rank = [
            rng.integers(0, decoder.vocab_size, size=k).astype(np.int64)
            for k in (4, 2, 5)
        ]
        rows = sharded_embedding_lookup(
            comm, decoder.embedding_weight, ids_per_rank
        )
        for ids, out in zip(ids_per_rank, rows):
            np.testing.assert_array_equal(
                out, decoder.embedding_weight[ids], strict=True
            )

    def test_empty_rank_vector(self):
        decoder = make_word_decoder()
        comm = Communicator(2)
        ids_per_rank = [
            np.array([3, 3, 7], dtype=np.int64),
            np.array([], dtype=np.int64),
        ]
        rows = sharded_embedding_lookup(
            comm, decoder.embedding_weight, ids_per_rank
        )
        assert rows[1].shape == (0, decoder.embedding_weight.shape[1])
        np.testing.assert_array_equal(
            rows[0], decoder.embedding_weight[[3, 3, 7]], strict=True
        )

    def test_wrong_rank_count_rejected(self):
        decoder = make_word_decoder()
        comm = Communicator(2)
        with pytest.raises(ValueError):
            sharded_embedding_lookup(
                comm, decoder.embedding_weight, [np.array([1], dtype=np.int64)]
            )

    def test_collectives_land_on_ledger(self):
        decoder = make_word_decoder()
        comm = Communicator(2)
        before = comm.ledger.total_wire_bytes_per_rank
        sharded_embedding_lookup(
            comm,
            decoder.embedding_weight,
            [np.array([1, 2], dtype=np.int64), np.array([2], dtype=np.int64)],
        )
        assert comm.ledger.total_wire_bytes_per_rank > before
