"""Serving-path test suite: differential, property, chaos, and unit tiers."""
