"""Differential gate: continuous batching is token-identical to naive decode.

The engine batches, caches, shards, evicts, and re-forms the active set
every step; :func:`repro.serve.naive_serve` does none of that.  Both run
the same batch-invariant kernels and per-``(seed, request_id,
position)`` sampling streams, so their token output must match bitwise
— per request, across seeds, for both model families, greedy and
sampled.
"""

import numpy as np
import pytest

from repro.cluster.communicator import Communicator
from repro.serve import ServeConfig, ServingEngine, naive_serve

from .helpers import (
    make_char_decoder,
    make_word_decoder,
    pressure_config,
    pressure_traffic,
)

SEEDS = [0, 1, 2, 3, 4]


def assert_token_identical(continuous, naive):
    assert len(continuous.requests) == len(naive.requests)
    for c, n in zip(continuous.requests, naive.requests):
        assert c.request_id == n.request_id
        assert c.tokens == n.tokens, (
            f"request {c.request_id}: continuous {c.tokens} != naive {n.tokens}"
        )
        assert c.finish_reason == n.finish_reason


@pytest.mark.parametrize("seed", SEEDS)
def test_word_lm_greedy_token_identical(seed):
    decoder = make_word_decoder(seed)
    requests = pressure_traffic(n=16, seed=seed)
    config = pressure_config()
    engine = ServingEngine(decoder, Communicator(3), config)
    assert_token_identical(
        engine.run(requests), naive_serve(decoder, requests, config)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_word_lm_sampled_token_identical(seed):
    decoder = make_word_decoder(seed)
    requests = pressure_traffic(n=12, seed=seed + 100)
    config = pressure_config(temperature=0.9, seed=seed)
    engine = ServingEngine(decoder, Communicator(2), config)
    assert_token_identical(
        engine.run(requests), naive_serve(decoder, requests, config)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_char_lm_greedy_token_identical(seed):
    decoder = make_char_decoder(seed)
    requests = pressure_traffic(n=12, seed=seed, vocab=30)
    config = pressure_config(max_batch=4)
    engine = ServingEngine(decoder, Communicator(2), config)
    assert_token_identical(
        engine.run(requests), naive_serve(decoder, requests, config)
    )


def test_identity_survives_cache_eviction_pressure():
    # A budget of 4 states against 24 requests forces constant eviction
    # and recompute; tokens must not notice.
    decoder = make_word_decoder()
    requests = pressure_traffic(n=24)
    config = pressure_config(
        cache_budget_bytes=4 * decoder.state_nbytes, max_batch=3
    )
    engine = ServingEngine(decoder, Communicator(3), config)
    report = engine.run(requests)
    assert report.cache_stats["evictions"] > 0  # pressure actually applied
    assert_token_identical(report, naive_serve(decoder, requests, config))


def test_identity_with_eos_termination():
    decoder = make_word_decoder()
    # token 22 appears mid-stream in this model's greedy chains, so some
    # requests terminate early on EOS and some exhaust their budget
    requests = pressure_traffic(n=16, eos_token=22, max_new_tokens=(8, 20))
    config = pressure_config()
    engine = ServingEngine(decoder, Communicator(2), config)
    continuous = engine.run(requests)
    naive = naive_serve(decoder, requests, config)
    assert_token_identical(continuous, naive)
    reasons = {r.finish_reason for r in continuous.requests}
    assert "eos" in reasons  # the greedy chains actually hit EOS


def test_batch_size_one_equals_naive_schedule_free():
    # max_batch=1 serialises the engine; still must match naive tokens.
    decoder = make_word_decoder()
    requests = pressure_traffic(n=8)
    config = pressure_config(max_batch=1)
    engine = ServingEngine(decoder, Communicator(1), config)
    assert_token_identical(
        engine.run(requests), naive_serve(decoder, requests, config)
    )


def test_prompts_are_int64_and_reports_sorted():
    decoder = make_word_decoder()
    requests = pressure_traffic(n=10)
    config = pressure_config()
    report = ServingEngine(decoder, Communicator(2), config).run(requests)
    ids = [r.request_id for r in report.requests]
    assert ids == sorted(ids) == list(range(10))
    assert all(r.prompt.dtype == np.int64 for r in requests)
