"""Chaos composition: serving under fault injection stays correct.

The issue's graceful-degradation contract: with a ``FaultPlan`` driving
a :class:`~repro.cluster.failures.ChaosCommunicator`, in-flight requests
on an evicted replica are re-admitted (never lost), token output stays
identical to the clean run, and tail latency degrades — the faulted
makespan and p99 TTFT are worse, not broken.
"""

import numpy as np
import pytest

from repro.cluster.communicator import Communicator
from repro.cluster.failures import (
    ChaosCommunicator,
    FaultEvent,
    FaultKind,
    FaultPlan,
)
from repro.serve import ServingEngine, percentile
from repro.telemetry import TelemetrySession

from .helpers import make_word_decoder, pressure_config, pressure_traffic

WORLD = 3


def rank_loss_plan(collective_index=6, rank=1):
    return FaultPlan(
        [
            FaultEvent(
                kind=FaultKind.RANK_LOSS,
                collective_index=collective_index,
                rank=rank,
            )
        ]
    )


def run_pair(plan, n=24, **config_overrides):
    """Run the same traffic clean and under chaos; return both reports."""
    requests = pressure_traffic(n=n)
    config = pressure_config(**config_overrides)

    clean_engine = ServingEngine(
        make_word_decoder(), Communicator(WORLD), config
    )
    clean = clean_engine.run(requests)

    chaos_engine = ServingEngine(
        make_word_decoder(),
        ChaosCommunicator(WORLD, plan=plan),
        config,
    )
    chaotic = chaos_engine.run(requests)
    return clean, chaotic, chaos_engine


class TestTransientFaults:
    def test_retries_preserve_tokens_and_charge_time(self):
        plan = FaultPlan.random(
            seed=5, world_size=WORLD, num_collectives=30, n_transient=4
        )
        clean, chaotic, engine = run_pair(plan)
        for c, f in zip(clean.requests, chaotic.requests):
            assert c.tokens == f.tokens
        assert chaotic.generations == 1  # transient faults never shrink
        assert chaotic.makespan_s > clean.makespan_s  # backoff is charged


class TestRankLoss:
    def test_inflight_requests_readmitted_not_lost(self):
        clean, chaotic, engine = run_pair(rank_loss_plan())
        assert chaotic.generations == 2
        assert chaotic.readmissions >= 1
        assert engine.comm.world_size == WORLD - 1
        # nothing lost: every request finishes with its full budget
        assert len(chaotic.finished) == len(clean.finished) == 24
        readmit_events = [
            e for e in engine.scheduler.events if e[0] == "readmitted"
        ]
        assert len(readmit_events) == chaotic.readmissions

    def test_tokens_identical_across_recovery(self):
        clean, chaotic, _ = run_pair(rank_loss_plan())
        for c, f in zip(clean.requests, chaotic.requests):
            assert c.tokens == f.tokens, f"request {c.request_id} diverged"
            assert c.finish_reason == f.finish_reason

    def test_p99_degrades_gracefully(self):
        clean, chaotic, _ = run_pair(rank_loss_plan())
        clean_p99 = percentile(clean.ttft_values(), 99)
        chaos_p99 = percentile(chaotic.ttft_values(), 99)
        # worse, not broken: finite tail latency above the clean run
        assert chaos_p99 > clean_p99
        assert np.isfinite(chaos_p99)
        assert chaotic.makespan_s > clean.makespan_s

    def test_recomputed_states_counted(self):
        _, chaotic, _ = run_pair(rank_loss_plan())
        # readmitted requests replay their token history on re-admission
        assert chaotic.recomputes >= chaotic.readmissions >= 1

    def test_world_of_one_rank_loss_is_fatal(self):
        from repro.cluster.failures import RankFailureError

        requests = pressure_traffic(n=4)
        engine = ServingEngine(
            make_word_decoder(),
            ChaosCommunicator(
                1, plan=rank_loss_plan(collective_index=0, rank=0)
            ),
            pressure_config(max_batch=2),
        )
        with pytest.raises(RankFailureError):
            engine.run(requests)


class TestChaosTelemetry:
    def test_generations_tracked_and_event_recorded(self, tmp_path):
        session = TelemetrySession(directory=tmp_path)
        requests = pressure_traffic(n=24)
        engine = ServingEngine(
            make_word_decoder(),
            ChaosCommunicator(WORLD, plan=rank_loss_plan()),
            pressure_config(),
            telemetry=session,
        )
        engine.run(requests)
        session.finalize()
        events = (tmp_path / "events.jsonl").read_text()
        assert "rank_loss" in events
        labels = [part.label for part in session.parts()]
        assert "serve-gen0" in labels and "serve-gen1" in labels
