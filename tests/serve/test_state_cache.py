"""State-cache unit tests: LRU, pinning, budgets, device charging."""

import numpy as np
import pytest

from repro.cluster.device import TITAN_X, SimulatedDevice
from repro.serve import CacheOverflowError, RecurrentStateCache


def state(fill: float, n: int = 4) -> tuple[np.ndarray, ...]:
    return (np.full(n, fill),)  # 4 float64 = 32 bytes


STATE_BYTES = 32


class TestBasics:
    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            RecurrentStateCache(0)

    def test_put_get_roundtrip(self):
        cache = RecurrentStateCache(1024)
        assert cache.put(1, state(1.5), n_consumed=3)
        entry = cache.get(1)
        assert entry is not None
        assert entry.n_consumed == 3
        np.testing.assert_array_equal(entry.state[0], state(1.5)[0])
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counted(self):
        cache = RecurrentStateCache(1024)
        assert cache.get(99) is None
        assert cache.misses == 1
        assert ("miss", 99) in cache.events

    def test_peek_no_stats_no_lru(self):
        cache = RecurrentStateCache(1024)
        cache.put(1, state(1.0), 1)
        cache.put(2, state(2.0), 1)
        assert cache.peek(1) is not None
        assert cache.peek(42) is None
        assert cache.hits == 0 and cache.misses == 0
        # peek did not refresh id 1, so it is still the LRU victim
        cache.put(3, state(3.0), 1)
        small = RecurrentStateCache(2 * STATE_BYTES)
        small.put(1, state(1.0), 1)
        small.put(2, state(2.0), 1)
        small.peek(1)
        small.put(3, state(3.0), 1)
        assert 1 not in small and 2 in small

    def test_replace_same_id(self):
        cache = RecurrentStateCache(1024)
        cache.put(1, state(1.0), 1)
        cache.put(1, state(2.0), 2)
        assert len(cache) == 1
        assert cache.resident_bytes == STATE_BYTES
        assert cache.peek(1).n_consumed == 2

    def test_release_removes(self):
        cache = RecurrentStateCache(1024)
        cache.put(1, state(1.0), 1)
        cache.release(1)
        assert 1 not in cache
        assert ("release", 1) in cache.events
        cache.release(1)  # idempotent on absent ids


class TestEviction:
    def test_lru_order(self):
        cache = RecurrentStateCache(2 * STATE_BYTES)
        cache.put(1, state(1.0), 1)
        cache.put(2, state(2.0), 1)
        cache.get(1)  # refresh: 2 becomes LRU
        cache.put(3, state(3.0), 1)
        assert 2 not in cache and 1 in cache and 3 in cache
        assert cache.evictions == 1
        assert ("evict", 2) in cache.events

    def test_pinned_never_evicted(self):
        cache = RecurrentStateCache(2 * STATE_BYTES)
        cache.put(1, state(1.0), 1, pinned=True)
        cache.put(2, state(2.0), 1)
        cache.put(3, state(3.0), 1)  # must evict 2, not pinned 1
        assert 1 in cache and 2 not in cache and 3 in cache

    def test_unpinned_overflow_refused(self):
        cache = RecurrentStateCache(2 * STATE_BYTES)
        cache.put(1, state(1.0), 1, pinned=True)
        cache.put(2, state(2.0), 1, pinned=True)
        assert not cache.put(3, state(3.0), 1)
        assert 3 not in cache
        assert ("refused", 3) in cache.events

    def test_pinned_overflow_raises(self):
        cache = RecurrentStateCache(2 * STATE_BYTES)
        cache.put(1, state(1.0), 1, pinned=True)
        cache.put(2, state(2.0), 1, pinned=True)
        with pytest.raises(CacheOverflowError):
            cache.put(3, state(3.0), 1, pinned=True)

    def test_unpin_reopens_eviction(self):
        cache = RecurrentStateCache(2 * STATE_BYTES)
        cache.put(1, state(1.0), 1, pinned=True)
        cache.put(2, state(2.0), 1, pinned=True)
        cache.unpin(1)
        assert cache.put(3, state(3.0), 1)
        assert 1 not in cache

    def test_pinned_bytes_tracked(self):
        cache = RecurrentStateCache(1024)
        cache.put(1, state(1.0), 1, pinned=True)
        cache.put(2, state(2.0), 1)
        assert cache.pinned_bytes == STATE_BYTES
        assert cache.resident_bytes == 2 * STATE_BYTES
        cache.pin(2)
        assert cache.pinned_bytes == 2 * STATE_BYTES


class TestDeviceCharging:
    def test_alloc_and_free_on_devices(self):
        devices = [SimulatedDevice(r, TITAN_X) for r in range(2)]
        cache = RecurrentStateCache(1024, devices)
        cache.put(1, state(1.0), 1)
        assert all(d.peak_bytes >= STATE_BYTES for d in devices)
        used_before = [d.peak_bytes for d in devices]
        cache.release(1)
        cache.put(2, state(2.0), 1)
        cache.release(2)
        # freeing returned the bytes: peak did not double
        assert [d.peak_bytes for d in devices] == used_before

    def test_rebind_moves_charges(self):
        old = [SimulatedDevice(0, TITAN_X)]
        new = [SimulatedDevice(0, TITAN_X)]
        cache = RecurrentStateCache(1024, old)
        cache.put(1, state(1.0), 1)
        cache.rebind(new)
        assert new[0].peak_bytes >= STATE_BYTES
        assert ("rebind", -1) in cache.events
        cache.release(1)  # frees on the new devices without error
