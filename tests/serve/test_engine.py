"""Engine-level tests: reports, metrics, telemetry, SLO drops, caching."""

import json
import math

import numpy as np
import pytest

from repro.cluster.communicator import Communicator
from repro.serve import (
    ServeConfig,
    ServeRequest,
    ServingEngine,
    naive_serve,
    percentile,
    report_to_registry,
)
from repro.telemetry import MetricsRegistry, TelemetrySession, to_prometheus_text

from .helpers import (
    CountingDecoder,
    make_word_decoder,
    pressure_config,
    pressure_traffic,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        ServeConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"temperature": -0.1},
            {"cache_budget_bytes": 0},
            {"decode_token_s": -1.0},
            {"max_transient_retries": 0},
            {"max_steps": 0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_budget_must_hold_active_batch(self):
        decoder = make_word_decoder()
        config = ServeConfig(
            max_batch=8, cache_budget_bytes=decoder.state_nbytes * 4
        )
        with pytest.raises(ValueError):
            ServingEngine(decoder, Communicator(2), config)


class TestReport:
    def test_metrics_internally_consistent(self):
        decoder = make_word_decoder()
        requests = pressure_traffic(n=12)
        config = pressure_config()
        report = ServingEngine(decoder, Communicator(2), config).run(requests)

        assert len(report.requests) == 12
        assert report.total_tokens == sum(len(r.tokens) for r in report.requests)
        assert report.decode_steps >= max(len(r.tokens) for r in report.requests)
        assert report.makespan_s > 0
        assert report.wire_bytes_per_rank > 0  # sharded lookups hit the ledger
        assert report.generations == 1
        summary = report.summary()
        assert summary["finished"] == 12 and summary["dropped"] == 0
        assert summary["p50_ttft_s"] <= summary["p99_ttft_s"]
        assert summary["tokens_per_s"] == pytest.approx(
            report.total_tokens / report.makespan_s
        )
        assert json.dumps(summary)  # JSON-serialisable end to end

    def test_token_times_follow_simulated_clock(self):
        decoder = make_word_decoder()
        requests = pressure_traffic(n=8)
        report = ServingEngine(
            decoder, Communicator(2), pressure_config()
        ).run(requests)
        for record in report.requests:
            assert record.token_times_s[0] >= record.arrival_s
            assert all(
                b >= a
                for a, b in zip(record.token_times_s, record.token_times_s[1:])
            )
            assert record.finish_s == record.token_times_s[-1]
            assert record.ttft_s >= 0
            gaps = record.per_token_latencies_s()
            assert len(gaps) == len(record.tokens)
            assert all(g >= 0 for g in gaps)

    def test_idle_cluster_advances_to_arrivals(self):
        # One late request: the engine must idle-advance, not spin.
        decoder = CountingDecoder()
        requests = [
            ServeRequest(
                request_id=0,
                prompt=np.array([1], dtype=np.int64),
                max_new_tokens=2,
                arrival_s=3.0,
            )
        ]
        report = ServingEngine(
            decoder, Communicator(1), ServeConfig(max_batch=1)
        ).run(requests)
        assert report.requests[0].token_times_s[0] >= 3.0
        assert report.makespan_s >= 3.0

    def test_continuous_beats_naive_under_load(self):
        decoder = make_word_decoder()
        requests = pressure_traffic(n=16)
        config = pressure_config()
        continuous = ServingEngine(decoder, Communicator(3), config).run(requests)
        naive = naive_serve(decoder, requests, config)
        assert continuous.makespan_s < naive.makespan_s


class TestSLODrops:
    def test_tight_slo_drops_queued_requests(self):
        decoder = make_word_decoder()
        requests = pressure_traffic(n=24, slo_s=0.02)
        config = pressure_config(drop_expired=True)
        report = ServingEngine(decoder, Communicator(2), config).run(requests)
        assert len(report.dropped) > 0
        assert len(report.dropped) + len(report.finished) == 24
        for record in report.dropped:
            assert record.tokens == ()
            assert record.finish_reason == "slo_expired"
            assert math.isnan(record.ttft_s)
        # goodput only counts SLO-met completions
        assert report.goodput_rps() <= len(report.finished) / report.makespan_s

    def test_infinite_slo_never_drops(self):
        decoder = make_word_decoder()
        requests = pressure_traffic(n=10)
        report = ServingEngine(
            decoder, Communicator(2), pressure_config(drop_expired=True)
        ).run(requests)
        assert len(report.dropped) == 0


class TestCacheIntegration:
    def test_speculative_prefill_produces_hits(self):
        decoder = make_word_decoder()
        requests = pressure_traffic(n=24)
        report = ServingEngine(
            decoder, Communicator(3), pressure_config()
        ).run(requests)
        assert report.cache_stats["hits"] > 0
        assert report.recomputes == 0  # ample budget: no state lost

    def test_tiny_budget_forces_eviction_and_recompute(self):
        decoder = make_word_decoder()
        requests = pressure_traffic(n=24)
        config = pressure_config(
            cache_budget_bytes=4 * decoder.state_nbytes, max_batch=3
        )
        report = ServingEngine(decoder, Communicator(3), config).run(requests)
        assert report.cache_stats["evictions"] > 0
        assert report.recomputes > 0

    def test_cache_memory_charged_to_devices(self):
        decoder = make_word_decoder()
        comm = Communicator(2)
        engine = ServingEngine(decoder, comm, pressure_config())
        engine.run(pressure_traffic(n=8))
        # resident states showed up in the standard peak accounting
        assert all(
            dev.peak_bytes >= decoder.state_nbytes for dev in comm.devices
        )

    def test_cache_empty_after_run(self):
        decoder = make_word_decoder()
        engine = ServingEngine(decoder, Communicator(2), pressure_config())
        engine.run(pressure_traffic(n=8))
        assert len(engine.cache) == 0
        assert engine.cache.resident_bytes == 0


class TestTelemetry:
    def test_steps_and_metrics_recorded(self, tmp_path):
        decoder = make_word_decoder()
        session = TelemetrySession(directory=tmp_path)
        engine = ServingEngine(
            decoder, Communicator(2), pressure_config(), telemetry=session
        )
        report = engine.run(pressure_traffic(n=8))
        summary = report_to_registry(report, session.registry)
        session.finalize()

        steps = [
            json.loads(line)
            for line in (tmp_path / "steps.jsonl").read_text().splitlines()
        ]
        assert len(steps) == report.decode_steps
        assert all("active" in s and "sim_time_s" in s for s in steps)

        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_serve_ttft_seconds" in prom
        assert "repro_serve_p99_ttft_seconds" in prom
        assert "repro_serve_requests_total" in prom
        assert summary["p99_ttft_s"] >= summary["p50_ttft_s"]

    def test_report_to_registry_values(self):
        decoder = make_word_decoder()
        report = ServingEngine(
            decoder, Communicator(2), pressure_config()
        ).run(pressure_traffic(n=8))
        registry = MetricsRegistry()
        summary = report_to_registry(report, registry)
        rendered = to_prometheus_text(registry)
        assert 'outcome="length"' in rendered or 'outcome="eos"' in rendered
        assert "repro_serve_tokens_total" in rendered
        assert summary["total_tokens"] == report.total_tokens

    def test_cache_eviction_counts_exported(self):
        decoder = make_word_decoder()
        config = pressure_config(
            cache_budget_bytes=4 * decoder.state_nbytes, max_batch=3
        )
        report = ServingEngine(decoder, Communicator(2), config).run(
            pressure_traffic(n=24)
        )
        assert report.cache_stats["evictions"] > 0
        registry = MetricsRegistry()
        report_to_registry(report, registry)
        assert 'kind="evict"' in to_prometheus_text(registry)


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_nan_values_filtered(self):
        assert percentile([1.0, float("nan"), 3.0], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == 5.0
