"""Documentation-integrity checks.

Keeps the prose honest: every benchmark EXPERIMENTS.md names exists,
every module DESIGN.md's inventory names exists, every example script is
runnable Python, and the packaging metadata stays consistent.
"""

import ast
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestExperimentsDoc:
    def test_every_named_bench_exists(self):
        text = read("EXPERIMENTS.md")
        names = set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", text))
        assert names, "EXPERIMENTS.md should reference bench files"
        for name in names:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_every_bench_file_is_documented(self):
        text = read("EXPERIMENTS.md")
        for bench in (ROOT / "benchmarks").glob("bench_*.py"):
            assert bench.name in text, f"{bench.name} missing from EXPERIMENTS.md"


class TestDesignDoc:
    def test_named_modules_exist(self):
        text = read("DESIGN.md")
        for mod in re.findall(r"`([a-z_0-9]+\.py)`", text):
            hits = list((ROOT / "src" / "repro").rglob(mod)) or list(
                (ROOT / "benchmarks").glob(mod)
            )
            assert hits, f"DESIGN.md names {mod} which does not exist"

    def test_paper_match_is_confirmed(self):
        assert "matches" in read("DESIGN.md").splitlines()[4].lower() or (
            "match" in read("DESIGN.md")[:600].lower()
        )


class TestExamples:
    def test_all_examples_parse(self):
        examples = sorted((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3, "deliverable: at least three examples"
        for path in examples:
            ast.parse(path.read_text(), filename=str(path))

    def test_examples_have_docstrings_and_main(self):
        for path in (ROOT / "examples").glob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
            src = path.read_text()
            assert '__name__ == "__main__"' in src, path.name

    def test_quickstart_exists(self):
        assert (ROOT / "examples" / "quickstart.py").exists()


class TestPackaging:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "pyproject.toml", "docs/TUTORIAL.md"):
            assert (ROOT / name).exists(), name

    def test_version_consistent(self):
        import repro

        pyproject = read("pyproject.toml")
        assert f'version = "{repro.__version__}"' in pyproject

    def test_public_subpackages_import(self):
        import repro

        for name in repro.__all__:
            if name.startswith("__"):
                continue
            assert getattr(repro, name) is not None

    def test_py_typed_marker(self):
        assert (ROOT / "src" / "repro" / "py.typed").exists()


class TestDocstringCoverage:
    def test_every_public_module_has_docstring(self):
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for path in (ROOT / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.iter_child_nodes(tree):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ) and not node.name.startswith("_"):
                    if not ast.get_docstring(node):
                        undocumented.append(f"{path.name}:{node.name}")
        assert not undocumented, undocumented
