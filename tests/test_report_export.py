"""Tests for CSV/JSON result export."""

import json

import pytest

from repro.report import to_csv, to_json, write_results


class TestCSV:
    def test_roundtrip_shape(self):
        out = to_csv(["a", "b"], [[1, 2], [3, 4]])
        lines = out.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == "3,4"

    def test_quoting(self):
        out = to_csv(["x"], [["hello, world"]])
        assert '"hello, world"' in out

    def test_validation(self):
        with pytest.raises(ValueError):
            to_csv([], [])
        with pytest.raises(ValueError):
            to_csv(["a"], [[1, 2]])


class TestJSON:
    def test_records_keyed_by_header(self):
        doc = json.loads(to_json(["gpu", "hours"], [[8, 14.6]]))
        assert doc["rows"] == [{"gpu": 8, "hours": 14.6}]

    def test_meta_attached(self):
        doc = json.loads(
            to_json(["x"], [[1]], meta={"table": "III", "units": "hours"})
        )
        assert doc["meta"]["table"] == "III"

    def test_non_serializable_stringified(self):
        class Odd:
            def __str__(self):
                return "odd"

        doc = json.loads(to_json(["x"], [[Odd()]]))
        assert doc["rows"][0]["x"] == "odd"


class TestWriteResults:
    def test_writes_both_formats(self, tmp_path):
        paths = write_results(
            tmp_path / "out", "table3", ["gpu"], [[8], [16]], meta={"t": 3}
        )
        assert paths["csv"].read_text().startswith("gpu")
        doc = json.loads(paths["json"].read_text())
        assert len(doc["rows"]) == 2
        assert doc["meta"]["t"] == 3

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        write_results(target, "x", ["c"], [])
        assert target.exists()
