"""Seeded randomized property-testing helper (no external dependencies).

A miniature, deterministic stand-in for hypothesis: ``run_property``
drives a property over ``n_cases`` seeded random cases, and on failure
shrinks integer parameters by halving toward 1 while the failure still
reproduces, then raises with the reproducing ``(seed, case)`` pair in
the message so the exact counterexample can be replayed.

Determinism contract: case ``i`` derives its generator RNG from
``(seed, i, 0)`` and its property RNG from ``(seed, i, 1)``, so a case
replays identically regardless of how many cases ran before it, and
shrink attempts re-run the property with a *fresh* copy of the same
property RNG — a shrunk failure is a real failure, not an RNG-state
artifact.
"""

from __future__ import annotations

import numpy as np

__all__ = ["run_property"]


def _prop_rng(seed: int, case: int) -> np.random.Generator:
    return np.random.default_rng((seed, case, 1))


def _outcome(prop, params: dict, seed: int, case: int):
    """Run ``prop`` on ``params``: 'fail', 'pass', or 'invalid'."""
    try:
        prop(dict(params), _prop_rng(seed, case))
    except AssertionError:
        return "fail"
    except ValueError:
        # The shrunk parameter combination is outside the property's
        # domain (e.g. num_samples >= vocab); not a counterexample.
        return "invalid"
    return "pass"


def _shrink(prop, params: dict, seed: int, case: int, rounds: int) -> dict:
    """Halve failing integer parameters toward 1 while the failure holds."""
    current = dict(params)
    for _ in range(rounds):
        progressed = False
        for key, value in list(current.items()):
            if isinstance(value, bool) or not isinstance(
                value, (int, np.integer)
            ):
                continue
            if value <= 1:
                continue
            candidate = dict(current)
            candidate[key] = max(1, int(value) // 2)
            if _outcome(prop, candidate, seed, case) == "fail":
                current = candidate
                progressed = True
        if not progressed:
            break
    return current


def run_property(
    prop,
    gen,
    n_cases: int = 200,
    seed: int = 0,
    max_shrink_rounds: int = 64,
) -> int:
    """Check ``prop`` over ``n_cases`` seeded random cases.

    Parameters
    ----------
    prop:
        ``f(params: dict, rng) -> None``; raises ``AssertionError`` on a
        violated property, ``ValueError`` on an out-of-domain parameter
        combination (treated as invalid during shrinking, a test bug
        when raised by an unshrunk generated case).
    gen:
        ``f(rng) -> dict`` producing one case's parameters.  Integer
        values are shrunk on failure; everything else passes through
        untouched.
    n_cases, seed:
        Case count and base seed; the failure message names both.
    max_shrink_rounds:
        Cap on full halving sweeps during shrinking.

    Returns the number of cases that ran (== ``n_cases`` on success).
    """
    if n_cases <= 0:
        raise ValueError("n_cases must be positive")
    for case in range(n_cases):
        params = gen(np.random.default_rng((seed, case, 0)))
        try:
            prop(dict(params), _prop_rng(seed, case))
        except AssertionError as err:
            shrunk = _shrink(prop, params, seed, case, max_shrink_rounds)
            raise AssertionError(
                f"property failed on case {case}/{n_cases} — reproduce "
                f"with seed={seed}, case={case}; generated params "
                f"{params}; shrunk params {shrunk}; failure: {err}"
            ) from err
    return n_cases
