"""The correctness gate: ``src/repro`` must stay lint-clean.

This is the tier-1 enforcement of the acceptance criterion that
``python -m repro.cli lint src/repro`` exits 0 — any PR that introduces
a bare global RNG, a float64 leak into a comm path, an unattributed
collective, a drifting ``__all__``, a raw dtype default in nn/, or a
stray print fails here with the exact file:line.
"""

from pathlib import Path

from repro.analysis import LintEngine, format_findings

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_src_tree_exists():
    assert SRC.is_dir(), f"source tree not found at {SRC}"


def test_repo_is_lint_clean():
    findings = LintEngine().lint_paths([SRC])
    assert not findings, "\n" + format_findings(findings)


def test_every_source_module_was_visited():
    files = list(LintEngine.iter_python_files([SRC]))
    # The tree has ~70 modules; a collapse of discovery (e.g. a glob
    # regression quietly linting nothing) must not pass as "clean".
    assert len(files) > 60
    assert any(f.name == "communicator.py" for f in files)
