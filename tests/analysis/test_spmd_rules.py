"""Tests for the SPMD rank-divergence rules (REPRO010–REPRO012).

Each "mutant" below is a distilled version of a real divergence bug: a
collective issued under rank-dependent control flow (deadlock), a
rank-dependent tag/shape/dtype fed into a collective (mismatched
signature), and a payload buffer written between async issue and
``wait()`` (in-flight race).  The benign cases pin down the idioms the
taint analysis must *not* flag — above all the simulator's ubiquitous
``for rank in range(world)`` loop, which is how one process plays every
rank and is the opposite of divergence.
"""

from repro.analysis import LintEngine, default_rules
from repro.analysis.spmd import ModuleTaint, is_rank_like

SPMD_RULES = ["REPRO010", "REPRO011", "REPRO012"]


def lint(src, path="mutant.py"):
    engine = LintEngine(default_rules(SPMD_RULES))
    return engine.lint_source(src, path)


def ids(src, path="mutant.py"):
    return [f.rule_id for f in lint(src, path)]


class TestRankDivergentControlFlow:
    def test_collective_under_rank_branch(self):
        src = (
            "def step(comm, rank, grads):\n"
            "    if rank == 0:\n"
            "        comm.allreduce(grads)\n"
        )
        findings = lint(src)
        assert [f.rule_id for f in findings] == ["REPRO010"]
        assert findings[0].line == 3
        assert "rank-divergent" in findings[0].message
        assert "line 2" in findings[0].message  # names the guard

    def test_early_exit_before_a_collective(self):
        src = (
            "def step(comm, rank, grads):\n"
            "    if rank == 0:\n"
            "        return\n"
            "    comm.allreduce(grads)\n"
        )
        findings = lint(src)
        assert [f.rule_id for f in findings] == ["REPRO010"]
        assert findings[0].line == 3  # the early exit, not the collective

    def test_wait_under_rank_branch(self):
        src = (
            "def step(comm, my_rank, handle):\n"
            "    if my_rank > 0:\n"
            "        handle.wait()\n"
        )
        assert ids(src) == ["REPRO010"]

    def test_interprocedural_taint_through_helper_return(self):
        src = (
            "def shard_offset(comm):\n"
            "    return comm.rank * 2\n"
            "\n"
            "\n"
            "def sync(comm, grads):\n"
            "    off = shard_offset(comm)\n"
            "    if off > 0:\n"
            "        comm.allreduce(grads)\n"
        )
        findings = lint(src)
        assert [f.rule_id for f in findings] == ["REPRO010"]
        assert findings[0].line == 8

    def test_interprocedural_taint_through_method_call(self):
        src = (
            "class Worker:\n"
            "    def scale(self):\n"
            "        return self.rank + 1\n"
            "\n"
            "    def push(self, grads):\n"
            "        s = self.scale()\n"
            "        while s > 1:\n"
            "            self.comm.allreduce(grads)\n"
            "            s -= 1\n"
        )
        assert ids(src) == ["REPRO010"]

    def test_fault_plan_events_are_taint_sources(self):
        src = (
            "def replay(comm, fault_plan, grads):\n"
            "    for ev in fault_plan.events:\n"
            "        if ev:\n"
            "            comm.barrier()\n"
        )
        assert ids(src) == ["REPRO010"]

    def test_loop_over_ranks_is_benign(self):
        # THE simulator idiom: one process plays every rank in turn.
        src = (
            "def step(comm, world, grads):\n"
            "    for rank in range(world):\n"
            "        grads[rank] *= 1.0 / world\n"
            "    comm.allreduce(grads)\n"
        )
        assert ids(src) == []

    def test_uniform_branch_is_benign(self):
        src = (
            "def step(comm, use_unique, grads):\n"
            "    if use_unique:\n"
            "        comm.allreduce(grads)\n"
        )
        assert ids(src) == []

    def test_rank_branch_without_comm_is_benign(self):
        # Divergent control flow is only a bug when the scope (or its
        # class) touches collectives/waits — pure logging is fine.
        src = (
            "def log_once(rank, msg):\n"
            "    if rank == 0:\n"
            "        record(msg)\n"
        )
        assert ids(src) == []


class TestTaintedCollectiveSignature:
    def test_rank_dependent_tag(self):
        src = (
            "def sync(comm, rank, grads):\n"
            '    tag = "left" if rank % 2 == 0 else "right"\n'
            "    comm.allreduce(grads, tag=tag)\n"
        )
        findings = lint(src)
        assert [f.rule_id for f in findings] == ["REPRO011"]
        assert "tag" in findings[0].message

    def test_rank_dependent_shape_ctor_in_payload(self):
        src = (
            "import numpy as np\n"
            "\n"
            "\n"
            "def sync(comm, rank):\n"
            "    n = rank + 1\n"
            "    comm.allreduce([np.zeros(n)])\n"
        )
        assert ids(src) == ["REPRO011"]

    def test_uniform_tag_is_benign(self):
        src = (
            "def sync(comm, grads, layer):\n"
            '    comm.allreduce(grads, tag=f"grads/{layer}")\n'
        )
        assert ids(src) == []


class TestInFlightBufferMutation:
    def test_write_between_issue_and_wait(self):
        src = (
            "def overlap(comm, grads):\n"
            "    h = comm.iallreduce(grads)\n"
            "    grads[0] += 1.0\n"
            "    h.wait()\n"
        )
        findings = lint(src)
        assert [f.rule_id for f in findings] == ["REPRO012"]
        assert findings[0].line == 3
        assert "iallreduce" in findings[0].message

    def test_method_mutation_between_issue_and_wait(self):
        src = (
            "def overlap(comm, grads, buf):\n"
            "    h = comm.ibroadcast([buf], root=0)\n"
            "    buf.fill(0.0)\n"
            "    h.wait()\n"
        )
        assert ids(src) == ["REPRO012"]

    def test_write_after_wait_is_benign(self):
        src = (
            "def overlap(comm, grads):\n"
            "    h = comm.iallreduce(grads)\n"
            "    h.wait()\n"
            "    grads[0] += 1.0\n"
        )
        assert ids(src) == []

    def test_wait_all_closes_every_handle(self):
        src = (
            "def overlap(comm, grads, acts):\n"
            "    h1 = comm.iallreduce(grads)\n"
            "    h2 = comm.iallgather(acts)\n"
            "    comm.wait_all()\n"
            "    grads[0] = 0.0\n"
            "    acts[0] = 0.0\n"
        )
        assert ids(src) == []

    def test_unrelated_buffer_write_is_benign(self):
        src = (
            "def overlap(comm, grads, scratch):\n"
            "    h = comm.iallreduce(grads)\n"
            "    scratch[0] = 1.0\n"
            "    h.wait()\n"
        )
        assert ids(src) == []


class TestSuppression:
    DIVERGENT = (
        "def step(comm, rank, grads):\n"
        "    if rank == 0:\n"
        "        comm.allreduce(grads)\n"
    )

    def test_marker_on_finding_line(self):
        src = self.DIVERGENT.replace(
            "comm.allreduce(grads)",
            "comm.allreduce(grads)  # spmd-ok: distilled test scenario",
        )
        assert ids(src) == []

    def test_marker_on_guard_line(self):
        src = self.DIVERGENT.replace(
            "if rank == 0:",
            "if rank == 0:  # spmd-ok: demo of deliberate divergence",
        )
        assert ids(src) == []

    def test_marker_on_def_line(self):
        src = self.DIVERGENT.replace(
            "def step(comm, rank, grads):",
            "def step(comm, rank, grads):  # spmd-ok: whole-scope waiver",
        )
        assert ids(src) == []

    def test_bare_marker_without_reason_still_counts(self):
        # The regex only requires the marker token; the reason is a
        # documentation convention enforced by review, not the parser.
        src = self.DIVERGENT.replace(
            "if rank == 0:", "if rank == 0:  # spmd-ok"
        )
        assert ids(src) == []

    def test_noqa_also_suppresses(self):
        src = self.DIVERGENT.replace(
            "comm.allreduce(grads)",
            "comm.allreduce(grads)  # noqa: REPRO010",
        )
        assert ids(src) == []

    def test_marker_elsewhere_does_not_suppress(self):
        src = "# spmd-ok: stray comment far from the finding\n" + self.DIVERGENT
        assert ids(src) == ["REPRO010"]

    def test_analysis_paths_are_exempt(self):
        # The analysis package manipulates rank identifiers as *data*
        # (it is the thing doing the tainting), so it is excluded.
        assert ids(self.DIVERGENT, "src/repro/analysis/spmd/taint.py") == []


class TestTaintPrimitives:
    def test_rank_like_identifier_rules(self):
        assert is_rank_like("rank")
        assert is_rank_like("my_rank")
        assert is_rank_like("failed_rank")
        assert not is_rank_like("world")
        assert not is_rank_like("bytes_per_rank")
        assert not is_rank_like("rank_order")

    def test_comprehension_binding_shadows_taint(self):
        import ast

        src = (
            "def f(comm, rank, world):\n"
            "    shards = [rank * 2 for rank in range(world)]\n"
            "    return shards\n"
        )
        tree = ast.parse(src)
        taint = ModuleTaint(tree)
        fn = tree.body[0]
        scope = next(
            s for s in taint.graph.scopes if s.node is fn
        )
        comp = fn.body[0].value
        assert not taint.is_tainted(comp, scope)


class TestSelfAnalysis:
    def test_whole_repo_passes_the_spmd_rules(self):
        # The acceptance gate: src, benchmarks, tools, and the test
        # suite itself are clean under REPRO010-012, modulo the two
        # documented `# spmd-ok` sites (chaos injection and supervisor
        # rank validation) and the deliberate races in the lockstep
        # verifier's own tests.
        engine = LintEngine(default_rules(SPMD_RULES))
        findings = engine.lint_paths(["src", "benchmarks", "tools", "tests"])
        assert findings == [], "\n".join(f.render() for f in findings)
