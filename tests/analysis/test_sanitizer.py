"""Fault-injection tests for the runtime sanitizer.

Each test injects one of the failure modes the paper's comm layer must
never hit — mismatched per-rank collectives, FP16 compression-scaling
overflow, unbalanced ledger scopes — and asserts the sanitizer reports
it with rank/op context and a usable counterexample.
"""

import numpy as np
import pytest

from repro.analysis import (
    CollectiveMismatchError,
    CompressionOverflowError,
    DroppedHandleError,
    IssueOrderError,
    SanitizedFp16Codec,
    SanitizedWorkHandle,
    Sanitizer,
    SanitizerError,
    sanitize_codec,
)
from repro.cluster import Communicator, LedgerScopeError
from repro.core.compression import FP16_MAX, Fp16Codec, IdentityCodec


def make(world=2, **kw):
    return Sanitizer(Communicator(world, track_memory=False), **kw)


def per_rank(world, shape, dtype=np.float32, fill=1.0):
    return [np.full(shape, fill, dtype=dtype) for _ in range(world)]


class TestCollectiveAgreement:
    def test_clean_allreduce_passes_and_matches_unwrapped(self):
        san = make()
        arrays = [np.arange(4, dtype=np.float32) * (r + 1) for r in range(2)]
        out = san.allreduce([a.copy() for a in arrays], tag="g")
        ref = Communicator(2, track_memory=False).allreduce(
            [a.copy() for a in arrays], tag="g"
        )
        for o, r in zip(out, ref):
            np.testing.assert_array_equal(o, r)
        assert [rec.op for rec in san.op_log] == ["allreduce"]

    def test_mismatched_shapes_reported_with_rank_and_op(self):
        san = make()
        bad = [np.zeros((3,), np.float32), np.zeros((4,), np.float32)]
        with pytest.raises(CollectiveMismatchError) as exc:
            san.allreduce(bad, tag="grads")
        msg = str(exc.value)
        assert "allreduce" in msg
        assert "rank 0: (3,)" in msg and "rank 1: (4,)" in msg

    def test_mismatched_dtypes_reported(self):
        san = make()
        bad = [np.zeros(3, np.float32), np.zeros(3, np.float64)]
        with pytest.raises(CollectiveMismatchError, match="dtype mismatch"):
            san.allreduce(bad)

    def test_wrong_rank_count_reported(self):
        san = make(world=4)
        with pytest.raises(CollectiveMismatchError, match="hang"):
            san.allreduce(per_rank(3, (2,)))

    def test_forbidden_dtype_reported(self):
        san = make(forbid_dtypes=(np.float64,))
        with pytest.raises(CollectiveMismatchError, match="float64"):
            san.allreduce(per_rank(2, (2,), dtype=np.float64))

    def test_nan_payload_reported_with_rank_and_index(self):
        san = make()
        arrays = per_rank(2, (5,))
        arrays[1][3] = np.nan
        with pytest.raises(CollectiveMismatchError) as exc:
            san.allreduce(arrays, tag="t")
        assert "rank 1" in str(exc.value) and "[3]" in str(exc.value)

    def test_allgatherv_ragged_leading_dim_allowed(self):
        san = make()
        ragged = [
            np.zeros((2, 3), np.float32),
            np.zeros((5, 3), np.float32),
        ]
        assert len(san.allgather(ragged)) == 2

    def test_allgather_trailing_dim_mismatch_rejected(self):
        san = make()
        bad = [np.zeros((2, 3), np.float32), np.zeros((2, 4), np.float32)]
        with pytest.raises(CollectiveMismatchError, match="gather axis"):
            san.allgather(bad)

    def test_delegation_exposes_communicator_surface(self):
        san = make()
        assert san.world_size == 2
        assert san.ledger.total_wire_bytes_per_rank == 0
        san.barrier(tag="sync-point")
        assert san.op_log[-1].op == "barrier"


class TestFp16Boundary:
    def test_overflow_through_compression_path_names_rank_and_op(self):
        """An overflowing scale pushed through core/compression.py and a
        collective is caught at the wire with rank/op context."""
        codec = Fp16Codec(scale=1024.0)
        grads = [np.full(4, 10.0, np.float32), np.full(4, 100.0, np.float32)]
        wire = [codec.encode(g) for g in grads]  # rank 1 saturates silently
        san = make()
        with pytest.raises(CompressionOverflowError) as exc:
            san.allreduce(wire, tag="fp16-grads")
        msg = str(exc.value)
        assert "allreduce" in msg and "rank 1" in msg
        assert "lower the scale" in msg

    def test_sanitized_codec_reports_counterexample(self):
        codec = SanitizedFp16Codec(scale=1024.0)
        arr = np.array([0.5, 100.0, 0.25], dtype=np.float32)
        with pytest.raises(CompressionOverflowError) as exc:
            codec.encode(arr)
        msg = str(exc.value)
        assert "[1]=100.0" in msg          # the offending element
        assert "scale=1024.0" in msg       # the parameter that caused it
        assert "Largest safe scale" in msg
        assert f"{FP16_MAX / 100.0:.1f}" in msg

    def test_sanitized_codec_rejects_nonfinite_input(self):
        codec = SanitizedFp16Codec(scale=8.0)
        with pytest.raises(CompressionOverflowError, match="non-finite"):
            codec.encode(np.array([1.0, np.inf]))

    def test_sanitized_codec_roundtrip_matches_stock_codec(self):
        stock, checked = Fp16Codec(512.0), SanitizedFp16Codec(512.0)
        arr = np.linspace(-2, 2, 37, dtype=np.float32)
        np.testing.assert_array_equal(stock.encode(arr), checked.encode(arr))
        wire = checked.encode(arr)
        np.testing.assert_array_equal(
            stock.decode(wire, arr.dtype), checked.decode(wire, arr.dtype)
        )

    def test_sanitize_codec_mapping(self):
        assert sanitize_codec(None) is None
        ident = IdentityCodec()
        assert sanitize_codec(ident) is ident
        wrapped = sanitize_codec(Fp16Codec(256.0))
        assert isinstance(wrapped, SanitizedFp16Codec)
        assert wrapped.scale == 256.0
        assert sanitize_codec(wrapped) is wrapped


class TestLedgerInvariants:
    def test_unbalanced_scope_detected_at_finish(self):
        san = make()
        san.ledger.push_scope("epoch")
        san.allreduce(per_rank(2, (2,)))
        with pytest.raises(LedgerScopeError, match="'epoch' still open"):
            san.finish()

    def test_balanced_run_finishes_with_op_log(self):
        san = make()
        with san.ledger.scope("sync"):
            san.allreduce(per_rank(2, (2,)))
        log = san.finish()
        assert [r.op for r in log] == ["allreduce"]

    def test_require_scope_rejects_unattributed_collective(self):
        san = make(require_scope=True)
        with pytest.raises(SanitizerError, match="REPRO003"):
            san.allreduce(per_rank(2, (2,)))
        with san.ledger.scope("sync"):
            san.allreduce(per_rank(2, (2,)))  # attributed: fine

    def test_require_scope_covers_barrier(self):
        san = make(require_scope=True)
        with pytest.raises(SanitizerError, match="barrier"):
            san.barrier()


class TestAsyncHandles:
    def test_issued_handles_are_wrapped_and_checked(self):
        san = make()
        arrays = [np.zeros((3,), np.float32), np.zeros((4,), np.float32)]
        with pytest.raises(CollectiveMismatchError):
            san.iallreduce(arrays)  # validation fires at issue, not wait
        handle = san.iallreduce(per_rank(2, (3,)), tag="g")
        assert isinstance(handle, SanitizedWorkHandle)
        # Logged under the base op name so assert_same_sequence treats
        # issue+wait and blocking runs as the same sequence.
        assert san.op_log[-1].op == "allreduce"
        handle.wait()

    def test_waited_handle_passes_finish(self):
        san = make()
        san.iallreduce(per_rank(2, (2,)), tag="g").wait()
        san.finish()

    def test_dropped_handle_reported_at_finish(self):
        """The async-engine fault the lint rule REPRO007 catches
        statically, caught here at runtime: issue without wait."""
        san = make()
        san.iallreduce(per_rank(2, (2,)), tag="grads:lin")  # never waited
        with pytest.raises(DroppedHandleError) as exc:
            san.finish()
        msg = str(exc.value)
        assert "allreduce" in msg and "grads:lin" in msg
        assert "REPRO007" in msg

    def test_dropped_handle_checked_before_ledger_balance(self):
        san = make()
        san.ledger.push_scope("open")
        san.iallreduce(per_rank(2, (2,)))
        with pytest.raises(DroppedHandleError):
            san.finish()

    def test_all_async_ops_validated(self):
        san = make()
        bad = [np.zeros(3, np.float32), np.zeros(3, np.float64)]
        for issue in (san.iallreduce, san.ireduce_scatter):
            with pytest.raises(CollectiveMismatchError):
                issue(bad)
        with pytest.raises(CollectiveMismatchError):
            san.ibroadcast(bad, root=0)
        trailing_bad = [
            np.zeros((2, 3), np.float32),
            np.zeros((2, 4), np.float32),
        ]
        with pytest.raises(CollectiveMismatchError):
            san.iallgather(trailing_bad)
        for h in san.pending_work:
            h.wait()


class TestIssueOrder:
    def test_uniform_order_passes(self):
        san = make()
        for rank in range(2):
            san.declare_issue(rank, "iallreduce", tag="bucket0")
            san.declare_issue(rank, "iallgather", tag="idx")
        san.assert_uniform_issue_order()

    def test_cross_rank_divergence_reported_with_position(self):
        """Rank 1 issues its collectives in a different order — the
        deadlock every real NCCL program fears."""
        san = make()
        san.declare_issue(0, "iallreduce", tag="bucket0")
        san.declare_issue(0, "iallgather", tag="idx")
        san.declare_issue(1, "iallgather", tag="idx")
        san.declare_issue(1, "iallreduce", tag="bucket0")
        with pytest.raises(IssueOrderError) as exc:
            san.assert_uniform_issue_order()
        msg = str(exc.value)
        assert "position 0" in msg
        assert "ranks 0 and 1" in msg
        assert "iallreduce" in msg and "iallgather" in msg

    def test_length_mismatch_reported(self):
        san = make()
        san.declare_issue(0, "iallreduce")
        san.declare_issue(1, "iallreduce")
        san.declare_issue(1, "iallreduce")
        with pytest.raises(IssueOrderError, match="count"):
            san.assert_uniform_issue_order()

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            make().declare_issue(5, "iallreduce")

    def test_no_declarations_passes(self):
        make().assert_uniform_issue_order()


class TestSequenceComparison:
    def test_identical_sequences_pass(self):
        a, b = make(), make()
        for san in (a, b):
            san.allreduce(per_rank(2, (3,)), tag="x")
            san.allgather(per_rank(2, (1,)), tag="y")
        a.assert_same_sequence(b)

    def test_diverging_op_reported_with_position(self):
        a, b = make(), make()
        a.allreduce(per_rank(2, (3,)))
        b.allgather(per_rank(2, (3,)))
        with pytest.raises(CollectiveMismatchError, match="position 0"):
            a.assert_same_sequence(b)

    def test_length_divergence_reported(self):
        a, b = make(), make()
        a.allreduce(per_rank(2, (3,)))
        b.allreduce(per_rank(2, (3,)))
        b.barrier()
        with pytest.raises(CollectiveMismatchError, match="length"):
            a.assert_same_sequence(b)


class TestTrainerIntegration:
    def test_sanitized_fp16_training_runs_clean(self):
        """A short sanitized FP16 run: every collective validated, all
        scopes balanced, replicas still bit-identical."""
        from repro.core import SeedStrategy
        from repro.data import ONE_BILLION_WORD, BatchSpec, make_corpus
        from repro.optim import SGD
        from repro.train import (
            DistributedTrainer,
            TrainConfig,
            WordLanguageModel,
            WordLMConfig,
            max_replica_divergence,
        )

        corpus = make_corpus(ONE_BILLION_WORD.scaled(40), 3000, seed=0)
        san = make(world=2, require_scope=True)
        cfg = TrainConfig(
            world_size=2,
            batch=BatchSpec(2, 8),
            base_lr=0.1,
            use_unique=True,
            codec=sanitize_codec(Fp16Codec(512.0)),
            seed_strategy=SeedStrategy.PER_RANK,
        )
        model_cfg = WordLMConfig(
            vocab_size=40, embedding_dim=8, hidden_dim=12,
            projection_dim=8, num_samples=16,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train, corpus.valid, cfg, comm=san,
        )
        for _ in range(3):
            trainer.train_step()
        log = san.finish()
        assert len(log) > 0
        assert max_replica_divergence(trainer.replicas) == 0.0


class TestNoDoubleApplyInvariant:
    """The retry-safety invariant consumed by the recovery loop."""

    @staticmethod
    def replicas(world=2):
        from repro.nn import Linear

        return [
            Linear(3, 3, np.random.default_rng(7)) for _ in range(world)
        ]

    def test_clean_replicas_pass(self):
        from repro.analysis import assert_clean_retry_state

        reps = self.replicas()
        assert_clean_retry_state(reps)
        assert_clean_retry_state(
            reps, Communicator(2, track_memory=False)
        )

    def test_residual_dense_grad_reported_with_rank_and_name(self):
        from repro.analysis import DoubleApplyError, assert_clean_retry_state

        reps = self.replicas()
        reps[1].weight.accumulate_grad(np.ones((3, 3)))
        with pytest.raises(DoubleApplyError, match="rank 1") as exc:
            assert_clean_retry_state(reps)
        assert "weight" in str(exc.value)
        assert "dense gradient" in str(exc.value)

    def test_residual_sparse_grads_reported(self):
        from repro.analysis import DoubleApplyError, assert_clean_retry_state
        from repro.nn.parameter import SparseGrad

        reps = self.replicas()
        reps[0].weight.accumulate_sparse_grad(
            SparseGrad(indices=np.array([0]), values=np.ones((1, 3)))
        )
        with pytest.raises(DoubleApplyError, match="sparse"):
            assert_clean_retry_state(reps)

    def test_in_flight_async_work_reported(self):
        from repro.analysis import DoubleApplyError, assert_clean_retry_state

        comm = Communicator(2, track_memory=False)
        handle = comm.iallreduce(per_rank(2, (4,)), tag="grads")
        with pytest.raises(DoubleApplyError, match="in flight") as exc:
            assert_clean_retry_state(self.replicas(), comm)
        assert "allreduce" in str(exc.value)
        handle.wait()
        assert_clean_retry_state(self.replicas(), comm)

    def test_double_apply_is_a_sanitizer_error(self):
        from repro.analysis import DoubleApplyError

        assert issubclass(DoubleApplyError, SanitizerError)

    def test_zero_grad_restores_cleanliness(self):
        from repro.analysis import assert_clean_retry_state

        reps = self.replicas()
        reps[0].weight.accumulate_grad(np.ones((3, 3)))
        for r in reps:
            r.zero_grad()
        assert_clean_retry_state(reps)


class TestSanitizedWireCodec:
    """Roundtrip enforcement for the lossless wire codecs."""

    def test_clean_codec_passes_through(self):
        from repro.analysis.sanitizer import SanitizedWireCodec
        from repro.core.wire import DeltaBitpackCodec

        wrapped = SanitizedWireCodec(DeltaBitpackCodec())
        vec = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        frame = wrapped.encode(vec)
        np.testing.assert_array_equal(wrapped.decode(frame, np.int64), vec)
        assert wrapped.name == "delta"
        assert wrapped.lossless and wrapped.data_dependent

    def test_corrupted_codec_caught_at_encode(self):
        from repro.analysis.sanitizer import SanitizedWireCodec
        from repro.core.wire import DeltaBitpackCodec

        class BitFlipCodec(DeltaBitpackCodec):
            def encode(self, arr):
                frame = super().encode(arr)
                frame = frame.copy()
                frame[-1] ^= 0x40  # corrupt the packed deltas
                return frame

        wrapped = SanitizedWireCodec(BitFlipCodec())
        with pytest.raises(CollectiveMismatchError, match="bit-exact"):
            wrapped.encode(np.arange(4096, dtype=np.int64))

    def test_signature_change_caught_at_encode(self):
        from repro.analysis.sanitizer import SanitizedWireCodec
        from repro.core.wire import DeltaBitpackCodec

        class TruncatingCodec(DeltaBitpackCodec):
            def encode(self, arr):
                return super().encode(arr[:-1])

        wrapped = SanitizedWireCodec(TruncatingCodec())
        with pytest.raises(CollectiveMismatchError, match="signature"):
            wrapped.encode(np.arange(100, dtype=np.int64))

    def test_lossy_codec_rejected_at_construction(self):
        from repro.analysis.sanitizer import SanitizedWireCodec

        with pytest.raises(ValueError, match="lossless"):
            SanitizedWireCodec(Fp16Codec())

    def test_decode_dtype_check(self):
        from repro.analysis.sanitizer import SanitizedWireCodec
        from repro.core.wire import RunLengthCodec

        wrapped = SanitizedWireCodec(RunLengthCodec())
        frame = wrapped.encode(np.arange(64, dtype=np.int64))
        with pytest.raises((CollectiveMismatchError, ValueError)):
            wrapped.decode(frame, np.int32)

    def test_sanitize_codec_dispatch(self):
        from repro.analysis.sanitizer import SanitizedWireCodec, sanitize_codec
        from repro.core.wire import DeltaBitpackCodec

        assert sanitize_codec(None) is None
        lossless = sanitize_codec(DeltaBitpackCodec())
        assert isinstance(lossless, SanitizedWireCodec)
        # Idempotent: wrapping a wrapped codec is a no-op.
        assert sanitize_codec(lossless) is lossless
        fp16 = sanitize_codec(Fp16Codec(scale=256.0))
        assert isinstance(fp16, SanitizedFp16Codec)
        assert fp16.scale == 256.0
        ident = IdentityCodec()
        assert sanitize_codec(ident) is ident

    def test_sanitized_policy_runs_a_training_exchange(self):
        """End-to-end: a sanitized wire policy on the unique exchange
        behaves identically to the unsanitized one."""
        from repro.core.sparse_exchange import UniqueExchange
        from repro.core.wire import WirePolicy
        from repro.nn.parameter import SparseGrad

        rng = np.random.default_rng(0)
        grads = [
            SparseGrad(
                indices=rng.integers(0, 5000, 512),
                values=rng.standard_normal((512, 4)),
            )
            for _ in range(4)
        ]
        plain = UniqueExchange(
            wire=WirePolicy.from_spec("delta")
        ).exchange(Communicator(4, track_memory=False), grads)
        checked = UniqueExchange(
            wire=WirePolicy.from_spec("delta").sanitized()
        ).exchange(Communicator(4, track_memory=False), grads)
        for p, c in zip(plain, checked):
            np.testing.assert_array_equal(p.indices, c.indices)
            np.testing.assert_array_equal(p.values, c.values)
