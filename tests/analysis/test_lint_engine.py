"""Tests for the lint engine: discovery, noqa, registry, CLI plumbing."""

import pytest

from repro.analysis import LintEngine, default_rules
from repro.analysis.lint import PARSE_ERROR_ID, Rule, register
from repro.analysis.lint.engine import RULE_REGISTRY, Finding, format_findings
from repro.cli import main

CLEAN = '__all__ = ["f"]\n\n\ndef f():\n    return 1\n'
DIRTY = '__all__ = []\n\n\ndef f():\n    print("x")\n    return 1\n'


class TestEngine:
    def test_clean_source_has_no_findings(self):
        assert LintEngine().lint_source(CLEAN, "mod.py") == []

    def test_findings_are_sorted_and_located(self):
        findings = LintEngine().lint_source(DIRTY, "mod.py")
        assert [f.rule_id for f in findings] == ["REPRO006"]
        assert findings[0].line == 5
        assert findings[0].path == "mod.py"

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = LintEngine().lint_file(bad)
        assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]

    def test_directory_walk_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(CLEAN)
        (tmp_path / "pkg" / "__pycache__" / "b.py").write_text(DIRTY)
        files = list(LintEngine.iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["a.py"]

    def test_format_findings_tallies_by_rule(self):
        f1 = Finding("a.py", 1, 0, "REPRO001", "m")
        f2 = Finding("a.py", 2, 0, "REPRO001", "m")
        out = format_findings([f1, f2])
        assert "2 finding(s)" in out and "REPRO001: 2" in out
        assert format_findings([]) == "no findings"


class TestNoqa:
    def test_targeted_noqa_suppresses_matching_rule(self):
        src = '__all__ = []\nprint("x")  # noqa: REPRO006\n'
        assert LintEngine().lint_source(src, "mod.py") == []

    def test_targeted_noqa_keeps_other_rules(self):
        src = '__all__ = []\nprint("x")  # noqa: REPRO001\n'
        ids = [f.rule_id for f in LintEngine().lint_source(src, "mod.py")]
        assert ids == ["REPRO006"]

    def test_bare_noqa_suppresses_everything_on_the_line(self):
        src = '__all__ = []\nprint(np.random.rand())  # noqa\n'
        assert LintEngine().lint_source(src, "mod.py") == []


class TestRegistry:
    def test_default_rules_cover_the_documented_set(self):
        ids = [r.rule_id for r in default_rules()]
        assert ids == [f"REPRO{i:03d}" for i in range(1, 14)]

    def test_registry_is_id_ordered_with_no_gaps_or_duplicates(self):
        # Registration order == definition order; keeping it sorted
        # (and dense) is what lets the docs say "REPRO001-REPRO012"
        # and the engine docstring pick a non-clashing example id.
        ids = [rid for rid in RULE_REGISTRY if rid.startswith("REPRO")]
        assert ids == sorted(ids), "rule definitions drifted out of ID order"
        assert len(ids) == len(set(ids))
        nums = [int(rid.removeprefix("REPRO")) for rid in ids]
        assert nums == list(range(1, len(nums) + 1)), "gap in rule IDs"

    def test_subset_selection(self):
        ids = [r.rule_id for r in default_rules(["repro001", "REPRO006"])]
        assert ids == ["REPRO001", "REPRO006"]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="REPRO999"):
            default_rules(["REPRO999"])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register
            class Clone(Rule):
                rule_id = "REPRO001"

        assert RULE_REGISTRY["REPRO001"].__name__ != "Clone"


class TestCli:
    def test_lint_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text(CLEAN)
        dirty = tmp_path / "dirty.py"
        dirty.write_text(DIRTY)
        assert main(["lint", str(clean)]) == 0
        assert main(["lint", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "REPRO006" in out

    def test_rules_filter(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        dirty.write_text(DIRTY)
        assert main(["lint", str(dirty), "--rules", "REPRO001"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 7):
            assert f"REPRO00{i}" in out
