"""Positive/negative cases for each REPRO rule.

Every case pairs a minimal violating snippet with its minimally-fixed
twin, so a rule that stops firing (or starts over-firing) fails here
before it silently stops guarding src/repro.
"""

from repro.analysis import LintEngine, default_rules


def ids_for(src: str, path: str = "mod.py", only: str | None = None):
    rules = default_rules(None if only is None else [only])
    return [f.rule_id for f in LintEngine(rules).lint_source(src, path)]


class TestRepro001BareRng:
    def test_global_state_call_flagged(self):
        assert ids_for("x = np.random.rand(3)\n", only="REPRO001") == ["REPRO001"]

    def test_global_seed_flagged(self):
        assert ids_for("np.random.seed(0)\n", only="REPRO001") == ["REPRO001"]

    def test_numpy_spelling_flagged(self):
        assert ids_for("x = numpy.random.randn()\n", only="REPRO001") == [
            "REPRO001"
        ]

    def test_from_import_flagged(self):
        assert ids_for("from numpy.random import rand\n", only="REPRO001") == [
            "REPRO001"
        ]

    def test_explicit_generator_allowed(self):
        clean = (
            "rng = np.random.default_rng(0)\n"
            "ss = np.random.SeedSequence(1)\n"
            "g = np.random.Generator(np.random.PCG64(2))\n"
        )
        assert ids_for(clean, only="REPRO001") == []


class TestRepro002Float64Comm:
    def test_astype_into_collective_flagged(self):
        src = "comm.allreduce([g.astype(np.float64)], tag='t')\n"
        assert ids_for(src, only="REPRO002") == ["REPRO002"]

    def test_dtype_kwarg_into_encode_flagged(self):
        src = "codec.encode(np.zeros(4, dtype=np.float64))\n"
        assert ids_for(src, only="REPRO002") == ["REPRO002"]

    def test_float32_payload_allowed(self):
        src = "comm.allreduce([g.astype(np.float32)], tag='t')\n"
        assert ids_for(src, only="REPRO002") == []

    def test_float64_elsewhere_allowed(self):
        # Accumulating in float64 *outside* the comm path is the
        # optimizer's prerogative (grad-norm accumulation).
        src = "sq = (g.astype(np.float64) ** 2).sum()\n"
        assert ids_for(src, only="REPRO002") == []


class TestRepro003ScopeAttribution:
    def test_unscoped_collective_in_orchestration_flagged(self):
        src = "def step(comm, xs):\n    comm.allreduce(xs)\n"
        assert ids_for(src, "train/loop.py", only="REPRO003") == ["REPRO003"]

    def test_scoped_collective_allowed(self):
        src = (
            "def step(comm, led, xs):\n"
            "    with led.scope('sync'):\n"
            "        comm.allreduce(xs)\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO003") == []

    def test_scope_covers_nested_functions_lexically(self):
        src = (
            "def step(comm, led, xs):\n"
            "    with led.scope('sync'):\n"
            "        if xs:\n"
            "            comm.reduce_scatter(xs)\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO003") == []

    def test_comm_substrate_exempt(self):
        src = "def helper(comm, xs):\n    return comm.allgather(xs)\n"
        assert ids_for(src, "core/unique.py", only="REPRO003") == []
        assert ids_for(src, "cluster/hierarchical.py", only="REPRO003") == []


class TestRepro004DtypeDefaults:
    def test_float64_dtype_default_in_nn_flagged(self):
        src = "def f(dtype: np.dtype = np.float64):\n    pass\n"
        assert ids_for(src, "nn/layer.py", only="REPRO004") == ["REPRO004"]

    def test_kwonly_dtype_default_flagged(self):
        src = "def f(*, dtype=np.float32):\n    pass\n"
        assert ids_for(src, "nn/layer.py", only="REPRO004") == ["REPRO004"]

    def test_constant_reference_allowed(self):
        src = "def f(dtype: np.dtype = DTYPE):\n    pass\n"
        assert ids_for(src, "nn/layer.py", only="REPRO004") == []

    def test_mutable_default_flagged(self):
        src = "def f(layers=[]):\n    pass\n"
        assert ids_for(src, "nn/layer.py", only="REPRO004") == ["REPRO004"]

    def test_outside_nn_not_this_rules_business(self):
        src = "def f(dtype: np.dtype = np.float64):\n    pass\n"
        assert ids_for(src, "train/config.py", only="REPRO004") == []


class TestRepro005Exports:
    def test_missing_all_flagged(self):
        assert ids_for("def f():\n    pass\n", only="REPRO005") == ["REPRO005"]

    def test_stale_entry_flagged(self):
        src = "__all__ = ['f', 'ghost']\n\ndef f():\n    pass\n"
        assert ids_for(src, only="REPRO005") == ["REPRO005"]

    def test_imported_and_assigned_names_count_as_bound(self):
        src = (
            "from os import path\n"
            "import sys\n"
            "X = 1\n"
            "__all__ = ['path', 'sys', 'X', 'f']\n"
            "def f():\n    pass\n"
        )
        assert ids_for(src, only="REPRO005") == []

    def test_dynamic_all_is_not_second_guessed(self):
        src = "__all__ = sorted(globals())\n"
        assert ids_for(src, only="REPRO005") == []


class TestRepro006Print:
    def test_print_in_library_flagged(self):
        src = "__all__ = []\ndef f():\n    print('dbg')\n"
        assert ids_for(src, "perf/model.py", only="REPRO006") == ["REPRO006"]

    def test_cli_module_exempt(self):
        src = "__all__ = []\nprint('table row')\n"
        assert ids_for(src, "cli.py", only="REPRO006") == []


class TestRepro007DroppedHandle:
    def test_bare_expression_issue_flagged(self):
        src = "def f(comm, xs):\n    comm.iallreduce(xs)\n"
        assert ids_for(src, only="REPRO007") == ["REPRO007"]

    def test_assigned_but_never_used_flagged(self):
        src = "def f(comm, xs):\n    h = comm.iallgather(xs)\n"
        assert ids_for(src, only="REPRO007") == ["REPRO007"]

    def test_module_level_drop_flagged(self):
        src = "h = comm.ibroadcast(xs, root=0)\n"
        assert ids_for(src, only="REPRO007") == ["REPRO007"]

    def test_waited_handle_allowed(self):
        src = "def f(comm, xs):\n    h = comm.iallreduce(xs)\n    h.wait()\n"
        assert ids_for(src, only="REPRO007") == []

    def test_inline_wait_allowed(self):
        src = "def f(comm, xs):\n    return comm.iallreduce(xs).wait()\n"
        assert ids_for(src, only="REPRO007") == []

    def test_returned_handle_allowed(self):
        """Returning the handle hands completion duty to the caller —
        the issue/wait split the whole refactor exists to allow."""
        src = "def issue(comm, xs):\n    return comm.iallreduce(xs)\n"
        assert ids_for(src, only="REPRO007") == []

    def test_appended_handle_allowed(self):
        src = (
            "def f(comm, buckets):\n"
            "    handles = []\n"
            "    for b in buckets:\n"
            "        h = comm.iallreduce(b)\n"
            "        handles.append(h)\n"
            "    return handles\n"
        )
        assert ids_for(src, only="REPRO007") == []

    def test_closure_use_counts_as_use(self):
        src = (
            "def f(comm, xs):\n"
            "    h = comm.iallreduce(xs)\n"
            "    def finish():\n"
            "        return h.wait()\n"
            "    return finish\n"
        )
        assert ids_for(src, only="REPRO007") == []

    def test_drop_inside_branch_flagged(self):
        src = (
            "def f(comm, xs, fast):\n"
            "    if fast:\n"
            "        comm.ireduce_scatter(xs)\n"
        )
        assert ids_for(src, only="REPRO007") == ["REPRO007"]

    def test_high_level_issue_helpers_covered(self):
        src = "def f(comm, grads):\n    ibucketed_allreduce(comm, grads)\n"
        assert ids_for(src, only="REPRO007") == ["REPRO007"]
        src = "def f(s, comm, grads):\n    s.iexchange(comm, grads)\n"
        assert ids_for(src, only="REPRO007") == ["REPRO007"]

    def test_blocking_collectives_not_this_rules_business(self):
        src = "def f(comm, xs):\n    comm.allreduce(xs)\n"
        assert ids_for(src, only="REPRO007") == []


class TestRepro008UncodedPayload:
    def test_raw_payload_in_orchestration_flagged(self):
        src = "def f(comm, grads):\n    h = comm.iallgather(grads)\n    h.wait()\n"
        assert ids_for(src, "train/loop.py", only="REPRO008") == ["REPRO008"]

    def test_bare_name_entry_point_flagged(self):
        src = "def f(comm, grads):\n    h = iexchange(comm, grads)\n    h.wait()\n"
        assert ids_for(src, "train/loop.py", only="REPRO008") == ["REPRO008"]

    def test_wire_policy_kwarg_allowed(self):
        src = (
            "def f(comm, grads, wire):\n"
            "    h = iunique_exchange(comm, grads, wire=wire)\n"
            "    h.wait()\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO008") == []

    def test_codec_kwarg_allowed(self):
        src = "def f(comm, g, c):\n    h = comm.iallreduce(g, codec=c)\n    h.wait()\n"
        assert ids_for(src, "train/loop.py", only="REPRO008") == []

    def test_pre_encoded_with_payload_bytes_allowed(self):
        src = (
            "def f(comm, enc, g):\n"
            "    h = comm.iallreduce(enc, tag='t', payload_bytes=g.nbytes)\n"
            "    h.wait()\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO008") == []

    def test_inline_encode_allowed(self):
        src = (
            "def f(comm, c, grads):\n"
            "    h = comm.iallreduce([c.encode(g) for g in grads], tag='t')\n"
            "    h.wait()\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO008") == []

    def test_codec_suggestive_identifier_allowed(self):
        src = (
            "def f(comm, encoded_frames):\n"
            "    h = comm.iallgather(encoded_frames, tag='t')\n"
            "    h.wait()\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO008") == []

    def test_iencoded_allgather_is_the_codec_path(self):
        src = (
            "def f(comm, arrays, c):\n"
            "    h = iencoded_allgather(comm, arrays, c)\n"
            "    h.wait()\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO008") == []

    def test_comm_substrate_exempt(self):
        src = "def f(comm, grads):\n    h = comm.iallgather(grads)\n    h.wait()\n"
        for exempt in ("cluster/communicator.py", "core/unique.py",
                       "analysis/sanitizer.py"):
            assert ids_for(src, exempt, only="REPRO008") == []


class TestRepro009TelemetryBypass:
    def test_stdout_write_flagged(self):
        src = "import sys\n\ndef f():\n    sys.stdout.write('loss=1')\n"
        assert ids_for(src, "train/loop.py", only="REPRO009") == ["REPRO009"]

    def test_stderr_write_flagged(self):
        src = "import sys\n\ndef f():\n    sys.stderr.write('oops')\n"
        assert ids_for(src, "train/loop.py", only="REPRO009") == ["REPRO009"]

    def test_series_internals_flagged(self):
        src = "def f(counter):\n    return counter._series\n"
        assert ids_for(src, "perf/model.py", only="REPRO009") == ["REPRO009"]

    def test_bare_metric_ctor_flagged(self):
        src = (
            "from repro.telemetry import Counter\n"
            "\n"
            "def f():\n"
            "    return Counter('x_total', 'help')\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO009") == ["REPRO009"]

    def test_aliased_metric_ctor_flagged(self):
        src = (
            "from repro.telemetry import Gauge as G\n"
            "\n"
            "def f():\n"
            "    return G('x', 'help')\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO009") == ["REPRO009"]

    def test_attribute_chain_ctor_flagged(self):
        src = (
            "from repro import telemetry\n"
            "\n"
            "def f():\n"
            "    return telemetry.Histogram('x', 'help')\n"
        )
        assert ids_for(src, "train/loop.py", only="REPRO009") == ["REPRO009"]

    def test_registry_minted_metric_allowed(self):
        src = "def f(registry):\n    registry.counter('x_total', 'help').inc()\n"
        assert ids_for(src, "train/loop.py", only="REPRO009") == []

    def test_collections_counter_not_confused(self):
        src = "from collections import Counter\n\ndef f(xs):\n    return Counter(xs)\n"
        assert ids_for(src, "data/text.py", only="REPRO009") == []

    def test_value_accessor_allowed(self):
        src = "def f(counter):\n    return counter.value()\n"
        assert ids_for(src, "perf/model.py", only="REPRO009") == []

    def test_telemetry_package_and_cli_exempt(self):
        src = "def f(metric):\n    return metric._series\n"
        for exempt in ("telemetry/registry.py", "telemetry/exporters.py",
                       "cli.py"):
            assert ids_for(src, exempt, only="REPRO009") == []
