"""End-to-end integration tests tying the substrates together.

These exercise the full paper pipeline at miniature scale: Zipfian data
-> sharded batching -> SPMD training with all three techniques -> the
accuracy and cost claims, plus the OOM reproduction that motivates the
whole paper.
"""

import numpy as np
import pytest

from repro.cluster import Communicator, DeviceOOMError, DeviceSpec
from repro.core import Fp16Codec, SeedStrategy
from repro.data import BatchSpec, ONE_BILLION_WORD, TIEBA, make_corpus
from repro.optim import SGD, Adam
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    assert_replicas_synchronized,
    perplexity,
)

VOCAB = 80
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=8, hidden_dim=10, projection_dim=8, num_samples=12
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 20_000, seed=5)


def make_word_trainer(world, steps_cfg=None, **overrides):
    cfg = TrainConfig(
        world_size=world, batch=BatchSpec(2, 8), base_lr=0.3, **overrides
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train,
        CORPUS.valid,
        cfg,
    )


class TestFullTrainingPipeline:
    def test_techniques_train_to_same_quality_as_baseline(self):
        """Headline accuracy claim: uniqueness+compression achieve the
        baseline's perplexity (Figure 5 / Section V-A)."""
        base = make_word_trainer(4, use_unique=False)
        full = make_word_trainer(
            4,
            use_unique=True,
            codec=Fp16Codec(512.0),
            seed_strategy=SeedStrategy.ZIPF_FREQ,
        )
        initial = perplexity(full.evaluate())
        for tr in (base, full):
            tr.train_epoch(max_steps=50, evals_per_epoch=1)
        p_base = base.history[-1].final_perplexity
        p_full = full.history[-1].final_perplexity
        assert p_full == pytest.approx(p_base, rel=0.05)
        # Both actually learned something.
        assert p_full < initial * 0.9

    def test_techniques_move_fewer_bytes(self):
        """Headline cost claim: same training, much less traffic."""
        base = make_word_trainer(4, use_unique=False)
        full = make_word_trainer(4, use_unique=True, codec=Fp16Codec(512.0))
        for tr in (base, full):
            for _ in range(5):
                tr.train_step()

        def embedding_bytes(tr):
            return sum(
                b
                for scope, b in tr.comm.ledger.bytes_by_scope().items()
                if "embedding" in scope or "loss_layer" in scope
            )

        assert embedding_bytes(full) < embedding_bytes(base) / 2

    def test_more_gpus_same_convergence_with_lr_scaling(self):
        """Figure 5 shape: bigger G starts behind, converges comparably."""
        small = make_word_trainer(2)
        large = make_word_trainer(8)
        for tr in (small, large):
            for _ in range(60):
                tr.train_step()
        p_small = perplexity(small.evaluate())
        p_large = perplexity(large.evaluate())
        assert p_large < VOCAB  # learned
        assert p_large == pytest.approx(p_small, rel=0.35)

    def test_char_lm_pipeline_on_tieba_preset(self):
        """Weak-scaling substrate: Chinese-sized vocab char LM trains."""
        vocab = 120
        # Tieba's 1000:1 split needs a long stream for a usable validation
        # slice at this batch shape.
        corpus = make_corpus(TIEBA.scaled(vocab), 30_000, seed=1)
        cfg = TrainConfig(
            world_size=2, batch=BatchSpec(2, 6), base_lr=2e-3
        )
        char_cfg = CharLMConfig(
            vocab_size=vocab, embedding_dim=6, hidden_dim=8, depth=2, dropout=0.0
        )
        tr = DistributedTrainer(
            lambda rng, rank: CharLanguageModel(
                char_cfg, rng, dropout_rng=np.random.default_rng(rank)
            ),
            lambda params, lr: Adam(params, lr),
            corpus.train,
            corpus.valid,
            cfg,
        )
        before = perplexity(tr.evaluate())
        tr.train_epoch(max_steps=40, evals_per_epoch=1)
        after = tr.history[-1].final_perplexity
        assert after < before
        assert_replicas_synchronized(tr.replicas, atol=0.0)


class TestOOMReproduction:
    """The motivating failure: baseline ALLGATHER exhausts device memory
    as G grows; the unique exchange does not."""

    DEVICE = DeviceSpec(name="mini-gpu", memory_bytes=250_000, peak_flops=1e12)

    def run_steps(self, world, use_unique):
        cfg = TrainConfig(
            world_size=world,
            batch=BatchSpec(4, 16),
            base_lr=0.1,
            use_unique=use_unique,
        )
        big_cfg = WordLMConfig(
            vocab_size=VOCAB,
            embedding_dim=48,
            hidden_dim=16,
            projection_dim=48,
            num_samples=16,
        )
        comm = Communicator(world, device_spec=self.DEVICE)
        tr = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(big_cfg, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train,
            CORPUS.valid,
            cfg,
            comm=comm,
        )
        tr.train_step()
        return comm

    def test_baseline_ooms_at_scale(self):
        with pytest.raises(DeviceOOMError):
            self.run_steps(world=12, use_unique=False)

    def test_unique_survives_same_scale(self):
        comm = self.run_steps(world=12, use_unique=True)
        assert comm.peak_bytes_per_rank < self.DEVICE.memory_bytes

    def test_baseline_fits_at_small_scale(self):
        """Matches the paper: the baseline is viable at few GPUs."""
        comm = self.run_steps(world=2, use_unique=False)
        assert comm.peak_bytes_per_rank < self.DEVICE.memory_bytes


class TestSeedingAccuracySpectrum:
    """Figure 7 in miniature: shared seeds lose accuracy, Zipf-freq
    seeding matches per-rank seeds."""

    @staticmethod
    def train_with(strategy, steps=60):
        tr = make_word_trainer(8, seed_strategy=strategy, data_seed=17)
        for _ in range(steps):
            tr.train_step()
        return perplexity(tr.evaluate())

    def test_zipf_freq_matches_per_rank(self):
        p_full = self.train_with(SeedStrategy.PER_RANK)
        p_zipf = self.train_with(SeedStrategy.ZIPF_FREQ)
        assert p_zipf == pytest.approx(p_full, rel=0.10)

    def test_all_strategies_learn(self):
        for strategy in (SeedStrategy.ALL_SAME, SeedStrategy.LOG2):
            assert self.train_with(strategy, steps=40) < VOCAB
