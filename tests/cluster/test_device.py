"""Tests for the simulated-GPU memory allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.device import (
    TITAN_X,
    V100,
    DeviceOOMError,
    DeviceSpec,
    ScopedAllocation,
    SimulatedDevice,
)


def make_device(capacity: int = 1000) -> SimulatedDevice:
    return SimulatedDevice(
        device_id=0,
        spec=DeviceSpec(name="test", memory_bytes=capacity, peak_flops=1e12),
    )


class TestDeviceSpec:
    def test_titan_x_matches_table_ii(self):
        assert TITAN_X.memory_bytes == 12 * 1024**3
        assert TITAN_X.peak_flops == pytest.approx(6.1e12)

    def test_v100_matches_prior_work(self):
        assert V100.memory_bytes == 16 * 1024**3
        assert V100.peak_flops == pytest.approx(125e12)

    def test_sustained_flops(self):
        spec = DeviceSpec("x", 1, 10e12, achieved_fraction=0.4)
        assert spec.sustained_flops == pytest.approx(4e12)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(memory_bytes=0, peak_flops=1.0),
            dict(memory_bytes=10, peak_flops=0.0),
            dict(memory_bytes=10, peak_flops=1.0, achieved_fraction=0.0),
            dict(memory_bytes=10, peak_flops=1.0, achieved_fraction=1.5),
            dict(memory_bytes=10, peak_flops=1.0, memory_bandwidth=0.0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", **kwargs)


class TestAllocator:
    def test_alloc_and_free_roundtrip(self):
        dev = make_device(100)
        h = dev.alloc(60, tag="a")
        assert dev.bytes_in_use == 60
        dev.free(h)
        assert dev.bytes_in_use == 0

    def test_oom_raised_at_capacity(self):
        dev = make_device(100)
        dev.alloc(80)
        with pytest.raises(DeviceOOMError) as exc:
            dev.alloc(30, tag="overflow")
        assert exc.value.requested == 30
        assert exc.value.in_use == 80
        assert exc.value.tag == "overflow"

    def test_exact_fit_allowed(self):
        dev = make_device(100)
        dev.alloc(100)
        assert dev.bytes_free == 0

    def test_oom_does_not_charge(self):
        dev = make_device(100)
        dev.alloc(90)
        with pytest.raises(DeviceOOMError):
            dev.alloc(20)
        assert dev.bytes_in_use == 90

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            make_device().alloc(-1)

    def test_zero_alloc_allowed(self):
        dev = make_device()
        h = dev.alloc(0)
        dev.free(h)

    def test_double_free_raises(self):
        dev = make_device()
        h = dev.alloc(10)
        dev.free(h)
        with pytest.raises(KeyError):
            dev.free(h)

    def test_peak_tracks_high_water_mark(self):
        dev = make_device(100)
        h1 = dev.alloc(40)
        h2 = dev.alloc(50)
        dev.free(h1)
        dev.free(h2)
        assert dev.peak_bytes == 90
        assert dev.bytes_in_use == 0

    def test_reset_peak(self):
        dev = make_device(100)
        h = dev.alloc(50)
        dev.free(h)
        dev.reset_peak()
        assert dev.peak_bytes == 0

    def test_would_fit(self):
        dev = make_device(100)
        dev.alloc(70)
        assert dev.would_fit(30)
        assert not dev.would_fit(31)
        assert not dev.would_fit(-1)

    def test_live_allocations_snapshot(self):
        dev = make_device(100)
        dev.alloc(10, tag="x")
        dev.alloc(20, tag="y")
        tags = {a.tag for a in dev.live_allocations()}
        assert tags == {"x", "y"}

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=50), max_size=20)
    )
    def test_accounting_never_negative(self, sizes):
        dev = make_device(10_000)
        handles = [dev.alloc(s) for s in sizes]
        for h in handles:
            dev.free(h)
        assert dev.bytes_in_use == 0
        assert dev.peak_bytes <= sum(sizes)


class TestScopedAllocation:
    def test_charges_during_scope_only(self):
        dev = make_device(100)
        with ScopedAllocation(dev, 60, "tmp"):
            assert dev.bytes_in_use == 60
        assert dev.bytes_in_use == 0
        assert dev.peak_bytes == 60

    def test_released_on_exception(self):
        dev = make_device(100)
        with pytest.raises(RuntimeError):
            with ScopedAllocation(dev, 60):
                raise RuntimeError("boom")
        assert dev.bytes_in_use == 0

    def test_scope_can_oom(self):
        dev = make_device(50)
        with pytest.raises(DeviceOOMError):
            with ScopedAllocation(dev, 60):
                pass
        assert dev.bytes_in_use == 0
