"""Tests for the hierarchical two-level allreduce."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Communicator
from repro.cluster.hierarchical import (
    hierarchical_allreduce,
    hierarchical_allreduce_time,
)
from repro.cluster.interconnect import Interconnect, PAPER_CLUSTER_FABRIC
from repro.cluster.collectives import ring_allreduce_time

FABRIC4 = Interconnect(gpus_per_node=4)


def comm(world, fabric=FABRIC4):
    return Communicator(world, fabric=fabric, track_memory=False)


class TestSemantics:
    def test_matches_flat_allreduce(self):
        world = 8  # 2 nodes of 4
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal((8, 3)) for _ in range(world)]
        out = hierarchical_allreduce(comm(world), arrays)
        expected = sum(arrays)
        for o in out:
            np.testing.assert_allclose(o, expected, rtol=1e-12)

    def test_single_node_falls_back_to_flat(self):
        world = 4
        c = comm(world)
        arrays = [np.ones(4) for _ in range(world)]
        out = hierarchical_allreduce(c, arrays)
        np.testing.assert_allclose(out[0], 4.0)
        assert c.ledger.events[-1].op == "allreduce"

    def test_multi_node_records_hierarchical_op(self):
        world = 8
        c = comm(world)
        hierarchical_allreduce(c, [np.ones(8) for _ in range(world)])
        assert c.ledger.events[-1].op == "hierarchical_allreduce"

    def test_shape_preserved(self):
        world = 8
        arrays = [np.ones((4, 2, 3)) for _ in range(world)]
        out = hierarchical_allreduce(comm(world), arrays)
        assert out[0].shape == (4, 2, 3)

    @given(
        nodes=st.integers(2, 4),
        rows_per_gpu=st.integers(1, 4),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equals_sum(self, nodes, rows_per_gpu, seed):
        local = 4
        world = nodes * local
        rng = np.random.default_rng(seed)
        arrays = [
            rng.standard_normal((rows_per_gpu * local, 2)) for _ in range(world)
        ]
        out = hierarchical_allreduce(comm(world), arrays)
        np.testing.assert_allclose(out[0], sum(arrays), rtol=1e-9)

    def test_indivisible_leading_dim_rejected(self):
        world = 8
        with pytest.raises(ValueError):
            hierarchical_allreduce(comm(world), [np.ones(6)] * world)

    def test_partial_node_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce(comm(6), [np.ones(4)] * 6)

    def test_rank_count_checked(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce(comm(8), [np.ones(4)] * 7)


class TestCostModel:
    def test_beats_flat_ring_across_nodes(self):
        """The whole point: the slow tier only carries 1/L of the bytes."""
        nbytes = 100 * 1024 * 1024
        fabric = PAPER_CLUSTER_FABRIC
        for world in (16, 32, 64):
            flat = ring_allreduce_time(world, nbytes, fabric.ring_link(world))
            hier = hierarchical_allreduce_time(world, nbytes, fabric)
            assert hier < flat

    def test_single_node_identical_to_flat(self):
        nbytes = 10**6
        fabric = PAPER_CLUSTER_FABRIC
        assert hierarchical_allreduce_time(
            8, nbytes, fabric
        ) == ring_allreduce_time(8, nbytes, fabric.intra_node)

    def test_same_volume_better_placement(self):
        """Hierarchy moves the *same* total bytes per rank as a flat ring
        — the win is that only 1/L of them cross the slow tier, which
        shows up as time, not volume."""
        world = 16
        c_flat = Communicator(world, track_memory=False)
        c_hier = Communicator(world, track_memory=False)
        # Bandwidth-bound message: for tiny (latency-bound) messages the
        # extra phases make hierarchy *slower*, which is expected.
        arrays = [np.ones(1 << 20, np.float32) for _ in range(world)]
        c_flat.allreduce([a.copy() for a in arrays])
        hierarchical_allreduce(c_hier, [a.copy() for a in arrays])
        assert (
            c_hier.ledger.total_wire_bytes_per_rank
            == c_flat.ledger.total_wire_bytes_per_rank
        )
        assert c_hier.ledger.total_time_s < c_flat.ledger.total_time_s

    def test_invalid_world(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(0, 100, PAPER_CLUSTER_FABRIC)
