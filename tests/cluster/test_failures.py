"""Tests for fault injection and checkpoint/restart recovery."""

import numpy as np
import pytest

from repro.cluster import Communicator, ring_allreduce_time
from repro.cluster.failures import (
    FailingCommunicator,
    RankFailureError,
    degrade_fabric,
)
from repro.cluster.interconnect import PAPER_CLUSTER_FABRIC
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    load_checkpoint,
    save_checkpoint,
)

VOCAB = 60
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def trainer_with(comm=None, world=2):
    cfg = TrainConfig(world_size=world, batch=BatchSpec(2, 6), base_lr=0.2)
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
        comm=comm,
    )


class TestDegradedFabric:
    def test_bandwidth_reduced_latency_kept(self):
        slow = degrade_fabric(PAPER_CLUSTER_FABRIC, inter_factor=4.0)
        assert slow.inter_node.bandwidth == pytest.approx(
            PAPER_CLUSTER_FABRIC.inter_node.bandwidth / 4
        )
        assert slow.inter_node.latency == PAPER_CLUSTER_FABRIC.inter_node.latency
        assert slow.intra_node.bandwidth == PAPER_CLUSTER_FABRIC.intra_node.bandwidth

    def test_degradation_slows_collectives(self):
        slow = degrade_fabric(PAPER_CLUSTER_FABRIC, inter_factor=2.0)
        n = 10**8
        t_healthy = ring_allreduce_time(
            16, n, PAPER_CLUSTER_FABRIC.ring_link(16)
        )
        t_slow = ring_allreduce_time(16, n, slow.ring_link(16))
        assert t_slow == pytest.approx(2 * t_healthy, rel=0.01)

    def test_upgrades_rejected(self):
        with pytest.raises(ValueError):
            degrade_fabric(PAPER_CLUSTER_FABRIC, intra_factor=0.5)


class TestFailingCommunicator:
    def test_fails_after_budget(self):
        comm = FailingCommunicator(2, fail_after=2, track_memory=False)
        arrays = [np.ones(4) for _ in range(2)]
        comm.allreduce(arrays)
        comm.allgather(arrays)
        with pytest.raises(RankFailureError) as exc:
            comm.allreduce(arrays)
        assert exc.value.collective_index == 2
        assert exc.value.op == "allreduce"

    def test_no_budget_never_fails(self):
        comm = FailingCommunicator(2, fail_after=None, track_memory=False)
        for _ in range(10):
            comm.allreduce([np.ones(2)] * 2)

    def test_failure_before_state_mutation(self):
        comm = FailingCommunicator(2, fail_after=0, track_memory=False)
        with pytest.raises(RankFailureError):
            comm.allreduce([np.ones(2)] * 2)
        assert len(comm.ledger.events) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FailingCommunicator(2, fail_after=-1)
        with pytest.raises(ValueError):
            FailingCommunicator(2, failing_rank=5)


class TestElasticRecovery:
    def test_crash_surfaces_from_training(self):
        comm = FailingCommunicator(2, fail_after=3, track_memory=False)
        tr = trainer_with(comm=comm)
        with pytest.raises(RankFailureError):
            for _ in range(10):
                tr.train_step()

    def test_checkpoint_restart_matches_uninterrupted_run(self, tmp_path):
        """The full elastic story: train, checkpoint, crash, restore on a
        fresh communicator, continue — bit-identical to a run that never
        crashed."""
        straight = trainer_with()
        for _ in range(6):
            straight.train_step()

        # Interrupted run: checkpoint at step 4, crash during step 5.
        flaky_comm = FailingCommunicator(2, fail_after=10**9, track_memory=False)
        victim = trainer_with(comm=flaky_comm)
        for _ in range(4):
            victim.train_step()
        ckpt = tmp_path / "elastic.npz"
        save_checkpoint(ckpt, victim)
        flaky_comm.fail_after = flaky_comm._collectives + 2  # crash mid-step
        with pytest.raises(RankFailureError):
            victim.train_step()

        # Replacement job: fresh hardware, restore, run the last 2 steps.
        revived = trainer_with()
        assert load_checkpoint(ckpt, revived) == 4
        for _ in range(2):
            revived.train_step()

        for (n, a), (_, b) in zip(
            straight.replicas[0].named_parameters(),
            revived.replicas[0].named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)
