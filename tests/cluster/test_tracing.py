"""Tests for the cost ledger."""

import pytest

from repro.cluster.tracing import (
    CostLedger,
    LedgerResetError,
    LedgerScopeError,
)


class TestRecording:
    def test_totals_accumulate(self):
        ledger = CostLedger()
        ledger.record("allreduce", 4, 100, 0.5)
        ledger.record("allgather", 4, 300, 1.5)
        assert ledger.total_wire_bytes_per_rank == 400
        assert ledger.total_time_s == pytest.approx(2.0)

    def test_by_op_views(self):
        ledger = CostLedger()
        ledger.record("allreduce", 2, 10, 0.1)
        ledger.record("allreduce", 2, 20, 0.2)
        ledger.record("allgather", 2, 5, 0.05)
        assert ledger.bytes_by_op() == {"allreduce": 30, "allgather": 5}
        assert ledger.time_by_op()["allreduce"] == pytest.approx(0.3)

    def test_negative_values_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            ledger.record("x", 1, -1, 0.0)
        with pytest.raises(ValueError):
            ledger.record("x", 1, 0, -0.1)

    def test_reset(self):
        ledger = CostLedger()
        ledger.record("x", 1, 5, 0.1)
        ledger.reset()
        assert ledger.total_wire_bytes_per_rank == 0
        assert len(ledger.events) == 0


class TestScopes:
    def test_nested_scope_names(self):
        ledger = CostLedger()
        with ledger.scope("step"):
            with ledger.scope("embedding"):
                ledger.record("allgather", 2, 7, 0.0)
        assert ledger.events[0].scope == "step/embedding"

    def test_bytes_by_scope(self):
        ledger = CostLedger()
        with ledger.scope("dense"):
            ledger.record("allreduce", 2, 100, 0.1)
        with ledger.scope("sparse"):
            ledger.record("allreduce", 2, 7, 0.1)
        by_scope = ledger.bytes_by_scope()
        assert by_scope["dense"] == 100
        assert by_scope["sparse"] == 7

    def test_scope_restored_after_exception(self):
        ledger = CostLedger()
        with pytest.raises(RuntimeError):
            with ledger.scope("x"):
                raise RuntimeError
        assert ledger.current_scope == ""

    def test_slash_in_scope_name_rejected(self):
        ledger = CostLedger()
        with pytest.raises(ValueError):
            with ledger.scope("a/b"):
                pass


class TestScopeBalance:
    def test_pop_on_empty_raises(self):
        ledger = CostLedger()
        with pytest.raises(LedgerScopeError, match="empty scope stack"):
            ledger.pop_scope()

    def test_mismatched_pop_raises_with_both_names(self):
        ledger = CostLedger()
        ledger.push_scope("outer")
        ledger.push_scope("inner")
        with pytest.raises(LedgerScopeError, match="'outer'.*'inner'"):
            ledger.pop_scope(expected="outer")
        # the stack is left untouched by the failed pop
        assert ledger.current_scope == "outer/inner"

    def test_nested_push_pop_balanced(self):
        ledger = CostLedger()
        ledger.push_scope("a")
        ledger.push_scope("b")
        assert ledger.pop_scope(expected="b") == "b"
        assert ledger.pop_scope(expected="a") == "a"
        ledger.assert_balanced()

    def test_assert_balanced_flags_open_scope(self):
        ledger = CostLedger()
        ledger.push_scope("leaked")
        with pytest.raises(LedgerScopeError, match="'leaked' still open"):
            ledger.assert_balanced()

    def test_double_exit_detected(self):
        """A scope context that exits twice is a pop-on-empty, not an
        AssertionError (asserts vanish under ``python -O``)."""
        ledger = CostLedger()
        cm = ledger.scope("once")
        cm.__enter__()
        cm.__exit__(None, None, None)
        with pytest.raises(LedgerScopeError):
            cm.__exit__(None, None, None)

    def test_slash_in_push_scope_rejected(self):
        ledger = CostLedger()
        with pytest.raises(LedgerScopeError):
            ledger.push_scope("a/b")


class TestSnapshots:
    def test_delta_since(self):
        ledger = CostLedger()
        ledger.record("a", 1, 10, 1.0)
        snap = ledger.snapshot()
        ledger.record("b", 1, 5, 0.25)
        delta = ledger.delta_since(snap)
        assert delta.n_events == 1
        assert delta.wire_bytes_per_rank == 5
        assert delta.time_s == pytest.approx(0.25)

    def test_delta_across_reset_raises(self):
        """Regression: pre-reset snapshots used to yield negative deltas."""
        ledger = CostLedger()
        ledger.record("a", 1, 100, 1.0)
        snap = ledger.snapshot()
        ledger.record("b", 1, 50, 0.5)
        ledger.reset()
        with pytest.raises(LedgerResetError, match="generation 0.*generation 1"):
            ledger.delta_since(snap)

    def test_generation_advances_on_every_reset(self):
        ledger = CostLedger()
        assert ledger.generation == 0
        ledger.reset()
        ledger.reset()
        assert ledger.generation == 2
        assert ledger.snapshot().generation == 2

    def test_same_generation_delta_still_works_after_reset(self):
        ledger = CostLedger()
        ledger.record("a", 1, 10, 0.1)
        ledger.reset()
        snap = ledger.snapshot()
        ledger.record("b", 1, 5, 0.05)
        delta = ledger.delta_since(snap)
        assert delta.wire_bytes_per_rank == 5
        assert delta.n_events == 1
