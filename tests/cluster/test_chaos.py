"""Tests for the declarative fault plans and the chaos communicator."""

import numpy as np
import pytest

from repro.cluster import (
    ChaosCommunicator,
    Communicator,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RankFailureError,
    TransientLinkError,
)


def arrays_for(world, shape=(4,), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(world)]


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=-1)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=0, rank=-2)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=0, retries=0)
        with pytest.raises(ValueError):
            FaultEvent(FaultKind.STRAGGLER, collective_index=0, slowdown=0.5)

    def test_dict_roundtrip(self):
        ev = FaultEvent(
            FaultKind.TRANSIENT_LINK, collective_index=3, rank=1, retries=2
        )
        assert FaultEvent.from_dict(ev.to_dict()) == ev

    def test_from_dict_defaults(self):
        ev = FaultEvent.from_dict(
            {"kind": "rank_loss", "collective_index": 5}
        )
        assert ev.kind is FaultKind.RANK_LOSS
        assert ev.rank == 0
        assert ev.retries == 1


class TestFaultPlan:
    def test_events_sorted_by_collective_index(self):
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.RANK_LOSS, collective_index=9),
                FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=2),
            ]
        )
        assert [e.collective_index for e in plan.events] == [2, 9]
        assert len(plan) == 2

    def test_kind_subsets_and_only_transient(self):
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=1),
                FaultEvent(FaultKind.RANK_LOSS, collective_index=4),
                FaultEvent(FaultKind.STRAGGLER, collective_index=2),
            ],
            seed=11,
        )
        assert len(plan.transient_events()) == 1
        assert len(plan.permanent_events()) == 1
        stripped = plan.only_transient()
        assert stripped.permanent_events() == ()
        assert len(stripped) == 2
        assert stripped.seed == 11

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan.random(
            seed=3, world_size=4, num_collectives=20, n_transient=2,
            n_rank_loss=1, n_straggler=1,
        )
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = FaultPlan.load(path)
        assert loaded.seed == plan.seed
        assert loaded.events == plan.events

    def test_random_is_deterministic_in_seed(self):
        a = FaultPlan.random(seed=5, world_size=3, num_collectives=30)
        b = FaultPlan.random(seed=5, world_size=3, num_collectives=30)
        c = FaultPlan.random(seed=6, world_size=3, num_collectives=30)
        assert a.events == b.events
        assert a.events != c.events

    def test_random_rank_loss_lands_in_second_half(self):
        for seed in range(10):
            plan = FaultPlan.random(
                seed=seed, world_size=4, num_collectives=40,
                n_transient=0, n_rank_loss=1,
            )
            (loss,) = plan.permanent_events()
            assert 20 <= loss.collective_index < 40

    def test_random_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.random(seed=0, world_size=0, num_collectives=10)
        with pytest.raises(ValueError):
            FaultPlan.random(seed=0, world_size=2, num_collectives=0)


class TestChaosCommunicator:
    def test_empty_plan_is_a_plain_communicator(self):
        chaos = ChaosCommunicator(2, track_memory=False)
        plain = Communicator(2, track_memory=False)
        arrays = arrays_for(2)
        np.testing.assert_array_equal(
            chaos.allreduce(arrays)[0], plain.allreduce(arrays)[0]
        )
        assert chaos.collectives_issued == 1
        assert chaos.injected == []

    def test_transient_fires_retries_times_then_succeeds(self):
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=1,
                        rank=1, retries=2)]
        )
        comm = ChaosCommunicator(2, plan=plan, track_memory=False)
        arrays = arrays_for(2)
        comm.allreduce(arrays)  # collective 0: clean
        for attempt in (1, 2):
            with pytest.raises(TransientLinkError) as exc:
                comm.allreduce(arrays)
            assert exc.value.attempt == attempt
            assert exc.value.rank == 1
            # A faulted issue does not advance the collective counter.
            assert comm.collectives_issued == 1
        comm.allreduce(arrays)  # budget exhausted: goes through
        assert comm.collectives_issued == 2
        assert len(comm.injected) == 2

    def test_rank_loss_fires_once(self):
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=0, rank=1)]
        )
        comm = ChaosCommunicator(2, plan=plan, track_memory=False)
        with pytest.raises(RankFailureError) as exc:
            comm.allgather(arrays_for(2))
        assert exc.value.rank == 1
        # The permanent event fired; subsequent issues are clean.
        comm.allgather(arrays_for(2))
        assert comm.collectives_issued == 1

    def test_straggler_scales_timeline_without_raising(self):
        plan = FaultPlan(
            [FaultEvent(FaultKind.STRAGGLER, collective_index=0, rank=1,
                        slowdown=2.5)]
        )
        comm = ChaosCommunicator(2, plan=plan, track_memory=False)
        comm.allreduce(arrays_for(2))
        assert comm.timeline.compute_scale[1] == 2.5
        assert len(comm.injected) == 1
        assert comm.collectives_issued == 1

    def test_fault_fires_before_any_state_mutation(self):
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=0)]
        )
        comm = ChaosCommunicator(2, plan=plan)
        with pytest.raises(TransientLinkError):
            comm.iallreduce(arrays_for(2))
        # No scratch charged, nothing scheduled, nothing recorded.
        assert comm.pending_work == ()
        assert comm.peak_bytes_per_rank == 0
        assert len(comm.ledger.events) == 0
        assert comm.timeline.makespan == 0.0

    def test_due_events_fire_even_if_index_was_skipped(self):
        # An event keyed at index 1 is still due when the counter jumps
        # straight past it (events trigger "at or after" their index).
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=1, rank=0)]
        )
        comm = ChaosCommunicator(2, plan=plan, track_memory=False)
        comm.allreduce(arrays_for(2))
        with pytest.raises(RankFailureError):
            comm.broadcast(arrays_for(2), root=0)
        assert comm.injected[0][1] == "broadcast"

    def test_all_four_ops_are_plan_checked(self):
        arrays = arrays_for(2)
        for op_name in ("allreduce", "allgather", "broadcast",
                        "reduce_scatter"):
            plan = FaultPlan(
                [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=0)]
            )
            comm = ChaosCommunicator(2, plan=plan, track_memory=False)
            issue = getattr(comm, f"i{op_name}")
            with pytest.raises(TransientLinkError) as exc:
                issue(arrays)
            assert exc.value.op == op_name
