"""Tests for the non-blocking collective engine (WorkHandle + i*)."""

import numpy as np
import pytest

from repro.cluster import (
    Communicator,
    DeviceSpec,
    FailingCommunicator,
    RankFailureError,
    Timeline,
)

BIG_DEVICE = DeviceSpec(name="roomy", memory_bytes=10**9, peak_flops=1e12)


def arrays_for(world, shape=(8,), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(world)]


class TestHandleSemantics:
    def test_results_match_blocking(self):
        arrays = arrays_for(3)
        async_out = Communicator(3, track_memory=False).iallreduce(arrays).wait()
        blocking_out = Communicator(3, track_memory=False).allreduce(arrays)
        for a, b in zip(async_out, blocking_out):
            np.testing.assert_array_equal(a, b)

    def test_is_complete_flips_on_wait(self):
        comm = Communicator(2, track_memory=False)
        handle = comm.iallgather(arrays_for(2))
        assert not handle.is_complete()
        handle.wait()
        assert handle.is_complete()

    def test_wait_is_idempotent(self):
        comm = Communicator(2, track_memory=False)
        handle = comm.ibroadcast(arrays_for(2), root=1)
        first = handle.wait()
        assert handle.wait() is first

    def test_all_four_ops_have_async_variants(self):
        comm = Communicator(2, track_memory=False)
        arrays = arrays_for(2, (4,))
        for issue in (
            comm.iallreduce,
            comm.iallgather,
            comm.ireduce_scatter,
        ):
            assert issue(arrays).wait() is not None
        assert comm.ibroadcast(arrays, root=0).wait() is not None

    def test_pending_work_and_wait_all(self):
        comm = Communicator(2, track_memory=False)
        h1 = comm.iallreduce(arrays_for(2))
        h2 = comm.iallgather(arrays_for(2))
        assert set(comm.pending_work) == {h1, h2}
        assert comm.wait_all() == 2
        assert comm.pending_work == ()
        assert comm.wait_all() == 0


class TestScratchLifetime:
    def test_scratch_held_until_wait(self):
        comm = Communicator(2, device_spec=BIG_DEVICE)
        handle = comm.iallreduce(arrays_for(2, (100,)))
        in_use = [dev.bytes_in_use for dev in comm.devices]
        assert all(b == 800 for b in in_use)
        handle.wait()
        assert all(dev.bytes_in_use == 0 for dev in comm.devices)

    def test_in_flight_scratch_sums_pending(self):
        comm = Communicator(2, device_spec=BIG_DEVICE)
        h1 = comm.iallreduce(arrays_for(2, (100,)))  # 800 B recv scratch
        h2 = comm.iallgather(arrays_for(2, (50,)))  # 2*400 B gathered
        assert comm.in_flight_scratch_bytes == 800 + 800
        h1.wait()
        assert comm.in_flight_scratch_bytes == 800
        h2.wait()
        assert comm.in_flight_scratch_bytes == 0

    def test_in_flight_scratch_zero_without_tracking(self):
        comm = Communicator(2, track_memory=False)
        handle = comm.iallreduce(arrays_for(2))
        assert comm.in_flight_scratch_bytes == 0
        handle.wait()

    def test_overlapped_issues_stack_scratch(self):
        """Two pending collectives hold both scratch buffers at once —
        the memory cost of overlap the blocking schedule never pays."""
        blocking = Communicator(2, device_spec=BIG_DEVICE)
        blocking.allreduce(arrays_for(2, (100,)))
        blocking.allreduce(arrays_for(2, (100,)))
        overlapped = Communicator(2, device_spec=BIG_DEVICE)
        h1 = overlapped.iallreduce(arrays_for(2, (100,)))
        h2 = overlapped.iallreduce(arrays_for(2, (100,)))
        h1.wait()
        h2.wait()
        assert blocking.peak_bytes_per_rank == 800
        assert overlapped.peak_bytes_per_rank == 1600

    def test_reset_peaks_reports_in_flight_scratch(self):
        comm = Communicator(2, device_spec=BIG_DEVICE)
        handle = comm.iallreduce(arrays_for(2, (100,)))
        assert comm.reset_peaks() == 800
        # The floor after reset is the still-pending scratch.
        assert comm.peak_bytes_per_rank == 800
        handle.wait()
        assert comm.reset_peaks() == 0
        assert comm.peak_bytes_per_rank == 0


class TestTimelineIntegration:
    def test_issue_places_collective_and_wait_blocks_compute(self):
        comm = Communicator(2, track_memory=False)
        handle = comm.iallreduce(arrays_for(2))
        ticket = handle.ticket
        assert ticket.end > ticket.start
        assert comm.timeline.compute_clock == [0.0, 0.0]
        handle.wait()
        assert comm.timeline.compute_clock == [ticket.end, ticket.end]

    def test_issued_collectives_serialize_on_link(self):
        comm = Communicator(2, track_memory=False)
        h1 = comm.iallreduce(arrays_for(2))
        h2 = comm.iallreduce(arrays_for(2))
        assert h2.ticket.start == h1.ticket.end
        comm.wait_all()

    def test_comm_hides_behind_recorded_compute(self):
        comm = Communicator(2, track_memory=False)
        handle = comm.iallreduce(arrays_for(2))
        span = handle.ticket.end - handle.ticket.start
        for rank in range(2):
            comm.timeline.record_compute(rank, span * 10)
        handle.wait()
        assert comm.timeline.exposed_comm_time() == 0.0

    def test_ledger_events_carry_schedule(self):
        comm = Communicator(2, track_memory=False)
        comm.allreduce(arrays_for(2), tag="g")
        (event,) = comm.ledger.events
        assert event.has_schedule
        assert event.end_s - event.start_s == pytest.approx(event.time_s)

    def test_external_timeline_shared(self):
        tl = Timeline(2)
        comm = Communicator(2, track_memory=False, timeline=tl)
        comm.allreduce(arrays_for(2))
        assert tl.makespan > 0

    def test_timeline_world_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Communicator(2, track_memory=False, timeline=Timeline(3))


class TestFailureInjection:
    def test_failure_fires_at_issue_not_wait(self):
        comm = FailingCommunicator(
            2, track_memory=False, fail_after=1, failing_rank=0
        )
        handle = comm.iallreduce(arrays_for(2))
        with pytest.raises(RankFailureError):
            comm.iallreduce(arrays_for(2))
        # The already-issued handle still completes cleanly.
        handle.wait()

    def test_blocking_calls_still_fail(self):
        comm = FailingCommunicator(
            2, track_memory=False, fail_after=0, failing_rank=1
        )
        with pytest.raises(RankFailureError):
            comm.allgather(arrays_for(2))


class TestHandleEdgeCases:
    """Edge cases around handle lifetime and failures mid-issue."""

    def test_double_wait_does_not_double_release(self):
        comm = Communicator(2, device_spec=BIG_DEVICE)
        handle = comm.iallreduce(arrays_for(2, (100,)))
        first = handle.wait()
        clock_after_first = list(comm.timeline.compute_clock)
        second = handle.wait()
        assert second is first
        # Accounting ran exactly once: scratch stays released, the
        # compute streams are not advanced a second time.
        assert all(dev.bytes_in_use == 0 for dev in comm.devices)
        assert comm.timeline.compute_clock == clock_after_first
        assert comm.pending_work == ()

    def test_wait_all_with_already_waited_handle(self):
        comm = Communicator(2, track_memory=False)
        done = comm.iallreduce(arrays_for(2))
        still_pending = comm.iallgather(arrays_for(2))
        done.wait()
        # wait_all drains only what is actually pending.
        assert comm.wait_all() == 1
        assert still_pending.is_complete()
        assert comm.wait_all() == 0

    def test_wait_all_after_failed_issue(self):
        """A mid-issue rank failure leaves earlier handles completable."""
        comm = FailingCommunicator(
            2, device_spec=BIG_DEVICE, fail_after=1, failing_rank=0
        )
        survivor = comm.iallreduce(arrays_for(2, (100,)))
        with pytest.raises(RankFailureError):
            comm.iallgather(arrays_for(2))
        assert comm.pending_work == (survivor,)
        assert comm.wait_all() == 1
        assert survivor.is_complete()
        assert comm.pending_work == ()

    def test_failed_issue_releases_no_scratch_of_survivors(self):
        """After a failure mid-issue, the pending survivor still holds its
        scratch; draining it releases everything — verified through the
        peak-footprint accounting the recovery loop relies on."""
        comm = FailingCommunicator(
            2, device_spec=BIG_DEVICE, fail_after=1, failing_rank=1
        )
        survivor = comm.iallreduce(arrays_for(2, (100,)))
        with pytest.raises(RankFailureError):
            comm.iallreduce(arrays_for(2, (100,)))
        # Only the survivor's recv buffer is charged: the doomed
        # collective died before touching any state.
        assert comm.in_flight_scratch_bytes == 800
        assert comm.peak_bytes_per_rank == 800
        comm.wait_all()
        assert comm.in_flight_scratch_bytes == 0
        assert comm.reset_peaks() == 0
        assert comm.peak_bytes_per_rank == 0
        assert survivor.wait() is survivor.wait()
