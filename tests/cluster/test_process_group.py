"""Tests for process groups and rank partitioning."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster import Communicator
from repro.cluster.process_group import (
    ProcessGroup,
    group_of_rank,
    partition_ranks,
    sub_communicator,
)


class TestProcessGroup:
    def test_basic_properties(self):
        g = ProcessGroup(parent_world=8, ranks=(2, 3, 5))
        assert g.size == 3
        assert g.contains(3)
        assert not g.contains(4)
        assert g.local_rank(5) == 2

    def test_local_rank_of_non_member_raises(self):
        g = ProcessGroup(parent_world=8, ranks=(0, 1))
        with pytest.raises(ValueError):
            g.local_rank(7)

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            ProcessGroup(parent_world=4, ranks=(1, 1))

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError):
            ProcessGroup(parent_world=4, ranks=(4,))

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ProcessGroup(parent_world=4, ranks=())


class TestPartition:
    def test_even_split(self):
        groups = partition_ranks(8, 4)
        assert [g.size for g in groups] == [2, 2, 2, 2]
        assert groups[0].ranks == (0, 1)
        assert groups[3].ranks == (6, 7)

    def test_uneven_split_front_loaded(self):
        groups = partition_ranks(10, 3)
        assert [g.size for g in groups] == [4, 3, 3]

    def test_single_group(self):
        (g,) = partition_ranks(5, 1)
        assert g.ranks == tuple(range(5))

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError):
            partition_ranks(3, 4)

    @given(world=st.integers(1, 64), m=st.integers(1, 64))
    def test_partition_covers_all_ranks_once(self, world, m):
        if m > world:
            with pytest.raises(ValueError):
                partition_ranks(world, m)
            return
        groups = partition_ranks(world, m)
        all_ranks = [r for g in groups for r in g.ranks]
        assert sorted(all_ranks) == list(range(world))
        sizes = [g.size for g in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_group_of_rank(self):
        groups = partition_ranks(6, 2)
        assert group_of_rank(groups, 0) == 0
        assert group_of_rank(groups, 5) == 1
        with pytest.raises(ValueError):
            group_of_rank(groups, 9)


class TestSubCommunicator:
    def test_shares_parent_ledger(self):
        parent = Communicator(8, track_memory=False)
        group = partition_ranks(8, 2)[0]
        child = sub_communicator(parent, group)
        child.allreduce([np.zeros(10) for _ in range(group.size)])
        assert len(parent.ledger.events) == 1
        assert parent.ledger.events[0].world == group.size

    def test_world_mismatch_rejected(self):
        parent = Communicator(8, track_memory=False)
        group = ProcessGroup(parent_world=4, ranks=(0, 1))
        with pytest.raises(ValueError):
            sub_communicator(parent, group)
