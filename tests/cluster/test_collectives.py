"""Tests for collective semantics and cost models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.collectives import (
    allgather_arrays,
    allgather_wire_bytes,
    allreduce_arrays,
    allreduce_wire_bytes,
    broadcast_arrays,
    recursive_doubling_allreduce_time,
    reduce_scatter_arrays,
    reduce_scatter_wire_bytes,
    ring_allgather_time,
    ring_allreduce_time,
    ring_broadcast_time,
    ring_reduce_scatter_time,
)
from repro.cluster.interconnect import LinkSpec

LINK = LinkSpec(bandwidth=1e9, latency=0.0)
LINK_LAT = LinkSpec(bandwidth=1e9, latency=1e-5)


def per_rank(world, shape, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(world)]


class TestAllreduceSemantics:
    def test_sum_identical_on_all_ranks(self):
        arrays = per_rank(4, (3, 2))
        out = allreduce_arrays(arrays)
        expected = sum(arrays)
        for o in out:
            np.testing.assert_allclose(o, expected)

    def test_outputs_are_independent_buffers(self):
        arrays = per_rank(2, (2,))
        out = allreduce_arrays(arrays)
        out[0][0] = 999.0
        assert out[1][0] != 999.0

    def test_single_rank_identity(self):
        arrays = per_rank(1, (5,))
        np.testing.assert_allclose(allreduce_arrays(arrays)[0], arrays[0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allreduce_arrays([np.zeros(3), np.zeros(4)])

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allreduce_arrays([np.zeros(3, np.float32), np.zeros(3, np.float64)])

    def test_empty_world_rejected(self):
        with pytest.raises(ValueError):
            allreduce_arrays([])

    @given(
        world=st.integers(2, 6),
        data=hnp.arrays(
            np.float64, (3,), elements=st.floats(-10, 10, allow_nan=False)
        ),
    )
    def test_allreduce_of_copies_scales(self, world, data):
        out = allreduce_arrays([data.copy() for _ in range(world)])
        np.testing.assert_allclose(out[0], data * world, rtol=1e-12)


class TestAllgatherSemantics:
    def test_rank_order_concatenation(self):
        arrays = [np.full((2, 2), r, dtype=float) for r in range(3)]
        out = allgather_arrays(arrays)
        assert out[0].shape == (6, 2)
        np.testing.assert_allclose(out[0][:2], 0.0)
        np.testing.assert_allclose(out[0][4:], 2.0)

    def test_allgatherv_variable_lengths(self):
        arrays = [np.arange(n, dtype=float) for n in (1, 3, 2)]
        out = allgather_arrays(arrays)
        np.testing.assert_allclose(out[0], [0, 0, 1, 2, 0, 1])

    def test_trailing_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allgather_arrays([np.zeros((2, 3)), np.zeros((2, 4))])

    def test_scalar_rank_contributions(self):
        out = allgather_arrays([np.array(1.0), np.array(2.0)])
        np.testing.assert_allclose(out[0], [1.0, 2.0])


class TestBroadcastSemantics:
    def test_root_value_everywhere(self):
        arrays = per_rank(3, (4,))
        out = broadcast_arrays(arrays, root=1)
        for o in out:
            np.testing.assert_allclose(o, arrays[1])

    def test_bad_root_rejected(self):
        with pytest.raises(ValueError):
            broadcast_arrays(per_rank(2, (1,)), root=5)


class TestReduceScatterSemantics:
    def test_shards_partition_the_sum(self):
        arrays = per_rank(4, (8, 2))
        out = reduce_scatter_arrays(arrays)
        total = sum(arrays)
        reassembled = np.concatenate(out, axis=0)
        np.testing.assert_allclose(reassembled, total)

    def test_indivisible_leading_dim_rejected(self):
        with pytest.raises(ValueError):
            reduce_scatter_arrays(per_rank(3, (8,)))

    def test_composition_equals_allreduce(self):
        """reduce-scatter + allgather == allreduce (the ring identity)."""
        arrays = per_rank(4, (8,), seed=7)
        shards = reduce_scatter_arrays(arrays)
        gathered = allgather_arrays(shards)
        reduced = allreduce_arrays(arrays)
        np.testing.assert_allclose(gathered[0], reduced[0])


class TestWireBytes:
    def test_allreduce_single_rank_free(self):
        assert allreduce_wire_bytes(1, 1000) == 0

    def test_allreduce_approaches_2x(self):
        assert allreduce_wire_bytes(2, 1000) == 1000
        assert allreduce_wire_bytes(100, 1000) == pytest.approx(1980, abs=1)

    def test_allgather_linear_in_world(self):
        assert allgather_wire_bytes(8, 100) == 700
        assert allgather_wire_bytes(1, 100) == 0

    def test_reduce_scatter_half_of_allreduce(self):
        assert reduce_scatter_wire_bytes(4, 1000) * 2 == allreduce_wire_bytes(4, 1000)


class TestTimeModels:
    def test_allreduce_bandwidth_term(self):
        # 2 * (G-1)/G * n / beta with G=4, n=1e9, beta=1e9 -> 1.5 s
        assert ring_allreduce_time(4, 10**9, LINK) == pytest.approx(1.5)

    def test_allreduce_latency_term(self):
        t = ring_allreduce_time(4, 0, LINK_LAT)
        assert t == pytest.approx(2 * 3 * 1e-5)

    def test_single_rank_is_free(self):
        for f in (
            ring_allreduce_time,
            ring_allgather_time,
            ring_reduce_scatter_time,
            ring_broadcast_time,
            recursive_doubling_allreduce_time,
        ):
            assert f(1, 10**9, LINK) == 0.0

    def test_allgather_time_linear(self):
        assert ring_allgather_time(5, 10**9, LINK) == pytest.approx(4.0)

    def test_reduce_scatter_is_half_allreduce(self):
        rs = ring_reduce_scatter_time(8, 10**6, LINK)
        ar = ring_allreduce_time(8, 10**6, LINK)
        assert rs == pytest.approx(ar / 2)

    def test_recursive_doubling_beats_ring_for_small_messages(self):
        # Few bytes, high latency: log2(G) rounds beat 2(G-1) hops.
        link = LinkSpec(bandwidth=1e9, latency=1e-3)
        world = 64
        assert recursive_doubling_allreduce_time(
            world, 64, link
        ) < ring_allreduce_time(world, 64, link)

    def test_ring_beats_recursive_doubling_for_large_messages(self):
        link = LinkSpec(bandwidth=1e9, latency=1e-6)
        world = 64
        assert ring_allreduce_time(
            world, 10**9, link
        ) < recursive_doubling_allreduce_time(world, 10**9, link)

    @given(world=st.integers(2, 128), nbytes=st.integers(1, 10**9))
    @settings(max_examples=50)
    def test_allreduce_time_monotone_in_bytes(self, world, nbytes):
        t1 = ring_allreduce_time(world, nbytes, LINK)
        t2 = ring_allreduce_time(world, nbytes * 2, LINK)
        assert t2 >= t1
