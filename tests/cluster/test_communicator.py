"""Tests for the simulated communicator: results, cost and memory charging."""

import numpy as np
import pytest

from repro.cluster import (
    Communicator,
    DeviceOOMError,
    DeviceSpec,
    allgather_wire_bytes,
    allreduce_wire_bytes,
)

SMALL_DEVICE = DeviceSpec(name="tiny", memory_bytes=1000, peak_flops=1e12)


def arrays_for(world, shape=(4,), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(world)]


class TestResults:
    def test_allreduce_matches_functional(self):
        comm = Communicator(3, track_memory=False)
        arrays = arrays_for(3)
        out = comm.allreduce(arrays)
        np.testing.assert_allclose(out[0], sum(arrays))

    def test_allgather_matches_functional(self):
        comm = Communicator(3, track_memory=False)
        arrays = arrays_for(3, (2, 2))
        out = comm.allgather(arrays)
        np.testing.assert_allclose(out[1], np.concatenate(arrays))

    def test_broadcast_and_reduce_scatter(self):
        comm = Communicator(2, track_memory=False)
        arrays = arrays_for(2, (4,))
        np.testing.assert_allclose(comm.broadcast(arrays, root=1)[0], arrays[1])
        shards = comm.reduce_scatter(arrays)
        np.testing.assert_allclose(
            np.concatenate(shards), arrays[0] + arrays[1]
        )

    def test_wrong_rank_count_rejected(self):
        comm = Communicator(4, track_memory=False)
        with pytest.raises(ValueError):
            comm.allreduce(arrays_for(3))

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            Communicator(0)


class TestLedger:
    def test_allreduce_bytes_recorded(self):
        comm = Communicator(4, track_memory=False)
        data = [np.zeros(100, np.float32) for _ in range(4)]
        comm.allreduce(data)
        assert comm.ledger.total_wire_bytes_per_rank == allreduce_wire_bytes(4, 400)

    def test_allgather_bytes_recorded(self):
        comm = Communicator(4, track_memory=False)
        data = [np.zeros(100, np.float32) for _ in range(4)]
        comm.allgather(data)
        assert comm.ledger.total_wire_bytes_per_rank == allgather_wire_bytes(4, 400)

    def test_fp16_halves_wire_bytes(self):
        comm = Communicator(4, track_memory=False)
        b32 = comm.ledger.snapshot()
        comm.allreduce([np.zeros(100, np.float32) for _ in range(4)])
        d32 = comm.ledger.delta_since(b32)
        b16 = comm.ledger.snapshot()
        comm.allreduce([np.zeros(100, np.float16) for _ in range(4)])
        d16 = comm.ledger.delta_since(b16)
        assert d16.wire_bytes_per_rank * 2 == d32.wire_bytes_per_rank

    def test_multi_node_slower_than_single_node(self):
        """A 16-rank ring crosses Infiniband; 8 ranks stay on PCIe."""
        single = Communicator(8, track_memory=False)
        multi = Communicator(16, track_memory=False)
        payload = 10**6
        single.allreduce([np.zeros(payload, np.float32)] * 8)
        multi.allreduce([np.zeros(payload, np.float32)] * 16)
        t_single = single.ledger.total_time_s
        t_multi = multi.ledger.total_time_s
        # Per-byte throughput degrades despite similar ring volume.
        assert t_multi > t_single

    def test_barrier_is_payload_free(self):
        comm = Communicator(4, track_memory=False)
        comm.barrier()
        assert comm.ledger.total_wire_bytes_per_rank == 0
        assert comm.ledger.total_time_s > 0

    def test_tags_flow_to_events(self):
        comm = Communicator(2, track_memory=False)
        comm.allreduce(arrays_for(2), tag="embedding")
        assert comm.ledger.events[-1].tag == "embedding"


class TestMemoryCharging:
    def test_allgather_charges_full_result(self):
        comm = Communicator(4, device_spec=SMALL_DEVICE)
        data = [np.zeros(20, np.float64) for _ in range(4)]  # 160 B each
        comm.allgather(data)
        # Peak must include the 4 * 160 = 640 B gathered buffer.
        assert comm.peak_bytes_per_rank == 640

    def test_allgather_can_oom(self):
        comm = Communicator(4, device_spec=SMALL_DEVICE)
        data = [np.zeros(40, np.float64) for _ in range(4)]  # 4*320 > 1000
        with pytest.raises(DeviceOOMError):
            comm.allgather(data)

    def test_allreduce_scratch_smaller_than_allgather(self):
        """The crux of the paper: allreduce scratch stays O(message)."""
        comm_ar = Communicator(4, device_spec=SMALL_DEVICE)
        comm_ag = Communicator(4, device_spec=SMALL_DEVICE)
        data = [np.zeros(25, np.float64) for _ in range(4)]  # 200 B each
        comm_ar.allreduce([d.copy() for d in data])
        comm_ag.allgather([d.copy() for d in data])
        assert comm_ar.peak_bytes_per_rank < comm_ag.peak_bytes_per_rank

    def test_scratch_released_after_call(self):
        comm = Communicator(2, device_spec=SMALL_DEVICE)
        comm.allreduce(arrays_for(2))
        for dev in comm.devices:
            assert dev.bytes_in_use == 0

    def test_track_memory_off_skips_charging(self):
        comm = Communicator(4, device_spec=SMALL_DEVICE, track_memory=False)
        data = [np.zeros(1000, np.float64) for _ in range(4)]
        comm.allgather(data)  # would OOM if charged
        assert comm.peak_bytes_per_rank == 0

    def test_reset_peaks(self):
        comm = Communicator(2, device_spec=SMALL_DEVICE)
        comm.allreduce(arrays_for(2))
        comm.reset_peaks()
        assert comm.peak_bytes_per_rank == 0
