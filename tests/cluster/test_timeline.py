"""Tests for the per-rank two-stream timeline."""

import pytest

from repro.cluster import (
    COMM_STREAM,
    COMPUTE_STREAM,
    Timeline,
    inject_straggler,
)


class TestComputeStream:
    def test_compute_advances_one_rank_only(self):
        tl = Timeline(2)
        event = tl.record_compute(0, 1.5, name="bwd")
        assert (event.start, event.end) == (0.0, 1.5)
        assert tl.compute_clock == [1.5, 0.0]

    def test_compute_scale_stretches_durations(self):
        tl = Timeline(2)
        tl.set_compute_scale(1, 2.0)
        tl.record_compute(0, 1.0)
        tl.record_compute(1, 1.0)
        assert tl.compute_clock == [1.0, 2.0]

    def test_inject_straggler_wraps_scale(self):
        tl = inject_straggler(Timeline(3), 2, 1.5)
        tl.record_compute(2, 2.0)
        assert tl.compute_clock[2] == 3.0

    def test_inject_straggler_rejects_speedup(self):
        with pytest.raises(ValueError):
            inject_straggler(Timeline(2), 0, 0.5)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Timeline(1).record_compute(0, -1.0)

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            Timeline(2).record_compute(2, 1.0)


class TestCollectiveScheduling:
    def test_collective_starts_at_slowest_issue_point(self):
        """Rule 1: start >= max participant compute clock."""
        tl = Timeline(2)
        tl.record_compute(0, 1.0)
        tl.record_compute(1, 3.0)
        ticket = tl.schedule_collective(0.5, name="ar")
        assert ticket.start == 3.0
        assert ticket.end == 3.5

    def test_link_serializes_collectives_in_issue_order(self):
        """Rule 2: one shared ring link."""
        tl = Timeline(2)
        t1 = tl.schedule_collective(1.0)
        t2 = tl.schedule_collective(1.0)
        assert (t1.start, t1.end) == (0.0, 1.0)
        assert (t2.start, t2.end) == (1.0, 2.0)

    def test_complete_blocks_compute_until_end(self):
        """Rule 3: wait() advances the compute clock to the end."""
        tl = Timeline(2)
        ticket = tl.schedule_collective(2.0)
        tl.record_compute(0, 0.5)
        tl.complete(ticket)
        assert tl.compute_clock == [2.0, 2.0]

    def test_complete_is_idempotent_and_never_rewinds(self):
        tl = Timeline(1)
        ticket = tl.schedule_collective(1.0)
        tl.complete(ticket)
        tl.record_compute(0, 5.0)
        tl.complete(ticket)
        assert tl.compute_clock[0] == 6.0

    def test_subgroup_collective_ignores_other_ranks(self):
        tl = Timeline(3)
        tl.record_compute(2, 10.0)
        ticket = tl.schedule_collective(1.0, ranks=[0, 1])
        assert ticket.start == 0.0
        assert tl.comm_clock == [1.0, 1.0, 0.0]

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            Timeline(2).schedule_collective(1.0, ranks=[])


class TestMeasurement:
    def test_makespan_covers_both_streams(self):
        tl = Timeline(2)
        tl.record_compute(0, 1.0)
        tl.schedule_collective(5.0)
        assert tl.makespan == 6.0

    def test_mark_and_elapsed(self):
        tl = Timeline(1)
        tl.record_compute(0, 2.0)
        mark = tl.mark()
        tl.record_compute(0, 3.0)
        assert tl.elapsed_since(mark) == 3.0

    def test_busy_time_by_stream(self):
        tl = Timeline(2)
        tl.record_compute(0, 1.0)
        tl.record_compute(0, 2.0)
        tl.schedule_collective(4.0)
        assert tl.busy_time(0, COMPUTE_STREAM) == 3.0
        assert tl.busy_time(0, COMM_STREAM) == 4.0
        assert tl.busy_time(1, COMPUTE_STREAM) == 0.0

    def test_exposed_comm_time_zero_with_perfect_overlap(self):
        tl = Timeline(1)
        ticket = tl.schedule_collective(1.0)
        tl.record_compute(0, 2.0)
        tl.complete(ticket)
        assert tl.exposed_comm_time() == 0.0

    def test_exposed_comm_time_counts_unhidden_comm(self):
        tl = Timeline(1)
        tl.record_compute(0, 1.0)
        ticket = tl.schedule_collective(3.0)
        tl.complete(ticket)
        assert tl.exposed_comm_time() == pytest.approx(3.0)


class TestChromeTrace:
    def test_trace_has_per_rank_pids_and_per_stream_tids(self):
        tl = Timeline(2)
        tl.record_compute(1, 1.0, name="bwd")
        tl.schedule_collective(0.5, name="ar")
        trace = tl.to_chrome_trace()
        compute = [t for t in trace if t["cat"] == COMPUTE_STREAM]
        comm = [t for t in trace if t["cat"] == COMM_STREAM]
        assert len(compute) == 1 and compute[0]["pid"] == 1
        assert compute[0]["tid"] == 0
        assert {t["pid"] for t in comm} == {0, 1}
        assert all(t["tid"] == 1 for t in comm)

    def test_trace_durations_microseconds(self):
        tl = Timeline(1)
        tl.record_compute(0, 0.002)
        (entry,) = tl.to_chrome_trace()
        assert entry["dur"] == pytest.approx(2000.0)
