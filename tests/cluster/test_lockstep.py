"""Tests for the dynamic SPMD lockstep verifier.

The headline invariants:

* a hand-built mismatched-collective scenario — the silent-deadlock case
  on a real cluster — raises :class:`CollectiveMismatchError` naming the
  diverging rank and both call sites;
* a buffer mutated between ``i*`` issue and ``wait()`` raises
  :class:`InFlightMutationError` (the runtime twin of lint REPRO012);
* a rank evicted by the recovery loop is a *missing participant*, never
  a divergence — chaos-plan rank loss at a barrier surfaces as
  :class:`RankFailureError` plus an eviction report, not a hang;
* attaching the verifier is a **bit-exact no-op** on a clean run: same
  weights, same ledger, same timeline as the unverified twin.
"""

import numpy as np
import pytest

from repro.analysis import (
    CollectiveMismatchError,
    InFlightMutationError,
    Sanitizer,
)
from repro.cluster import (
    ChaosCommunicator,
    Communicator,
    FaultEvent,
    FaultKind,
    FaultPlan,
    LockstepVerifier,
    RankFailureError,
    TransientLinkError,
)
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    ResilientRunner,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 60
WORD_MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
WORD_CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def word_factory(cfg, comm):
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_MODEL, rng),
        lambda params, lr: SGD(params, lr),
        WORD_CORPUS.train, WORD_CORPUS.valid, cfg, comm=comm,
    )


def word_config(world):
    return TrainConfig(world_size=world, batch=BatchSpec(2, 6), base_lr=0.2)


def final_weights(trainer):
    return {
        name: param.data.copy()
        for name, param in trainer.replicas[0].named_parameters()
    }


def arrays_for(world, shape=(8,), seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(shape) for _ in range(world)]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            LockstepVerifier(0)
        with pytest.raises(ValueError, match="hash_mode"):
            LockstepVerifier(2, hash_mode="crc")
        with pytest.raises(ValueError):
            LockstepVerifier(2, sample_bytes=0)
        with pytest.raises(ValueError):
            LockstepVerifier(2).record(5, "allreduce")
        with pytest.raises(ValueError):
            LockstepVerifier(2).mark_failed(-1)

    def test_attach_installs_observer(self):
        comm = Communicator(3, track_memory=False)
        verifier = LockstepVerifier.attach(comm, hash_mode="full")
        assert comm.verifier is verifier
        assert verifier.world_size == 3
        assert verifier.hash_mode == "full"


class TestHandBuiltDivergence:
    def test_mismatched_ops_name_rank_and_call_sites(self):
        # The classic silent deadlock: rank 2 issues a different
        # collective than everyone else at the same program point.
        verifier = LockstepVerifier(4)
        for rank in range(4):
            verifier.record(rank, "allreduce", tag="grads/dense")
        for rank in range(4):
            op = "allgather" if rank == 2 else "allreduce"
            verifier.record(rank, op, tag="grads/embed")
        with pytest.raises(CollectiveMismatchError) as exc:
            verifier.check("step boundary")
        msg = str(exc.value)
        assert "rank 2 diverges from rank 0" in msg
        assert "collective #1" in msg
        assert "allgather" in msg and "allreduce" in msg
        assert "grads/embed" in msg  # both call sites are named
        assert "deadlock" in msg

    def test_mismatched_tag_is_a_divergence(self):
        verifier = LockstepVerifier(2)
        verifier.record(0, "allreduce", tag="left")
        verifier.record(1, "allreduce", tag="right")
        with pytest.raises(CollectiveMismatchError, match="'left'"):
            verifier.check()

    def test_laggard_rank_reported_as_count_mismatch(self):
        verifier = LockstepVerifier(3)
        for rank in range(3):
            verifier.record(rank, "allreduce", tag="t0")
        verifier.record(0, "barrier")
        verifier.record(1, "barrier")
        with pytest.raises(CollectiveMismatchError) as exc:
            verifier.check("wait_all")
        msg = str(exc.value)
        assert "[2]" in msg and "stopped after 1 collective(s)" in msg
        assert "block forever" in msg

    def test_matching_streams_verify_incrementally(self):
        verifier = LockstepVerifier(2)
        for rank in range(2):
            verifier.record(rank, "allreduce", tag="a", shape=(4,),
                            dtype="float64")
        report = verifier.check("mid")
        assert report.verified == 1
        for rank in range(2):
            verifier.record(rank, "barrier")
        report = verifier.check("end")
        assert report.verified == 2
        assert report.counts == (2, 2)
        assert "verified 2 collective(s)" in report.describe()


class TestCommunicatorHooks:
    def test_blocking_and_async_collectives_are_fingerprinted(self):
        comm = Communicator(2, track_memory=False)
        verifier = LockstepVerifier.attach(comm)
        comm.allreduce(arrays_for(2))
        handle = comm.iallgather(arrays_for(2, seed=1))
        handle.wait()
        comm.barrier(tag="epoch")
        assert verifier.collectives_observed == 2
        report = verifier.check("end")
        # 2 collectives + 1 barrier fingerprint per rank, all verified.
        assert report.counts == (3, 3)
        assert report.verified == 3

    def test_barrier_cross_checks_streams(self):
        comm = Communicator(2, track_memory=False)
        verifier = LockstepVerifier.attach(comm)
        comm.allreduce(arrays_for(2))
        # Simulate rank 1 skipping a collective rank 0 issued.
        verifier.record(0, "allreduce", tag="divergent")
        with pytest.raises(CollectiveMismatchError):
            comm.barrier()

    def test_mismatched_signature_raises_at_issue(self):
        # The functional collectives pre-validate allreduce shapes, so
        # exercise the verifier's own backstop directly — it is what a
        # comm implementation without that courtesy would rely on.
        class Handle:
            op, tag = "allreduce", "grads/dense"

        verifier = LockstepVerifier(2)
        rng = np.random.default_rng(0)
        ragged = [rng.standard_normal((4,)), rng.standard_normal((5,))]
        with pytest.raises(CollectiveMismatchError, match="REPRO011"):
            verifier.observe_issue(Handle(), ragged)

    def test_mismatched_dtype_raises_for_any_op(self):
        # Ragged leading shapes are fine for a gather, mixed dtypes never
        # are — the dtype leg of the backstop applies to every op.
        class Handle:
            op, tag = "allgather", "vocab/unique"

        verifier = LockstepVerifier(2)
        arrays = [np.ones(4, dtype=np.float64), np.ones(4, dtype=np.float32)]
        with pytest.raises(CollectiveMismatchError, match="dtype"):
            verifier.observe_issue(Handle(), arrays)


class TestInFlightMutation:
    def test_write_between_issue_and_wait_raises(self):
        comm = Communicator(2, track_memory=False)
        LockstepVerifier.attach(comm, hash_mode="full")
        arrays = arrays_for(2)
        handle = comm.iallreduce(arrays)
        arrays[0][1] = 99.0  # spmd-ok: deliberate race to prove detection
        with pytest.raises(InFlightMutationError) as exc:
            handle.wait()
        msg = str(exc.value)
        assert "rank 0" in msg and "mutated between issue and wait" in msg
        assert "REPRO012" in msg

    def test_clean_wait_passes_and_clears_inflight(self):
        comm = Communicator(2, track_memory=False)
        verifier = LockstepVerifier.attach(comm, hash_mode="full")
        handle = comm.iallreduce(arrays_for(2))
        handle.wait()
        assert verifier._inflight == {}
        handle.wait()  # idempotent: second wait never re-checks

    def test_sample_mode_hashes_head_and_tail(self):
        comm = Communicator(2, track_memory=False)
        LockstepVerifier.attach(comm, hash_mode="sample", sample_bytes=16)
        arrays = arrays_for(2, shape=(512,))
        handle = comm.iallreduce(arrays)
        arrays[1][-1] = 123.0  # spmd-ok: tail write inside the sample window
        with pytest.raises(InFlightMutationError, match="rank 1"):
            handle.wait()

    def test_hash_off_disables_the_race_check(self):
        comm = Communicator(2, track_memory=False)
        LockstepVerifier.attach(comm, hash_mode="off")
        arrays = arrays_for(2)
        handle = comm.iallreduce(arrays)
        arrays[0][0] = 7.0  # spmd-ok: unchecked by design with hashing off
        handle.wait()  # fingerprints only: mutation goes unchecked


class TestEviction:
    def test_dead_rank_is_missing_participant_not_divergence(self):
        verifier = LockstepVerifier(3)
        for rank in range(3):
            verifier.record(rank, "allreduce", tag="t0")
        verifier.mark_failed(2, "rank loss (elastic world shrink)")
        # Survivors continue issuing; the dead rank's silence is fine.
        verifier.record(0, "allreduce", tag="t1")
        verifier.record(1, "allreduce", tag="t1")
        report = verifier.check("post-eviction")
        assert verifier.live_ranks == (0, 1)
        assert report.evicted == ((2, "rank loss (elastic world shrink)"),)
        text = report.describe()
        assert "rank 2: missing participant" in text
        assert "elastic world shrink" in text

    def test_barrier_under_chaos_evicts_instead_of_hanging(self):
        # Satellite: a rank killed by the fault plan between issue and
        # barrier must surface as an eviction error at the barrier —
        # never as a silent hang waiting for the dead participant.
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=2, rank=1)]
        )
        comm = ChaosCommunicator(3, plan=plan, track_memory=False)
        verifier = LockstepVerifier.attach(comm)
        comm.allreduce(arrays_for(3))
        comm.allreduce(arrays_for(3, seed=1))
        with pytest.raises(RankFailureError) as exc:
            comm.barrier(tag="sync")
        assert exc.value.rank == 1
        verifier.mark_failed(exc.value.rank, str(exc.value))
        report = verifier.check("post-failure")
        assert verifier.collectives_observed == 2
        assert report.evicted[0][0] == 1
        assert "rank 1: missing participant" in report.describe()

    def test_barrier_is_plan_checked_but_does_not_advance_indices(self):
        # Barriers consult the plan (so due faults fire there instead of
        # hanging) but must not advance the collective counter, or every
        # pre-existing plan's collective_index targeting would shift.
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=1)]
        )
        comm = ChaosCommunicator(2, plan=plan, track_memory=False)
        comm.allreduce(arrays_for(2))
        assert comm.collectives_issued == 1
        with pytest.raises(TransientLinkError):
            comm.barrier()  # the due event fires here, not silently later
        assert comm.collectives_issued == 1  # counter frozen by the barrier
        comm.barrier()  # retry budget exhausted: goes through
        comm.allreduce(arrays_for(2, seed=1))
        assert comm.collectives_issued == 2


class TestDifferentialNoOp:
    def test_verified_run_is_bit_exact_with_unverified(self, tmp_path):
        # The acceptance gate: attaching the verifier to the chaos suite
        # changes nothing — weights, ledger bytes, and simulated time
        # are all identical, only the lockstep bookkeeping differs.
        plan_events = [
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=4, rank=1),
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=11,
                       rank=0, retries=2),
        ]
        results = []
        for verify in (False, True):
            comm = ChaosCommunicator(
                2, plan=FaultPlan(list(plan_events)), track_memory=False
            )
            if verify:
                LockstepVerifier.attach(comm)
            runner = ResilientRunner(
                word_factory, word_config(2), tmp_path / f"c{verify}.npz",
                comm=comm, checkpoint_every=3,
            )
            trainer = runner.run(6)
            results.append(
                (final_weights(trainer),
                 trainer.comm.ledger.total_wire_bytes_per_rank,
                 trainer.comm.timeline.makespan)
            )
        (w0, bytes0, time0), (w1, bytes1, time1) = results
        assert w0.keys() == w1.keys()
        for name in w0:
            np.testing.assert_array_equal(w0[name], w1[name])
        assert bytes0 == bytes1
        assert time0 == time1

    def test_recovery_reattaches_verifier_after_world_shrink(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=20, rank=2)]
        )
        comm = ChaosCommunicator(3, plan=plan, track_memory=False)
        LockstepVerifier.attach(comm, hash_mode="off")
        runner = ResilientRunner(
            word_factory, word_config(3), tmp_path / "ckpt.npz",
            comm=comm, checkpoint_every=3,
        )
        trainer = runner.run(6)
        assert trainer.config.world_size == 2
        assert len(runner.verifiers) == 2
        old, new = runner.verifiers
        assert old.collectives_observed > 0
        assert (2, "rank loss (elastic world shrink)") in (
            tuple(sorted(old._evicted.items()))
        )
        assert new is not None and new is trainer.comm.verifier
        assert new.hash_mode == "off"  # settings carry across generations
        assert new.world_size == 2
        new.check("end of run")


class TestSanitizerIntegration:
    def test_lockstep_flag_attaches_and_checks_at_finish(self):
        comm = Sanitizer(Communicator(2, track_memory=False), lockstep=True)
        assert comm.verifier is comm.lockstep
        comm.allreduce(arrays_for(2))
        comm.finish()
        assert comm.lockstep.collectives_observed == 1

    def test_existing_verifier_is_adopted(self):
        inner = Communicator(2, track_memory=False)
        verifier = LockstepVerifier(2, hash_mode="full")
        comm = Sanitizer(inner, lockstep=verifier)
        assert inner.verifier is verifier
        assert comm.lockstep is verifier
