"""Tests for chrome-trace export of the cost ledger.

The ledger exporter emits one ``X`` block per participating rank at
``pid = pid_base + rank`` (matching the Timeline's one-pid-per-rank
convention), preceded by ``process_name``/``thread_name`` metadata
events — the regression target of the old everything-on-pid-0 collapse.
"""

import json

import numpy as np

from repro.cluster import Communicator
from repro.cluster.tracing import CostLedger


def _x_events(trace):
    return [e for e in trace if e["ph"] == "X"]


def _meta_events(trace):
    return [e for e in trace if e["ph"] == "M"]


class TestChromeTrace:
    def test_event_fields(self):
        ledger = CostLedger()
        with ledger.scope("sync"):
            ledger.record("allreduce", 4, 100, 0.5, tag="lstm")
        trace = ledger.to_chrome_trace()
        events = _x_events(trace)
        # One block per participating rank, not one collapsed block.
        assert len(events) == 4
        assert {e["pid"] for e in events} == {0, 1, 2, 3}
        for event in events:
            assert event["name"] == "allreduce [lstm]"
            assert event["cat"] == "sync"
            assert event["ph"] == "X"
            assert event["dur"] == 0.5e6
            assert event["args"]["wire_bytes_per_rank"] == 100
            assert event["args"]["world"] == 4
            assert event["args"]["rank"] == event["pid"]

    def test_metadata_names_every_rank_track(self):
        ledger = CostLedger()
        ledger.record("allreduce", 2, 10, 0.1)
        trace = ledger.to_chrome_trace()
        meta = _meta_events(trace)
        names = {(m["name"], m["pid"]) for m in meta}
        assert ("process_name", 0) in names
        assert ("process_name", 1) in names
        assert ("thread_name", 0) in names
        process_names = {
            m["args"]["name"] for m in meta if m["name"] == "process_name"
        }
        assert process_names == {"rank 0", "rank 1"}

    def test_metadata_opt_out(self):
        ledger = CostLedger()
        ledger.record("allreduce", 2, 10, 0.1)
        trace = ledger.to_chrome_trace(metadata=False)
        assert _meta_events(trace) == []
        assert len(trace) == 2

    def test_events_laid_end_to_end(self):
        ledger = CostLedger()
        ledger.record("a", 1, 0, 1.0)
        ledger.record("b", 1, 0, 2.0)
        trace = _x_events(ledger.to_chrome_trace())
        assert trace[0]["ts"] == 0.0
        assert trace[1]["ts"] == 1.0e6

    def test_fallback_clock_is_per_rank(self):
        """Unscheduled events tick each rank's own clock, not a shared one."""
        ledger = CostLedger()
        ledger.record("a", 2, 0, 1.0)
        ledger.record("b", 2, 0, 2.0)
        trace = _x_events(ledger.to_chrome_trace(metadata=False))
        by_pid = {}
        for e in trace:
            by_pid.setdefault(e["pid"], []).append(e)
        for pid, events in by_pid.items():
            assert [e["ts"] for e in events] == [0.0, 1.0e6]

    def test_fallback_clock_skips_past_scheduled_events(self):
        """An unscheduled event never overlaps an earlier scheduled one."""
        ledger = CostLedger()
        ledger.record("sched", 1, 0, 1.0, start_s=0.0, end_s=1.0)
        ledger.record("manual", 1, 0, 0.5)
        sched, manual = _x_events(ledger.to_chrome_trace(metadata=False))
        assert manual["ts"] >= sched["ts"] + sched["dur"]

    def test_pid_base_tid_and_offset(self):
        ledger = CostLedger()
        ledger.record("a", 2, 0, 1.0, start_s=0.0, end_s=1.0)
        trace = _x_events(
            ledger.to_chrome_trace(
                pid_base=10, tid=2, time_offset_s=3.0, metadata=False
            )
        )
        assert {e["pid"] for e in trace} == {10, 11}
        assert all(e["tid"] == 2 for e in trace)
        assert all(e["ts"] == 3.0e6 for e in trace)

    def test_generation_stamped_into_args(self):
        ledger = CostLedger()
        ledger.record("a", 1, 0, 1.0)
        trace = ledger.to_chrome_trace(generation=3)
        assert all(e["args"]["generation"] == 3 for e in trace)
        (process_meta,) = [
            e for e in _meta_events(trace) if e["name"] == "process_name"
        ]
        assert process_meta["args"]["name"] == "gen3 rank 0"

    def test_empty_ledger(self):
        assert CostLedger().to_chrome_trace() == []

    def test_write_valid_json(self, tmp_path):
        comm = Communicator(4, track_memory=False)
        comm.allreduce([np.ones(8) for _ in range(4)], tag="grads")
        comm.allgather([np.ones(4) for _ in range(4)])
        path = tmp_path / "trace.json"
        comm.ledger.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        events = _x_events(loaded)
        # 2 collectives x 4 ranks, plus 2 metadata events per rank.
        assert len(events) == 8
        assert len(_meta_events(loaded)) == 8
        assert all(e["name"].startswith(("allreduce", "allgather"))
                   for e in events)

    def test_training_run_produces_trace(self):
        """A real training step's ledger exports cleanly."""
        from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
        from repro.optim import SGD
        from repro.train import (
            DistributedTrainer,
            TrainConfig,
            WordLanguageModel,
            WordLMConfig,
        )

        corpus = make_corpus(ONE_BILLION_WORD.scaled(50), 5000, seed=0)
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 6), base_lr=0.2)
        model_cfg = WordLMConfig(
            vocab_size=50, embedding_dim=6, hidden_dim=8, projection_dim=6,
            num_samples=8,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train, corpus.valid, cfg,
        )
        trainer.train_step()
        trace = _x_events(trainer.comm.ledger.to_chrome_trace())
        assert len(trace) > 3  # dense allreduces + embedding exchanges
        assert {e["pid"] for e in trace} == {0, 1}
        cats = {e["cat"] for e in trace}
        assert any("embedding" in c for c in cats)
