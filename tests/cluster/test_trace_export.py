"""Tests for chrome-trace export of the cost ledger."""

import json

import numpy as np

from repro.cluster import Communicator
from repro.cluster.tracing import CostLedger


class TestChromeTrace:
    def test_event_fields(self):
        ledger = CostLedger()
        with ledger.scope("sync"):
            ledger.record("allreduce", 4, 100, 0.5, tag="lstm")
        (event,) = ledger.to_chrome_trace()
        assert event["name"] == "allreduce [lstm]"
        assert event["cat"] == "sync"
        assert event["ph"] == "X"
        assert event["dur"] == 0.5e6
        assert event["args"]["wire_bytes_per_rank"] == 100
        assert event["args"]["world"] == 4

    def test_events_laid_end_to_end(self):
        ledger = CostLedger()
        ledger.record("a", 1, 0, 1.0)
        ledger.record("b", 1, 0, 2.0)
        trace = ledger.to_chrome_trace()
        assert trace[0]["ts"] == 0.0
        assert trace[1]["ts"] == 1.0e6

    def test_empty_ledger(self):
        assert CostLedger().to_chrome_trace() == []

    def test_write_valid_json(self, tmp_path):
        comm = Communicator(4, track_memory=False)
        comm.allreduce([np.ones(8) for _ in range(4)], tag="grads")
        comm.allgather([np.ones(4) for _ in range(4)])
        path = tmp_path / "trace.json"
        comm.ledger.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert len(loaded) == 2
        assert loaded[0]["name"].startswith("allreduce")

    def test_training_run_produces_trace(self):
        """A real training step's ledger exports cleanly."""
        from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
        from repro.optim import SGD
        from repro.train import (
            DistributedTrainer,
            TrainConfig,
            WordLanguageModel,
            WordLMConfig,
        )

        corpus = make_corpus(ONE_BILLION_WORD.scaled(50), 5000, seed=0)
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 6), base_lr=0.2)
        model_cfg = WordLMConfig(
            vocab_size=50, embedding_dim=6, hidden_dim=8, projection_dim=6,
            num_samples=8,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train, corpus.valid, cfg,
        )
        trainer.train_step()
        trace = trainer.comm.ledger.to_chrome_trace()
        assert len(trace) > 3  # dense allreduces + embedding exchanges
        cats = {e["cat"] for e in trace}
        assert any("embedding" in c for c in cats)
