"""Tests for the device mesh and its per-axis subgroup collectives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sanitizer import CollectiveMismatchError
from repro.cluster import (
    ChaosCommunicator,
    Communicator,
    DeviceMesh,
    FaultEvent,
    FaultKind,
    FaultPlan,
    HYBRID_AXES,
    LockstepVerifier,
    MeshCommunicator,
    TransientLinkError,
    hybrid_mesh,
    parse_mesh_spec,
)
from repro.cluster.interconnect import Interconnect


def comm(world, **kw):
    kw.setdefault("track_memory", False)
    return Communicator(world, **kw)


def mesh_comm(spec, world, **kw):
    return MeshCommunicator(comm(world, **kw), hybrid_mesh(spec, world))


class TestDeviceMesh:
    def test_last_axis_varies_fastest(self):
        m = DeviceMesh(("pipe", "tensor", "data"), (2, 2, 2))
        assert m.coords(0) == (0, 0, 0)
        assert m.coords(1) == (0, 0, 1)
        assert m.coords(2) == (0, 1, 0)
        assert m.coords(7) == (1, 1, 1)

    def test_coords_rank_roundtrip(self):
        m = DeviceMesh(("a", "b", "c"), (3, 2, 4))
        for rank in range(m.size):
            assert m.rank_at(m.coords(rank)) == rank

    def test_shape_accessors(self):
        m = DeviceMesh(("pipe", "data"), (2, 3))
        assert m.size == 6
        assert m.ndim == 2
        assert m.axis_size("data") == 3
        assert m.axis_index("pipe") == 0
        assert m.describe() == "pipe=2,data=3"

    def test_unknown_axis_rejected(self):
        m = DeviceMesh(("data",), (4,))
        with pytest.raises(ValueError, match="unknown mesh axis"):
            m.axis_size("tensor")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one axis"):
            DeviceMesh((), ())
        with pytest.raises(ValueError, match="duplicate"):
            DeviceMesh(("a", "a"), (2, 2))
        with pytest.raises(ValueError, match="positive"):
            DeviceMesh(("a",), (0,))
        with pytest.raises(ValueError):
            DeviceMesh(("a", "b"), (2,))

    def test_rank_bounds_checked(self):
        m = DeviceMesh(("a",), (4,))
        with pytest.raises(ValueError):
            m.coords(4)
        with pytest.raises(ValueError):
            m.rank_at((4,))
        with pytest.raises(ValueError):
            m.rank_at((0, 0))

    @given(
        p=st.integers(1, 3),
        t=st.integers(1, 3),
        d=st.integers(1, 3),
        axis=st.sampled_from(HYBRID_AXES),
    )
    @settings(max_examples=40, deadline=None)
    def test_groups_partition_ranks_exactly(self, p, t, d, axis):
        m = DeviceMesh(HYBRID_AXES, (p, t, d))
        groups = m.groups(axis)
        assert len(groups) == m.size // m.axis_size(axis)
        seen = [r for g in groups for r in g.ranks]
        assert sorted(seen) == list(range(m.size))
        for g in groups:
            assert g.size == m.axis_size(axis)

    @given(
        p=st.integers(1, 3),
        t=st.integers(1, 3),
        d=st.integers(1, 3),
        axis=st.sampled_from(HYBRID_AXES),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_members_agree_on_other_coords(self, p, t, d, axis):
        m = DeviceMesh(HYBRID_AXES, (p, t, d))
        i = m.axis_index(axis)
        for g in m.groups(axis):
            others = {
                tuple(c for j, c in enumerate(m.coords(r)) if j != i)
                for r in g.ranks
            }
            assert len(others) == 1
            assert [m.coords(r)[i] for r in g.ranks] == list(range(g.size))

    def test_group_of_contains_rank(self):
        m = DeviceMesh(HYBRID_AXES, (2, 2, 2))
        for rank in range(m.size):
            assert m.group_of("tensor", rank).contains(rank)

    def test_axis_link_intra_vs_inter_node(self):
        fabric = Interconnect(gpus_per_node=4)
        m = DeviceMesh(("node", "local"), (2, 4))
        assert m.axis_link("local", fabric) is fabric.intra_node
        assert m.axis_link("node", fabric) is fabric.inter_node


class TestSpecParsing:
    def test_literal_and_g_forms(self):
        m = parse_mesh_spec("pipe=2,tensor=2,data=G/4", 16)
        assert m.axis_sizes == (2, 2, 4)
        assert parse_mesh_spec("data=G", 8).axis_sizes == (8,)

    def test_inference(self):
        m = parse_mesh_spec("pipe=2,data=", 8)
        assert m.axis_sizes == (2, 4)

    @pytest.mark.parametrize(
        "spec, match",
        [
            ("", "empty mesh spec"),
            ("pipe", "expected '<name>=<size>'"),
            ("=4", "empty axis name"),
            ("a=2,a=2", "duplicate mesh axis"),
            ("a=0", "must be positive"),
            ("a=G/0", "G/<positive int>"),
            ("a=G/3", "does not divide"),
            ("a=x", "must be an integer"),
            ("a=,b=", "at most one"),
            ("a=3,b=", "does not divide world size"),
            ("a=3", "axis sizes must multiply"),
        ],
    )
    def test_parse_errors(self, spec, match):
        with pytest.raises(ValueError, match=match):
            parse_mesh_spec(spec, 8)

    def test_hybrid_fills_omitted_axes(self):
        m = hybrid_mesh("data=G", 8)
        assert m.axis_names == HYBRID_AXES
        assert m.axis_sizes == (1, 1, 8)

    def test_hybrid_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown training-mesh axis"):
            hybrid_mesh("node=2,local=4", 8)

    def test_hybrid_rejects_partial_cover(self):
        with pytest.raises(ValueError, match="must multiply"):
            hybrid_mesh("pipe=2,tensor=2", 16)

    def test_from_spec_alias(self):
        assert DeviceMesh.from_spec("a=4", 4) == parse_mesh_spec("a=4", 4)


class TestMeshCollectives:
    def test_world_size_must_match(self):
        with pytest.raises(ValueError, match="world"):
            MeshCommunicator(comm(4), hybrid_mesh("data=G", 8))

    def test_allreduce_sums_per_subgroup(self):
        mc = mesh_comm("pipe=2,tensor=2,data=2", 8)
        rng = np.random.default_rng(0)
        arrays = [rng.standard_normal((3, 2)) for _ in range(8)]
        out = mc.allreduce("data", arrays)
        for g in mc.mesh.groups("data"):
            expected = sum(arrays[r] for r in g.ranks)
            for r in g.ranks:
                np.testing.assert_array_equal(out[r], expected)

    def test_allgather_concatenates_in_member_order(self):
        mc = mesh_comm("pipe=1,tensor=2,data=2", 4)
        arrays = [np.full(r + 1, float(r)) for r in range(4)]
        out = mc.allgather("tensor", arrays)
        for g in mc.mesh.groups("tensor"):
            expected = np.concatenate([arrays[r] for r in g.ranks])
            for r in g.ranks:
                np.testing.assert_array_equal(out[r], expected)

    def test_broadcast_from_subgroup_root(self):
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        arrays = [np.full(3, float(r)) for r in range(4)]
        out = mc.broadcast("pipe", arrays, root=1)
        for g in mc.mesh.groups("pipe"):
            src = arrays[g.ranks[1]]
            for r in g.ranks:
                np.testing.assert_array_equal(out[r], src)

    def test_reduce_scatter_splits_the_sum(self):
        mc = mesh_comm("data=G", 4)
        arrays = [np.arange(8.0) + r for r in range(4)]
        out = mc.reduce_scatter("data", arrays)
        total = sum(arrays)
        np.testing.assert_array_equal(
            np.concatenate([out[r] for r in range(4)]), total
        )

    def test_trivial_axis_is_identity(self):
        mc = mesh_comm("pipe=1,tensor=1,data=G", 4)
        arrays = [np.full(2, float(r)) for r in range(4)]
        out = mc.allreduce("tensor", arrays)
        for r in range(4):
            np.testing.assert_array_equal(out[r], arrays[r])

    def test_single_ledger_event_per_collective(self):
        mc = mesh_comm("pipe=2,tensor=2,data=2", 8)
        before = len(mc.comm.ledger.events)
        mc.allreduce("data", [np.ones(4)] * 8, tag="g")
        events = mc.comm.ledger.events[before:]
        assert len(events) == 1
        assert events[0].op == "mesh_allreduce"
        assert events[0].tag == "data:g"

    def test_rank_count_checked(self):
        mc = mesh_comm("data=G", 4)
        with pytest.raises(ValueError, match="per-rank arrays"):
            mc.allreduce("data", [np.ones(2)] * 3)

    def test_transfer_charges_ledger(self):
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        mc.transfer("pipe", 1024, tag="act")
        ev = mc.comm.ledger.events[-1]
        assert ev.op == "mesh_transfer"
        assert ev.wire_bytes_per_rank == 1024
        assert ev.tag == "pipe:act"
        with pytest.raises(ValueError, match=">= 0"):
            mc.transfer("pipe", -1)

    @given(
        p=st.integers(1, 2),
        t=st.integers(1, 2),
        d=st.integers(1, 3),
        seed=st.integers(0, 20),
        axis=st.sampled_from(HYBRID_AXES),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_subgroup_sums(self, p, t, d, seed, axis):
        world = p * t * d
        mc = MeshCommunicator(
            comm(world), DeviceMesh(HYBRID_AXES, (p, t, d))
        )
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal(5) for _ in range(world)]
        out = mc.allreduce(axis, arrays)
        for g in mc.mesh.groups(axis):
            expected = sum(arrays[r] for r in g.ranks)
            for r in g.ranks:
                np.testing.assert_allclose(out[r], expected, rtol=1e-12)


class TestAxisVerifiers:
    def test_uniform_subgroups_verify_clean(self):
        mc = mesh_comm("pipe=2,tensor=2,data=2", 8)
        mc.attach_axis_verifiers()
        mc.allreduce("data", [np.ones(4)] * 8, tag="g")
        mc.allreduce("tensor", [np.ones(2)] * 8, tag="h")
        counts = mc.check_axes("test")
        assert counts["data"] == 1
        assert counts["tensor"] == 1
        assert counts["pipe"] == 0

    def test_member_count_divergence_detected(self):
        mc = mesh_comm("pipe=1,tensor=1,data=G", 4)
        mc.attach_axis_verifiers()
        mc.allreduce("data", [np.ones(2)] * 4, tag="g")
        # Simulate a shard that issued one extra data-axis collective:
        # member 2 of the single data subgroup records a fingerprint its
        # peers never issue — on a real cluster they block forever.
        mc.axis_verifiers["data"][0].record(
            2, "mesh_allreduce", "extra", (2,), "float64"
        )
        with pytest.raises(CollectiveMismatchError, match="block forever"):
            mc.check_axes("test")

    def test_subgroup_shapes_may_differ_across_groups(self):
        # Each model-parallel shard carries its own envelope: subgroup 0
        # reduces (2, 2) while subgroup 1 reduces (3,), and both rings
        # (plus the payload-blind global stream) stay clean.
        mc = mesh_comm("pipe=2,tensor=1,data=2", 4)
        mc.attach_axis_verifiers()
        groups = mc.mesh.groups("data")
        arrays: list[np.ndarray] = [None] * 4
        for r in groups[0].ranks:
            arrays[r] = np.ones((2, 2))
        for r in groups[1].ranks:
            arrays[r] = np.ones(3)
        mc.allreduce("data", arrays, tag="g")
        assert mc.check_axes("test")["data"] == 1

    def test_ragged_allgather_is_legal(self):
        # allgatherv: member contributions may differ in length (the
        # counts travel first on a real cluster) — must NOT diverge.
        mc = mesh_comm("pipe=1,tensor=1,data=G", 4)
        mc.attach_axis_verifiers()
        arrays = [np.arange(r + 1) for r in range(4)]
        mc.allgather("data", arrays, tag="idx")
        assert mc.check_axes("test")["data"] == 1

    def test_global_verifier_composes_with_mesh_ops(self):
        c = comm(8)
        flat = LockstepVerifier.attach(c)
        mc = MeshCommunicator(c, hybrid_mesh("pipe=2,tensor=2,data=2", 8))
        mc.allreduce("data", [np.ones((2, 3)) for _ in range(8)])
        mc.allgather("tensor", [np.arange(r + 1) for r in range(8)])
        report = flat.check("test")
        assert report.verified == 2


class TestFaultComposition:
    def test_transient_link_fault_fires_on_mesh_op(self):
        plan = FaultPlan(
            [
                FaultEvent(
                    FaultKind.TRANSIENT_LINK,
                    collective_index=0,
                    rank=1,
                    retries=1,
                )
            ],
            seed=0,
        )
        c = ChaosCommunicator(4, plan=plan, track_memory=False)
        mc = MeshCommunicator(c, hybrid_mesh("data=G", 4))
        with pytest.raises(TransientLinkError):
            mc.allreduce("data", [np.ones(2)] * 4)

    def test_clean_plan_leaves_numerics_alone(self):
        c = ChaosCommunicator(4, plan=FaultPlan([]), track_memory=False)
        mc = MeshCommunicator(c, hybrid_mesh("data=G", 4))
        out = mc.allreduce("data", [np.ones(2)] * 4)
        np.testing.assert_array_equal(out[0], np.full(2, 4.0))
