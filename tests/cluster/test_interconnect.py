"""Tests for the two-tier interconnect model."""

import pytest

from repro.cluster.interconnect import (
    INFINIBAND_FDR,
    PAPER_CLUSTER_FABRIC,
    PCIE_GEN3,
    Interconnect,
    LinkSpec,
)


class TestLinkSpec:
    def test_table_ii_bandwidths_are_half_duplex(self):
        # Table II quotes bidirectional; the model stores unidirectional.
        assert PCIE_GEN3.bandwidth == pytest.approx(16e9)
        assert INFINIBAND_FDR.bandwidth == pytest.approx(7.5e9)

    def test_transfer_time_includes_latency(self):
        link = LinkSpec(bandwidth=1e9, latency=1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bytes_costs_latency_only(self):
        link = LinkSpec(bandwidth=1e9, latency=2e-6)
        assert link.transfer_time(0) == pytest.approx(2e-6)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE_GEN3.transfer_time(-1)

    @pytest.mark.parametrize("bw,lat", [(0, 0), (-1, 0), (1, -1)])
    def test_invalid_links_rejected(self, bw, lat):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=bw, latency=lat)


class TestTopology:
    def test_node_of_packs_ranks(self):
        fab = Interconnect(gpus_per_node=8)
        assert fab.node_of(0) == 0
        assert fab.node_of(7) == 0
        assert fab.node_of(8) == 1
        assert fab.node_of(23) == 2

    def test_num_nodes_ceiling(self):
        fab = Interconnect(gpus_per_node=8)
        assert fab.num_nodes(1) == 1
        assert fab.num_nodes(8) == 1
        assert fab.num_nodes(9) == 2
        assert fab.num_nodes(64) == 8
        assert fab.num_nodes(192) == 24

    def test_single_node_ring_uses_intra_link(self):
        fab = PAPER_CLUSTER_FABRIC
        assert fab.ring_link(8) is fab.intra_node
        assert not fab.spans_nodes(8)

    def test_multi_node_ring_bound_by_inter_link(self):
        fab = PAPER_CLUSTER_FABRIC
        assert fab.ring_link(16) is fab.inter_node
        assert fab.spans_nodes(16)

    def test_link_between_ranks(self):
        fab = Interconnect(gpus_per_node=4)
        assert fab.link_between(0, 3) is fab.intra_node
        assert fab.link_between(3, 4) is fab.inter_node

    def test_invalid_inputs(self):
        fab = Interconnect(gpus_per_node=4)
        with pytest.raises(ValueError):
            fab.node_of(-1)
        with pytest.raises(ValueError):
            fab.num_nodes(0)
        with pytest.raises(ValueError):
            Interconnect(gpus_per_node=0)

    def test_paper_fabric_is_8_wide(self):
        assert PAPER_CLUSTER_FABRIC.gpus_per_node == 8
