"""Semantics of the metric primitives and the registry that owns them."""

import math

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value() == 0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricError, match="< 0"):
            Counter("x_total").inc(-1)

    def test_labelled_series_are_independent(self):
        c = Counter("bytes_total", labelnames=("codec",))
        c.inc(10, codec="delta")
        c.inc(1, codec="rle")
        assert c.value(codec="delta") == 10
        assert c.value(codec="rle") == 1
        assert c.series_keys() == [("delta",), ("rle",)]

    def test_label_set_must_match_exactly(self):
        c = Counter("x_total", labelnames=("codec",))
        with pytest.raises(MetricError, match="expected labels"):
            c.inc()
        with pytest.raises(MetricError, match="expected labels"):
            c.inc(codec="delta", extra="y")

    def test_invalid_names_rejected(self):
        with pytest.raises(MetricError, match="invalid metric name"):
            Counter("0bad")
        with pytest.raises(MetricError, match="invalid metric name"):
            Counter("bad-name")
        with pytest.raises(MetricError, match="invalid label name"):
            Counter("x", labelnames=("bad-label",))
        with pytest.raises(MetricError, match="reserved"):
            Counter("x", labelnames=("le",))
        with pytest.raises(MetricError, match="duplicate"):
            Counter("x", labelnames=("a", "a"))


class TestGauge:
    def test_set_add_and_read(self):
        g = Gauge("scale")
        g.set(256.0)
        assert g.value() == 256.0
        g.add(-128.0)
        assert g.value() == 128.0

    def test_unset_series_reads_zero(self):
        assert Gauge("scale").value() == 0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram("t_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 100.0):
            h.observe(v)
        snap = h.value()
        assert snap.buckets == (
            (1.0, 1), (2.0, 2), (4.0, 3), (math.inf, 4),
        )
        assert snap.sum == 105.0
        assert snap.count == 4

    def test_boundary_value_is_inclusive(self):
        h = Histogram("t", buckets=(1.0,))
        h.observe(1.0)
        assert h.value().buckets[0] == (1.0, 1)

    def test_default_buckets(self):
        assert Histogram("t").bucket_bounds == DEFAULT_BUCKETS

    def test_trailing_inf_bound_is_stripped(self):
        h = Histogram("t", buckets=(1.0, math.inf))
        assert h.bucket_bounds == (1.0,)

    def test_invalid_buckets_rejected(self):
        with pytest.raises(MetricError, match="at least one"):
            Histogram("t", buckets=())
        with pytest.raises(MetricError, match="strictly increase"):
            Histogram("t", buckets=(2.0, 1.0))
        with pytest.raises(MetricError, match="strictly increase"):
            Histogram("t", buckets=(1.0, 1.0))

    def test_nan_observation_rejected(self):
        with pytest.raises(MetricError, match="NaN"):
            Histogram("t").observe(float("nan"))

    def test_empty_series_snapshot(self):
        snap = Histogram("t", buckets=(1.0,)).value()
        assert snap.buckets == ((1.0, 0), (math.inf, 0))
        assert snap.count == 0


class TestRegistry:
    def test_factories_are_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricError, match="already registered"):
            reg.gauge("x")

    def test_labelnames_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", labelnames=("a",))
        with pytest.raises(MetricError, match="label mismatch"):
            reg.counter("x", labelnames=("b",))

    def test_get_and_contains(self):
        reg = MetricsRegistry()
        g = reg.gauge("scale")
        assert reg.get("scale") is g
        assert "scale" in reg
        assert "missing" not in reg
        with pytest.raises(MetricError, match="unknown metric"):
            reg.get("missing")

    def test_iteration_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z")
        reg.gauge("a")
        assert [m.name for m in reg] == ["a", "z"]
