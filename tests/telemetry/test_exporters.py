"""Exact-agreement tests for the Prometheus-text and JSON exporters.

The acceptance gate is equality, not tolerance: parsing the text export
must recover every sample value bit-identically to the JSON export.
"""

import json
import math

from repro.telemetry import (
    MetricsRegistry,
    flatten_samples,
    format_value,
    parse_prometheus_text,
    to_json,
    to_prometheus_text,
)


def populated_registry():
    reg = MetricsRegistry()
    c = reg.counter("repro_bytes_total", "Total bytes", labelnames=("codec",))
    c.inc(123456789, codec="delta")
    c.inc(0.1 + 0.2, codec="rle")  # a float that needs repr round-trip
    g = reg.gauge("repro_scale", "Loss scale")
    g.set(1024)
    h = reg.histogram(
        "repro_t_seconds", "Step seconds", labelnames=("phase",),
        buckets=(0.001, 0.1, 1.0),
    )
    for v in (0.0005, 0.05, 0.7, 3.0):
        h.observe(v, phase="train")
    return reg


class TestFormatValue:
    def test_integral_floats_render_as_ints(self):
        assert format_value(2.0) == "2"
        assert format_value(1024) == "1024"

    def test_floats_use_repr_round_trip(self):
        text = format_value(0.1 + 0.2)
        assert float(text) == 0.1 + 0.2

    def test_infinities(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"

    def test_huge_integral_float_stays_float(self):
        assert float(format_value(2.0**60)) == 2.0**60


class TestJsonExport:
    def test_shape(self):
        export = to_json(populated_registry())
        names = [f["name"] for f in export["metrics"]]
        assert names == sorted(names)
        (hist,) = [f for f in export["metrics"] if f["type"] == "histogram"]
        (sample,) = hist["samples"]
        assert sample["labels"] == {"phase": "train"}
        assert sample["count"] == 4
        assert [b for _, b in sample["buckets"]] == [1, 2, 3, 4]
        assert sample["buckets"][-1][0] == "+Inf"

    def test_json_round_trip_preserves_floats(self):
        export = to_json(populated_registry())
        assert json.loads(json.dumps(export)) == export


class TestPrometheusText:
    def test_help_type_and_sample_lines(self):
        text = to_prometheus_text(populated_registry())
        assert "# HELP repro_bytes_total Total bytes" in text
        assert "# TYPE repro_bytes_total counter" in text
        assert 'repro_bytes_total{codec="delta"} 123456789' in text
        assert 'repro_t_seconds_bucket{phase="train",le="+Inf"} 4' in text
        assert 'repro_t_seconds_count{phase="train"} 4' in text
        assert "repro_scale 1024" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("tag",)).inc(
            1, tag='quo"te\\back\nline'
        )
        text = to_prometheus_text(reg)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        flat = flatten_samples(parse_prometheus_text(text))
        assert flat[("x_total", (("tag", 'quo"te\\back\nline'),), "value")] == 1

    def test_parse_inverts_exactly(self):
        reg = populated_registry()
        parsed = parse_prometheus_text(to_prometheus_text(reg))
        assert flatten_samples(parsed) == flatten_samples(to_json(reg))

    def test_exports_agree_after_json_round_trip(self):
        """The on-disk comparison `repro.cli trace` performs."""
        reg = populated_registry()
        from_disk = json.loads(json.dumps(to_json(reg)))
        assert flatten_samples(parse_prometheus_text(
            to_prometheus_text(reg)
        )) == flatten_samples(from_disk)

    def test_empty_registry(self):
        reg = MetricsRegistry()
        assert to_prometheus_text(reg) == "\n"
        assert to_json(reg) == {"metrics": []}
        assert flatten_samples(parse_prometheus_text("\n")) == {}
