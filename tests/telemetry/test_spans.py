"""Merged multi-generation chrome-trace export and its validator.

The headline invariant (ISSUE 5 acceptance): a resilient, overlapped,
wire-coded, straggler-injected run merges into ONE chrome trace where
every rank, stream, and generation has its own pid/tid track, with no
negative timestamps and no overlapping blocks on any track.
"""

import json

import pytest

from repro.cluster import Communicator
from repro.cluster.timeline import TimelineEvent
from repro.cluster.tracing import CommEvent
from repro.telemetry import (
    COMM_TID,
    COMPUTE_TID,
    LEDGER_TID,
    GenerationPart,
    TraceValidationError,
    merged_trace,
    parts_from_json,
    parts_to_json,
    validate_chrome_trace,
    write_trace,
)


def two_generation_parts():
    """World 3 that shrinks to world 2, each with timeline + ledger data."""
    gen0 = GenerationPart(
        world_size=3,
        timeline_events=[
            TimelineEvent(r, "compute", "fwd", 0.0, 1.0 + r) for r in range(3)
        ] + [
            TimelineEvent(r, "comm", "allreduce", 3.0, 4.0) for r in range(3)
        ],
        ledger_events=[
            CommEvent("allreduce", 3, 100, 1.0, tag="grads", scope="sync",
                      start_s=3.0, end_s=4.0),
        ],
        label="gen0",
    )
    gen1 = GenerationPart(
        world_size=2,
        timeline_events=[
            TimelineEvent(r, "compute", "fwd", 0.0, 2.0) for r in range(2)
        ],
        ledger_events=[
            CommEvent("allgather", 2, 50, 0.5, start_s=2.0, end_s=2.5),
        ],
        label="gen1",
    )
    return [gen0, gen1]


def x_events(trace):
    return [e for e in trace if e["ph"] == "X"]


class TestMergedTrace:
    def test_generations_get_disjoint_pid_blocks(self):
        trace = x_events(merged_trace(two_generation_parts()))
        gen0_pids = {e["pid"] for e in trace if e["args"]["generation"] == 0}
        gen1_pids = {e["pid"] for e in trace if e["args"]["generation"] == 1}
        assert gen0_pids == {0, 1, 2}
        assert gen1_pids == {3, 4}

    def test_streams_map_to_fixed_tids(self):
        trace = x_events(merged_trace(two_generation_parts()))
        by_name = {}
        for e in trace:
            by_name.setdefault(e["name"], set()).add(e["tid"])
        assert by_name["fwd"] == {COMPUTE_TID}
        assert by_name["allreduce"] <= {COMM_TID, LEDGER_TID}
        ledger_events = [e for e in trace if e["tid"] == LEDGER_TID]
        assert {e["name"] for e in ledger_events} == {
            "allreduce [grads]", "allgather",
        }

    def test_generations_serialize_in_time(self):
        parts = two_generation_parts()
        trace = x_events(merged_trace(parts))
        gen0_end = max(
            e["ts"] + e["dur"] for e in trace if e["args"]["generation"] == 0
        )
        gen1_start = min(
            e["ts"] for e in trace if e["args"]["generation"] == 1
        )
        assert gen1_start >= gen0_end - 1e-6
        assert gen1_start == pytest.approx(parts[0].span_s * 1e6)

    def test_serialization_opt_out_overlaps_generations(self):
        trace = x_events(
            merged_trace(two_generation_parts(), serialize_generations=False)
        )
        assert min(
            e["ts"] for e in trace if e["args"]["generation"] == 1
        ) == 0.0

    def test_metadata_names_label_and_rank(self):
        trace = merged_trace(two_generation_parts())
        process_names = {
            e["args"]["name"] for e in trace if e["name"] == "process_name"
        }
        assert process_names == {
            "gen0 rank 0", "gen0 rank 1", "gen0 rank 2",
            "gen1 rank 0", "gen1 rank 1",
        }
        thread_names = [e for e in trace if e["name"] == "thread_name"]
        # 3 tracks per rank, 5 ranks across the two generations.
        assert len(thread_names) == 15
        assert {e["args"]["name"] for e in thread_names} == {
            "compute", "comm", "ledger",
        }

    def test_validator_summary(self):
        summary = validate_chrome_trace(merged_trace(two_generation_parts()))
        assert summary["pids"] == [0, 1, 2, 3, 4]
        assert summary["generations"] == [0, 1]
        # gen0: 6 timeline + 3 per-rank ledger blocks; gen1: 2 + 2.
        assert summary["events"] == 13
        # gen0: compute+comm+ledger x 3 ranks; gen1: compute+ledger x 2.
        assert summary["tracks"] == 13

    def test_empty_parts(self):
        assert merged_trace([]) == []
        assert validate_chrome_trace([]) == {
            "events": 0, "tracks": 0, "pids": [], "generations": [],
        }


class TestPartsJsonRoundTrip:
    def test_round_trip_preserves_merged_trace(self):
        parts = two_generation_parts()
        blob = json.dumps(parts_to_json(parts))
        restored = parts_from_json(blob)
        assert merged_trace(restored) == merged_trace(parts)

    def test_round_trip_preserves_fields(self):
        parts = parts_from_json(parts_to_json(two_generation_parts()))
        assert parts[0].world_size == 3
        assert parts[1].label == "gen1"
        assert parts[0].ledger_events[0].tag == "grads"
        assert parts[0].ledger_events[0].has_schedule

    def test_write_trace(self, tmp_path):
        trace = merged_trace(two_generation_parts())
        path = tmp_path / "trace.json"
        write_trace(path, trace)
        assert json.loads(path.read_text()) == trace


class TestValidator:
    def test_negative_timestamp_rejected(self):
        bad = [{"ph": "X", "ts": -1.0, "dur": 1.0, "pid": 0, "tid": 0,
                "name": "x"}]
        with pytest.raises(TraceValidationError, match="negative timestamp"):
            validate_chrome_trace(bad)

    def test_negative_duration_rejected(self):
        bad = [{"ph": "X", "ts": 0.0, "dur": -1.0, "pid": 0, "tid": 0,
                "name": "x"}]
        with pytest.raises(TraceValidationError, match="negative duration"):
            validate_chrome_trace(bad)

    def test_same_track_overlap_rejected(self):
        bad = [
            {"ph": "X", "ts": 0.0, "dur": 2.0, "pid": 0, "tid": 0, "name": "a"},
            {"ph": "X", "ts": 1.0, "dur": 2.0, "pid": 0, "tid": 0, "name": "b"},
        ]
        with pytest.raises(TraceValidationError, match="overlap"):
            validate_chrome_trace(bad)

    def test_cross_track_overlap_allowed(self):
        ok = [
            {"ph": "X", "ts": 0.0, "dur": 2.0, "pid": 0, "tid": 0, "name": "a"},
            {"ph": "X", "ts": 1.0, "dur": 2.0, "pid": 0, "tid": 1, "name": "b"},
            {"ph": "X", "ts": 1.0, "dur": 2.0, "pid": 1, "tid": 0, "name": "c"},
        ]
        assert validate_chrome_trace(ok)["tracks"] == 3

    def test_metadata_events_ignored(self):
        trace = [{"ph": "M", "ts": -5, "pid": 0, "tid": 0,
                  "name": "process_name", "args": {"name": "x"}}]
        assert validate_chrome_trace(trace)["events"] == 0


class TestFromRun:
    def test_captures_live_communicator(self):
        import numpy as np

        comm = Communicator(2, track_memory=False)
        comm.allreduce([np.ones(8), np.ones(8)], tag="grads")
        part = GenerationPart.from_run(comm.ledger, comm.timeline, "gen0")
        assert part.world_size == 2
        assert part.ledger_events and part.timeline_events
        assert part.span_s == pytest.approx(comm.timeline.makespan)

    def test_none_timeline_infers_world_from_ledger(self):
        part = GenerationPart.from_run(
            None, None, "x"
        )
        assert part.world_size == 1 and part.span_s == 0.0


class TestResilientOverlappedRun:
    """The acceptance scenario, in-process."""

    @pytest.fixture(scope="class")
    def runner(self, tmp_path_factory):
        from repro.cluster import (
            ChaosCommunicator, FaultEvent, FaultKind, FaultPlan,
        )
        from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
        from repro.optim import SGD
        from repro.train import (
            DistributedTrainer,
            ResilientRunner,
            TrainConfig,
            WordLanguageModel,
            WordLMConfig,
        )

        vocab = 60
        corpus = make_corpus(ONE_BILLION_WORD.scaled(vocab), 6000, seed=0)
        model_cfg = WordLMConfig(
            vocab_size=vocab, embedding_dim=6, hidden_dim=8,
            projection_dim=6, num_samples=8,
        )
        cfg = TrainConfig(
            world_size=3, batch=BatchSpec(2, 6), base_lr=0.2,
            overlap=True, wire_codec="auto",
        )

        def factory(cfg, comm):
            return DistributedTrainer(
                lambda rng, rank: WordLanguageModel(model_cfg, rng),
                lambda params, lr: SGD(params, lr),
                corpus.train, corpus.valid, cfg, comm=comm,
            )

        plan = FaultPlan([
            FaultEvent(FaultKind.STRAGGLER, collective_index=2, rank=1,
                       slowdown=3.0),
            FaultEvent(FaultKind.RANK_LOSS, collective_index=30, rank=2),
        ])
        comm = ChaosCommunicator(3, plan=plan, track_memory=False)
        runner = ResilientRunner(
            factory, cfg, tmp_path_factory.mktemp("ckpt") / "ckpt.npz",
            comm=comm, checkpoint_every=3,
        )
        runner.run(6)
        return runner

    def test_merged_trace_validates(self, runner):
        summary = validate_chrome_trace(merged_trace(runner.generation_parts()))
        # Generation 0 ran world 3, generation 1 world 2: 5 pids total.
        assert summary["pids"] == [0, 1, 2, 3, 4]
        assert summary["generations"] == [0, 1]
        assert summary["events"] > 0

    def test_every_rank_has_compute_comm_and_ledger_tracks(self, runner):
        trace = merged_trace(runner.generation_parts())
        tids_by_pid = {}
        for e in x_events(trace):
            tids_by_pid.setdefault(e["pid"], set()).add(e["tid"])
        for pid in (0, 1, 2):  # generation 0's full world
            assert tids_by_pid[pid] == {COMPUTE_TID, COMM_TID, LEDGER_TID}

    def test_runner_chrome_trace_is_the_merged_view(self, runner):
        assert runner.chrome_trace() == merged_trace(runner.generation_parts())
