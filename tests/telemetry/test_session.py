"""TelemetrySession: step/event streams, finalize gauges, wire metrics.

The exactness contract under test: the run-total gauges a session
freezes at finalize come *directly from the ledgers* (same summation
order as :func:`run_totals_from_parts`), so the written Prometheus and
JSON exports agree with the ledger bit-for-bit.
"""

import json
import math

import numpy as np
import pytest

from repro.cluster import Communicator
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.perf import throughput_from_metrics
from repro.telemetry import (
    MetricsRegistry,
    TelemetrySession,
    flatten_samples,
    parse_prometheus_text,
    run_totals_from_parts,
    to_json,
)
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 60
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def make_trainer(cfg, telemetry=None):
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg, telemetry=telemetry,
    )


class TestStreams:
    def test_record_step_updates_metrics(self):
        session = TelemetrySession()
        session.record_step(step=0, loss=2.0, step_time_s=0.25,
                            wire_bytes_per_rank=5000, loss_scale=256.0)
        session.record_step(step=1, loss=float("inf"), skipped=True,
                            loss_scale=128.0)
        reg = session.registry
        assert reg.get("repro_steps_total").value() == 2
        assert reg.get("repro_skipped_steps_total").value() == 1
        assert reg.get("repro_train_loss").value().count == 1  # inf skipped
        assert reg.get("repro_step_time_seconds").value().sum == 0.25
        assert reg.get("repro_loss_scale").value() == 128.0

    def test_record_event_counts_by_kind(self):
        session = TelemetrySession()
        session.record_event("checkpoint", step=3)
        session.record_event("retry", step=4, detail="backoff 0.5s")
        session.record_event("retry", step=4, detail="backoff 1.0s")
        total = session.registry.get("repro_recovery_events_total")
        assert total.value(kind="checkpoint") == 1
        assert total.value(kind="retry") == 2
        assert session.events[1]["detail"] == "backoff 0.5s"

    def test_jsonl_streams_written_and_truncated(self, tmp_path):
        (tmp_path / "steps.jsonl").write_text("stale\n")
        session = TelemetrySession(tmp_path)
        session.record_step(step=0, loss=1.5)
        session.record_event("checkpoint", step=0)
        steps = [json.loads(line)
                 for line in (tmp_path / "steps.jsonl").read_text().splitlines()]
        assert steps == [{"step": 0, "loss": 1.5}]
        (event,) = [json.loads(line)
                    for line in (tmp_path / "events.jsonl").read_text().splitlines()]
        assert event["kind"] == "checkpoint"


class TestTrainerIntegration:
    def test_adopted_trainer_emits_steps(self):
        session = TelemetrySession()
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 6), base_lr=0.2)
        trainer = make_trainer(cfg, telemetry=session)
        trainer.train_step()
        trainer.train_step()
        assert len(session.steps) == 2
        record = session.steps[0]
        assert record["step"] == 1
        assert math.isfinite(record["loss"])
        assert record["wire_bytes_per_rank"] > 0
        assert record["step_time_s"] > 0
        assert record["collectives"] > 0
        assert record["world_size"] == 2
        assert record["train_ppl"] == pytest.approx(np.exp(record["loss"]))

    def test_collective_counters_track_the_ledger(self):
        session = TelemetrySession()
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 6), base_lr=0.2)
        trainer = make_trainer(cfg, telemetry=session)
        trainer.train_step()
        reg = session.registry
        ledger = trainer.comm.ledger
        by_op = {}
        for e in ledger.events:
            by_op[e.op] = by_op.get(e.op, 0) + e.wire_bytes_per_rank
        for op, wire in by_op.items():
            assert reg.get("repro_collectives_total").value(op=op) > 0
            assert reg.get(
                "repro_collective_wire_bytes_total"
            ).value(op=op) == wire

    def test_wire_codec_run_feeds_codec_histograms(self):
        session = TelemetrySession()
        cfg = TrainConfig(
            world_size=2, batch=BatchSpec(2, 6), base_lr=0.2,
            overlap=True, wire_codec="delta",
        )
        trainer = make_trainer(cfg, telemetry=session)
        trainer.train_step()
        reg = session.registry
        enc = reg.get("repro_wire_encode_seconds").value(codec="delta")
        dec = reg.get("repro_wire_decode_seconds").value(codec="delta")
        assert enc.count > 0 and enc.sum > 0
        assert dec.count > 0 and dec.sum > 0
        assert reg.get("repro_wire_frame_bytes_total").value(codec="delta") > 0
        tp = throughput_from_metrics(reg, "delta")
        assert tp.encode_bps > 0 and tp.decode_bps > 0

    def test_throughput_from_metrics_requires_activity(self):
        with pytest.raises((Exception,), match="delta|unknown"):
            throughput_from_metrics(MetricsRegistry(), "delta")


class TestFinalize:
    def make_session(self, tmp_path=None):
        session = TelemetrySession(tmp_path)
        comm = Communicator(2, track_memory=False)
        with comm.ledger.scope("sync"):
            comm.allreduce([np.ones(64, dtype=np.float32)] * 2, tag="grads")
        session.track(comm)
        session.record_step(step=0, loss=2.0, step_time_s=0.1)
        return session

    def test_run_gauges_equal_ledger_totals_exactly(self):
        session = self.make_session()
        summary = session.finalize()
        totals = run_totals_from_parts(session.parts())
        reg = session.registry
        assert reg.get("repro_run_wire_bytes_per_rank").value() == \
            totals["wire_bytes_per_rank"]
        assert reg.get("repro_run_compression_factor").value() == \
            totals["compression_factor"]
        assert reg.get("repro_run_comm_time_seconds").value() == \
            totals["comm_time_s"]
        assert reg.get("repro_run_simulated_time_seconds").value() == \
            totals["simulated_time_s"]
        assert reg.get("repro_run_generations").value() == 1
        assert reg.get("repro_run_final_world_size").value() == 2
        assert summary["totals"] == totals
        assert summary["trace"]["events"] > 0

    def test_finalize_writes_agreeing_exports(self, tmp_path):
        session = self.make_session(tmp_path)
        session.finalize()
        for name in ("metrics.prom", "metrics.json", "trace.json",
                     "trace_parts.json", "summary.json"):
            assert (tmp_path / name).exists()
        from_prom = flatten_samples(parse_prometheus_text(
            (tmp_path / "metrics.prom").read_text()
        ))
        from_json = flatten_samples(
            json.loads((tmp_path / "metrics.json").read_text())
        )
        assert from_prom == from_json
        assert from_prom == flatten_samples(to_json(session.registry))

    def test_compression_factor_defaults_to_one_without_traffic(self):
        session = TelemetrySession()
        totals = run_totals_from_parts(session.parts())
        assert totals["compression_factor"] == 1.0
        assert totals["generations"] == 0
        assert totals["final_world_size"] == 0
