"""Tests for the bursty (cache-model) token generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import ZipfMandelbrot, batch_duplication, make_bursty_tokens
from repro.data.stats import types_at


def dist(vocab=5000, s=1.56, q=10.0):
    return ZipfMandelbrot(vocab_size=vocab, exponent=s, shift=q)


class TestGeneration:
    def test_zero_repeat_is_iid(self):
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(0)
        a = make_bursty_tokens(dist(), 1000, rng_a, p_repeat=0.0)
        b = dist().sample(1000, rng_b)
        np.testing.assert_array_equal(a, b)

    def test_range_and_dtype(self):
        out = make_bursty_tokens(dist(100), 5000, np.random.default_rng(1),
                                 p_repeat=0.4)
        assert out.dtype == np.int64
        assert out.min() >= 0 and out.max() < 100

    def test_validation(self):
        with pytest.raises(ValueError):
            make_bursty_tokens(dist(), 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            make_bursty_tokens(dist(), 10, np.random.default_rng(0), p_repeat=1.0)
        with pytest.raises(ValueError):
            make_bursty_tokens(dist(), 10, np.random.default_rng(0), window=0)


class TestBurstinessEffects:
    def test_repetition_raises_batch_duplication(self):
        """The headline effect: bursty streams duplicate more within a
        batch, so the uniqueness technique saves more than on i.i.d."""
        rng = np.random.default_rng(2)
        iid = make_bursty_tokens(dist(), 50_000, rng, p_repeat=0.0)
        bursty = make_bursty_tokens(
            dist(), 50_000, np.random.default_rng(2), p_repeat=0.4, window=50
        )
        assert batch_duplication(bursty, 512) > batch_duplication(iid, 512) * 1.2

    def test_duplication_monotone_in_p_repeat(self):
        dups = []
        for p in (0.0, 0.2, 0.5):
            toks = make_bursty_tokens(
                dist(), 30_000, np.random.default_rng(3), p_repeat=p
            )
            dups.append(batch_duplication(toks, 256))
        assert dups[0] < dups[1] < dups[2]

    def test_global_frequencies_stay_zipfian(self):
        """The cache redistributes locally but the head stays the head."""
        toks = make_bursty_tokens(
            dist(1000), 100_000, np.random.default_rng(4), p_repeat=0.3
        )
        counts = np.bincount(toks, minlength=1000)
        assert counts[:20].sum() > counts[500:520].sum() * 3

    def test_types_grow_slower_than_iid(self):
        rng = np.random.default_rng(5)
        iid = make_bursty_tokens(dist(), 40_000, rng, p_repeat=0.0)
        bursty = make_bursty_tokens(
            dist(), 40_000, np.random.default_rng(5), p_repeat=0.5, window=200
        )
        n = np.array([40_000])
        assert types_at(bursty, n)[0] < types_at(iid, n)[0]


class TestBatchDuplication:
    def test_constant_stream(self):
        assert batch_duplication(np.zeros(100, np.int64), 10) == 10.0

    def test_all_distinct(self):
        assert batch_duplication(np.arange(100), 10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_duplication(np.arange(5), 10)
        with pytest.raises(ValueError):
            batch_duplication(np.arange(5), 0)

    @given(
        p=st.floats(0.0, 0.8),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=20, deadline=None)
    def test_duplication_at_least_one(self, p, seed):
        toks = make_bursty_tokens(
            dist(200), 2000, np.random.default_rng(seed), p_repeat=p
        )
        assert batch_duplication(toks, 100) >= 1.0


class TestDegenerateStreams:
    """Edge cases the serving traffic model leans on (PR-8)."""

    def test_single_token_stream(self):
        """n_tokens=1: position 0 can never repeat, any p_repeat."""
        out = make_bursty_tokens(
            dist(100), 1, np.random.default_rng(0), p_repeat=0.9
        )
        assert out.shape == (1,)
        assert 0 <= out[0] < 100

    def test_window_one_copies_immediate_predecessor(self):
        out = make_bursty_tokens(
            dist(1000), 5000, np.random.default_rng(1), p_repeat=0.6, window=1
        )
        # window=1 repeats duplicate the previous token: runs abound
        runs = np.mean(out[1:] == out[:-1])
        iid = make_bursty_tokens(
            dist(1000), 5000, np.random.default_rng(1), p_repeat=0.0
        )
        iid_runs = np.mean(iid[1:] == iid[:-1])
        assert runs > iid_runs + 0.3

    def test_single_type_vocab_is_constant(self):
        out = make_bursty_tokens(
            dist(1), 1000, np.random.default_rng(2), p_repeat=0.5
        )
        assert (out == 0).all()

    def test_max_skew_base_distribution(self):
        """Extreme-alpha base: stream collapses to the head type."""
        extreme = ZipfMandelbrot(vocab_size=100, exponent=50.0)
        out = make_bursty_tokens(
            extreme, 2000, np.random.default_rng(3), p_repeat=0.3
        )
        assert (out == 0).all()

    def test_p_repeat_just_below_one(self):
        """Near-total repetition still terminates and stays in range."""
        out = make_bursty_tokens(
            dist(50), 2000, np.random.default_rng(4), p_repeat=0.999
        )
        assert out.min() >= 0 and out.max() < 50
        assert np.unique(out).size < 20  # almost everything is a copy
