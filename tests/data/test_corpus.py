"""Tests for synthetic corpus presets and generation."""

import numpy as np
import pytest

from repro.data.corpus import (
    AMAZON_REVIEWS,
    FIGURE1_PRESETS,
    GUTENBERG,
    ONE_BILLION_WORD,
    PRESETS,
    TIEBA,
    make_corpus,
)
from repro.data.stats import fit_heaps_law, type_token_curve


class TestPresets:
    def test_table_i_metadata(self):
        assert ONE_BILLION_WORD.full_words == pytest.approx(0.78e9)
        assert GUTENBERG.full_chars == pytest.approx(8.90e9)
        assert AMAZON_REVIEWS.full_bytes == pytest.approx(37.04 * 1024**3)
        assert TIEBA.language == "Chinese"
        assert TIEBA.full_words is None

    def test_tieba_vocabulary_matches_section_vc(self):
        assert TIEBA.vocab_size == 15_437
        assert TIEBA.unit == "char"

    def test_splits_match_section_iv(self):
        assert ONE_BILLION_WORD.train_split == 99
        assert GUTENBERG.train_split == 99
        assert AMAZON_REVIEWS.train_split == 1000
        assert TIEBA.train_split == 1000

    def test_registry_complete(self):
        assert set(PRESETS) == {"1b", "gb", "cc", "ar", "tieba"}
        assert len(FIGURE1_PRESETS) == 4

    def test_scaled_override(self):
        small = ONE_BILLION_WORD.scaled(500)
        assert small.vocab_size == 500
        assert small.zipf_exponent == ONE_BILLION_WORD.zipf_exponent


class TestGeneration:
    def test_deterministic_by_seed(self):
        a = make_corpus(ONE_BILLION_WORD.scaled(100), 1000, seed=7)
        b = make_corpus(ONE_BILLION_WORD.scaled(100), 1000, seed=7)
        np.testing.assert_array_equal(a.tokens, b.tokens)
        np.testing.assert_array_equal(a.valid, b.valid)

    def test_different_seeds_differ(self):
        a = make_corpus(ONE_BILLION_WORD.scaled(100), 1000, seed=1)
        b = make_corpus(ONE_BILLION_WORD.scaled(100), 1000, seed=2)
        assert not np.array_equal(a.tokens, b.tokens)

    def test_split_ratio(self):
        c = make_corpus(ONE_BILLION_WORD.scaled(100), 10_000, seed=0)
        assert c.valid.size == 10_000 // 100  # 99:1 split
        assert c.train.size + c.valid.size == 10_000

    def test_tieba_split_ratio(self):
        c = make_corpus(TIEBA.scaled(200), 10_010, seed=0)
        assert c.valid.size == 10_010 // 1001

    def test_tokens_in_range(self):
        preset = GUTENBERG.scaled(300)
        c = make_corpus(preset, 5000, seed=3)
        assert c.tokens.min() >= 0
        assert c.tokens.max() < 300

    def test_ids_are_frequency_ranks(self):
        """Lower ids must be (statistically) more frequent."""
        c = make_corpus(ONE_BILLION_WORD.scaled(1000), 100_000, seed=4)
        counts = np.bincount(c.tokens, minlength=1000)
        head = counts[:10].sum()
        tail = counts[500:510].sum()
        assert head > tail * 5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_corpus(ONE_BILLION_WORD, 0)


class TestHeapsCalibration:
    @pytest.mark.parametrize("preset", FIGURE1_PRESETS, ids=lambda p: p.name)
    def test_heaps_exponent_near_paper_value(self, preset):
        """Each Figure-1 preset must measure U ~ N^0.64 (+- tolerance)."""
        scaled = preset.scaled(min(preset.vocab_size, 400_000))
        corpus = make_corpus(scaled, 400_000, seed=11)
        ns, us = type_token_curve(corpus.tokens, num_points=12)
        fit = fit_heaps_law(ns, us)
        assert 0.5 < fit.exponent < 0.8, fit
        assert fit.r_squared > 0.99

    def test_types_well_below_tokens(self):
        """The Figure-1 gap: U is far below N at scale."""
        corpus = make_corpus(ONE_BILLION_WORD.scaled(100_000), 200_000, seed=5)
        u = np.unique(corpus.tokens).size
        assert u < corpus.n_tokens / 5
