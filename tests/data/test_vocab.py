"""Tests for vocabulary construction and coverage."""

import numpy as np
import pytest

from repro.data.vocab import Vocabulary, coverage_of_top_k
from repro.data.zipf import ZipfMandelbrot


class TestConstruction:
    def test_frequency_ranked(self):
        v = Vocabulary.from_counts(
            raw_ids=np.array([10, 20, 30]), counts=np.array([5, 50, 7])
        )
        # Most frequent raw id (20) gets vocab id 0.
        assert v.encode(np.array([20]))[0] == 0
        assert v.encode(np.array([30]))[0] == 1
        assert v.encode(np.array([10]))[0] == 2

    def test_truncation_plus_unk(self):
        v = Vocabulary.from_counts(
            raw_ids=np.arange(10), counts=np.arange(10, 0, -1), max_size=4
        )
        assert len(v) == 5
        assert v.unk_id == 4

    def test_from_token_ids(self):
        tokens = np.array([7, 7, 7, 3, 3, 9])
        v = Vocabulary.from_token_ids(tokens)
        assert len(v) == 4  # 3 types + unk
        np.testing.assert_array_equal(v.encode(np.array([7, 3, 9])), [0, 1, 2])

    def test_duplicate_raw_ids_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary.from_counts(np.array([1, 1]), np.array([2, 3]))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary.from_counts(np.array([1]), np.array([-1]))


class TestEncoding:
    def test_oov_maps_to_unk(self):
        v = Vocabulary.from_token_ids(np.array([1, 1, 2]), max_size=1)
        out = v.encode(np.array([1, 2, 99]))
        assert out[0] == 0
        assert out[1] == v.unk_id
        assert out[2] == v.unk_id

    def test_encode_2d_preserves_shape(self):
        v = Vocabulary.from_token_ids(np.array([5, 6, 5]))
        out = v.encode(np.array([[5, 6], [6, 5]]))
        assert out.shape == (2, 2)

    def test_coverage_computation(self):
        v = Vocabulary.from_token_ids(np.array([1, 1, 1, 2]), max_size=1)
        assert v.coverage(np.array([1, 1, 2, 3])) == pytest.approx(0.5)

    def test_coverage_of_empty_rejected(self):
        v = Vocabulary.from_token_ids(np.array([1]))
        with pytest.raises(ValueError):
            v.coverage(np.array([], dtype=np.int64))


class TestZipfCoverage:
    def test_small_head_covers_most_text(self):
        """The paper's claim: 100K of 2M-24M types covers ~99% of tokens.

        Scaled down: under Zipf, the top 5% of types covers the large
        majority of a corpus.
        """
        z = ZipfMandelbrot(vocab_size=20_000, exponent=1.5)
        tokens = z.sample(300_000, np.random.default_rng(0))
        counts = np.bincount(tokens, minlength=20_000)
        cov = coverage_of_top_k(counts, k=1000)
        assert cov > 0.95

    def test_top_k_formula(self):
        counts = np.array([50, 30, 15, 5])
        assert coverage_of_top_k(counts, 2) == pytest.approx(0.8)
        assert coverage_of_top_k(counts, 10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_of_top_k(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            coverage_of_top_k(np.array([]), 1)
        with pytest.raises(ValueError):
            coverage_of_top_k(np.array([0.0, 0.0]), 1)
        with pytest.raises(ValueError):
            coverage_of_top_k(np.array([-1.0, 1.0]), 1)

    def test_frequency_probs(self):
        v = Vocabulary.from_counts(np.array([1, 2]), np.array([3, 1]))
        probs = v.frequency_probs()
        assert probs.sum() == pytest.approx(1.0)
        assert probs[0] == pytest.approx(0.75)
