"""Tests for the real-text tokenization/encoding front end."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.text import (
    CharTokenizer,
    WordTokenizer,
    encode_corpus,
)

SAMPLE = (
    "To be, or not to be, that is the question: Whether 'tis nobler in "
    "the mind to suffer the slings and arrows of outrageous fortune, or "
    "to take arms against a sea of troubles."
)


class TestWordTokenizer:
    def test_lower_cases(self):
        assert WordTokenizer().tokenize("To Be") == ["to", "be"]

    def test_punctuation_split_off(self):
        tokens = WordTokenizer().tokenize("to be, or not")
        assert tokens == ["to", "be", ",", "or", "not"]

    def test_contractions_kept_together(self):
        assert "'tis" not in WordTokenizer().tokenize("it's fine")
        assert WordTokenizer().tokenize("it's fine") == ["it's", "fine"]

    def test_numbers(self):
        assert WordTokenizer().tokenize("top 100 words") == ["top", "100", "words"]

    def test_paper_example_counts(self):
        """'to be or not to be': four types, six tokens."""
        tokens = WordTokenizer().tokenize("to be or not to be")
        assert len(tokens) == 6
        assert len(set(tokens)) == 4


class TestCharTokenizer:
    def test_every_char_is_a_token(self):
        assert CharTokenizer().tokenize("ab c") == ["a", "b", " ", "c"]

    def test_case_folding_toggle(self):
        assert CharTokenizer(lower=True).tokenize("Ab") == ["a", "b"]
        assert CharTokenizer(lower=False).tokenize("Ab") == ["A", "b"]


class TestEncodeCorpus:
    def test_ids_are_frequency_ranks(self):
        corpus = encode_corpus(SAMPLE)
        # "to" is the most frequent word in the sample.
        assert corpus.itos[0] == "to"
        assert corpus.counts[0] == corpus.counts.max()

    def test_counts_match_stream(self):
        corpus = encode_corpus(SAMPLE)
        ids, c = np.unique(corpus.tokens, return_counts=True)
        np.testing.assert_array_equal(corpus.counts[ids], c)

    def test_truncation_and_coverage(self):
        full = encode_corpus(SAMPLE)
        cut = encode_corpus(SAMPLE, max_vocab=5)
        assert cut.vocab_size == 6  # 5 + <unk>
        assert cut.coverage() < 1.0
        assert full.coverage() == 1.0
        # Zipf: a small head still covers a meaningful share.
        assert cut.coverage() > 0.2

    def test_stoi_roundtrip(self):
        corpus = encode_corpus(SAMPLE)
        for word in ("to", "be", "question"):
            assert corpus.itos[corpus.stoi(word)] == word

    def test_oov_maps_to_unk(self):
        corpus = encode_corpus(SAMPLE, max_vocab=3)
        assert corpus.stoi("xylophone") == corpus.unk_id

    def test_decode(self):
        corpus = encode_corpus("a b a")
        text = corpus.decode(corpus.tokens)
        assert text == "a b a"

    def test_char_level_encoding(self):
        corpus = encode_corpus("hello world", tokenizer=CharTokenizer())
        assert corpus.tokens.size == len("hello world")
        # 'l' is most frequent (3 occurrences) -> id 0.
        assert corpus.itos[0] == "l"

    def test_deterministic_tie_breaking(self):
        a = encode_corpus("x y z x y z")
        b = encode_corpus("x y z x y z")
        assert a.itos == b.itos

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            encode_corpus("   ")
        with pytest.raises(ValueError):
            encode_corpus("a b", max_vocab=0)

    def test_encoded_stream_feeds_training_stack(self):
        """The text path plugs into the batcher directly."""
        from repro.data import BatchSpec, ShardedBatcher

        corpus = encode_corpus(SAMPLE * 20)
        batcher = ShardedBatcher(corpus.tokens, BatchSpec(2, 5), world_size=2)
        batch = batcher.batch(0, 0)
        assert batch.inputs.max() < corpus.vocab_size

    @given(
        words=st.lists(
            st.text(alphabet="abcde", min_size=1, max_size=4),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_property_roundtrip_and_ranking(self, words):
        text = " ".join(words)
        corpus = encode_corpus(text)
        # Decoding reproduces the (normalized) token stream.
        assert corpus.decode(corpus.tokens).split() == words
        # Counts are non-increasing across frequency-ranked ids.
        in_vocab = corpus.counts[:-1]
        assert (np.diff(in_vocab) <= 0).all()
