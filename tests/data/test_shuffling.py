"""Tests for per-epoch batcher shuffling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.batching import BatchSpec, ShardedBatcher


def make_batcher(shuffle_seed=None, world=2, n=400):
    return ShardedBatcher(
        np.arange(n), BatchSpec(2, 5), world, shuffle_seed=shuffle_seed
    )


class TestNoShuffle:
    def test_identity_across_epochs(self):
        b = make_batcher(shuffle_seed=None)
        before = b.batch(0, 0).inputs.copy()
        b.set_epoch(5)
        np.testing.assert_array_equal(b.batch(0, 0).inputs, before)


class TestShuffle:
    def test_epochs_differ(self):
        b = make_batcher(shuffle_seed=7)
        b.set_epoch(0)
        e0 = b.batch(0, 0).inputs.copy()
        b.set_epoch(1)
        e1 = b.batch(0, 0).inputs.copy()
        assert not np.array_equal(e0, e1)

    def test_same_epoch_deterministic(self):
        a = make_batcher(shuffle_seed=7)
        b = make_batcher(shuffle_seed=7)
        a.set_epoch(3)
        b.set_epoch(3)
        np.testing.assert_array_equal(a.batch(1, 2).inputs, b.batch(1, 2).inputs)

    def test_different_seeds_differ(self):
        a = make_batcher(shuffle_seed=1)
        b = make_batcher(shuffle_seed=2)
        a.set_epoch(1)
        b.set_epoch(1)
        assert not np.array_equal(a.batch(0, 0).inputs, b.batch(0, 0).inputs)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            make_batcher(shuffle_seed=1).set_epoch(-1)

    @given(epoch=st.integers(0, 10), seed=st.integers(0, 50))
    @settings(max_examples=30)
    def test_ranks_stay_disjoint_under_shuffle(self, epoch, seed):
        b = make_batcher(shuffle_seed=seed, world=4, n=800)
        b.set_epoch(epoch)
        seen: set[int] = set()
        for rank in range(4):
            vals = set(b.batch(rank, 0).inputs.ravel().tolist())
            assert not (vals & seen)
            seen |= vals

    def test_shuffle_covers_same_tokens(self):
        """A shuffled epoch reads the same token population, reordered."""
        b = make_batcher(shuffle_seed=9, world=2, n=200)

        def epoch_tokens():
            out = []
            for step in range(b.steps_per_epoch):
                for rank in range(2):
                    out.extend(b.batch(rank, step).inputs.ravel().tolist())
            return sorted(out)

        b.set_epoch(0)
        first = epoch_tokens()
        b.set_epoch(1)
        second = epoch_tokens()
        assert first == second


class TestTrainerIntegration:
    def test_trainer_shuffles_per_epoch(self):
        from repro.data import ONE_BILLION_WORD, make_corpus
        from repro.optim import SGD
        from repro.train import (
            DistributedTrainer,
            TrainConfig,
            WordLanguageModel,
            WordLMConfig,
            assert_replicas_synchronized,
        )

        corpus = make_corpus(ONE_BILLION_WORD.scaled(60), 6000, seed=0)
        cfg = TrainConfig(
            world_size=2, batch=BatchSpec(2, 6), base_lr=0.2, shuffle_seed=3
        )
        model_cfg = WordLMConfig(
            vocab_size=60, embedding_dim=6, hidden_dim=8, projection_dim=6,
            num_samples=8,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train, corpus.valid, cfg,
        )
        trainer.train_epoch(max_steps=3)
        first_epoch_batch = trainer.batcher.batch(0, 0).inputs.copy()
        trainer.train_epoch(max_steps=3)
        assert trainer.epochs_done == 2
        assert not np.array_equal(
            trainer.batcher.batch(0, 0).inputs, first_epoch_batch
        )
        assert_replicas_synchronized(trainer.replicas, atol=0.0)
