"""Tests for the Zipf–Mandelbrot distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.zipf import (
    ZipfMandelbrot,
    fit_zipf_exponent,
    heaps_exponent_for_zipf,
    zipf_exponent_for_heaps,
)


class TestDistribution:
    def test_pmf_sums_to_one(self):
        z = ZipfMandelbrot(vocab_size=1000, exponent=1.3, shift=2.0)
        assert z.pmf.sum() == pytest.approx(1.0, rel=1e-12)

    def test_pmf_monotone_decreasing(self):
        z = ZipfMandelbrot(vocab_size=500, exponent=1.2)
        assert (np.diff(z.pmf) < 0).all()

    def test_zipf_headline_ratios(self):
        """Most frequent word ~2x the second, ~3x the third (s=1, q=0)."""
        z = ZipfMandelbrot(vocab_size=100, exponent=1.0, shift=0.0)
        p = z.pmf
        assert p[0] / p[1] == pytest.approx(2.0, rel=1e-9)
        assert p[0] / p[2] == pytest.approx(3.0, rel=1e-9)

    def test_shift_flattens_head(self):
        plain = ZipfMandelbrot(vocab_size=100, exponent=1.5, shift=0.0)
        shifted = ZipfMandelbrot(vocab_size=100, exponent=1.5, shift=5.0)
        assert shifted.pmf[0] < plain.pmf[0]

    def test_sample_range_and_dtype(self):
        z = ZipfMandelbrot(vocab_size=50, exponent=1.4)
        ids = z.sample(10_000, np.random.default_rng(0))
        assert ids.dtype == np.int64
        assert ids.min() >= 0 and ids.max() < 50

    def test_sample_empirical_frequencies(self):
        z = ZipfMandelbrot(vocab_size=20, exponent=1.2)
        ids = z.sample(200_000, np.random.default_rng(1))
        counts = np.bincount(ids, minlength=20)
        np.testing.assert_allclose(counts / ids.size, z.pmf, atol=0.005)

    def test_sample_zero(self):
        z = ZipfMandelbrot(vocab_size=10)
        assert z.sample(0, np.random.default_rng(0)).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfMandelbrot(vocab_size=0)
        with pytest.raises(ValueError):
            ZipfMandelbrot(vocab_size=10, exponent=0.0)
        with pytest.raises(ValueError):
            ZipfMandelbrot(vocab_size=10, shift=-1.0)
        with pytest.raises(ValueError):
            ZipfMandelbrot(vocab_size=10).sample(-1, np.random.default_rng(0))


class TestExpectedTypes:
    def test_zero_tokens(self):
        assert ZipfMandelbrot(vocab_size=10).expected_types(0) == 0.0

    def test_saturates_at_vocab(self):
        z = ZipfMandelbrot(vocab_size=20, exponent=1.0)
        assert z.expected_types(10**7) == pytest.approx(20.0, rel=1e-6)

    def test_matches_empirical(self):
        z = ZipfMandelbrot(vocab_size=5000, exponent=1.5)
        n = 20_000
        rng = np.random.default_rng(2)
        empirical = np.mean(
            [np.unique(z.sample(n, rng)).size for _ in range(5)]
        )
        assert z.expected_types(n) == pytest.approx(empirical, rel=0.05)

    @given(n1=st.integers(0, 10**6), n2=st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_monotone_in_tokens(self, n1, n2):
        z = ZipfMandelbrot(vocab_size=100, exponent=1.3)
        lo, hi = min(n1, n2), max(n1, n2)
        assert z.expected_types(lo) <= z.expected_types(hi) + 1e-9


class TestFitting:
    def test_recovers_exponent_from_samples(self):
        z = ZipfMandelbrot(vocab_size=5000, exponent=1.4)
        ids = z.sample(500_000, np.random.default_rng(3))
        counts = np.bincount(ids)
        est = fit_zipf_exponent(counts, min_count=5)
        assert est == pytest.approx(1.4, abs=0.25)

    def test_too_few_types_rejected(self):
        with pytest.raises(ValueError):
            fit_zipf_exponent(np.array([10, 5]))

    def test_heaps_zipf_duality(self):
        assert heaps_exponent_for_zipf(2.0) == pytest.approx(0.5)
        assert heaps_exponent_for_zipf(0.8) == 1.0
        assert zipf_exponent_for_heaps(0.64) == pytest.approx(1.5625)
        # Round trip above the s > 1 regime.
        assert heaps_exponent_for_zipf(zipf_exponent_for_heaps(0.7)) == pytest.approx(0.7)

    def test_duality_validation(self):
        with pytest.raises(ValueError):
            heaps_exponent_for_zipf(0.0)
        with pytest.raises(ValueError):
            zipf_exponent_for_heaps(1.5)


class TestDegenerateDistributions:
    """Edge cases the serving traffic model leans on (PR-8)."""

    def test_single_type_vocab(self):
        z = ZipfMandelbrot(vocab_size=1, exponent=1.5)
        assert z.pmf.shape == (1,)
        assert z.pmf[0] == pytest.approx(1.0)
        ids = z.sample(100, np.random.default_rng(0))
        assert (ids == 0).all()
        assert z.expected_types(10) == pytest.approx(1.0)

    def test_max_skew_exponent_degenerates_to_head(self):
        """At extreme skew essentially all mass sits on rank 0."""
        z = ZipfMandelbrot(vocab_size=100, exponent=50.0)
        assert z.pmf[0] == pytest.approx(1.0, abs=1e-12)
        ids = z.sample(10_000, np.random.default_rng(1))
        assert (ids == 0).all()
        # expected types saturates at ~1 no matter the sample size
        assert z.expected_types(10**6) == pytest.approx(1.0, abs=1e-6)

    def test_expected_types_zero_tokens(self):
        z = ZipfMandelbrot(vocab_size=10)
        assert z.expected_types(0) == 0.0
        with pytest.raises(ValueError):
            z.expected_types(-1)

    def test_near_uniform_low_exponent(self):
        """The opposite extreme: tiny s approaches uniform."""
        z = ZipfMandelbrot(vocab_size=50, exponent=1e-6)
        np.testing.assert_allclose(z.pmf, 1.0 / 50, rtol=1e-4)

    def test_huge_shift_flattens_to_uniform(self):
        z = ZipfMandelbrot(vocab_size=20, exponent=1.5, shift=1e9)
        np.testing.assert_allclose(z.pmf, 1.0 / 20, rtol=1e-6)
