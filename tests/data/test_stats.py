"""Tests for type/token statistics (Figure 1 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.stats import (
    fit_heaps_law,
    token_type_gap,
    type_token_curve,
    types_at,
)


class TestTypesAt:
    def test_simple_stream(self):
        # "to be or not to be": 4 types, 6 tokens (the paper's example).
        tokens = np.array([0, 1, 2, 3, 0, 1])
        assert types_at(tokens, np.array([6]))[0] == 4
        assert types_at(tokens, np.array([4]))[0] == 4
        assert types_at(tokens, np.array([1]))[0] == 1
        assert types_at(tokens, np.array([0]))[0] == 0

    def test_matches_naive_counting(self):
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 30, 500)
        checkpoints = np.array([1, 7, 100, 499, 500])
        fast = types_at(tokens, checkpoints)
        naive = [np.unique(tokens[:n]).size for n in checkpoints]
        np.testing.assert_array_equal(fast, naive)

    def test_unsorted_checkpoints(self):
        tokens = np.array([5, 5, 1, 2])
        out = types_at(tokens, np.array([4, 1, 2]))
        np.testing.assert_array_equal(out, [3, 1, 1])

    def test_out_of_range_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            types_at(np.array([1, 2]), np.array([3]))
        with pytest.raises(ValueError):
            types_at(np.array([1, 2]), np.array([-1]))

    @given(
        tokens=st.lists(st.integers(0, 15), min_size=1, max_size=200),
    )
    @settings(max_examples=50)
    def test_monotone_nondecreasing(self, tokens):
        arr = np.array(tokens)
        cps = np.arange(len(tokens) + 1)
        counts = types_at(arr, cps)
        assert (np.diff(counts) >= 0).all()
        assert counts[-1] == np.unique(arr).size


class TestCurveAndFit:
    def test_curve_shapes(self):
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 1000, 50_000)
        ns, us = type_token_curve(tokens, num_points=10)
        assert ns.size == us.size
        assert ns[-1] == tokens.size
        assert (us <= ns).all()

    def test_fit_exact_power_law(self):
        ns = np.geomspace(100, 10**6, 20)
        us = 7.02 * ns**0.64
        fit = fit_heaps_law(ns, us)
        assert fit.exponent == pytest.approx(0.64, rel=1e-9)
        assert fit.coefficient == pytest.approx(7.02, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_heaps_law(np.array([10.0, 1000.0]), np.array([10.0, 1000.0]))
        assert fit.predict(500.0) == pytest.approx(500.0)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_heaps_law(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            fit_heaps_law(np.array([1.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            fit_heaps_law(np.array([1.0, 2.0]), np.array([1.0]))

    def test_curve_too_short_rejected(self):
        with pytest.raises(ValueError):
            type_token_curve(np.arange(10), start=512)


class TestGap:
    def test_gap_of_constant_stream(self):
        assert token_type_gap(np.zeros(100, np.int64)) == 100.0

    def test_gap_of_all_distinct(self):
        assert token_type_gap(np.arange(50)) == 1.0

    def test_prefix_gap(self):
        tokens = np.array([0, 0, 0, 1, 2, 3])
        assert token_type_gap(tokens, 3) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            token_type_gap(np.array([1, 2]), 0)
        with pytest.raises(ValueError):
            token_type_gap(np.array([1, 2]), 5)
