"""Tests for data-parallel batching."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.batching import (
    Batch,
    BatchSpec,
    ShardedBatcher,
    make_eval_batches,
)


class TestBatchSpec:
    def test_token_arithmetic(self):
        spec = BatchSpec(sequences_per_rank=32, seq_len=20)
        assert spec.local_batch_tokens == 640
        assert spec.global_batch_tokens(16) == 10_240  # paper's 16-GPU word LM

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchSpec(0, 5)
        with pytest.raises(ValueError):
            BatchSpec(5, 0)
        with pytest.raises(ValueError):
            BatchSpec(1, 1).global_batch_tokens(0)


class TestBatch:
    def test_targets_are_next_token(self):
        tokens = np.arange(100)
        batcher = ShardedBatcher(tokens, BatchSpec(2, 5), world_size=1)
        b = batcher.batch(0, 0)
        np.testing.assert_array_equal(b.targets, b.inputs + 1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Batch(inputs=np.zeros((2, 3)), targets=np.zeros((2, 4)))
        with pytest.raises(ValueError):
            Batch(inputs=np.zeros(6), targets=np.zeros(6))


class TestSharding:
    def test_ranks_see_disjoint_data(self):
        tokens = np.arange(1000)
        batcher = ShardedBatcher(tokens, BatchSpec(2, 10), world_size=4)
        step0 = batcher.step_batches(0)
        seen = [set(b.inputs.ravel().tolist()) for b in step0]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (seen[i] & seen[j])

    def test_consecutive_steps_advance_streams(self):
        tokens = np.arange(1000)
        batcher = ShardedBatcher(tokens, BatchSpec(1, 10), world_size=1)
        b0 = batcher.batch(0, 0)
        b1 = batcher.batch(0, 1)
        # Stream continuity: next window starts where previous targets ended.
        assert b1.inputs[0, 0] == b0.targets[0, -1]

    def test_steps_per_epoch(self):
        tokens = np.arange(101)
        batcher = ShardedBatcher(tokens, BatchSpec(1, 10), world_size=1)
        assert batcher.steps_per_epoch == 10

    def test_too_short_stream_rejected(self):
        with pytest.raises(ValueError):
            ShardedBatcher(np.arange(10), BatchSpec(4, 10), world_size=4)

    def test_rank_and_step_bounds(self):
        batcher = ShardedBatcher(np.arange(100), BatchSpec(1, 5), world_size=2)
        with pytest.raises(ValueError):
            batcher.batch(2, 0)
        with pytest.raises(ValueError):
            batcher.batch(0, batcher.steps_per_epoch)

    def test_2d_tokens_rejected(self):
        with pytest.raises(ValueError):
            ShardedBatcher(np.zeros((5, 5)), BatchSpec(1, 2), world_size=1)

    @given(
        world=st.integers(1, 6),
        seqs=st.integers(1, 4),
        seq_len=st.integers(1, 8),
    )
    @settings(max_examples=40)
    def test_batches_always_full_shape(self, world, seqs, seq_len):
        tokens = np.arange(world * seqs * (seq_len * 3 + 1) + 50)
        spec = BatchSpec(seqs, seq_len)
        batcher = ShardedBatcher(tokens, spec, world)
        for step in range(batcher.steps_per_epoch):
            for rank in range(world):
                b = batcher.batch(rank, step)
                assert b.inputs.shape == (seqs, seq_len)
                np.testing.assert_array_equal(b.targets, b.inputs + 1)


class TestEvalBatches:
    def test_basic(self):
        batches = make_eval_batches(np.arange(200), BatchSpec(2, 8))
        assert all(b.inputs.shape == (2, 8) for b in batches)

    def test_max_batches(self):
        batches = make_eval_batches(np.arange(500), BatchSpec(1, 5), max_batches=3)
        assert len(batches) == 3

    def test_max_batches_validation(self):
        with pytest.raises(ValueError):
            make_eval_batches(np.arange(100), BatchSpec(1, 5), max_batches=0)
