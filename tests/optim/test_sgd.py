"""Tests for sparse-aware SGD."""

import numpy as np
import pytest

from repro.nn.parameter import Parameter, SparseGrad
from repro.optim import SGD


def sparse(indices, values):
    return SparseGrad(np.asarray(indices, np.int64), np.asarray(values, float))


class TestDenseUpdates:
    def test_basic_step(self):
        p = Parameter(np.ones(3))
        p.accumulate_grad(np.array([1.0, 2.0, 3.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.9, 0.8, 0.7])

    def test_grads_cleared_after_step(self):
        p = Parameter(np.ones(3))
        p.accumulate_grad(np.ones(3))
        SGD([p], lr=0.1).step()
        assert p.grad is None

    def test_step_without_grad_is_noop(self):
        p = Parameter(np.ones(3))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, 1.0)


class TestSparseUpdates:
    def test_duplicate_rows_summed_once(self):
        p = Parameter(np.zeros((4, 2)))
        p.accumulate_sparse_grad(sparse([1, 1, 3], [[1, 1], [1, 1], [2, 2]]))
        SGD([p], lr=1.0).step()
        np.testing.assert_allclose(p.data[1], [-2, -2])
        np.testing.assert_allclose(p.data[3], [-2, -2])
        np.testing.assert_allclose(p.data[0], 0)

    def test_sparse_equals_densified_update(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 6, 20)
        vals = rng.standard_normal((20, 3))
        p_sparse = Parameter(np.ones((6, 3)))
        p_dense = Parameter(np.ones((6, 3)))
        p_sparse.accumulate_sparse_grad(sparse(idx, vals))
        p_dense.accumulate_grad(sparse(idx, vals).to_dense(6))
        SGD([p_sparse], lr=0.05).step()
        SGD([p_dense], lr=0.05).step()
        np.testing.assert_allclose(p_sparse.data, p_dense.data, rtol=1e-12)


class TestClipping:
    def test_clip_rescales_large_gradients(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.array([3.0, 4.0]))  # norm 5
        SGD([p], lr=1.0, clip_norm=1.0).step()
        np.testing.assert_allclose(np.linalg.norm(p.data), 1.0, rtol=1e-6)

    def test_clip_leaves_small_gradients(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.array([0.3, 0.4]))
        SGD([p], lr=1.0, clip_norm=1.0).step()
        np.testing.assert_allclose(p.data, [-0.3, -0.4])

    def test_clip_covers_sparse_grads(self):
        p = Parameter(np.zeros((3, 1)))
        p.accumulate_sparse_grad(sparse([0], [[30.0]]))
        SGD([p], lr=1.0, clip_norm=3.0).step()
        assert abs(p.data[0, 0]) == pytest.approx(3.0, rel=1e-6)


class TestValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_nonpositive_clip_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, clip_norm=0.0)
