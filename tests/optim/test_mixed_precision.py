"""Tests for FP32-master-weight mixed-precision training."""

import numpy as np
import pytest

from repro.nn.parameter import Parameter, SparseGrad
from repro.optim import SGD, Adam
from repro.optim.mixed_precision import MasterWeightOptimizer


def fp16_param(shape, seed=0):
    rng = np.random.default_rng(seed)
    return Parameter(rng.standard_normal(shape).astype(np.float16))


class TestUpdateSwamping:
    def test_tiny_updates_lost_in_pure_fp16(self):
        """The motivating failure: lr*grad below FP16 ulp at the weight's
        magnitude silently does nothing."""
        p = Parameter(np.ones(4, np.float16))
        opt = SGD([p], lr=1e-4)
        for _ in range(100):
            p.accumulate_grad(np.full(4, 1e-1, np.float16))  # step 1e-5
            opt.step()
        np.testing.assert_array_equal(p.data, np.ones(4, np.float16))

    def test_master_weights_accumulate_tiny_updates(self):
        """Same schedule with FP32 masters: the 100 * 1e-5 drift lands."""
        p = Parameter(np.ones(4, np.float16))
        opt = MasterWeightOptimizer(
            [p], lambda params, lr: SGD(params, lr), lr=1e-4
        )
        for _ in range(100):
            p.accumulate_grad(np.full(4, 1e-1, np.float16))
            opt.step()
        assert float(p.data[0]) == pytest.approx(1.0 - 1e-3, rel=0.01)


class TestSemantics:
    def test_matches_fp32_training_within_cast_noise(self):
        rng = np.random.default_rng(1)
        w32 = rng.standard_normal(8).astype(np.float32)
        p32 = Parameter(w32.copy())
        p16 = Parameter(w32.astype(np.float16))
        opt32 = SGD([p32], lr=0.1)
        opt16 = MasterWeightOptimizer(
            [p16], lambda params, lr: SGD(params, lr), lr=0.1
        )
        for i in range(20):
            g = rng.standard_normal(8).astype(np.float32) * 0.1
            p32.accumulate_grad(g)
            p16.accumulate_grad(g.astype(np.float16))
            opt32.step()
            opt16.step()
        np.testing.assert_allclose(
            p16.data.astype(np.float32), p32.data, atol=5e-3
        )

    def test_sparse_grads_flow_to_master(self):
        p = Parameter(np.zeros((4, 2), np.float16))
        opt = MasterWeightOptimizer(
            [p], lambda params, lr: SGD(params, lr), lr=1.0
        )
        p.accumulate_sparse_grad(
            SparseGrad(np.array([2]), np.ones((1, 2), np.float16))
        )
        opt.step()
        np.testing.assert_allclose(p.data[2].astype(np.float64), -1.0)
        np.testing.assert_allclose(p.data[[0, 1, 3]].astype(np.float64), 0.0)

    def test_live_grads_cleared(self):
        p = fp16_param(3)
        opt = MasterWeightOptimizer(
            [p], lambda params, lr: SGD(params, lr), lr=0.1
        )
        p.accumulate_grad(np.ones(3, np.float16))
        opt.step()
        assert p.grad is None and not p.sparse_grads

    def test_works_with_adam_inner(self):
        p = Parameter(np.array([5.0], np.float16))
        opt = MasterWeightOptimizer(
            [p], lambda params, lr: Adam(params, lr), lr=0.5
        )
        for _ in range(200):
            p.accumulate_grad((2 * p.data.astype(np.float32)).astype(np.float16))
            opt.step()
        assert abs(float(p.data[0])) < 0.05

    def test_lr_property_proxies_inner(self):
        p = fp16_param(2)
        opt = MasterWeightOptimizer(
            [p], lambda params, lr: SGD(params, lr), lr=0.1
        )
        opt.lr = 0.05
        assert opt.inner.lr == 0.05


class TestStateDict:
    def test_roundtrip(self):
        p = fp16_param(4, seed=2)
        opt = MasterWeightOptimizer(
            [p], lambda params, lr: Adam(params, lr), lr=0.01
        )
        p.accumulate_grad(np.ones(4, np.float16))
        opt.step()
        state = opt.state_dict()

        q = fp16_param(4, seed=9)  # different init
        opt2 = MasterWeightOptimizer(
            [q], lambda params, lr: Adam(params, lr), lr=0.01
        )
        opt2.load_state_dict(state)
        np.testing.assert_array_equal(q.data, p.data)
        # Continue identically.
        for o, r in ((opt, p), (opt2, q)):
            r.accumulate_grad(np.full(4, 0.5, np.float16))
            o.step()
        np.testing.assert_array_equal(p.data, q.data)

    def test_shape_mismatch_rejected(self):
        p = fp16_param(4)
        opt = MasterWeightOptimizer(
            [p], lambda params, lr: SGD(params, lr), lr=0.1
        )
        state = opt.state_dict()
        state["master0"] = np.zeros(9, np.float32)
        with pytest.raises(ValueError):
            opt.load_state_dict(state)


class TestValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            MasterWeightOptimizer([], lambda p, lr: SGD(p, lr), lr=0.1)

    def test_non_float_master_rejected(self):
        with pytest.raises(ValueError):
            MasterWeightOptimizer(
                [fp16_param(2)], lambda p, lr: SGD(p, lr), lr=0.1,
                master_dtype=np.int64,
            )
