"""Tests for Adam with lazy sparse updates."""

import numpy as np
import pytest

from repro.nn.parameter import Parameter, SparseGrad
from repro.optim import Adam


def sparse(indices, values):
    return SparseGrad(np.asarray(indices, np.int64), np.asarray(values, float))


class TestDense:
    def test_first_step_magnitude(self):
        """With bias correction, step 1 moves by ~lr regardless of grad scale."""
        p = Parameter(np.zeros(1))
        p.accumulate_grad(np.array([1e-3]))
        Adam([p], lr=0.1).step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            p.accumulate_grad(2 * p.data)  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.accumulate_grad(np.array([0.0]))
        opt.step()
        assert p.data[0] == pytest.approx(0.95)

    def test_state_bytes(self):
        p = Parameter(np.zeros((10, 10)))
        opt = Adam([p], lr=0.1)
        assert opt.state_bytes() == 2 * p.nbytes


class TestLazySparse:
    def test_untouched_rows_unchanged(self):
        p = Parameter(np.ones((5, 2)))
        p.accumulate_sparse_grad(sparse([1, 3], [[1, 1], [1, 1]]))
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data[[0, 2, 4]], 1.0)
        assert (p.data[[1, 3]] < 1.0).all()

    def test_per_row_bias_correction(self):
        """A row first touched at global step 10 gets step-1 correction."""
        p = Parameter(np.zeros((2, 1)))
        opt = Adam([p], lr=0.1)
        for _ in range(9):
            p.accumulate_sparse_grad(sparse([0], [[1.0]]))
            opt.step()
        before = p.data[1, 0]
        p.accumulate_sparse_grad(sparse([1], [[1e-3]]))
        opt.step()
        # Row 1's very first update moves by ~lr, as a fresh Adam would.
        assert p.data[1, 0] - before == pytest.approx(-0.1, rel=1e-3)

    def test_duplicate_indices_coalesced(self):
        p1 = Parameter(np.zeros((3, 1)))
        p2 = Parameter(np.zeros((3, 1)))
        p1.accumulate_sparse_grad(sparse([0, 0], [[1.0], [1.0]]))
        p2.accumulate_sparse_grad(sparse([0], [[2.0]]))
        Adam([p1], lr=0.1).step()
        Adam([p2], lr=0.1).step()
        np.testing.assert_allclose(p1.data, p2.data, rtol=1e-12)

    def test_sparse_weight_decay_touched_rows_only(self):
        p = Parameter(np.ones((3, 1)))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.accumulate_sparse_grad(sparse([2], [[0.0]]))
        opt.step()
        assert p.data[0, 0] == 1.0
        assert p.data[2, 0] == pytest.approx(0.95)


class TestValidation:
    def test_bad_hyperparameters(self):
        p = [Parameter(np.zeros(1))]
        with pytest.raises(ValueError):
            Adam(p, lr=0.0)
        with pytest.raises(ValueError):
            Adam(p, lr=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(p, lr=0.1, beta2=-0.1)
        with pytest.raises(ValueError):
            Adam(p, lr=0.1, weight_decay=-1.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)
