"""Tests for LR schedules and loss scalers."""

import math

import numpy as np
import pytest

from repro.nn.parameter import Parameter, SparseGrad
from repro.optim import (
    DynamicLossScaler,
    EpochDecaySchedule,
    StaticLossScaler,
    grads_are_finite,
    scaled_base_lr,
)


class TestLRScaling:
    def test_single_node_keeps_base(self):
        assert scaled_base_lr(0.2, 1) == 0.2

    def test_paper_64_gpu_word_lm_rate(self):
        """0.2 * ln(8 nodes) = 0.416, the paper's '0.41 for 64 GPUs'."""
        assert scaled_base_lr(0.2, 8) == pytest.approx(0.416, abs=0.01)

    def test_paper_char_lm_rate(self):
        """1e-3 * ln(8) = 2.07e-3, as quoted for the char LM at 64 GPUs."""
        assert scaled_base_lr(1e-3, 8) == pytest.approx(2.07e-3, abs=0.02e-3)

    def test_monotone_in_nodes(self):
        rates = [scaled_base_lr(0.2, n) for n in (2, 4, 8, 24)]
        assert rates == sorted(rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_base_lr(0.0, 4)
        with pytest.raises(ValueError):
            scaled_base_lr(0.1, 0)


class TestEpochDecay:
    def test_decay_progression(self):
        s = EpochDecaySchedule(initial_lr=1.0, decay=0.9)
        assert s.lr_at_epoch(0) == 1.0
        assert s.lr_at_epoch(2) == pytest.approx(0.81)

    def test_paper_range_enforced(self):
        with pytest.raises(ValueError):
            EpochDecaySchedule(initial_lr=1.0, decay=0.5)
        EpochDecaySchedule(initial_lr=1.0, decay=0.5, strict=False)

    def test_for_cluster_combines_scaling(self):
        s = EpochDecaySchedule.for_cluster(0.2, num_nodes=8, decay=0.9)
        assert s.initial_lr == pytest.approx(0.2 * math.log(8))

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            EpochDecaySchedule(1.0).lr_at_epoch(-1)


class TestStaticLossScaler:
    def test_unscale_dense_and_sparse(self):
        p = Parameter(np.zeros((2, 2)))
        p.accumulate_grad(np.full((2, 2), 512.0))
        p.accumulate_sparse_grad(
            SparseGrad(np.array([0], np.int64), np.array([[512.0, 512.0]]))
        )
        StaticLossScaler(512.0).unscale_grads([p])
        np.testing.assert_allclose(p.grad, 1.0)
        np.testing.assert_allclose(p.sparse_grads[0].values, 1.0)

    def test_scale_below_one_rejected(self):
        with pytest.raises(ValueError):
            StaticLossScaler(0.5)

    def test_update_is_noop(self):
        s = StaticLossScaler(256.0)
        s.update(found_overflow=True)
        assert s.scale == 256.0


class TestDynamicLossScaler:
    def test_grows_after_clean_interval(self):
        s = DynamicLossScaler(initial_scale=4.0, growth_interval=3)
        for _ in range(3):
            s.update(found_overflow=False)
        assert s.scale == 8.0

    def test_backs_off_on_overflow(self):
        s = DynamicLossScaler(initial_scale=4.0)
        s.update(found_overflow=True)
        assert s.scale == 2.0

    def test_overflow_resets_growth_counter(self):
        s = DynamicLossScaler(initial_scale=4.0, growth_interval=2)
        s.update(False)
        s.update(True)   # back to 2, counter reset
        s.update(False)
        assert s.scale == 2.0  # only one clean step since overflow

    def test_bounded_by_min_and_max(self):
        s = DynamicLossScaler(
            initial_scale=2.0, growth_interval=1, min_scale=1.0, max_scale=4.0
        )
        s.update(True)
        s.update(True)
        assert s.scale == 1.0
        for _ in range(10):
            s.update(False)
        assert s.scale == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicLossScaler(growth_factor=1.0)
        with pytest.raises(ValueError):
            DynamicLossScaler(backoff_factor=1.0)
        with pytest.raises(ValueError):
            DynamicLossScaler(growth_interval=0)
        with pytest.raises(ValueError):
            DynamicLossScaler(initial_scale=0.5, min_scale=1.0)

    def test_non_power_of_two_knobs_rejected(self):
        """Regression: a 3.0 bound let the scale drift off powers of two."""
        with pytest.raises(ValueError, match="initial_scale.*power of two"):
            DynamicLossScaler(initial_scale=3.0)
        with pytest.raises(ValueError, match="growth_factor.*power of two"):
            DynamicLossScaler(growth_factor=3.0)
        with pytest.raises(ValueError, match="backoff_factor.*power of two"):
            DynamicLossScaler(backoff_factor=0.75)
        with pytest.raises(ValueError, match="min_scale.*power of two"):
            DynamicLossScaler(min_scale=3.0)
        with pytest.raises(ValueError, match="max_scale.*power of two"):
            DynamicLossScaler(max_scale=3.0 * 2.0**14)

    def test_power_of_two_invariant_holds_under_churn(self):
        from repro.optim import is_power_of_two

        s = DynamicLossScaler(
            initial_scale=2.0**10, growth_interval=2,
            min_scale=2.0**-4, max_scale=2.0**20,
        )
        overflow = [True, False, False, True, False] * 8
        for flag in overflow:
            s.update(flag)
            assert is_power_of_two(s.scale), s.scale

    def test_is_power_of_two(self):
        from repro.optim import is_power_of_two

        assert is_power_of_two(1.0)
        assert is_power_of_two(0.5)
        assert is_power_of_two(2.0**30)
        assert not is_power_of_two(3.0)
        assert not is_power_of_two(0.0)
        assert not is_power_of_two(-2.0)
        assert not is_power_of_two(float("inf"))
        assert not is_power_of_two(float("nan"))


class TestOverflowDetection:
    def test_finite_grads_pass(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.array([1.0, 2.0]))
        assert grads_are_finite([p])

    def test_inf_dense_detected(self):
        p = Parameter(np.zeros(2))
        p.accumulate_grad(np.array([1.0, np.inf]))
        assert not grads_are_finite([p])

    def test_nan_sparse_detected(self):
        p = Parameter(np.zeros((2, 1)))
        p.accumulate_sparse_grad(
            SparseGrad(np.array([0], np.int64), np.array([[np.nan]]))
        )
        assert not grads_are_finite([p])

    def test_no_grads_is_finite(self):
        assert grads_are_finite([Parameter(np.zeros(2))])
