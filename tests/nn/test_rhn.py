"""Gradient-checked tests for the Recurrent Highway Network."""

import numpy as np
import pytest

from repro.nn import RHN

from ..helpers import numerical_grad


def make_rhn(i=2, h=3, depth=3, seed=0):
    # Gradient checks need double precision; the library default is FP32.
    return RHN(i, h, depth, np.random.default_rng(seed), dtype=np.float64)


class TestForward:
    def test_output_shape(self):
        rhn = make_rhn()
        x = np.zeros((2, 5, 2))
        out, cache = rhn.forward(x)
        assert out.shape == (2, 5, 3)
        assert cache["final_state"].shape == (2, 3)

    def test_carry_bias_opens_gates(self):
        """Transform-gate biases start at -2 so state passes through."""
        rhn = make_rhn(h=4)
        np.testing.assert_allclose(rhn.bias.data[:, 4:], -2.0)

    def test_statefulness_equals_concatenation(self):
        rhn = make_rhn(seed=1)
        x = np.random.default_rng(2).standard_normal((2, 6, 2))
        full, _ = rhn.forward(x)
        first, cache1 = rhn.forward(x[:, :2])
        second, _ = rhn.forward(x[:, 2:], state=cache1["final_state"])
        np.testing.assert_allclose(
            np.concatenate([first, second], axis=1), full, rtol=1e-12
        )

    def test_depth_one_is_single_highway_step(self):
        rhn = make_rhn(depth=1)
        x = np.random.default_rng(3).standard_normal((1, 2, 2))
        out, _ = rhn.forward(x)
        assert out.shape == (1, 2, 3)

    def test_bad_shapes_rejected(self):
        rhn = make_rhn()
        with pytest.raises(ValueError):
            rhn.forward(np.zeros((1, 2, 5)))
        with pytest.raises(ValueError):
            rhn.forward(np.zeros((1, 2, 2)), state=np.zeros((2, 3)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RHN(2, 3, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            RHN(0, 3, 1, np.random.default_rng(0))


class TestBackward:
    def test_gradients_match_finite_difference(self):
        rhn = make_rhn(i=2, h=3, depth=2, seed=4)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 3, 2))
        g_out = rng.standard_normal((2, 3, 3))

        def loss():
            out, _ = rhn.forward(x)
            return float((out * g_out).sum())

        out, cache = rhn.forward(x)
        dx = rhn.backward(g_out, cache)

        for param in (rhn.w_x, rhn.r, rhn.bias):
            numeric = numerical_grad(loss, param.data)
            np.testing.assert_allclose(
                param.grad, numeric, rtol=1e-5, atol=1e-8,
                err_msg=f"gradient mismatch for {param.name}",
            )
        numeric_x = numerical_grad(loss, x)
        np.testing.assert_allclose(dx, numeric_x, rtol=1e-5, atol=1e-8)

    def test_deep_recurrence_gradients(self):
        """Depth 5 exercises the through-depth backward chain."""
        rhn = make_rhn(i=2, h=2, depth=5, seed=6)
        rng = np.random.default_rng(7)
        x = rng.standard_normal((1, 2, 2))
        g_out = rng.standard_normal((1, 2, 2))

        def loss():
            out, _ = rhn.forward(x)
            return float((out * g_out).sum())

        out, cache = rhn.forward(x)
        rhn.backward(g_out, cache)
        numeric = numerical_grad(loss, rhn.r.data)
        np.testing.assert_allclose(rhn.r.grad, numeric, rtol=1e-5, atol=1e-8)

    def test_grad_shape_validation(self):
        rhn = make_rhn()
        _, cache = rhn.forward(np.zeros((1, 2, 2)))
        with pytest.raises(ValueError):
            rhn.backward(np.zeros((1, 2, 5)), cache)
