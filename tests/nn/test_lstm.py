"""Gradient-checked tests for the LSTM layer."""

import numpy as np
import pytest

from repro.nn import LSTM

from ..helpers import numerical_grad


def make_lstm(i=3, h=4, seed=0):
    # Gradient checks need double precision; the library default is FP32.
    return LSTM(i, h, np.random.default_rng(seed), dtype=np.float64)


class TestForward:
    def test_output_shape(self):
        lstm = make_lstm()
        x = np.zeros((2, 5, 3))
        hs, cache = lstm.forward(x)
        assert hs.shape == (2, 5, 4)
        h_f, c_f = cache["final_state"]
        assert h_f.shape == (2, 4)
        assert c_f.shape == (2, 4)

    def test_forget_bias_initialized_to_one(self):
        lstm = make_lstm(h=6)
        np.testing.assert_allclose(lstm.bias.data[6:12], 1.0)

    def test_zero_state_default(self):
        lstm = make_lstm()
        x = np.random.default_rng(1).standard_normal((1, 3, 3))
        hs1, _ = lstm.forward(x)
        hs2, _ = lstm.forward(x, state=(np.zeros((1, 4)), np.zeros((1, 4))))
        np.testing.assert_allclose(hs1, hs2)

    def test_state_carry_changes_output(self):
        lstm = make_lstm()
        x = np.random.default_rng(1).standard_normal((1, 3, 3))
        hs1, _ = lstm.forward(x)
        hs2, _ = lstm.forward(x, state=(np.ones((1, 4)), np.ones((1, 4))))
        assert np.abs(hs1 - hs2).max() > 1e-6

    def test_statefulness_equals_concatenation(self):
        """Carrying state across two windows == one long window."""
        lstm = make_lstm()
        x = np.random.default_rng(2).standard_normal((2, 6, 3))
        full, _ = lstm.forward(x)
        first, cache1 = lstm.forward(x[:, :3])
        second, _ = lstm.forward(x[:, 3:], state=cache1["final_state"])
        np.testing.assert_allclose(
            np.concatenate([first, second], axis=1), full, rtol=1e-12
        )

    def test_bad_input_shapes_rejected(self):
        lstm = make_lstm()
        with pytest.raises(ValueError):
            lstm.forward(np.zeros((2, 5, 7)))
        with pytest.raises(ValueError):
            lstm.forward(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            lstm.forward(np.zeros((2, 5, 3)), state=(np.zeros((3, 4)), np.zeros((3, 4))))


class TestBackward:
    def test_gradients_match_finite_difference(self):
        lstm = make_lstm(i=2, h=3, seed=3)
        rng = np.random.default_rng(4)
        x = rng.standard_normal((2, 4, 2))
        g_out = rng.standard_normal((2, 4, 3))

        def loss():
            hs, _ = lstm.forward(x)
            return float((hs * g_out).sum())

        hs, cache = lstm.forward(x)
        dx = lstm.backward(g_out, cache)

        for param in (lstm.w_x, lstm.w_h, lstm.bias):
            numeric = numerical_grad(loss, param.data)
            np.testing.assert_allclose(
                param.grad, numeric, rtol=1e-5, atol=1e-8,
                err_msg=f"gradient mismatch for {param.name}",
            )
        numeric_x = numerical_grad(loss, x)
        np.testing.assert_allclose(dx, numeric_x, rtol=1e-5, atol=1e-8)

    def test_gradient_with_carried_state(self):
        lstm = make_lstm(i=2, h=3, seed=5)
        rng = np.random.default_rng(6)
        x = rng.standard_normal((1, 3, 2))
        state = (rng.standard_normal((1, 3)), rng.standard_normal((1, 3)))
        g_out = rng.standard_normal((1, 3, 3))

        def loss():
            hs, _ = lstm.forward(x, state=state)
            return float((hs * g_out).sum())

        hs, cache = lstm.forward(x, state=state)
        lstm.backward(g_out, cache)
        numeric = numerical_grad(loss, lstm.w_h.data)
        np.testing.assert_allclose(lstm.w_h.grad, numeric, rtol=1e-5, atol=1e-8)

    def test_grad_shape_validation(self):
        lstm = make_lstm()
        x = np.zeros((2, 5, 3))
        _, cache = lstm.forward(x)
        with pytest.raises(ValueError):
            lstm.backward(np.zeros((2, 5, 7)), cache)

    def test_gradients_accumulate_across_calls(self):
        lstm = make_lstm(i=2, h=2)
        x = np.random.default_rng(7).standard_normal((1, 2, 2))
        g = np.ones((1, 2, 2))
        _, cache = lstm.forward(x)
        lstm.backward(g, cache)
        first = lstm.w_x.grad.copy()
        _, cache = lstm.forward(x)
        lstm.backward(g, cache)
        np.testing.assert_allclose(lstm.w_x.grad, 2 * first, rtol=1e-12)
