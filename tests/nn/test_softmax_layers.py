"""Tests for the full-softmax and sampled-softmax output layers."""

import numpy as np
import pytest

from repro.nn import FullSoftmaxLoss, LogUniformSampler, SampledSoftmaxLoss

from ..helpers import numerical_grad


def rng(seed=0):
    return np.random.default_rng(seed)


class TestFullSoftmaxLoss:
    def test_loss_positive_and_reasonable(self):
        layer = FullSoftmaxLoss(10, 4, rng())
        hidden = rng(1).standard_normal((6, 4))
        loss, _ = layer.forward(hidden, np.arange(6) % 10)
        assert 0 < loss < 10

    def test_gradients_match_finite_difference(self):
        layer = FullSoftmaxLoss(5, 3, rng(2), dtype=np.float64)
        hidden = rng(3).standard_normal((4, 3))
        targets = np.array([0, 4, 2, 2])

        def loss_fn():
            loss, _ = layer.forward(hidden, targets)
            return loss

        loss, cache = layer.forward(hidden, targets)
        dhidden = layer.backward(cache)
        np.testing.assert_allclose(
            layer.weight.grad, numerical_grad(loss_fn, layer.weight.data),
            rtol=1e-5, atol=1e-8,
        )
        np.testing.assert_allclose(
            layer.bias.grad, numerical_grad(loss_fn, layer.bias.data),
            rtol=1e-5, atol=1e-8,
        )
        np.testing.assert_allclose(
            dhidden, numerical_grad(loss_fn, hidden), rtol=1e-5, atol=1e-8
        )

    def test_loss_scale_multiplies_gradients(self):
        layer = FullSoftmaxLoss(5, 3, rng(2))
        hidden = rng(3).standard_normal((4, 3))
        targets = np.array([0, 1, 2, 3])
        _, cache = layer.forward(hidden, targets)
        layer.backward(cache)
        g1 = layer.weight.grad.copy()
        layer.zero_grad()
        _, cache = layer.forward(hidden, targets)
        layer.backward(cache, loss_scale=256.0)
        np.testing.assert_allclose(layer.weight.grad, 256.0 * g1, rtol=1e-12)

    def test_shape_validation(self):
        layer = FullSoftmaxLoss(5, 3, rng())
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 4)), np.array([0, 1]))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 3)), np.array([0]))


class TestLogUniformSampler:
    def test_probs_decrease_with_rank(self):
        s = LogUniformSampler(1000)
        p = s.probs(np.arange(1000))
        assert (np.diff(p) < 0).all()
        assert p.sum() == pytest.approx(1.0, rel=1e-9)

    def test_sample_unique_and_in_range(self):
        s = LogUniformSampler(50)
        ids = s.sample(30, rng(0))
        assert len(set(ids.tolist())) == 30
        assert ids.min() >= 0 and ids.max() < 50

    def test_sample_full_vocab(self):
        s = LogUniformSampler(10)
        ids = s.sample(10, rng(1))
        assert sorted(ids.tolist()) == list(range(10))

    def test_sample_empirical_skew(self):
        """Small ids (frequent words) must be sampled far more often."""
        s = LogUniformSampler(10_000)
        g = rng(2)
        draws = np.concatenate([s.sample(50, g) for _ in range(200)])
        head = (draws < 100).mean()
        tail = (draws >= 5000).mean()
        assert head > tail * 2

    def test_expected_log_count_monotone(self):
        s = LogUniformSampler(1000)
        logc = s.expected_log_count(np.arange(1000), 64)
        assert (np.diff(logc) < 0).all()
        assert (logc <= 0).all()

    def test_invalid_requests(self):
        s = LogUniformSampler(10)
        with pytest.raises(ValueError):
            s.sample(11, rng(0))
        with pytest.raises(ValueError):
            s.sample(0, rng(0))
        with pytest.raises(ValueError):
            LogUniformSampler(1)


class TestSampledSoftmaxLoss:
    def make(self, v=20, h=3, s=6, seed=4):
        # Gradient checks need double precision; the library default is FP32.
        return SampledSoftmaxLoss(v, h, s, rng(seed), dtype=np.float64)

    def test_loss_finite(self):
        layer = self.make()
        hidden = rng(5).standard_normal((7, 3))
        loss, _ = layer.forward(hidden, np.arange(7), rng(6))
        assert np.isfinite(loss) and loss > 0

    def test_same_rng_state_gives_same_candidates(self):
        """The seeding technique's foundation: equal seeds, equal samples."""
        layer = self.make()
        hidden = rng(5).standard_normal((4, 3))
        t = np.array([1, 2, 3, 4])
        _, c1 = layer.forward(hidden, t, np.random.default_rng(99))
        _, c2 = layer.forward(hidden, t, np.random.default_rng(99))
        np.testing.assert_array_equal(c1["sampled_ids"], c2["sampled_ids"])

    def test_different_seeds_give_different_candidates(self):
        layer = self.make(v=1000, s=20)
        hidden = rng(5).standard_normal((2, 3))
        t = np.array([0, 1])
        _, c1 = layer.forward(hidden, t, np.random.default_rng(1))
        _, c2 = layer.forward(hidden, t, np.random.default_rng(2))
        assert set(c1["sampled_ids"]) != set(c2["sampled_ids"])

    def test_gradients_match_finite_difference(self):
        layer = self.make(v=12, h=3, s=5, seed=7)
        hidden = rng(8).standard_normal((4, 3))
        targets = np.array([0, 3, 3, 11])
        sampled = np.array([1, 2, 5, 7, 9])

        def loss_fn():
            loss, _ = layer.forward(hidden, targets, rng(0), sampled_ids=sampled)
            return loss

        loss, cache = layer.forward(hidden, targets, rng(0), sampled_ids=sampled)
        dhidden = layer.backward(cache)
        analytic_w = layer.weight.merged_sparse_grad().to_dense(12)
        np.testing.assert_allclose(
            analytic_w, numerical_grad(loss_fn, layer.weight.data),
            rtol=1e-5, atol=1e-8,
        )
        np.testing.assert_allclose(
            dhidden, numerical_grad(loss_fn, hidden), rtol=1e-5, atol=1e-8
        )

    def test_accidental_hits_masked(self):
        """A negative equal to the target must contribute no gradient."""
        layer = self.make(v=12, h=3, s=4, seed=9)
        hidden = rng(10).standard_normal((2, 3))
        targets = np.array([5, 6])
        sampled = np.array([5, 1, 2, 3])  # 5 collides with row 0's target
        loss, cache = layer.forward(hidden, targets, rng(0), sampled_ids=sampled)
        assert np.isfinite(loss)
        layer.backward(cache)
        merged = layer.weight.merged_sparse_grad()
        dense = merged.to_dense(12)
        # Row 5 receives the true-target path of row 0 plus the candidate
        # path of row 1 — but NOT row 0's masked candidate contribution.
        d_true_row0 = cache["dlogits"][0, 0]
        d_samp_row1 = cache["dlogits"][1, 1]  # candidate 5 for row 1
        expected = d_true_row0 * hidden[0] + d_samp_row1 * hidden[1]
        np.testing.assert_allclose(dense[5], expected, rtol=1e-10)
        assert cache["hit_mask"][0, 0] and not cache["hit_mask"][1, 0]

    def test_sparse_grad_only_touches_candidates_and_targets(self):
        layer = self.make(v=30, h=3, s=5)
        hidden = rng(11).standard_normal((3, 3))
        targets = np.array([20, 21, 22])
        loss, cache = layer.forward(hidden, targets, rng(12))
        layer.backward(cache)
        merged = layer.weight.merged_sparse_grad()
        touched = set(merged.indices.tolist())
        allowed = set(targets.tolist()) | set(cache["sampled_ids"].tolist())
        assert touched <= allowed

    def test_full_nll_matches_full_softmax_definition(self):
        layer = self.make(v=8, h=3)
        hidden = rng(13).standard_normal((5, 3))
        targets = np.array([0, 1, 2, 3, 4])
        nll = layer.full_nll(hidden, targets)
        logits = hidden @ layer.weight.data.T
        logp = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -logp[np.arange(5), targets].mean()
        assert nll == pytest.approx(expected, rel=1e-9)

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            SampledSoftmaxLoss(10, 3, 10, rng())
        with pytest.raises(ValueError):
            SampledSoftmaxLoss(10, 0, 5, rng())
