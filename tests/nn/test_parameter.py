"""Tests for Parameter and SparseGrad."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nn.parameter import Parameter, SparseGrad


def sparse(indices, values=None, dim=2):
    indices = np.asarray(indices, dtype=np.int64)
    if values is None:
        values = np.arange(indices.size * dim, dtype=float).reshape(-1, dim)
    return SparseGrad(indices=indices, values=values)


class TestSparseGrad:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            SparseGrad(indices=np.zeros((2, 2), np.int64), values=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            SparseGrad(indices=np.zeros(2, np.int64), values=np.zeros(2))
        with pytest.raises(ValueError):
            SparseGrad(indices=np.zeros(3, np.int64), values=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            SparseGrad(indices=np.zeros(2, float), values=np.zeros((2, 3)))

    def test_coalesce_sums_duplicates(self):
        g = sparse([3, 1, 3], values=np.array([[1.0, 2], [3, 4], [5, 6]]))
        c = g.coalesce()
        np.testing.assert_array_equal(c.indices, [1, 3])
        np.testing.assert_allclose(c.values, [[3, 4], [6, 8]])

    def test_coalesce_idempotent(self):
        g = sparse([5, 5, 2, 0, 2])
        once = g.coalesce()
        twice = once.coalesce()
        np.testing.assert_array_equal(once.indices, twice.indices)
        np.testing.assert_allclose(once.values, twice.values)

    def test_coalesce_preserves_total_mass(self):
        rng = np.random.default_rng(0)
        g = sparse(rng.integers(0, 5, 30), values=rng.standard_normal((30, 4)))
        np.testing.assert_allclose(
            g.coalesce().values.sum(axis=0), g.values.sum(axis=0)
        )

    def test_to_dense_accumulates(self):
        g = sparse([0, 2, 0], values=np.array([[1.0, 1], [2, 2], [3, 3]]))
        dense = g.to_dense(4)
        np.testing.assert_allclose(dense[0], [4, 4])
        np.testing.assert_allclose(dense[2], [2, 2])
        np.testing.assert_allclose(dense[[1, 3]], 0)

    def test_to_dense_range_checks(self):
        g = sparse([3])
        with pytest.raises(ValueError):
            g.to_dense(3)
        with pytest.raises(ValueError):
            sparse([-1]).to_dense(5)

    @given(
        idx=st.lists(st.integers(0, 9), min_size=1, max_size=40),
        seed=st.integers(0, 1000),
    )
    def test_coalesce_dense_equivalence(self, idx, seed):
        rng = np.random.default_rng(seed)
        g = sparse(np.array(idx), values=rng.standard_normal((len(idx), 3)))
        np.testing.assert_allclose(
            g.to_dense(10), g.coalesce().to_dense(10), rtol=1e-12, atol=1e-12
        )

    def test_nbytes(self):
        g = sparse([1, 2], values=np.zeros((2, 3), np.float32))
        assert g.nbytes == 2 * 8 + 2 * 3 * 4


class TestParameter:
    def test_requires_float(self):
        with pytest.raises(ValueError):
            Parameter(np.zeros(3, np.int64))

    def test_dense_accumulation(self):
        p = Parameter(np.zeros((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        p.accumulate_grad(np.ones((2, 2)))
        np.testing.assert_allclose(p.grad, 2.0)

    def test_dense_shape_mismatch_rejected(self):
        p = Parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            p.accumulate_grad(np.ones((3, 2)))

    def test_sparse_accumulation_and_merge(self):
        p = Parameter(np.zeros((10, 2)))
        p.accumulate_sparse_grad(sparse([1, 1], values=np.ones((2, 2))))
        p.accumulate_sparse_grad(sparse([1, 4], values=np.ones((2, 2))))
        merged = p.merged_sparse_grad()
        np.testing.assert_array_equal(merged.indices, [1, 4])
        np.testing.assert_allclose(merged.values, [[3, 3], [1, 1]])

    def test_sparse_on_1d_param_rejected(self):
        p = Parameter(np.zeros(5))
        with pytest.raises(ValueError):
            p.accumulate_sparse_grad(sparse([0], dim=1))

    def test_sparse_dim_mismatch_rejected(self):
        p = Parameter(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            p.accumulate_sparse_grad(sparse([0], dim=2))

    def test_sparse_index_out_of_range_rejected(self):
        p = Parameter(np.zeros((5, 2)))
        with pytest.raises(ValueError):
            p.accumulate_sparse_grad(sparse([5]))

    def test_full_grad_combines_dense_and_sparse(self):
        p = Parameter(np.zeros((3, 2)))
        p.accumulate_grad(np.full((3, 2), 0.5))
        p.accumulate_sparse_grad(sparse([2], values=np.array([[1.0, 1.0]])))
        full = p.full_grad()
        np.testing.assert_allclose(full[2], [1.5, 1.5])
        np.testing.assert_allclose(full[0], [0.5, 0.5])

    def test_zero_grad_clears_everything(self):
        p = Parameter(np.zeros((3, 2)))
        p.accumulate_grad(np.ones((3, 2)))
        p.accumulate_sparse_grad(sparse([0]))
        p.zero_grad()
        assert p.grad is None
        assert p.sparse_grads == []
        assert p.merged_sparse_grad() is None
