"""Tests for the tensor-parallel layers and the pipeline schedule.

The bit-exactness properties run through the in-repo shrinking harness
(:mod:`tests.proptest`).  Two regimes, per the sharding math:

* Zero-contribution reassembly (embedding, vocab-parallel softmax) is
  exact for **arbitrary floats**: adding an exact zero never perturbs a
  value, so sharded and unsharded paths are bit-identical.
* Reduction-dim splitting (row-parallel forward, column-parallel input
  grad) reorders float additions, so those properties draw
  **integer-valued** weights and data — exact in binary float — to pin
  bit-equality without tolerances.
"""

import numpy as np
import pytest

from repro.cluster import Communicator, MeshCommunicator, hybrid_mesh
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.parallel import (
    ColumnParallelLinear,
    ParallelEmbedding,
    PipelineSchedule,
    RowParallelLinear,
    VocabParallelSampledSoftmax,
    shard_bounds,
)
from repro.nn.sampled_softmax import SampledSoftmaxLoss
from ..proptest import run_property


def integerize(module) -> None:
    """Round every parameter to whole floats (exact binary values)."""
    for p in module.parameters():
        p.data[...] = np.round(p.data * 8)


def dense_grads(module) -> dict[str, np.ndarray]:
    return {
        name: p.full_grad() for name, p in module.named_parameters()
    }


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_goes_to_leading_shards(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_covers_every_row_exactly_once(self):
        for total in (5, 16, 31):
            for shards in (1, 2, 3, 5):
                bounds = shard_bounds(total, shards)
                assert bounds[0][0] == 0 and bounds[-1][1] == total
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_bounds(4, 0)
        with pytest.raises(ValueError):
            shard_bounds(2, 3)


class TestColumnRowParallel:
    """Megatron's two-matmul block: Column ∘ Row vs two dense Linears."""

    def test_column_forward_matches_dense(self):
        rng = np.random.default_rng(0)
        dense = Linear(6, 8, np.random.default_rng(7))
        col = ColumnParallelLinear(6, 8, 4, np.random.default_rng(7))
        x = rng.standard_normal((5, 6))
        y_dense, _ = dense.forward(x)
        y_col, _ = col.forward(x)
        np.testing.assert_array_equal(y_col, y_dense)

    def test_row_forward_matches_dense_with_integer_values(self):
        dense = Linear(8, 6, np.random.default_rng(7))
        row = RowParallelLinear(8, 6, 4, np.random.default_rng(7))
        integerize(dense)
        integerize(row)
        x = np.round(
            np.random.default_rng(0).standard_normal((5, 8)) * 4
        )
        y_dense, _ = dense.forward(x)
        y_row, _ = row.forward(x)
        np.testing.assert_array_equal(y_row, y_dense)

    def test_property_mlp_block_bit_exact(self):
        """Column ∘ Row forward+backward ≡ dense pair, bit for bit."""

        def gen(rng):
            shards = int(rng.integers(1, 5))
            return {
                "in_dim": int(rng.integers(1, 5)),
                "hidden": shards * int(rng.integers(1, 4)),
                "out_dim": int(rng.integers(1, 5)),
                "batch": int(rng.integers(1, 5)),
                "shards": shards,
                "seed": int(rng.integers(0, 2**31)),
            }

        def prop(p, rng):
            if p["hidden"] % p["shards"] != 0:
                raise ValueError("hidden must divide into shards")
            mk = lambda: np.random.default_rng(p["seed"])
            d1 = Linear(p["in_dim"], p["hidden"], mk(), bias=True)
            d2 = Linear(p["hidden"], p["out_dim"], mk(), bias=True)
            c1 = ColumnParallelLinear(
                p["in_dim"], p["hidden"], p["shards"], mk()
            )
            r2 = RowParallelLinear(
                p["hidden"], p["out_dim"], p["shards"], mk()
            )
            for m in (d1, d2, c1, r2):
                integerize(m)
            x = np.round(rng.standard_normal((p["batch"], p["in_dim"])) * 4)
            h_d, cache_d1 = d1.forward(x)
            y_d, cache_d2 = d2.forward(h_d)
            h_p, cache_c1 = c1.forward(x)
            y_p, cache_r2 = r2.forward(h_p)
            assert np.array_equal(y_p, y_d)
            g = np.round(rng.standard_normal(y_d.shape) * 4)
            dh_d = d2.backward(g, cache_d2)
            dx_d = d1.backward(dh_d, cache_d1)
            dh_p = r2.backward(g, cache_r2)
            dx_p = c1.backward(dh_p, cache_c1)
            assert np.array_equal(dx_p, dx_d)
            # Shard grads, reassembled, must equal the dense grads.
            w1 = np.concatenate(
                [c1._weights[j].full_grad() for j in range(p["shards"])],
                axis=1,
            )
            assert np.array_equal(w1, d1.weight.full_grad())
            w2 = np.concatenate(
                [r2._weights[j].full_grad() for j in range(p["shards"])],
                axis=0,
            )
            assert np.array_equal(w2, d2.weight.full_grad())

        run_property(prop, gen, n_cases=60, seed=1)

    def test_mesh_comm_charges_tensor_collectives(self):
        world = 4
        mc = MeshCommunicator(
            Communicator(world, track_memory=False),
            hybrid_mesh("tensor=G", world),
        )
        col = ColumnParallelLinear(
            4, 8, world, np.random.default_rng(0), mesh_comm=mc
        )
        y, cache = col.forward(np.ones((2, 4)))
        col.backward(np.ones_like(y), cache)
        ops = [e.op for e in mc.comm.ledger.events]
        assert "mesh_allgather" in ops and "mesh_allreduce" in ops

    def test_mesh_shard_mismatch_rejected(self):
        mc = MeshCommunicator(
            Communicator(4, track_memory=False), hybrid_mesh("tensor=G", 4)
        )
        with pytest.raises(ValueError, match="shards"):
            ColumnParallelLinear(
                4, 8, 2, np.random.default_rng(0), mesh_comm=mc
            )

    def test_uneven_column_split_rejected(self):
        with pytest.raises(ValueError, match="divide evenly"):
            ColumnParallelLinear(4, 7, 2, np.random.default_rng(0))
        with pytest.raises(ValueError, match="divide evenly"):
            RowParallelLinear(7, 4, 2, np.random.default_rng(0))


class TestParallelEmbedding:
    def test_property_gather_bit_exact_arbitrary_floats(self):
        """Zero-contribution reassembly is exact for any float weights."""

        def gen(rng):
            shards = int(rng.integers(1, 6))
            return {
                "vocab": shards + int(rng.integers(1, 40)),
                "dim": int(rng.integers(1, 6)),
                "shards": shards,
                "tokens": int(rng.integers(1, 12)),
                "seed": int(rng.integers(0, 2**31)),
            }

        def prop(p, rng):
            if p["shards"] > p["vocab"]:
                raise ValueError("more shards than rows")
            dense = Embedding(
                p["vocab"], p["dim"], np.random.default_rng(p["seed"])
            )
            par = ParallelEmbedding(
                p["vocab"], p["dim"], p["shards"],
                np.random.default_rng(p["seed"]),
            )
            ids = rng.integers(0, p["vocab"], p["tokens"])
            y_d, cache_d = dense.forward(ids)
            y_p, cache_p = par.forward(ids)
            assert np.array_equal(y_p, y_d)
            assert np.array_equal(par.gathered_weight(), dense.weight.data)
            g = rng.standard_normal(y_d.shape)
            dense.backward(g, cache_d)
            par.backward(g, cache_p)
            merged = np.concatenate(
                [
                    par._weights[j].merged_sparse_grad().to_dense(hi - lo)
                    for j, (lo, hi) in enumerate(par.bounds)
                ],
                axis=0,
            )
            assert np.array_equal(
                merged,
                dense.weight.merged_sparse_grad().to_dense(p["vocab"]),
            )

        run_property(prop, gen, n_cases=60, seed=2)

    def test_out_of_range_ids_rejected(self):
        par = ParallelEmbedding(8, 2, 2, np.random.default_rng(0))
        with pytest.raises(ValueError, match="vocabulary"):
            par.forward(np.array([8]))
        with pytest.raises(ValueError, match="integers"):
            par.forward(np.array([0.5]))


class TestVocabParallelSoftmax:
    def test_property_loss_and_grads_bit_exact(self):
        """Sharded scoring ≡ unsharded SampledSoftmaxLoss, bit for bit."""

        def gen(rng):
            vocab = int(rng.integers(8, 50))
            return {
                "vocab": vocab,
                "hidden": int(rng.integers(1, 6)),
                "samples": int(rng.integers(1, 8)),
                "shards": int(rng.integers(1, 5)),
                "batch": int(rng.integers(1, 6)),
                "seed": int(rng.integers(0, 2**31)),
            }

        def prop(p, rng):
            if p["shards"] > p["vocab"] or p["samples"] >= p["vocab"]:
                raise ValueError("out of domain")
            dense = SampledSoftmaxLoss(
                p["vocab"], p["hidden"], p["samples"],
                np.random.default_rng(p["seed"]),
            )
            par = VocabParallelSampledSoftmax(
                p["vocab"], p["hidden"], p["samples"], p["shards"],
                np.random.default_rng(p["seed"]),
            )
            hidden = rng.standard_normal((p["batch"], p["hidden"]))
            targets = rng.integers(0, p["vocab"], p["batch"])
            draw = np.random.default_rng(123)
            loss_d, cache_d = dense.forward(
                hidden, targets, np.random.default_rng(123)
            )
            loss_p, cache_p = par.forward(hidden, targets, draw)
            assert loss_p == loss_d
            dh_d = dense.backward(cache_d)
            dh_p = par.backward(cache_p)
            assert np.array_equal(dh_p, dh_d)
            merged = np.concatenate(
                [
                    par._weights[j].merged_sparse_grad().to_dense(hi - lo)
                    for j, (lo, hi) in enumerate(par.bounds)
                ],
                axis=0,
            )
            assert np.array_equal(
                merged,
                dense.weight.merged_sparse_grad().to_dense(p["vocab"]),
            )

        run_property(prop, gen, n_cases=40, seed=3)

    def test_mesh_comm_records_logit_allreduce(self):
        world = 2
        mc = MeshCommunicator(
            Communicator(world, track_memory=False),
            hybrid_mesh("tensor=G", world),
        )
        layer = VocabParallelSampledSoftmax(
            20, 4, 5, world, np.random.default_rng(0), mesh_comm=mc
        )
        hidden = np.random.default_rng(1).standard_normal((3, 4))
        targets = np.array([0, 5, 19])
        layer.forward(hidden, targets, np.random.default_rng(2))
        assert any(
            e.op == "mesh_allreduce" for e in mc.comm.ledger.events
        )


class TestPipelineSchedule:
    def test_analytic_formulas(self):
        s = PipelineSchedule(4, 8, fwd_time_s=0.002, bwd_time_s=0.004)
        assert s.makespan_s == pytest.approx((8 + 3) * 0.006)
        assert s.bubble_fraction == pytest.approx(3 / 11)

    def test_more_micros_shrink_the_bubble(self):
        small = PipelineSchedule(4, 4, 0.001, 0.002).bubble_fraction
        large = PipelineSchedule(4, 32, 0.001, 0.002).bubble_fraction
        assert large < small

    def test_single_stage_has_no_bubble(self):
        s = PipelineSchedule(1, 8, 0.001, 0.002)
        assert s.bubble_fraction == 0.0
        assert s.makespan_s == pytest.approx(8 * 0.003)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineSchedule(0, 4, 0.1, 0.1)
        with pytest.raises(ValueError):
            PipelineSchedule(2, 0, 0.1, 0.1)
        with pytest.raises(ValueError):
            PipelineSchedule(2, 4, -0.1, 0.1)

    def test_record_charges_timeline_and_transfers(self):
        world = 4
        mc = MeshCommunicator(
            Communicator(world, track_memory=False),
            hybrid_mesh("pipe=2,tensor=1,data=2", world),
        )
        s = PipelineSchedule(2, 4, 0.001, 0.002)
        makespan = s.record(mc, activation_bytes=1 << 20)
        assert makespan == pytest.approx(s.makespan_s)
        transfers = [
            e for e in mc.comm.ledger.events if e.op == "mesh_transfer"
        ]
        # (p - 1) boundaries x m micro-batches.
        assert len(transfers) == 4

    def test_record_rejects_stage_mismatch(self):
        mc = MeshCommunicator(
            Communicator(4, track_memory=False),
            hybrid_mesh("pipe=2,tensor=1,data=2", 4),
        )
        with pytest.raises(ValueError, match="stage"):
            PipelineSchedule(4, 4, 0.001, 0.002).record(mc)
