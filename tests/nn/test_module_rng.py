"""Tests for module-tree traversal and stateful RNG stream snapshots."""

import numpy as np
import pytest

from repro.nn import Dropout, Linear, Module


class Net(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(4, 4, np.random.default_rng(0))
        self.dropout = Dropout(0.5, np.random.default_rng(1))


class Deep(Module):
    def __init__(self):
        super().__init__()
        self.inner = Net()
        self.outer_dropout = Dropout(0.3, np.random.default_rng(2))


class TestNamedModules:
    def test_root_is_empty_path(self):
        net = Net()
        paths = [path for path, _ in net.named_modules()]
        assert paths == ["", "linear", "dropout"]

    def test_nested_paths_are_dot_joined(self):
        deep = Deep()
        paths = dict(deep.named_modules())
        assert "inner.dropout" in paths
        assert "inner.linear" in paths
        assert "outer_dropout" in paths
        assert paths["inner.dropout"] is deep.inner.dropout


class TestRngState:
    def test_only_stateful_modules_appear(self):
        net = Net()
        assert set(net.rng_state()) == {"dropout"}
        assert set(Deep().rng_state()) == {"inner.dropout", "outer_dropout"}

    def test_state_is_a_snapshot(self):
        net = Net().train()
        before = net.rng_state()
        net.dropout.forward(np.ones((8, 8)))
        after = net.rng_state()
        assert before["dropout"] != after["dropout"]

    def test_restore_replays_identical_masks(self):
        net = Net().train()
        snap = net.rng_state()
        x = np.ones((16, 4))
        first, _ = net.dropout.forward(x)
        net.set_rng_state(snap)
        replay, _ = net.dropout.forward(x)
        np.testing.assert_array_equal(first, replay)

    def test_restore_is_independent_of_saved_dict_mutation(self):
        net = Net().train()
        snap = net.rng_state()
        net.set_rng_state(snap)
        out1, _ = net.dropout.forward(np.ones((8, 4)))
        # Mutating the snapshot afterwards must not affect the module.
        snap["dropout"]["state"]["state"] = 0
        net2 = Net().train()
        net2.set_rng_state(net.rng_state())

    def test_unknown_path_rejected(self):
        net = Net()
        with pytest.raises(ValueError, match="no module at path"):
            net.set_rng_state({"missing": net.rng_state()["dropout"]})

    def test_path_without_stream_rejected(self):
        net = Net()
        with pytest.raises(ValueError, match="no RNG stream"):
            net.set_rng_state({"linear": net.rng_state()["dropout"]})

    def test_absent_paths_left_untouched(self):
        """The v1 backward-compat path: an empty state dict is a no-op."""
        net = Net().train()
        before = net.rng_state()
        net.set_rng_state({})
        assert net.rng_state() == before
