"""Gradient-checked tests for Embedding, Linear, Dropout and Module."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, Linear, Module, Parameter
from repro.nn import init as nn_init

from ..helpers import numerical_grad


def rng():
    return np.random.default_rng(42)


class TestInit:
    def test_uniform_bounds(self):
        w = nn_init.uniform((100, 10), 0.3, rng())
        assert np.abs(w).max() <= 0.3

    def test_xavier_limit(self):
        w = nn_init.xavier_uniform((50, 30), rng())
        limit = np.sqrt(6.0 / 80)
        assert np.abs(w).max() <= limit

    def test_orthogonal_is_orthogonal(self):
        w = nn_init.orthogonal((16, 16), rng(), dtype=np.float64)
        np.testing.assert_allclose(w @ w.T, np.eye(16), atol=1e-10)

    def test_orthogonal_rectangular(self):
        w = nn_init.orthogonal((4, 8), rng(), dtype=np.float64)
        np.testing.assert_allclose(w @ w.T, np.eye(4), atol=1e-10)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            nn_init.uniform((2,), -1.0, rng())
        with pytest.raises(ValueError):
            nn_init.xavier_uniform((2, 3, 4), rng())  # type: ignore[arg-type]


class TestModule:
    def test_parameter_auto_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros((2, 2)))

        m = M()
        assert list(m.parameters()) == [m.w]
        assert m.w.name == "w"

    def test_submodule_traversal(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.a = Parameter(np.zeros(3))

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.b = Parameter(np.zeros(2))

        m = Outer()
        names = dict(m.named_parameters())
        assert set(names) == {"b", "inner.a"}
        assert m.num_parameters() == 5

    def test_train_eval_propagates(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.drop = Dropout(0.5, rng())

        m = M()
        m.eval()
        assert not m.drop.training
        m.train()
        assert m.drop.training

    def test_duplicate_registration_rejected(self):
        m = Module()
        m.register_parameter("x", Parameter(np.zeros(1)))
        with pytest.raises(ValueError):
            m.register_parameter("x", Parameter(np.zeros(1)))

    def test_zero_grad_recursive(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.zeros(2))

        m = M()
        m.w.accumulate_grad(np.ones(2))
        m.zero_grad()
        assert m.w.grad is None


class TestEmbedding:
    def test_forward_gathers_rows(self):
        emb = Embedding(5, 3, rng())
        ids = np.array([[1, 4], [4, 0]])
        out, _ = emb.forward(ids)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out[0, 1], emb.weight.data[4])
        np.testing.assert_allclose(out[1, 0], emb.weight.data[4])

    def test_out_of_range_ids_rejected(self):
        emb = Embedding(5, 3, rng())
        with pytest.raises(ValueError):
            emb.forward(np.array([5]))
        with pytest.raises(ValueError):
            emb.forward(np.array([-1]))
        with pytest.raises(ValueError):
            emb.forward(np.array([0.5]))

    def test_backward_emits_token_level_sparse_grad(self):
        emb = Embedding(10, 2, rng())
        ids = np.array([[3, 3, 7]])
        out, cache = emb.forward(ids)
        grad = np.ones_like(out)
        emb.backward(grad, cache)
        (sg,) = emb.weight.sparse_grads
        np.testing.assert_array_equal(sg.indices, [3, 3, 7])
        assert sg.values.shape == (3, 2)

    def test_gradient_matches_finite_difference(self):
        emb = Embedding(6, 3, rng(), dtype=np.float64)
        ids = np.array([[0, 2, 2], [5, 0, 1]])
        g_out = np.random.default_rng(1).standard_normal((2, 3, 3))

        def loss():
            out, _ = emb.forward(ids)
            return float((out * g_out).sum())

        out, cache = emb.forward(ids)
        emb.backward(g_out, cache)
        analytic = emb.weight.merged_sparse_grad().to_dense(6)
        numeric = numerical_grad(loss, emb.weight.data)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-6, atol=1e-8)

    def test_grad_shape_mismatch_rejected(self):
        emb = Embedding(6, 3, rng())
        _, cache = emb.forward(np.array([[1]]))
        with pytest.raises(ValueError):
            emb.backward(np.zeros((1, 2, 3)), cache)


class TestLinear:
    def test_forward_shape_and_bias(self):
        lin = Linear(4, 6, rng())
        x = np.ones((2, 3, 4))
        y, _ = lin.forward(x)
        assert y.shape == (2, 3, 6)
        np.testing.assert_allclose(
            y[0, 0], x[0, 0] @ lin.weight.data + lin.bias.data
        )

    def test_no_bias_option(self):
        lin = Linear(4, 6, rng(), bias=False)
        assert lin.bias is None
        assert sum(p.data.size for p in lin.parameters()) == 24

    def test_gradients_match_finite_difference(self):
        lin = Linear(3, 2, rng(), dtype=np.float64)
        x = np.random.default_rng(5).standard_normal((4, 3))
        g_out = np.random.default_rng(6).standard_normal((4, 2))

        def loss():
            y, _ = lin.forward(x)
            return float((y * g_out).sum())

        y, cache = lin.forward(x)
        dx = lin.backward(g_out, cache)
        numeric_w = numerical_grad(loss, lin.weight.data)
        np.testing.assert_allclose(lin.weight.grad, numeric_w, rtol=1e-6, atol=1e-9)
        numeric_b = numerical_grad(loss, lin.bias.data)
        np.testing.assert_allclose(lin.bias.grad, numeric_b, rtol=1e-6, atol=1e-9)
        numeric_x = numerical_grad(loss, x)
        np.testing.assert_allclose(dx, numeric_x, rtol=1e-6, atol=1e-9)

    def test_input_dim_validation(self):
        lin = Linear(3, 2, rng())
        with pytest.raises(ValueError):
            lin.forward(np.zeros((2, 4)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        d = Dropout(0.5, rng())
        d.eval()
        x = np.ones((10, 10))
        out, _ = d.forward(x)
        np.testing.assert_array_equal(out, x)

    def test_training_preserves_expectation(self):
        d = Dropout(0.3, np.random.default_rng(0))
        x = np.ones((200, 200))
        out, _ = d.forward(x)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_mask_reused_in_backward(self):
        d = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((8, 8))
        out, cache = d.forward(x)
        g = d.backward(np.ones_like(x), cache)
        # Zeros in forward must be zeros in backward, scaled values match.
        np.testing.assert_array_equal(g == 0, out == 0)

    def test_p_zero_noop(self):
        d = Dropout(0.0, rng())
        x = np.random.default_rng(1).standard_normal((4, 4))
        out, cache = d.forward(x)
        np.testing.assert_array_equal(out, x)
        np.testing.assert_array_equal(d.backward(x, cache), x)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0, rng())
        with pytest.raises(ValueError):
            Dropout(-0.1, rng())
