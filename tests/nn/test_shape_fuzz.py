"""Hypothesis shape-fuzz for the recurrent layers and model assemblies.

Forward/backward must accept any positive (B, T, dims) combination,
return correctly-shaped outputs, produce finite values, and accumulate
gradients for every parameter — across LSTM, RHN and the stacked
variant.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn import LSTM, RHN, StackedLSTM

dims = st.integers(1, 6)


class TestLSTMFuzz:
    @given(
        b=st.integers(1, 4),
        t=st.integers(1, 6),
        i=dims,
        h=dims,
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_forward_backward_shapes(self, b, t, i, h, seed):
        rng = np.random.default_rng(seed)
        lstm = LSTM(i, h, rng)
        x = rng.standard_normal((b, t, i))
        out, cache = lstm.forward(x)
        assert out.shape == (b, t, h)
        assert np.isfinite(out).all()
        dx = lstm.backward(rng.standard_normal((b, t, h)), cache)
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()
        for p in lstm.parameters():
            assert p.grad is not None and np.isfinite(p.grad).all()


class TestRHNFuzz:
    @given(
        b=st.integers(1, 3),
        t=st.integers(1, 5),
        i=dims,
        h=dims,
        depth=st.integers(1, 4),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=40, deadline=None)
    def test_forward_backward_shapes(self, b, t, i, h, depth, seed):
        rng = np.random.default_rng(seed)
        rhn = RHN(i, h, depth, rng)
        x = rng.standard_normal((b, t, i))
        out, cache = rhn.forward(x)
        assert out.shape == (b, t, h)
        assert np.isfinite(out).all()
        dx = rhn.backward(rng.standard_normal((b, t, h)), cache)
        assert dx.shape == x.shape
        assert np.isfinite(dx).all()


class TestStackedFuzz:
    @given(
        layers=st.integers(1, 3),
        b=st.integers(1, 3),
        t=st.integers(1, 4),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_forward_backward_shapes(self, layers, b, t, seed):
        rng = np.random.default_rng(seed)
        stack = StackedLSTM(3, 4, layers, rng)
        x = rng.standard_normal((b, t, 3))
        out, cache = stack.forward(x)
        assert out.shape == (b, t, 4)
        dx = stack.backward(rng.standard_normal((b, t, 4)), cache)
        assert dx.shape == x.shape
        assert len(cache["final_state"]) == layers


class TestStateCarryFuzz:
    @given(
        split=st.integers(1, 5),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_lstm_split_invariance(self, split, seed):
        """Splitting any sequence at any point and carrying state must
        reproduce the unsplit forward exactly."""
        rng = np.random.default_rng(seed)
        lstm = LSTM(2, 3, rng, dtype=np.float64)
        t_total = 6
        x = rng.standard_normal((2, t_total, 2))
        full, _ = lstm.forward(x)
        cut = min(split, t_total - 1)
        first, c1 = lstm.forward(x[:, :cut])
        second, _ = lstm.forward(x[:, cut:], state=c1["final_state"])
        np.testing.assert_allclose(
            np.concatenate([first, second], axis=1), full, rtol=1e-10
        )
