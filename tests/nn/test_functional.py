"""Tests for numerically-stable functional primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.functional import (
    cross_entropy_from_logits,
    dsigmoid,
    dtanh,
    log_softmax,
    sigmoid,
    softmax,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_no_overflow(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)
        assert np.isfinite(out).all()

    def test_symmetry(self):
        x = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), 1.0, rtol=1e-12)

    def test_dsigmoid_matches_finite_difference(self):
        x = np.linspace(-3, 3, 7)
        eps = 1e-6
        fd = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        np.testing.assert_allclose(dsigmoid(sigmoid(x)), fd, rtol=1e-6)

    def test_dtanh_matches_finite_difference(self):
        x = np.linspace(-3, 3, 7)
        eps = 1e-6
        fd = (np.tanh(x + eps) - np.tanh(x - eps)) / (2 * eps)
        np.testing.assert_allclose(dtanh(np.tanh(x)), fd, rtol=1e-5)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((5, 7))
        np.testing.assert_allclose(softmax(logits).sum(axis=1), 1.0, rtol=1e-12)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_logits_stable(self):
        out = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self):
        logits = np.random.default_rng(1).standard_normal((3, 4))
        np.testing.assert_allclose(
            np.exp(log_softmax(logits)), softmax(logits), rtol=1e-12
        )

    @given(
        hnp.arrays(
            np.float64, (3, 5), elements=st.floats(-50, 50, allow_nan=False)
        )
    )
    def test_probabilities_valid(self, logits):
        p = softmax(logits)
        assert (p >= 0).all()
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-9)


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        logits = np.zeros((4, 8))
        targets = np.array([0, 1, 2, 3])
        loss, _ = cross_entropy_from_logits(logits, targets)
        assert loss == pytest.approx(np.log(8))

    def test_perfect_prediction_near_zero_loss(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss, _ = cross_entropy_from_logits(logits, np.array([1, 2]))
        assert loss == pytest.approx(0.0, abs=1e-10)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(2)
        logits = rng.standard_normal((3, 5))
        targets = np.array([1, 0, 4])
        _, grad = cross_entropy_from_logits(logits, targets)
        eps = 1e-6
        for i in range(3):
            for j in range(5):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                fd = (
                    cross_entropy_from_logits(lp, targets)[0]
                    - cross_entropy_from_logits(lm, targets)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(fd, rel=1e-5, abs=1e-8)

    def test_gradient_rows_sum_to_zero(self):
        rng = np.random.default_rng(3)
        logits = rng.standard_normal((4, 6))
        _, grad = cross_entropy_from_logits(logits, np.array([0, 1, 2, 3]))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy_from_logits(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy_from_logits(np.zeros(6), np.array([0]))
