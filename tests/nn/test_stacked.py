"""Gradient-checked tests for the stacked LSTM."""

import numpy as np
import pytest

from repro.nn import LSTM, StackedLSTM

from ..helpers import numerical_grad


def make(i=2, h=3, layers=2, dropout=0.0, seed=0):
    # Gradient checks need double precision; the library default is FP32.
    return StackedLSTM(
        i, h, layers, np.random.default_rng(seed), dropout=dropout,
        dtype=np.float64,
    )


class TestForward:
    def test_output_shape(self):
        stack = make(layers=3)
        x = np.zeros((2, 4, 2))
        out, cache = stack.forward(x)
        assert out.shape == (2, 4, 3)
        assert len(cache["final_state"]) == 3

    def test_single_layer_equals_plain_lstm(self):
        rng_state = 7
        stack = make(layers=1, seed=rng_state)
        plain = LSTM(2, 3, np.random.default_rng(rng_state), dtype=np.float64)
        x = np.random.default_rng(1).standard_normal((2, 4, 2))
        out_stack, _ = stack.forward(x)
        out_plain, _ = plain.forward(x)
        np.testing.assert_allclose(out_stack, out_plain, rtol=1e-12)

    def test_parameter_count(self):
        stack = make(i=4, h=6, layers=3)
        one_first = (4 + 6) * 24 + 24
        one_rest = (6 + 6) * 24 + 24
        assert stack.num_parameters() == one_first + 2 * one_rest

    def test_state_carry_per_layer(self):
        stack = make(layers=2, seed=3)
        x = np.random.default_rng(4).standard_normal((1, 6, 2))
        full, _ = stack.forward(x)
        first, c1 = stack.forward(x[:, :3])
        second, _ = stack.forward(x[:, 3:], state=c1["final_state"])
        np.testing.assert_allclose(
            np.concatenate([first, second], axis=1), full, rtol=1e-12
        )

    def test_state_length_validated(self):
        stack = make(layers=2)
        x = np.zeros((1, 2, 2))
        with pytest.raises(ValueError):
            stack.forward(x, state=[(np.zeros((1, 3)), np.zeros((1, 3)))])

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            make(layers=0)


class TestBackward:
    def test_gradients_match_finite_difference(self):
        stack = make(i=2, h=2, layers=2, seed=5)
        rng = np.random.default_rng(6)
        x = rng.standard_normal((1, 3, 2))
        g_out = rng.standard_normal((1, 3, 2))

        def loss():
            out, _ = stack.forward(x)
            return float((out * g_out).sum())

        out, cache = stack.forward(x)
        dx = stack.backward(g_out, cache)
        for name, p in stack.named_parameters():
            numeric = numerical_grad(loss, p.data)
            np.testing.assert_allclose(
                p.grad, numeric, rtol=1e-5, atol=1e-8, err_msg=name
            )
        np.testing.assert_allclose(
            dx, numerical_grad(loss, x), rtol=1e-5, atol=1e-8
        )

    def test_dropout_between_layers_only_in_training(self):
        stack = make(layers=2, dropout=0.5, seed=8)
        x = np.random.default_rng(9).standard_normal((2, 3, 2))
        stack.eval()
        a, _ = stack.forward(x)
        b, _ = stack.forward(x)
        np.testing.assert_array_equal(a, b)
        stack.train()
        c, _ = stack.forward(x)
        d, _ = stack.forward(x)
        assert np.abs(c - d).max() > 0
