"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "word"
        assert args.gpus == 4
        assert not args.baseline
        assert not args.overlap

    def test_overlap_flag_pair(self):
        assert build_parser().parse_args(["train", "--overlap"]).overlap
        assert not build_parser().parse_args(["train", "--no-overlap"]).overlap

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--table", "7"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["zipf", "--dataset", "nope"])


class TestCommands:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "35.2 GB" in out
        assert "256x" in out

    def test_zipf(self, capsys):
        assert main(["zipf", "--tokens", "20000", "--dataset", "gb"]) == 0
        out = capsys.readouterr().out
        assert "Heaps fit" in out
        assert "gb:" in out

    @pytest.mark.parametrize("table,expect", [(3, "word-lm-1b"), (4, "char-lm-1b"), (5, "Tieba")])
    def test_perf_tables(self, capsys, table, expect):
        assert main(["perf", "--table", str(table)]) == 0
        assert expect in capsys.readouterr().out

    def test_perf_table3_shows_oom(self, capsys):
        main(["perf", "--table", "3"])
        assert "OOM *" in capsys.readouterr().out

    def test_train_word_smoke(self, capsys):
        rc = main(
            [
                "train", "--model", "word", "--gpus", "2", "--steps", "6",
                "--vocab", "80", "--corpus-tokens", "5000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final val ppl" in out
        assert "replica divergence: 0.0e+00" in out

    def test_train_char_with_fp16(self, capsys):
        rc = main(
            [
                "train", "--model", "char", "--gpus", "2", "--steps", "4",
                "--vocab", "60", "--corpus-tokens", "30000", "--fp16",
            ]
        )
        assert rc == 0
        assert "unique + fp16" in capsys.readouterr().out

    def test_generate_smoke(self, capsys):
        rc = main(["generate", "--steps", "10", "--length", "15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bits/char" in out
        assert "sample: the " in out

    def test_train_baseline_flag(self, capsys):
        rc = main(
            [
                "train", "--gpus", "2", "--steps", "3", "--vocab", "80",
                "--corpus-tokens", "5000", "--baseline",
            ]
        )
        assert rc == 0
        assert "allgather" in capsys.readouterr().out

    def test_train_overlap_flag(self, capsys):
        rc = main(
            [
                "train", "--gpus", "2", "--steps", "3", "--vocab", "80",
                "--corpus-tokens", "5000", "--overlap",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlapped" in out
        assert "replica divergence: 0.0e+00" in out
