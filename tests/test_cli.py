"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.model == "word"
        assert args.gpus == 4
        assert not args.baseline
        assert not args.overlap

    def test_overlap_flag_pair(self):
        assert build_parser().parse_args(["train", "--overlap"]).overlap
        assert not build_parser().parse_args(["train", "--no-overlap"]).overlap

    def test_invalid_choice_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "--table", "7"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["zipf", "--dataset", "nope"])


class TestCommands:
    def test_example(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "35.2 GB" in out
        assert "256x" in out

    def test_zipf(self, capsys):
        assert main(["zipf", "--tokens", "20000", "--dataset", "gb"]) == 0
        out = capsys.readouterr().out
        assert "Heaps fit" in out
        assert "gb:" in out

    @pytest.mark.parametrize("table,expect", [(3, "word-lm-1b"), (4, "char-lm-1b"), (5, "Tieba")])
    def test_perf_tables(self, capsys, table, expect):
        assert main(["perf", "--table", str(table)]) == 0
        assert expect in capsys.readouterr().out

    def test_perf_table3_shows_oom(self, capsys):
        main(["perf", "--table", "3"])
        assert "OOM *" in capsys.readouterr().out

    def test_train_word_smoke(self, capsys):
        rc = main(
            [
                "train", "--model", "word", "--gpus", "2", "--steps", "6",
                "--vocab", "80", "--corpus-tokens", "5000",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final val ppl" in out
        assert "replica divergence: 0.0e+00" in out

    def test_train_char_with_fp16(self, capsys):
        rc = main(
            [
                "train", "--model", "char", "--gpus", "2", "--steps", "4",
                "--vocab", "60", "--corpus-tokens", "30000", "--fp16",
            ]
        )
        assert rc == 0
        assert "unique + fp16" in capsys.readouterr().out

    def test_generate_smoke(self, capsys):
        rc = main(["generate", "--steps", "10", "--length", "15"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bits/char" in out
        assert "sample: the " in out

    def test_train_baseline_flag(self, capsys):
        rc = main(
            [
                "train", "--gpus", "2", "--steps", "3", "--vocab", "80",
                "--corpus-tokens", "5000", "--baseline",
            ]
        )
        assert rc == 0
        assert "allgather" in capsys.readouterr().out

    def test_train_overlap_flag(self, capsys):
        rc = main(
            [
                "train", "--gpus", "2", "--steps", "3", "--vocab", "80",
                "--corpus-tokens", "5000", "--overlap",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlapped" in out
        assert "replica divergence: 0.0e+00" in out


class TestResilientTraining:
    def test_resilient_demo_plan_smoke(self, capsys, tmp_path):
        rc = main(
            [
                "train", "--gpus", "3", "--steps", "8", "--vocab", "80",
                "--corpus-tokens", "5000", "--resilient",
                "--checkpoint", str(tmp_path / "ckpt.npz"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "resilient word LM" in out
        assert "scheduled fault(s)" in out
        assert "retry" in out
        # The demo plan loses rank 2 mid-run: the world shrinks.
        assert "final world: 2" in out
        assert "replica divergence: 0.0e+00" in out
        assert "communicator generation(s)" in out
        assert (tmp_path / "ckpt.npz").exists()

    def test_fault_plan_file_implies_resilient(self, capsys, tmp_path):
        from repro.cluster import FaultEvent, FaultKind, FaultPlan

        plan_file = tmp_path / "plan.json"
        FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=2,
                        rank=1, retries=1)],
            seed=5,
        ).save(plan_file)
        rc = main(
            [
                "train", "--gpus", "2", "--steps", "4", "--vocab", "80",
                "--corpus-tokens", "5000",
                "--fault-plan", str(plan_file),
                "--checkpoint", str(tmp_path / "c.npz"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 scheduled fault(s)" in out
        assert "final world: 2" in out  # transient only: no shrink
        assert "1 retry charged" in out

    def test_resilient_single_gpu_has_no_rank_loss(self, capsys, tmp_path):
        rc = main(
            [
                "train", "--gpus", "1", "--steps", "4", "--vocab", "80",
                "--corpus-tokens", "5000", "--resilient",
                "--checkpoint", str(tmp_path / "one.npz"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "final world: 1" in out

    def test_resilient_rejects_sanitize(self, capsys):
        rc = main(
            [
                "train", "--gpus", "2", "--steps", "3", "--vocab", "80",
                "--corpus-tokens", "5000", "--resilient", "--sanitize",
            ]
        )
        assert rc == 2
        assert "mutually" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.resilient is False
        assert args.fault_plan is None
        assert args.checkpoint is None


class TestWireCodecFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.wire_codec is None
        assert args.wire_chunk_bytes is None

    def test_spec_choices(self):
        for spec in ("auto", "fp16", "delta", "rle", "none"):
            assert (
                build_parser()
                .parse_args(["train", "--wire-codec", spec])
                .wire_codec
                == spec
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--wire-codec", "gzip"])

    def test_train_with_delta_reports_measured_compression(self, capsys):
        rc = main(
            [
                "train", "--model", "word", "--gpus", "2", "--steps", "6",
                "--vocab", "80", "--corpus-tokens", "5000",
                "--wire-codec", "delta",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wire: delta" in out
        assert "index compression:" in out
        factor = float(
            out.split("index compression:")[1].split("x")[0].strip()
        )
        assert factor > 1.0
        assert "replica divergence: 0.0e+00" in out

    def test_train_with_chunked_auto(self, capsys):
        rc = main(
            [
                "train", "--model", "word", "--gpus", "2", "--steps", "4",
                "--vocab", "80", "--corpus-tokens", "5000",
                "--wire-codec", "auto", "--wire-chunk-bytes", "2048",
            ]
        )
        assert rc == 0
        assert "index compression:" in capsys.readouterr().out


class TestTelemetry:
    def run_telemetry_train(self, tmp_path, *extra):
        tele = tmp_path / "tele"
        rc = main(
            [
                "train", "--gpus", "2", "--steps", "4", "--vocab", "80",
                "--corpus-tokens", "5000", "--telemetry-dir", str(tele),
                *extra,
            ]
        )
        assert rc == 0
        return tele

    def test_train_writes_telemetry_dir(self, capsys, tmp_path):
        tele = self.run_telemetry_train(tmp_path)
        out = capsys.readouterr().out
        assert "telemetry: 4 steps" in out
        for name in ("steps.jsonl", "metrics.prom", "metrics.json",
                     "trace.json", "trace_parts.json", "summary.json"):
            assert (tele / name).exists(), name
        import json as _json

        steps = [
            _json.loads(line)
            for line in (tele / "steps.jsonl").read_text().splitlines()
        ]
        assert [s["step"] for s in steps] == [1, 2, 3, 4]
        assert all(s["wire_bytes_per_rank"] > 0 for s in steps)

    def test_trace_subcommand_validates_and_cross_checks(
        self, capsys, tmp_path
    ):
        tele = self.run_telemetry_train(
            tmp_path, "--overlap", "--wire-codec", "auto",
        )
        capsys.readouterr()
        rc = main(["trace", str(tele)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "merged trace:" in out
        assert "generations [0]" in out
        assert "exports: prometheus == json" in out
        assert "ledger totals agree exactly" in out
        assert (tele / "trace.json").exists()

    def test_trace_resilient_run_has_per_generation_pids(
        self, capsys, tmp_path
    ):
        """The ISSUE 5 acceptance invocation, end to end."""
        tele = self.run_telemetry_train(
            tmp_path, "--gpus", "3", "--steps", "8", "--resilient",
            "--overlap", "--wire-codec", "auto",
            "--checkpoint", str(tmp_path / "ckpt.npz"),
        )
        capsys.readouterr()
        out_path = tmp_path / "merged.json"
        rc = main(["trace", str(tele), "--out", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        # Demo plan: world 3 shrinks to 2 -> 5 pids, generations 0 and 1.
        assert "5 pids" in out
        assert "generations [0, 1]" in out
        assert "ledger totals agree exactly" in out
        import json as _json

        trace = _json.loads(out_path.read_text())
        pids = {e["pid"] for e in trace if e["ph"] == "X"}
        assert pids == {0, 1, 2, 3, 4}

    def test_trace_missing_dir_errors(self, capsys, tmp_path):
        rc = main(["trace", str(tmp_path / "nope")])
        assert rc == 2
        assert "trace_parts.json" in capsys.readouterr().err


class TestVerifySpmd:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["verify-spmd"])
        assert args.paths == ["src/repro"]
        assert args.gpus == 4 and args.steps == 8
        assert not args.static_only and not args.dynamic_only

    def test_static_pass_on_clean_source(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text(
            "def step(comm, world, grads):\n"
            "    for rank in range(world):\n"
            "        grads[rank] *= 1.0 / world\n"
            "    comm.allreduce(grads)\n"
        )
        rc = main(["verify-spmd", str(clean), "--static-only"])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_static_pass_flags_divergent_mutant(self, capsys, tmp_path):
        mutant = tmp_path / "mutant.py"
        mutant.write_text(
            "def step(comm, rank, grads):\n"
            "    if rank == 0:\n"
            "        comm.allreduce(grads)\n"
        )
        rc = main(["verify-spmd", str(mutant), "--static-only"])
        assert rc == 1
        assert "REPRO010" in capsys.readouterr().out

    def test_missing_path_errors(self, capsys, tmp_path):
        rc = main(["verify-spmd", str(tmp_path / "nope.py"), "--static-only"])
        assert rc == 2
        assert "no such path" in capsys.readouterr().err

    def test_exclusive_layer_flags_rejected(self, capsys):
        rc = main(["verify-spmd", "--static-only", "--dynamic-only"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dynamic_replay_smoke(self, capsys):
        rc = main(["verify-spmd", "--dynamic-only", "--gpus", "2",
                   "--steps", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lockstep OK" in out
        assert "0 divergences" in out

    def test_train_verify_spmd_flag(self, capsys):
        rc = main(["train", "--gpus", "2", "--steps", "2", "--vocab", "60",
                   "--corpus-tokens", "4000", "--verify-spmd"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "lockstep-verified" in out
        assert "fingerprint-verified" in out


class TestTrainMesh:
    """`train --mesh`: parse-time validation and end-to-end smoke."""

    BASE = ["train", "--gpus", "4", "--steps", "2", "--vocab", "60",
            "--corpus-tokens", "4000"]

    def test_trivial_mesh_smoke(self, capsys):
        rc = main(self.BASE + ["--mesh", "data=G"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mesh: data=G" in out

    def test_hybrid_mesh_with_axis_verification(self, capsys):
        rc = main(["train", "--gpus", "8", "--steps", "2", "--vocab", "60",
                   "--corpus-tokens", "4000",
                   "--mesh", "pipe=2,tensor=2,data=", "--verify-spmd"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-axis mesh subgroups verified" in out

    def test_bad_spec_is_a_parse_time_error(self, capsys):
        rc = main(self.BASE + ["--mesh", "pipe=3,data="])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--mesh" in err and "does not divide" in err

    def test_unknown_axis_rejected(self, capsys):
        rc = main(self.BASE + ["--mesh", "node=2,local=2"])
        assert rc == 2
        assert "training-mesh axis" in capsys.readouterr().err

    def test_mesh_rejects_codec_flags(self, capsys):
        rc = main(self.BASE + ["--mesh", "data=G", "--fp16"])
        assert rc == 2
        assert "raw values" in capsys.readouterr().err
        rc = main(self.BASE + ["--mesh", "data=G", "--wire-codec", "delta"])
        assert rc == 2
        assert "raw values" in capsys.readouterr().err

    def test_mesh_rejects_overlap_and_sanitize(self, capsys):
        rc = main(self.BASE + ["--mesh", "data=G", "--overlap"])
        assert rc == 2
        assert "--overlap" in capsys.readouterr().err
        rc = main(self.BASE + ["--mesh", "data=G", "--sanitize"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resilient_needs_shrinkable_data_axis(self, capsys):
        rc = main(["train", "--gpus", "4", "--steps", "2", "--vocab", "60",
                   "--corpus-tokens", "4000", "--resilient",
                   "--mesh", "pipe=2,tensor=2,data=1"])
        assert rc == 2
        assert "data axis" in capsys.readouterr().err

    def test_resilient_mesh_rank_loss_collapses_data_axis(self, capsys):
        rc = main(["train", "--gpus", "8", "--steps", "6", "--vocab", "60",
                   "--corpus-tokens", "4000", "--resilient",
                   "--mesh", "pipe=2,tensor=2,data=2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "world 8 -> 4" in out

    def test_nonpositive_counts_rejected(self, capsys):
        rc = main(["train", "--gpus", "0", "--steps", "2"])
        assert rc == 2
        assert "--gpus" in capsys.readouterr().err
        rc = main(["train", "--gpus", "2", "--steps", "0"])
        assert rc == 2
        assert "--steps" in capsys.readouterr().err

    def test_wire_chunk_without_codec_rejected(self, capsys):
        rc = main(["train", "--gpus", "2", "--steps", "2",
                   "--wire-chunk-bytes", "4096"])
        assert rc == 2
        assert "--wire-codec" in capsys.readouterr().err


class TestServeBench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.model == "word"
        assert args.gpus == 4
        assert args.requests == 48
        assert args.slo is None
        assert args.fault_plan is None

    def test_word_smoke(self, capsys):
        rc = main(["serve-bench", "--requests", "12", "--gpus", "2",
                   "--vocab", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "continuous: makespan" in out
        assert "token-identical" in out
        assert "ttft:" in out and "p99" in out
        assert "goodput:" in out

    def test_char_smoke(self, capsys):
        rc = main(["serve-bench", "--model", "char", "--requests", "8",
                   "--gpus", "2", "--vocab", "40"])
        assert rc == 0
        assert "char model" in capsys.readouterr().out

    def test_slo_drops_reported(self, capsys):
        rc = main(["serve-bench", "--requests", "24", "--gpus", "2",
                   "--vocab", "60", "--slo", "0.01"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dropped" in out

    def test_telemetry_dir_written(self, capsys, tmp_path):
        rc = main(["serve-bench", "--requests", "8", "--gpus", "2",
                   "--vocab", "50", "--telemetry-dir", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "steps.jsonl").exists()
        prom = (tmp_path / "metrics.prom").read_text()
        assert "repro_serve_p99_ttft_seconds" in prom

    def test_fault_plan_served(self, capsys, tmp_path):
        import json

        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps({
            "seed": 0,
            "events": [{"kind": "rank_loss", "collective_index": 4,
                        "rank": 1}],
        }))
        rc = main(["serve-bench", "--requests", "16", "--gpus", "3",
                   "--vocab", "60", "--fault-plan", str(plan_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 generation(s)" in out
