"""Edge-case and fuzz tests across the stack.

These probe the corners a downstream user will eventually hit: empty and
single-element gradients, single-rank worlds, dimension-1 embeddings,
float32 paths, ranks with wildly unbalanced batches, and randomized
end-to-end invariant checks.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Communicator
from repro.core import (
    AllGatherExchange,
    Fp16Codec,
    GradientSynchronizer,
    UniqueExchange,
    unique_exchange,
)
from repro.nn import Embedding, SparseGrad
from repro.nn.parameter import Parameter


def comm(world):
    return Communicator(world, track_memory=False)


class TestSparseGradEdges:
    def test_empty_gradient(self):
        g = SparseGrad(
            indices=np.array([], dtype=np.int64), values=np.zeros((0, 3))
        )
        assert g.n_tokens == 0
        c = g.coalesce()
        assert c.n_tokens == 0
        np.testing.assert_array_equal(g.to_dense(5), np.zeros((5, 3)))

    def test_single_token(self):
        g = SparseGrad(indices=np.array([2]), values=np.ones((1, 1)))
        assert g.coalesce().n_tokens == 1
        assert g.dim == 1

    def test_dim_one_embedding(self):
        emb = Embedding(5, 1, np.random.default_rng(0))
        out, cache = emb.forward(np.array([[0, 4]]))
        assert out.shape == (1, 2, 1)
        emb.backward(np.ones_like(out), cache)
        assert emb.weight.merged_sparse_grad().dim == 1


class TestExchangeEdges:
    def test_single_rank_world(self):
        g = SparseGrad(indices=np.array([1, 1, 3]), values=np.ones((3, 2)))
        result = unique_exchange(comm(1), [g])
        np.testing.assert_array_equal(result.global_indices, [1, 3])
        np.testing.assert_allclose(
            result.as_sparse_grad().to_dense(5), g.to_dense(5)
        )

    def test_one_rank_empty(self):
        """A rank that saw no tokens (padding-only batch) must not break
        the exchange, and must contribute nothing."""
        full = SparseGrad(indices=np.array([2, 4]), values=np.ones((2, 2)))
        empty = SparseGrad(
            indices=np.array([], dtype=np.int64), values=np.zeros((0, 2))
        )
        result = unique_exchange(comm(2), [full, empty])
        np.testing.assert_allclose(
            result.as_sparse_grad().to_dense(5), full.to_dense(5)
        )

    def test_all_ranks_empty(self):
        empty = SparseGrad(
            indices=np.array([], dtype=np.int64), values=np.zeros((0, 2))
        )
        result = unique_exchange(comm(2), [empty, empty])
        assert result.num_global_unique == 0

    def test_extreme_imbalance(self):
        """One rank with 1 token, another with 500."""
        rng = np.random.default_rng(0)
        small = SparseGrad(indices=np.array([7]), values=np.ones((1, 3)))
        big = SparseGrad(
            indices=rng.integers(0, 50, 500),
            values=rng.standard_normal((500, 3)),
        )
        base = AllGatherExchange().exchange(comm(2), [small, big])
        uniq = UniqueExchange().exchange(comm(2), [small, big])
        np.testing.assert_allclose(
            base[0].to_dense(50), uniq[0].to_dense(50), rtol=1e-10
        )

    def test_float32_pipeline(self):
        rng = np.random.default_rng(1)
        grads = [
            SparseGrad(
                indices=rng.integers(0, 20, 10),
                values=rng.standard_normal((10, 4)).astype(np.float32),
            )
            for _ in range(3)
        ]
        result = unique_exchange(comm(3), grads)
        assert result.reduced_values.dtype == np.float32

    def test_huge_sparse_indices(self):
        """Indices near int64 extremes must survive the index pipeline."""
        big = 2**40
        grads = [
            SparseGrad(
                indices=np.array([big, big + 7], dtype=np.int64),
                values=np.ones((2, 2)),
            )
            for _ in range(2)
        ]
        result = unique_exchange(comm(2), grads)
        np.testing.assert_array_equal(result.global_indices, [big, big + 7])
        np.testing.assert_allclose(result.reduced_values, 2.0)

    def test_fp16_codec_on_empty_values(self):
        empty = SparseGrad(
            indices=np.array([], dtype=np.int64),
            values=np.zeros((0, 2), np.float32),
        )
        result = unique_exchange(
            comm(2), [empty, empty], codec=Fp16Codec(512.0)
        )
        assert result.num_global_unique == 0


class TestSynchronizerEdges:
    def test_sync_with_some_ranks_empty_sparse(self):
        """Replica batches can miss a parameter's tokens on one rank; the
        synchronizer treats an empty contribution as zeros."""
        params = []
        for rank in range(2):
            p = Parameter(np.zeros((6, 2)))
            if rank == 0:
                p.accumulate_sparse_grad(
                    SparseGrad(np.array([1]), np.ones((1, 2)))
                )
            else:
                p.accumulate_sparse_grad(
                    SparseGrad(
                        np.array([], dtype=np.int64), np.zeros((0, 2))
                    )
                )
            params.append(p)
        sync = GradientSynchronizer(comm(2), strategy=UniqueExchange())
        sync.sync_sparse(params, tag="t")
        merged = params[1].merged_sparse_grad()
        np.testing.assert_allclose(merged.to_dense(6)[1], [0.5, 0.5])


class TestFuzz:
    @given(
        world=st.integers(1, 4),
        vocab=st.integers(1, 15),
        dim=st.integers(1, 5),
        token_counts=st.lists(st.integers(0, 12), min_size=4, max_size=4),
        seed=st.integers(0, 99),
        use_codec=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_exchange_equivalence_fuzz(
        self, world, vocab, dim, token_counts, seed, use_codec
    ):
        """Both strategies agree (within codec tolerance) on arbitrary
        shapes, including empty ranks."""
        rng = np.random.default_rng(seed)
        grads = []
        for r in range(world):
            n = token_counts[r]
            grads.append(
                SparseGrad(
                    indices=rng.integers(0, vocab, n),
                    values=rng.standard_normal((n, dim)).astype(np.float32),
                )
            )
        codec = Fp16Codec(256.0) if use_codec else None
        base = AllGatherExchange(codec=codec).exchange(comm(world), grads)
        uniq = UniqueExchange(codec=codec).exchange(comm(world), grads)
        # fp32 accumulation order differs between the two strategies, so
        # exact runs can drift by a few ulps above 1e-6.
        atol = 2e-2 if use_codec else 1e-5
        np.testing.assert_allclose(
            base[0].to_dense(vocab), uniq[0].to_dense(vocab), atol=atol
        )

    @given(
        data=st.data(),
        world=st.integers(2, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_trainer_invariants_fuzz(self, data, world):
        """Random miniature configs: replicas always end synchronized and
        losses are always finite."""
        from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
        from repro.optim import SGD
        from repro.train import (
            DistributedTrainer,
            TrainConfig,
            WordLanguageModel,
            WordLMConfig,
            assert_replicas_synchronized,
        )

        vocab = data.draw(st.integers(30, 120))
        seqs = data.draw(st.integers(1, 3))
        seq_len = data.draw(st.integers(2, 8))
        use_unique = data.draw(st.booleans())
        corpus = make_corpus(
            ONE_BILLION_WORD.scaled(vocab),
            max(4000, world * seqs * (seq_len * 3 + 2) * 110),
            seed=data.draw(st.integers(0, 20)),
        )
        cfg = TrainConfig(
            world_size=world,
            batch=BatchSpec(seqs, seq_len),
            base_lr=0.2,
            use_unique=use_unique,
        )
        model_cfg = WordLMConfig(
            vocab_size=vocab,
            embedding_dim=4,
            hidden_dim=6,
            projection_dim=4,
            num_samples=min(8, vocab - 1),
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train,
            corpus.valid,
            cfg,
        )
        for _ in range(2):
            loss = trainer.train_step()
            assert np.isfinite(loss)
        assert_replicas_synchronized(trainer.replicas, atol=0.0)
