"""Tests for the end-to-end simulated run facade."""

import numpy as np
import pytest

from repro.cluster import DeviceSpec
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.sim import SimulatedRun
from repro.train import TrainConfig, WordLanguageModel, WordLMConfig

VOCAB = 80
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=8, hidden_dim=10, projection_dim=8,
    num_samples=12,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 20_000, seed=2)

BIG_DEVICE = DeviceSpec(name="big", memory_bytes=10**9, peak_flops=1e12)
# Sized between the unique path's peak (~40 KB incl. the 34 KB model
# residency) and the baseline's (~52 KB) at world=10.
TINY_DEVICE = DeviceSpec(name="tiny", memory_bytes=45_000, peak_flops=1e12)


def make_run(world=4, device=BIG_DEVICE, use_unique=True, **kw):
    cfg = TrainConfig(
        world_size=world, batch=BatchSpec(2, 8), base_lr=0.3,
        use_unique=use_unique,
    )
    return SimulatedRun(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS,
        cfg,
        device_spec=device,
        **kw,
    )


class TestCompletedRun:
    def test_report_fields(self):
        report = make_run().execute(steps=20)
        assert report.completed and not report.oom
        assert report.final_perplexity < report.initial_perplexity
        assert report.wire_bytes_per_rank > 0
        assert report.comm_seconds > 0
        assert report.peak_memory_bytes >= report.model_bytes
        assert "allreduce" in report.bytes_by_op

    def test_model_residency_charged(self):
        run = make_run()
        params = run.trainer.replicas[0].parameter_bytes()
        assert run.model_bytes == 2 * params  # weights + grads, SGD
        run_adam = make_run(optimizer_slots=2)
        assert run_adam.model_bytes == 4 * params

    def test_summary_renders(self):
        report = make_run().execute(steps=5)
        text = report.summary()
        assert "completed" in text
        assert "MB/GPU" in text

    def test_unique_run_cheaper_than_baseline(self):
        r_uniq = make_run(use_unique=True).execute(steps=5)
        r_base = make_run(use_unique=False).execute(steps=5)
        assert r_uniq.wire_bytes_per_rank < r_base.wire_bytes_per_rank
        assert r_uniq.peak_memory_bytes < r_base.peak_memory_bytes


class TestOOMRun:
    def test_baseline_oom_captured_not_raised(self):
        report = make_run(world=10, device=TINY_DEVICE, use_unique=False).execute(
            steps=3
        )
        assert report.oom and not report.completed
        assert "exceeds capacity" in report.oom_message
        assert report.summary().startswith("simulated run")
        assert "ABORTED" in report.summary()

    def test_unique_fits_same_device(self):
        report = make_run(world=10, device=TINY_DEVICE, use_unique=True).execute(
            steps=3
        )
        assert report.completed

    def test_model_too_big_for_device_raises_at_setup(self):
        """A model that can't even load is a configuration error, not a
        run outcome."""
        from repro.cluster import DeviceOOMError

        micro = DeviceSpec(name="micro", memory_bytes=1000, peak_flops=1e12)
        with pytest.raises(DeviceOOMError):
            make_run(device=micro)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_run().execute(steps=0)
        with pytest.raises(ValueError):
            make_run(optimizer_slots=-1)
