"""Tests for benchmark report formatting."""

import pytest

from repro.report import format_series, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(
            ["GPUs", "Time"], [[8, 14.6], [16, 8.1]], title="Table III"
        )
        lines = out.splitlines()
        assert lines[0] == "Table III"
        assert "GPUs" in lines[1]
        assert "14.6" in lines[3]

    def test_cell_count_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
        with pytest.raises(ValueError):
            format_table([], [])

    def test_float_formatting(self):
        out = format_table(["x"], [[0.00012], [12345.6], [3.5], [0.0]])
        assert "0.00012" in out
        assert "3.5" in out
        assert "0" in out

    def test_string_cells_pass_through(self):
        out = format_table(["status"], [["OOM"]])
        assert "OOM" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_pairs(self):
        out = format_series("16 gpu", [0.5, 1.0], [120.0, 84.3])
        assert out.startswith("16 gpu:")
        assert "(0.5, 120)" in out
        assert "(1, 84.3)" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1, 2])
