"""Regression pin: batched rank execution is bit-identical to the loop.

The simulator fast path (:mod:`repro.nn.batched`) stacks all replicas'
forward/backward along a leading rank axis and — when every micro-step
of an optimizer step took the fast path — applies rank 0's optimizer
update once and replicates the state.  Its contract is **bit-for-bit**
equivalence with the per-rank loop: losses, parameters, optimizer
moments, dropout RNG consumption and carried BPTT state must all match
exactly, across seeds.  Anything weaker would make a "performance"
toggle silently change training results.
"""

import numpy as np
import pytest

from repro.data.batching import BatchSpec
from repro.nn.batched import build_batched_executor
from repro.optim.adam import Adam
from repro.train.char_lm import CharLanguageModel
from repro.train.config import CharLMConfig, TrainConfig
from repro.train.trainer import DistributedTrainer, max_replica_divergence

MODEL_CFG = CharLMConfig(
    vocab_size=61, embedding_dim=7, hidden_dim=11, depth=3, dropout=0.2
)


def _make_trainer(batched, seed, **overrides):
    rng = np.random.default_rng(seed)
    train = rng.integers(0, MODEL_CFG.vocab_size, size=6000).astype(np.int64)
    valid = rng.integers(0, MODEL_CFG.vocab_size, size=900).astype(np.int64)
    cfg = TrainConfig(
        world_size=overrides.pop("world_size", 4),
        batch=BatchSpec(3, 5),
        base_lr=4e-3,
        init_seed=seed,
        data_seed=seed + 1,
        batched=batched,
        **overrides,
    )

    def factory(init_rng, rank):
        return CharLanguageModel(
            MODEL_CFG,
            init_rng,
            dropout_rng=np.random.default_rng((seed, rank)),
            stateful=True,
        )

    return DistributedTrainer(
        factory, lambda p, lr: Adam(p, lr), train, valid, cfg
    )


def _assert_identical(fast, slow):
    for ra, rb in zip(fast.replicas, slow.replicas):
        for (name, pa), (_, pb) in zip(
            ra.named_parameters(), rb.named_parameters()
        ):
            assert np.array_equal(pa.data, pb.data), name
        sa, sb = ra._state, rb._state
        assert (sa is None) == (sb is None)
        if sa is not None:
            assert np.array_equal(sa, sb)
    for oa, ob in zip(fast.optimizers, slow.optimizers):
        da, db = oa.state_dict(), ob.state_dict()
        assert da.keys() == db.keys()
        for key in da:
            va, vb = da[key], db[key]
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), key
            else:
                assert va == vb, key
    assert max_replica_divergence(fast.replicas) == 0.0


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_batched_matches_per_rank_loop(seed):
    """Five-seed differential: losses + full state identical after 8 steps."""
    fast = _make_trainer(True, seed, accumulation_steps=2)
    slow = _make_trainer(False, seed, accumulation_steps=2)
    assert fast.batched_executor is not None
    assert slow.batched_executor is None
    fast_losses = [fast.train_step() for _ in range(8)]
    slow_losses = [slow.train_step() for _ in range(8)]
    assert fast_losses == slow_losses
    _assert_identical(fast, slow)


def test_batched_matches_under_overlap_and_loss_scale():
    fast = _make_trainer(
        True, 11, overlap=True, compute_seconds_per_step=1e-3,
        loss_scale=256.0,
    )
    slow = _make_trainer(
        False, 11, overlap=True, compute_seconds_per_step=1e-3,
        loss_scale=256.0,
    )
    assert [fast.train_step() for _ in range(5)] == [
        slow.train_step() for _ in range(5)
    ]
    _assert_identical(fast, slow)
    # The overlapped schedule's *ledger* must agree too: the fast path
    # only changes host wall-clock, never simulated cost accounting.
    assert (
        fast.comm.ledger.total_wire_bytes_per_rank
        == slow.comm.ledger.total_wire_bytes_per_rank
    )
    assert fast.comm.ledger.total_time_s == slow.comm.ledger.total_time_s


def test_batched_epoch_with_evals_matches():
    """Full epoch incl. eval (training-flag flips) stays bit-exact."""
    fast = _make_trainer(True, 21)
    slow = _make_trainer(False, 21)
    sa = fast.train_epoch(max_steps=6, evals_per_epoch=2)
    sb = slow.train_epoch(max_steps=6, evals_per_epoch=2)
    assert sa.mean_train_loss == sb.mean_train_loss
    assert [e.nll for e in sa.eval_points] == [e.nll for e in sb.eval_points]
    _assert_identical(fast, slow)


def test_batched_true_requires_support():
    with pytest.raises(ValueError, match="batched"):
        _make_trainer(True, 3, world_size=1)


def test_batched_false_disables():
    t = _make_trainer(False, 3)
    assert t.batched_executor is None


def test_single_replica_has_no_executor():
    t = _make_trainer(None, 3, world_size=1)
    assert t.batched_executor is None
    t.train_step()  # per-rank loop still works


def test_executor_disables_on_divergence():
    t = _make_trainer(True, 5)
    ex = t.batched_executor
    t.train_step()
    assert ex.active
    # Corrupt one replica past the sync invariant; the next verification
    # window must trip the tripwire and fall back permanently.
    next(iter(t.replicas[1].parameters())).data += 1.0
    ex._calls = 0  # force the verification window
    for _ in range(2):
        t.train_step()
    assert not ex.active
    assert "diverged" in ex.fallback_reason


def test_ragged_batches_fall_back():
    t = _make_trainer(True, 6)
    ex = t.batched_executor
    batches = t.batcher.step_batches(0)
    short = batches[0].__class__(
        inputs=batches[0].inputs[:, :-1], targets=batches[0].targets[:, :-1]
    )
    assert ex.step([short] + list(batches[1:])) is None
    assert ex.active  # per-step fallback, not a permanent disable


def test_build_rejects_mixed_configs():
    rng = np.random.default_rng(0)
    other_cfg = CharLMConfig(
        vocab_size=61, embedding_dim=7, hidden_dim=13, depth=3, dropout=0.2
    )
    a = CharLanguageModel(MODEL_CFG, np.random.default_rng(0))
    b = CharLanguageModel(other_cfg, np.random.default_rng(0))
    assert build_batched_executor([a, b]) is None
    assert build_batched_executor([a]) is None
    assert build_batched_executor([object(), object()]) is None
