"""End-to-end tests for the wire-compression policy in training.

The acceptance property of the whole stack: a lossless wire codec on
the unique-index ALLGATHER changes the bytes the ledger charges, and
*nothing else* — training traces are bit-exact against the
uncompressed baseline, step for step, weight for weight.
"""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 60
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def word_trainer(world=4, **cfg_overrides):
    cfg = TrainConfig(
        world_size=world,
        batch=BatchSpec(2, 6),
        base_lr=0.2,
        **cfg_overrides,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train,
        CORPUS.valid,
        cfg,
    )


def _weights(trainer):
    return {
        name: p.data.copy()
        for name, p in trainer.replicas[0].named_parameters()
    }


class TestConfigValidation:
    def test_wire_codec_spec_validated_eagerly(self):
        with pytest.raises(ValueError, match="unknown wire-codec"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_codec="gzip",
            )

    def test_chunk_bytes_requires_codec(self):
        with pytest.raises(ValueError, match="requires wire_codec"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_chunk_bytes=4096,
            )
        with pytest.raises(ValueError, match="positive"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_codec="delta", wire_chunk_bytes=0,
            )

    def test_valid_specs_accepted(self):
        for spec in ("none", "auto", "fp16", "delta", "rle", "fp16+delta"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_codec=spec,
            )


class TestWireTrainerThreading:
    def test_none_spec_builds_no_policy(self):
        t = word_trainer(2, wire_codec="none")
        assert t.wire is None

    def test_delta_spec_builds_index_codec(self):
        t = word_trainer(2, wire_codec="delta", wire_chunk_bytes=2048)
        assert t.wire is not None
        assert t.wire.index_codec is not None
        assert t.wire.chunk_bytes == 2048

    def test_sanitized_policy(self):
        from repro.analysis.sanitizer import SanitizedWireCodec

        t = word_trainer(2, wire_codec="delta", wire_sanitize=True)
        assert isinstance(t.wire.index_codec, SanitizedWireCodec)


class TestBitExactTraining:
    @pytest.mark.parametrize(
        "spec,chunk", [("delta", None), ("delta", 512), ("rle", None)]
    )
    def test_lossless_codec_training_is_bit_exact(self, spec, chunk):
        base = word_trainer(4)
        wired = word_trainer(4, wire_codec=spec, wire_chunk_bytes=chunk)
        base.train_epoch(max_steps=6)
        wired.train_epoch(max_steps=6)
        wb, ww = _weights(base), _weights(wired)
        assert set(wb) == set(ww)
        for name in wb:
            np.testing.assert_array_equal(
                wb[name], ww[name], err_msg=f"weight {name} diverged"
            )

    def test_delta_codec_shrinks_wire_and_reports_factor(self):
        base = word_trainer(4)
        wired = word_trainer(4, wire_codec="delta")
        base.train_epoch(max_steps=6)
        wired.train_epoch(max_steps=6)
        assert (
            wired.comm.ledger.total_wire_bytes_per_rank
            < base.comm.ledger.total_wire_bytes_per_rank
        )
        assert wired.comm.ledger.compression_factor(":indices") > 1.0

    def test_explicit_none_matches_absent_policy_exactly(self):
        plain = word_trainer(3)
        none = word_trainer(3, wire_codec="none")
        plain.train_epoch(max_steps=4)
        none.train_epoch(max_steps=4)
        assert (
            plain.comm.ledger.total_wire_bytes_per_rank
            == none.comm.ledger.total_wire_bytes_per_rank
        )
        wp, wn = _weights(plain), _weights(none)
        for name in wp:
            np.testing.assert_array_equal(wp[name], wn[name])


class TestFusedReduceTraining:
    """Fused compress-reduce on the dense-gradient allreduce: opting in
    must not move a single bit of the training trace."""

    def test_config_validation(self):
        with pytest.raises(ValueError, match="mesh"):
            TrainConfig(
                world_size=4, batch=BatchSpec(2, 6), base_lr=0.1,
                fused_reduce=True, mesh={"data": 2, "model": 2},
            )
        with pytest.raises(ValueError, match="auto"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_learn=True, wire_codec="delta",
            )

    @pytest.mark.parametrize("spec", [None, "fp16"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fused_reduce_training_is_bit_exact(self, spec, seed):
        """5-seed differential: fused on/off, identical weights."""
        kw = {} if spec is None else {"wire_codec": spec}
        plain = word_trainer(4, init_seed=seed, data_seed=seed, **kw)
        fused = word_trainer(
            4, init_seed=seed, data_seed=seed, fused_reduce=True, **kw
        )
        plain.train_epoch(max_steps=4)
        fused.train_epoch(max_steps=4)
        wp, wf = _weights(plain), _weights(fused)
        assert set(wp) == set(wf)
        for name in wp:
            np.testing.assert_array_equal(
                wp[name], wf[name], err_msg=f"weight {name} diverged"
            )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_fused_fp16_matches_uncompressed_trace(self, seed):
        """5-seed differential against the raw uncompressed baseline.

        The fp16 value codec only engages above the selector-free
        policy's size floor; at this model size every dense gradient is
        below it, so the fused fp16 run must equal the raw run exactly
        (and the fused machinery adds no numerical noise of its own).
        """
        base = word_trainer(4, init_seed=seed, data_seed=seed)
        fused = word_trainer(
            4, init_seed=seed, data_seed=seed, fused_reduce=True
        )
        base.train_epoch(max_steps=4)
        fused.train_epoch(max_steps=4)
        wb, wf = _weights(base), _weights(fused)
        for name in wb:
            np.testing.assert_array_equal(wb[name], wf[name])

    def test_fused_reduce_rejects_frame_codec_on_dense_grads(self):
        from repro.cluster import Communicator
        from repro.core.embedding_sync import GradientSynchronizer
        from repro.core.wire import DeltaBitpackCodec
        from repro.nn.parameter import Parameter

        gs = GradientSynchronizer(
            Communicator(2), codec=DeltaBitpackCodec(), fused_reduce=True
        )
        params = [Parameter(np.ones(8, np.float32)) for _ in range(2)]
        for p in params:
            p.grad = np.ones(8, np.float32)
        with pytest.raises(ValueError, match="summable"):
            gs._issue_dense(params, tag="dense")

    def test_fused_reduce_does_not_compose_with_mesh(self):
        from repro.cluster import Communicator
        from repro.core.embedding_sync import GradientSynchronizer

        with pytest.raises(ValueError, match="mesh_comm"):
            GradientSynchronizer(
                Communicator(4), mesh_comm=object(), fused_reduce=True
            )


class TestWireLearning:
    """--wire-learn: the trainer folds measured wire telemetry back
    into the adaptive selector's throughput table after each epoch."""

    def test_learning_requires_auto_selector(self):
        with pytest.raises(ValueError, match="auto"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_learn=True, wire_codec="fp16",
            )

    def test_learn_is_noop_without_metrics(self):
        t = word_trainer(2, wire_codec="auto", wire_learn=True)
        assert t.learn_wire_throughputs() == {}

    def test_trainer_learns_from_attached_registry(self):
        from repro.core.wire import EntropyCodec, iencoded_allgather
        from repro.core.wire.cost import CodecThroughput
        from repro.telemetry import MetricsRegistry

        t = word_trainer(2, wire_codec="auto", wire_learn=True)
        t.comm.metrics = MetricsRegistry()
        rng = np.random.default_rng(5)
        vecs = [
            np.sort(rng.choice(100_000, 4096, replace=False)).astype(
                np.int64
            )
            for _ in range(2)
        ]
        iencoded_allgather(
            t.comm, vecs, EntropyCodec(),
            throughput=CodecThroughput(encode_bps=1e9, decode_bps=2e9),
        ).wait()
        learned = t.learn_wire_throughputs()
        assert set(learned) == {"entropy"}
        assert learned["entropy"].encode_bps == pytest.approx(1e9, abs=1.0)
        assert t.wire.selector.throughputs["entropy"] == learned["entropy"]

    def test_epoch_end_learning_runs_with_telemetry(self):
        from repro.telemetry import MetricsRegistry

        t = word_trainer(2, wire_codec="auto", wire_learn=True)
        t.comm.metrics = MetricsRegistry()
        t.train_epoch(max_steps=2)
        # The selector's table exists and still contains every default
        # codec entry — learning never drops unmeasured codecs.
        table = t.wire.selector.throughputs
        if table is not None:
            for name in ("fp16", "delta", "rle", "entropy"):
                assert name in table
