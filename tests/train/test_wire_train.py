"""End-to-end tests for the wire-compression policy in training.

The acceptance property of the whole stack: a lossless wire codec on
the unique-index ALLGATHER changes the bytes the ledger charges, and
*nothing else* — training traces are bit-exact against the
uncompressed baseline, step for step, weight for weight.
"""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 60
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def word_trainer(world=4, **cfg_overrides):
    cfg = TrainConfig(
        world_size=world,
        batch=BatchSpec(2, 6),
        base_lr=0.2,
        **cfg_overrides,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train,
        CORPUS.valid,
        cfg,
    )


def _weights(trainer):
    return {
        name: p.data.copy()
        for name, p in trainer.replicas[0].named_parameters()
    }


class TestConfigValidation:
    def test_wire_codec_spec_validated_eagerly(self):
        with pytest.raises(ValueError, match="unknown wire-codec"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_codec="gzip",
            )

    def test_chunk_bytes_requires_codec(self):
        with pytest.raises(ValueError, match="requires wire_codec"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_chunk_bytes=4096,
            )
        with pytest.raises(ValueError, match="positive"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_codec="delta", wire_chunk_bytes=0,
            )

    def test_valid_specs_accepted(self):
        for spec in ("none", "auto", "fp16", "delta", "rle", "fp16+delta"):
            TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.1,
                wire_codec=spec,
            )


class TestWireTrainerThreading:
    def test_none_spec_builds_no_policy(self):
        t = word_trainer(2, wire_codec="none")
        assert t.wire is None

    def test_delta_spec_builds_index_codec(self):
        t = word_trainer(2, wire_codec="delta", wire_chunk_bytes=2048)
        assert t.wire is not None
        assert t.wire.index_codec is not None
        assert t.wire.chunk_bytes == 2048

    def test_sanitized_policy(self):
        from repro.analysis.sanitizer import SanitizedWireCodec

        t = word_trainer(2, wire_codec="delta", wire_sanitize=True)
        assert isinstance(t.wire.index_codec, SanitizedWireCodec)


class TestBitExactTraining:
    @pytest.mark.parametrize(
        "spec,chunk", [("delta", None), ("delta", 512), ("rle", None)]
    )
    def test_lossless_codec_training_is_bit_exact(self, spec, chunk):
        base = word_trainer(4)
        wired = word_trainer(4, wire_codec=spec, wire_chunk_bytes=chunk)
        base.train_epoch(max_steps=6)
        wired.train_epoch(max_steps=6)
        wb, ww = _weights(base), _weights(wired)
        assert set(wb) == set(ww)
        for name in wb:
            np.testing.assert_array_equal(
                wb[name], ww[name], err_msg=f"weight {name} diverged"
            )

    def test_delta_codec_shrinks_wire_and_reports_factor(self):
        base = word_trainer(4)
        wired = word_trainer(4, wire_codec="delta")
        base.train_epoch(max_steps=6)
        wired.train_epoch(max_steps=6)
        assert (
            wired.comm.ledger.total_wire_bytes_per_rank
            < base.comm.ledger.total_wire_bytes_per_rank
        )
        assert wired.comm.ledger.compression_factor(":indices") > 1.0

    def test_explicit_none_matches_absent_policy_exactly(self):
        plain = word_trainer(3)
        none = word_trainer(3, wire_codec="none")
        plain.train_epoch(max_steps=4)
        none.train_epoch(max_steps=4)
        assert (
            plain.comm.ledger.total_wire_bytes_per_rank
            == none.comm.ledger.total_wire_bytes_per_rank
        )
        wp, wn = _weights(plain), _weights(none)
        for name in wp:
            np.testing.assert_array_equal(wp[name], wn[name])
