"""Tests for accuracy metrics."""

import math

import pytest

from repro.train.metrics import (
    accuracy_improvement,
    bits_per_char,
    compression_ratio,
    nll_from_perplexity,
    perplexity,
    perplexity_from_bpc,
)


class TestPerplexity:
    def test_roundtrip(self):
        assert perplexity(nll_from_perplexity(72.4)) == pytest.approx(72.4)

    def test_zero_nll_is_ppl_one(self):
        assert perplexity(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            perplexity(-0.1)
        with pytest.raises(ValueError):
            nll_from_perplexity(0.5)


class TestBPC:
    def test_bpc_is_log2_ppl(self):
        nll = nll_from_perplexity(2.0)
        assert bits_per_char(nll) == pytest.approx(1.0)

    def test_paper_amazon_figures(self):
        """Section V-D: BPC 1.11 ~ char perplexity 2^1.11 = 2.16."""
        assert perplexity_from_bpc(1.11) == pytest.approx(2.158, abs=0.01)

    def test_roundtrip(self):
        assert bits_per_char(math.log(perplexity_from_bpc(1.208))) == pytest.approx(
            1.208
        )


class TestCompressionRatio:
    def test_paper_tieba_figure(self):
        """93.12 GB / 34.36 B chars at perplexity 11.1 -> ratio ~6.3."""
        bpc = bits_per_char(nll_from_perplexity(11.1))
        ratio = compression_ratio(93.12 * 1024**3, 34.36e9, bpc)
        assert ratio == pytest.approx(6.3, rel=0.08)

    def test_paper_amazon_reference(self):
        """Prior work: BPC 1.11 on ~40GB/38.76B chars -> ratio ~6.8."""
        ratio = compression_ratio(37.04 * 1024**3, 38.76e9, 1.11)
        assert ratio == pytest.approx(6.8, rel=0.12)

    def test_validation(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 1, 1)
        with pytest.raises(ValueError):
            compression_ratio(1, 1, 0)


class TestAccuracyImprovement:
    def test_paper_35_percent_claim(self):
        """Tieba: ppl 17.06 -> 11.1 is the paper's '35% improvement'."""
        assert accuracy_improvement(17.06, 11.1) == pytest.approx(0.35, abs=0.01)

    def test_paper_20_percent_claim(self):
        """Tieba 12 GB point: 17.06 -> 13.6 is ~20%."""
        assert accuracy_improvement(17.06, 13.6) == pytest.approx(0.20, abs=0.01)

    def test_no_improvement_is_zero(self):
        assert accuracy_improvement(10.0, 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy_improvement(0.5, 10.0)
