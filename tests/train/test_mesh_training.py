"""Tests for hybrid-mesh training: equivalence, chaos, elastic shrink.

The regression pins, per the mesh design:

* **Trivial-mesh differential**: a ``(pipe=1, tensor=1, data=G)`` mesh
  run is **bit-identical** to the flat data-parallel run — same losses,
  same final weights — because the sharded exchanges reproduce the flat
  reductions element-for-element.
* **Hybrid consistency**: a ``(2, 2, 2)`` world of 8 keeps its data
  replicas bit-synchronized, verifies cleanly on every axis ring, and
  charges pipeline/tensor traffic to the shared ledger.
* **Elastic mesh shrink**: a rank loss collapses the data axis only
  (``(p, t, d) -> (p, t, d-1)``); ``data=1`` refuses to shrink.
"""

import numpy as np
import pytest

from repro.cluster import (
    ChaosCommunicator,
    FaultEvent,
    FaultKind,
    FaultPlan,
    TransientLinkError,
)
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    ResilientRunner,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    assert_replicas_synchronized,
    load_checkpoint,
    save_checkpoint,
)

VOCAB = 60
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def word_trainer(world=4, comm=None, **cfg_overrides):
    cfg = TrainConfig(
        world_size=world, batch=BatchSpec(2, 6), base_lr=0.2,
        **cfg_overrides,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg, comm=comm,
    )


def weights(trainer):
    return {
        name: p.data.copy()
        for name, p in trainer.replicas[0].named_parameters()
    }


class TestTrivialMeshEquivalence:
    """(1, 1, G) must reproduce the flat path bit-for-bit."""

    def test_losses_and_weights_bit_identical(self):
        flat = word_trainer(use_unique=True)
        mesh = word_trainer(use_unique=True, mesh="data=G")
        flat_losses = [flat.train_step() for _ in range(4)]
        mesh_losses = [mesh.train_step() for _ in range(4)]
        assert mesh_losses == flat_losses
        fw, mw = weights(flat), weights(mesh)
        assert fw.keys() == mw.keys()
        for name in fw:
            np.testing.assert_array_equal(mw[name], fw[name])

    def test_baseline_exchange_matches_to_rounding(self):
        # The flat ALLGATHER baseline applies duplicate token rows in
        # arrival order; the mesh exchange coalesces per replica first.
        # Same sums, different float addition order — allclose, not
        # bitwise (the bitwise pin above holds for the unique path the
        # mesh exchange mirrors).
        flat = word_trainer(use_unique=False)
        mesh = word_trainer(use_unique=False, mesh="data=G")
        for _ in range(3):
            flat.train_step()
            mesh.train_step()
        fw, mw = weights(flat), weights(mesh)
        for name in fw:
            np.testing.assert_allclose(
                mw[name], fw[name], rtol=1e-12, atol=1e-15
            )

    def test_mesh_run_keeps_replica_count(self):
        tr = word_trainer(mesh="data=G")
        assert tr.data_parallel == 4
        assert len(tr.replicas) == 4


class TestHybridMesh:
    def test_replicas_stay_synchronized(self):
        tr = word_trainer(world=8, mesh="pipe=2,tensor=2,data=")
        assert tr.data_parallel == 2
        assert len(tr.replicas) == 2
        for _ in range(4):
            loss = tr.train_step()
            assert np.isfinite(loss)
        assert_replicas_synchronized(tr.replicas, atol=0.0)

    def test_gradient_sync_runs_on_data_axis_only(self):
        tr = word_trainer(world=8, mesh="pipe=2,tensor=2,data=")
        tr.train_step()
        mesh_events = [
            e for e in tr.comm.ledger.events if e.op.startswith("mesh_")
        ]
        assert mesh_events, "mesh path issued no mesh collectives"
        assert all(e.tag.startswith("data:") for e in mesh_events)

    def test_per_axis_verifiers_stay_clean(self):
        tr = word_trainer(world=8, mesh="pipe=2,tensor=2,data=")
        tr.mesh_comm.attach_axis_verifiers()
        for _ in range(3):
            tr.train_step()
        counts = tr.mesh_comm.check_axes("test: end of run")
        assert counts["data"] > 0

    def test_differential_chaos_transient_fault_is_survivable(
        self, tmp_path
    ):
        """Acceptance: hybrid mesh + per-axis verifiers + chaos plan —
        a retried transient fault leaves the weights bit-identical to
        the fault-free arm."""
        world = 8
        plan = FaultPlan(
            [
                FaultEvent(
                    FaultKind.TRANSIENT_LINK, collective_index=5,
                    rank=3, retries=1,
                )
            ],
            seed=0,
        )

        def factory(cfg, comm):
            return DistributedTrainer(
                lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
                lambda params, lr: SGD(params, lr),
                CORPUS.train, CORPUS.valid, cfg, comm=comm,
            )

        cfg = TrainConfig(
            world_size=world, batch=BatchSpec(2, 6), base_lr=0.2,
            mesh="pipe=2,tensor=2,data=",
        )
        chaos_comm = ChaosCommunicator(world, plan=plan, track_memory=False)
        runner = ResilientRunner(
            factory, cfg, tmp_path / "ckpt.npz", comm=chaos_comm,
            checkpoint_every=3,
        )
        faulted = runner.run(4)
        faulted.mesh_comm.check_axes("test: after chaos")
        assert any(e.kind == "retry" for e in runner.events)

        clean = word_trainer(world=world, mesh="pipe=2,tensor=2,data=")
        for _ in range(4):
            clean.train_step()
        fw, cw = weights(faulted), weights(clean)
        for name in cw:
            np.testing.assert_array_equal(fw[name], cw[name])

    def test_transient_fault_fires_through_mesh_collectives(self):
        plan = FaultPlan(
            [
                FaultEvent(
                    FaultKind.TRANSIENT_LINK, collective_index=0,
                    rank=0, retries=1,
                )
            ],
            seed=0,
        )
        comm = ChaosCommunicator(8, plan=plan, track_memory=False)
        tr = word_trainer(world=8, comm=comm, mesh="pipe=2,tensor=2,data=")
        with pytest.raises(TransientLinkError):
            tr.train_step()


class TestMeshCheckpoint:
    def test_roundtrip_preserves_mesh_run(self, tmp_path):
        tr = word_trainer(world=8, mesh="pipe=2,tensor=2,data=")
        tr.train_step()
        save_checkpoint(tmp_path / "c.npz", tr)
        fresh = word_trainer(world=8, mesh="pipe=2,tensor=2,data=")
        step = load_checkpoint(tmp_path / "c.npz", fresh)
        assert step == 1
        fw, tw = weights(fresh), weights(tr)
        for name in tw:
            np.testing.assert_array_equal(fw[name], tw[name])

    def test_model_axes_must_match(self, tmp_path):
        tr = word_trainer(world=8, mesh="pipe=2,tensor=2,data=")
        save_checkpoint(tmp_path / "c.npz", tr)
        other = word_trainer(world=8, mesh="pipe=4,tensor=1,data=")
        with pytest.raises(ValueError, match="re-cut"):
            load_checkpoint(tmp_path / "c.npz", other)

    def test_flat_checkpoint_rejects_model_parallel_trainer(self, tmp_path):
        tr = word_trainer(world=8)
        save_checkpoint(tmp_path / "c.npz", tr)
        other = word_trainer(world=8, mesh="pipe=2,tensor=2,data=")
        with pytest.raises(ValueError, match="re-cut"):
            load_checkpoint(tmp_path / "c.npz", other)

    def test_flat_checkpoint_loads_into_trivial_mesh(self, tmp_path):
        tr = word_trainer(world=4)
        tr.train_step()
        save_checkpoint(tmp_path / "c.npz", tr)
        mesh = word_trainer(world=4, mesh="data=G")
        assert load_checkpoint(tmp_path / "c.npz", mesh) == 1

    def test_elastic_load_may_shrink_data_axis_only(self, tmp_path):
        tr = word_trainer(world=8, mesh="pipe=2,tensor=2,data=2")
        tr.train_step()
        save_checkpoint(tmp_path / "c.npz", tr)
        shrunk = word_trainer(world=4, mesh="pipe=2,tensor=2,data=1")
        with pytest.raises(ValueError):
            load_checkpoint(tmp_path / "c.npz", shrunk)  # not elastic
        assert load_checkpoint(
            tmp_path / "c.npz", shrunk, elastic=True
        ) == 1


class TestElasticMeshShrink:
    def runner(self, tmp_path, plan, world, mesh):
        cfg = TrainConfig(
            world_size=world, batch=BatchSpec(2, 6), base_lr=0.2,
            mesh=mesh,
        )

        def factory(cfg, comm):
            return DistributedTrainer(
                lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
                lambda params, lr: SGD(params, lr),
                CORPUS.train, CORPUS.valid, cfg, comm=comm,
            )

        comm = ChaosCommunicator(world, plan=plan, track_memory=False)
        return ResilientRunner(
            factory, cfg, tmp_path / "ckpt.npz", comm=comm,
            checkpoint_every=2,
        )

    def test_rank_loss_collapses_data_axis(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=9, rank=7)]
        )
        runner = self.runner(
            tmp_path, plan, world=8, mesh="pipe=2,tensor=2,data=2"
        )
        trainer = runner.run(5)
        assert trainer.config.world_size == 4
        assert trainer.config.mesh == "pipe=2,tensor=2,data=1"
        assert trainer.config.mesh_shape == (2, 2, 1)
        assert runner.lr_scale == pytest.approx(0.5)
        assert trainer.global_step == 5
        assert_replicas_synchronized(trainer.replicas, atol=0.0)

    def test_data_axis_of_one_refuses_to_shrink(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=3, rank=0)]
        )
        runner = self.runner(
            tmp_path, plan, world=4, mesh="pipe=2,tensor=2,data=1"
        )
        with pytest.raises(ValueError, match="data axis"):
            runner.run(4)
