"""Tests for the word and char LM assemblies."""

import numpy as np
import pytest

from repro.data.batching import Batch
from repro.train.char_lm import CharLanguageModel
from repro.train.config import (
    PAPER_CHAR_LM,
    PAPER_WORD_LM,
    CharLMConfig,
    WordLMConfig,
)
from repro.train.word_lm import WordLanguageModel

WORD_CFG = WordLMConfig(
    vocab_size=50, embedding_dim=8, hidden_dim=12, projection_dim=8, num_samples=10
)
CHAR_CFG = CharLMConfig(
    vocab_size=20, embedding_dim=6, hidden_dim=10, depth=2, dropout=0.0
)


def word_model(seed=0):
    return WordLanguageModel(WORD_CFG, np.random.default_rng(seed))


def char_model(seed=0, dropout=0.0):
    cfg = CHAR_CFG.scaled(dropout=dropout)
    return CharLanguageModel(
        cfg, np.random.default_rng(seed), dropout_rng=np.random.default_rng(1)
    )


def batch(vocab, shape=(2, 5), seed=0):
    rng = np.random.default_rng(seed)
    return Batch(
        inputs=rng.integers(0, vocab, shape), targets=rng.integers(0, vocab, shape)
    )


class TestConfigs:
    def test_paper_word_lm_dimensions(self):
        assert PAPER_WORD_LM.vocab_size == 100_000
        assert PAPER_WORD_LM.hidden_dim == 2048
        assert PAPER_WORD_LM.projection_dim == 512
        assert PAPER_WORD_LM.num_samples == 1024

    def test_paper_char_lm_dimensions(self):
        assert PAPER_CHAR_LM.vocab_size == 98
        assert PAPER_CHAR_LM.hidden_dim == 1792
        assert PAPER_CHAR_LM.depth == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            WordLMConfig(vocab_size=10, num_samples=10)
        with pytest.raises(ValueError):
            CharLMConfig(dropout=1.0)


class TestWordLM:
    def test_step_returns_finite_loss_and_grads(self):
        m = word_model()
        loss = m.step(batch(50), np.random.default_rng(1))
        assert np.isfinite(loss) and loss > 0
        # Every parameter received a gradient of some kind.
        for name, p in m.named_parameters():
            has = p.grad is not None or p.sparse_grads
            assert has, f"{name} got no gradient"

    def test_embedding_grads_are_sparse(self):
        m = word_model()
        m.step(batch(50), np.random.default_rng(1))
        assert m.embedding.weight.grad is None
        assert m.embedding.weight.sparse_grads
        assert m.loss_layer.weight.grad is None
        assert m.loss_layer.weight.sparse_grads

    def test_identical_seeds_identical_models(self):
        """Replica precondition: same init rng state, same parameters."""
        a, b = word_model(7), word_model(7)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_training_reduces_loss(self):
        from repro.optim import SGD

        m = word_model()
        opt = SGD(list(m.parameters()), lr=0.5)
        b = batch(50, shape=(4, 6))
        first = m.step(b, np.random.default_rng(0))
        opt.step()
        for i in range(30):
            m.step(b, np.random.default_rng(i + 1))
            opt.step()
        last = m.step(b, np.random.default_rng(99))
        m.zero_grad()
        assert last < first

    def test_eval_nll_deterministic(self):
        m = word_model()
        batches = [batch(50, seed=i) for i in range(3)]
        assert m.eval_nll(batches) == m.eval_nll(batches)

    def test_eval_requires_batches(self):
        with pytest.raises(ValueError):
            word_model().eval_nll([])


class TestCharLM:
    def test_step_returns_finite_loss(self):
        m = char_model()
        loss = m.step(batch(20))
        assert np.isfinite(loss) and loss > 0

    def test_full_softmax_grads_are_dense(self):
        m = char_model()
        m.step(batch(20))
        assert m.loss_layer.weight.grad is not None
        assert not m.loss_layer.weight.sparse_grads
        # Input embedding still sparse.
        assert m.embedding.weight.sparse_grads

    def test_dropout_only_in_training(self):
        m = char_model(dropout=0.5)
        b = batch(20)
        m.eval()
        nll1 = m.eval_nll([b])
        nll2 = m.eval_nll([b])
        assert nll1 == nll2

    def test_training_reduces_loss(self):
        from repro.optim import Adam

        m = char_model()
        opt = Adam(list(m.parameters()), lr=3e-3)
        b = batch(20, shape=(4, 6))
        first = m.step(b)
        opt.step()
        for _ in range(40):
            m.step(b)
            opt.step()
        last = m.step(b)
        m.zero_grad()
        assert last < first

    def test_loss_scale_flows_to_grads(self):
        m1, m2 = char_model(3), char_model(3)
        b = batch(20)
        m1.step(b, loss_scale=1.0)
        m2.step(b, loss_scale=128.0)
        np.testing.assert_allclose(
            m2.rhn.r.grad, 128.0 * m1.rhn.r.grad, rtol=1e-9
        )

    def test_initial_loss_near_uniform(self):
        """Untrained model NLL should be close to log(V)."""
        m = char_model()
        nll = m.eval_nll([batch(20, shape=(8, 10))])
        assert nll == pytest.approx(np.log(20), rel=0.25)
