"""Tests for SGD momentum and the trainer's fit() driver."""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.nn.parameter import Parameter, SparseGrad
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 60
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


class TestMomentum:
    def test_zero_momentum_matches_plain(self):
        a, b = Parameter(np.ones(3)), Parameter(np.ones(3))
        oa, ob = SGD([a], lr=0.1), SGD([b], lr=0.1, momentum=0.0)
        for _ in range(3):
            a.accumulate_grad(np.ones(3))
            b.accumulate_grad(np.ones(3))
            oa.step()
            ob.step()
        np.testing.assert_array_equal(a.data, b.data)

    def test_momentum_accumulates_velocity(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.accumulate_grad(np.ones(1))
        opt.step()  # v = 1, w = -1
        p.accumulate_grad(np.ones(1))
        opt.step()  # v = 1.9, w = -2.9
        assert p.data[0] == pytest.approx(-2.9)

    def test_momentum_continues_without_gradient_rows(self):
        """Lazy sparse momentum: untouched rows keep their velocity but
        only apply it when touched again (standard sparse convention)."""
        p = Parameter(np.zeros((2, 1)))
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.accumulate_sparse_grad(SparseGrad(np.array([0]), np.ones((1, 1))))
        opt.step()  # row 0: v=1 -> w=-1
        p.accumulate_sparse_grad(SparseGrad(np.array([0]), np.ones((1, 1))))
        opt.step()  # row 0: v=1.5 -> w=-2.5
        assert p.data[0, 0] == pytest.approx(-2.5)
        assert p.data[1, 0] == 0.0

    def test_momentum_accelerates_on_constant_gradient(self):
        plain = Parameter(np.zeros(1))
        heavy = Parameter(np.zeros(1))
        op, oh = SGD([plain], lr=0.1), SGD([heavy], lr=0.1, momentum=0.9)
        for _ in range(20):
            plain.accumulate_grad(np.ones(1))
            heavy.accumulate_grad(np.ones(1))
            op.step()
            oh.step()
        assert heavy.data[0] < plain.data[0] < 0

    def test_state_dict_roundtrip(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.accumulate_grad(np.ones(2))
        opt.step()
        state = opt.state_dict()
        q = Parameter(p.data.copy())
        opt2 = SGD([q], lr=0.1, momentum=0.9)
        opt2.load_state_dict(state)
        p.accumulate_grad(np.ones(2))
        q.accumulate_grad(np.ones(2))
        opt.step()
        opt2.step()
        np.testing.assert_array_equal(p.data, q.data)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=-0.1)


class TestFit:
    def make_trainer(self):
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 6), base_lr=0.3)
        return DistributedTrainer(
            lambda rng, rank: WordLanguageModel(MODEL, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )

    def test_runs_requested_epochs(self):
        tr = self.make_trainer()
        run = tr.fit(epochs=2, max_steps_per_epoch=4, evals_per_epoch=1)
        assert len(run) == 2
        assert tr.epochs_done == 2

    def test_target_perplexity_stops_early(self):
        tr = self.make_trainer()
        run = tr.fit(
            epochs=50,
            target_perplexity=1e6,  # trivially reached after epoch 1
            max_steps_per_epoch=2,
            evals_per_epoch=1,
        )
        assert len(run) == 1

    def test_patience_stops_on_plateau(self):
        tr = self.make_trainer()
        # lr so small that perplexity barely moves -> plateau quickly.
        tr.schedule = type(tr.schedule)(initial_lr=1e-12, decay=0.9)
        run = tr.fit(
            epochs=20, patience=2, max_steps_per_epoch=2, evals_per_epoch=1
        )
        assert len(run) < 20

    def test_validation(self):
        tr = self.make_trainer()
        with pytest.raises(ValueError):
            tr.fit(epochs=0)
        with pytest.raises(ValueError):
            tr.fit(epochs=1, target_perplexity=0.5)
        with pytest.raises(ValueError):
            tr.fit(epochs=1, patience=0)
