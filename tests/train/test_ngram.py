"""Tests for the n-gram baseline LM."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import ONE_BILLION_WORD, make_corpus
from repro.train.ngram import NGramModel


def stream(vocab=20, n=20_000, seed=0):
    return make_corpus(ONE_BILLION_WORD.scaled(vocab), n, seed=seed)


class TestFitting:
    def test_unigram_counts(self):
        m = NGramModel(5, order=1).fit(np.array([0, 1, 1, 2, 2, 2]))
        p = m.prob(np.zeros((3, 0), np.int64), np.array([0, 1, 2]))
        assert p[2] > p[1] > p[0]

    def test_fit_returns_self(self):
        m = NGramModel(5, order=1)
        assert m.fit(np.array([0, 1, 2])) is m

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NGramModel(5).prob(np.zeros((1, 1), np.int64), np.array([0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            NGramModel(1)
        with pytest.raises(ValueError):
            NGramModel(5, order=4)
        with pytest.raises(ValueError):
            NGramModel(5, add_k=0.0)
        with pytest.raises(ValueError):
            NGramModel(5, order=2, interpolation=(0.5, 0.4))
        with pytest.raises(ValueError):
            NGramModel(5).fit(np.array([9]))  # out of range + too short


class TestProbabilities:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_distribution_sums_to_one(self, order):
        corpus = stream()
        m = NGramModel(20, order=order).fit(corpus.train)
        dist = m.next_token_distribution(corpus.train[:5])
        assert dist.min() > 0
        assert dist.sum() == pytest.approx(1.0, rel=1e-9)

    def test_bigram_learns_transitions(self):
        # Deterministic cycle 0 -> 1 -> 2 -> 0: bigram nails it.
        tokens = np.tile([0, 1, 2], 500)
        m = NGramModel(
            3, order=2, add_k=1e-4, interpolation=(0.95, 0.05)
        ).fit(tokens)
        dist = m.next_token_distribution(np.array([0]))
        assert dist.argmax() == 1
        assert dist[1] > 0.9

    def test_trigram_beats_bigram_on_longer_context(self):
        # Sequence where the next token depends on *two* predecessors:
        # 0,1 -> 2 but 3,1 -> 4.
        block = [0, 1, 2, 3, 1, 4]
        tokens = np.tile(block, 400)
        bi = NGramModel(5, order=2, add_k=1e-3).fit(tokens)
        tri = NGramModel(5, order=3, add_k=1e-3).fit(tokens)
        assert tri.nll(tokens) < bi.nll(tokens)


class TestEvaluation:
    def test_perplexity_bounded_by_vocab(self):
        corpus = stream()
        m = NGramModel(20, order=2).fit(corpus.train)
        ppl = m.perplexity(corpus.valid)
        assert 1.0 < ppl < 20

    def test_bigram_beats_unigram_on_zipf_stream(self):
        corpus = stream(vocab=50, n=50_000)
        uni = NGramModel(50, order=1).fit(corpus.train)
        bi = NGramModel(50, order=2).fit(corpus.train)
        # An i.i.d. stream has no transition structure beyond frequency,
        # so bigram ~ unigram; it must never be substantially worse.
        assert bi.perplexity(corpus.valid) < uni.perplexity(corpus.valid) * 1.05

    def test_sanity_anchor_for_neural_model(self):
        """The library's sanity check: a trained neural LM should land in
        the same perplexity regime as the n-gram on an i.i.d. stream."""
        from repro.data import BatchSpec
        from repro.optim import SGD
        from repro.train import (
            DistributedTrainer,
            TrainConfig,
            WordLanguageModel,
            WordLMConfig,
            perplexity,
        )

        corpus = stream(vocab=60, n=30_000, seed=3)
        ngram = NGramModel(60, order=1).fit(corpus.train)
        anchor = ngram.perplexity(corpus.valid)

        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 8), base_lr=0.3)
        model_cfg = WordLMConfig(
            vocab_size=60, embedding_dim=8, hidden_dim=10, projection_dim=8,
            num_samples=12,
        )
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train, corpus.valid, cfg,
        )
        for _ in range(150):
            trainer.train_step()
        neural = perplexity(trainer.evaluate())
        # On an i.i.d. stream the unigram distribution is the optimum;
        # the neural model should approach (not dramatically beat) it.
        assert neural < anchor * 1.3

    def test_too_short_stream_rejected(self):
        m = NGramModel(5, order=3).fit(np.array([0, 1, 2, 3, 4]))
        with pytest.raises(ValueError):
            m.nll(np.array([0, 1]))

    @given(
        order=st.integers(1, 3),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=15, deadline=None)
    def test_probabilities_valid_fuzz(self, order, seed):
        rng = np.random.default_rng(seed)
        tokens = rng.integers(0, 10, 500)
        m = NGramModel(10, order=order).fit(tokens)
        n_ctx = max(1, order - 1)
        ctx = rng.integers(0, 10, (30, n_ctx))
        targets = rng.integers(0, 10, 30)
        p = m.prob(ctx, targets)
        assert (p > 0).all() and (p <= 1).all()
