"""Tests for loss scaling wired through the distributed trainer."""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    assert_replicas_synchronized,
)

VOCAB = 60
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def make_trainer(loss_scale=None):
    cfg = TrainConfig(
        world_size=2, batch=BatchSpec(2, 6), base_lr=0.2, loss_scale=loss_scale
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


class TestConfig:
    def test_valid_options(self):
        for value in (None, 512.0, 1024, "dynamic"):
            make_trainer(loss_scale=value)

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            make_trainer(loss_scale="adaptive")
        with pytest.raises(ValueError):
            make_trainer(loss_scale=0.5)


class TestStaticScaling:
    def test_scaled_training_equals_unscaled(self):
        """Scale-then-unscale is exact in fp64: trajectories match."""
        plain = make_trainer(loss_scale=None)
        scaled = make_trainer(loss_scale=512.0)
        for _ in range(4):
            plain.train_step()
            scaled.train_step()
        for (n, a), (_, b) in zip(
            plain.replicas[0].named_parameters(),
            scaled.replicas[0].named_parameters(),
        ):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-10, err_msg=n)

    def test_no_steps_skipped_when_finite(self):
        tr = make_trainer(loss_scale=512.0)
        for _ in range(3):
            tr.train_step()
        assert tr.skipped_steps == 0
        assert_replicas_synchronized(tr.replicas, atol=0.0)


class TestDynamicScaling:
    def test_scale_grows_over_clean_steps(self):
        tr = make_trainer(loss_scale="dynamic")
        tr.scaler.growth_interval = 2
        s0 = tr.scaler.scale
        for _ in range(4):
            tr.train_step()
        assert tr.scaler.scale > s0
        assert tr.skipped_steps == 0

    def test_overflow_skips_update_and_backs_off(self):
        tr = make_trainer(loss_scale="dynamic")
        before = {
            n: p.data.copy()
            for n, p in tr.replicas[0].named_parameters()
        }
        s0 = tr.scaler.scale
        # Poison one parameter so the backward produces non-finite grads.
        for replica in tr.replicas:
            replica.projection.weight.data[0, 0] = np.inf
        tr.train_step()
        assert tr.skipped_steps == 1
        assert tr.scaler.scale == s0 / 2
        # No parameter moved (the poisoned value aside, which the update
        # skipping preserved too).
        after = dict(tr.replicas[0].named_parameters())
        for n, data in before.items():
            if n == "projection.weight":
                continue
            np.testing.assert_array_equal(after[n].data, data, err_msg=n)
        # Gradients were cleared for the next step.
        assert all(
            p.grad is None and not p.sparse_grads
            for r in tr.replicas
            for p in r.parameters()
        )

    def test_replicas_synchronized_through_skip(self):
        tr = make_trainer(loss_scale="dynamic")
        for replica in tr.replicas:
            replica.projection.weight.data[0, 0] = np.inf
        tr.train_step()
        for replica in tr.replicas:
            replica.projection.weight.data[0, 0] = 0.0
        for _ in range(2):
            tr.train_step()
        assert_replicas_synchronized(tr.replicas, atol=0.0)
