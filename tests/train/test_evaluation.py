"""Tests for per-frequency-bucket evaluation."""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus, make_eval_batches
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    bucketed_nll,
    frequency_buckets,
)

VOCAB = 200
MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=10, hidden_dim=14, projection_dim=10,
    num_samples=20,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 40_000, seed=17)


class TestFrequencyBuckets:
    def test_log_spacing(self):
        bounds = frequency_buckets(10_000, 5)
        assert bounds[-1] == 10_000
        assert (np.diff(bounds) > 0).all()
        # Head buckets cover far fewer ids than tail buckets.
        assert bounds[0] < bounds[-1] - bounds[-2]

    def test_single_bucket(self):
        np.testing.assert_array_equal(frequency_buckets(100, 1), [100])

    def test_validation(self):
        with pytest.raises(ValueError):
            frequency_buckets(1, 1)
        with pytest.raises(ValueError):
            frequency_buckets(10, 0)
        with pytest.raises(ValueError):
            frequency_buckets(10, 11)


class TestBucketedNLL:
    @pytest.fixture(scope="class")
    def trained(self):
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 10), base_lr=0.3)
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(MODEL, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )
        for _ in range(150):
            trainer.train_step()
        return trainer.replicas[0]

    @pytest.fixture(scope="class")
    def eval_batches(self):
        return make_eval_batches(CORPUS.valid, BatchSpec(2, 10), max_batches=8)

    def test_token_counts_follow_zipf(self, trained, eval_batches):
        report = bucketed_nll(trained, eval_batches, n_buckets=4)
        total = sum(report.token_counts)
        # The head bucket holds a dominant share of running text.
        assert report.token_counts[0] > total * 0.3

    def test_head_modelled_better_than_tail(self, trained, eval_batches):
        """The Zipf learning asymmetry: frequent words get lower NLL."""
        report = bucketed_nll(trained, eval_batches, n_buckets=4)
        valid = [
            (n, c) for n, c in zip(report.nll, report.token_counts) if c > 10
        ]
        assert len(valid) >= 2
        head_nll = valid[0][0]
        tail_nll = valid[-1][0]
        assert head_nll < tail_nll

    def test_overall_matches_model_eval(self, trained, eval_batches):
        report = bucketed_nll(trained, eval_batches, n_buckets=4)
        direct = trained.eval_nll(eval_batches)
        assert report.overall_nll == pytest.approx(direct, rel=1e-9)

    def test_perplexity_view(self, trained, eval_batches):
        report = bucketed_nll(trained, eval_batches, n_buckets=3)
        for nll, ppl in zip(report.nll, report.perplexity):
            if not np.isnan(nll):
                assert ppl == pytest.approx(np.exp(nll))

    def test_char_model_supported(self):
        from repro.train import CharLanguageModel, CharLMConfig

        cfg = CharLMConfig(
            vocab_size=60, embedding_dim=6, hidden_dim=8, depth=2, dropout=0.0
        )
        model = CharLanguageModel(
            cfg, np.random.default_rng(0), dropout_rng=np.random.default_rng(1)
        )
        corpus = make_corpus(ONE_BILLION_WORD.scaled(60), 5000, seed=0)
        batches = make_eval_batches(corpus.valid, BatchSpec(1, 8), max_batches=3)
        report = bucketed_nll(model, batches, n_buckets=3)
        assert sum(report.token_counts) == sum(b.n_tokens for b in batches)

    def test_empty_batches_rejected(self, trained):
        with pytest.raises(ValueError):
            bucketed_nll(trained, [])
