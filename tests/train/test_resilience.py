"""Tests for the supervised recovery loop and the differential chaos layer.

The headline invariants, per the resilience design:

* **Transient-only differential**: replaying a fault plan containing only
  transient link faults through :class:`ResilientRunner` must leave the
  final weights **bit-identical** to a fault-free run — a retried step
  consumes exactly the randomness and data the never-faulted step would
  have.
* **Elastic differential**: a plan with a permanent rank loss completes
  end-to-end (world shrinks, checkpoint resume, LR rescale) with
  bit-identical replicas and a perplexity in the same regime as the
  fault-free run.
"""

import numpy as np
import pytest

from repro.cluster import (
    ChaosCommunicator,
    Communicator,
    FaultEvent,
    FaultKind,
    FaultPlan,
    RankFailureError,
)
from repro.data import BatchSpec, ONE_BILLION_WORD, TIEBA, make_corpus
from repro.optim import SGD, Adam
from repro.perf import optimal_checkpoint_steps
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    ResilientRunner,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    assert_replicas_synchronized,
    perplexity,
)

VOCAB = 60
WORD_MODEL = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6,
    num_samples=8,
)
WORD_CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)

CHAR_MODEL = CharLMConfig(
    vocab_size=40, embedding_dim=6, hidden_dim=8, depth=2, dropout=0.2
)
CHAR_CORPUS = make_corpus(TIEBA.scaled(40), 30_000, seed=1)

#: The chaos suite replays these fixed seeds (``make test-chaos``).
CHAOS_SEEDS = (0, 1, 2, 3, 4)


def word_factory(cfg, comm):
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_MODEL, rng),
        lambda params, lr: SGD(params, lr),
        WORD_CORPUS.train, WORD_CORPUS.valid, cfg, comm=comm,
    )


def char_factory(cfg, comm):
    return DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            CHAR_MODEL, rng,
            dropout_rng=np.random.default_rng(rank),
            stateful=True,
        ),
        lambda params, lr: Adam(params, lr),
        CHAR_CORPUS.train, CHAR_CORPUS.valid, cfg, comm=comm,
    )


def word_config(world=3):
    return TrainConfig(world_size=world, batch=BatchSpec(2, 6), base_lr=0.2)


def runner_for(plan, tmp_path, world=3, factory=word_factory, cfg=None, **kw):
    cfg = cfg if cfg is not None else word_config(world)
    comm = ChaosCommunicator(world, plan=plan, track_memory=False)
    kw.setdefault("checkpoint_every", 3)
    return ResilientRunner(
        factory, cfg, tmp_path / "ckpt.npz", comm=comm, **kw
    )


def final_weights(trainer):
    return {
        name: param.data.copy()
        for name, param in trainer.replicas[0].named_parameters()
    }


class TestRunnerBasics:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            runner_for(FaultPlan(), tmp_path, max_retries=0)
        with pytest.raises(ValueError):
            runner_for(FaultPlan(), tmp_path, base_backoff_s=0.0)
        with pytest.raises(ValueError):
            runner_for(FaultPlan(), tmp_path, backoff_factor=0.5)
        with pytest.raises(ValueError):
            runner_for(FaultPlan(), tmp_path, checkpoint_every=0)
        with pytest.raises(ValueError):
            runner_for(FaultPlan(), tmp_path).run(0)

    def test_cadence_defaults_to_young_daly(self, tmp_path):
        comm = ChaosCommunicator(2, track_memory=False)
        runner = ResilientRunner(
            word_factory, word_config(2), tmp_path / "c.npz", comm=comm,
            mtbf_s=500.0, checkpoint_cost_s=2.0, step_time_s=1.5,
        )
        assert runner.checkpoint_every == optimal_checkpoint_steps(
            1.5, 2.0, 500.0
        )

    def test_fault_free_run_trains_and_checkpoints(self, tmp_path):
        runner = runner_for(FaultPlan(), tmp_path, checkpoint_every=2)
        trainer = runner.run(5)
        assert trainer.global_step == 5
        assert len(runner.losses) == 5
        kinds = [e.kind for e in runner.events]
        assert kinds.count("checkpoint") == 4  # initial, steps 2 & 4, final
        assert (tmp_path / "ckpt.npz").exists()
        assert_replicas_synchronized(trainer.replicas, atol=0.0)
        # Checkpoint cost is charged to the timeline.
        names = {e["name"] for e in runner.chrome_trace()}
        assert "checkpoint" in names

    def test_total_simulated_time_sums_generations(self, tmp_path):
        runner = runner_for(FaultPlan(), tmp_path)
        runner.run(3)
        assert runner.total_simulated_time() == pytest.approx(
            sum(tl.makespan for tl in runner.timelines)
        )
        assert runner.total_simulated_time() > 0


class TestTransientRecovery:
    def test_retry_with_backoff_charged_to_timeline_and_ledger(
        self, tmp_path
    ):
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=4,
                        rank=1, retries=2)]
        )
        runner = runner_for(plan, tmp_path, base_backoff_s=0.5)
        trainer = runner.run(4)
        assert trainer.config.world_size == 3  # no shrink for transients
        retries = [e for e in runner.events if e.kind == "retry"]
        assert len(retries) == 2
        # Exponential backoff: 0.5s then 1.0s, on the compute streams.
        backoff_events = [
            e for e in runner.chrome_trace()
            if e["name"].startswith("retry-backoff:")
        ]
        assert len(backoff_events) == 2 * 3  # per attempt, per rank
        ledger_backoffs = [
            e for e in trainer.comm.ledger.events if e.op == "retry_backoff"
        ]
        assert [e.time_s for e in ledger_backoffs] == [0.5, 1.0]
        assert all(e.scope == "recovery" for e in ledger_backoffs)
        assert_replicas_synchronized(trainer.replicas, atol=0.0)

    def test_backoff_is_capped(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=2,
                        retries=3)]
        )
        runner = runner_for(
            plan, tmp_path, base_backoff_s=1.0, backoff_factor=10.0,
            max_backoff_s=5.0, max_retries=4,
        )
        trainer = runner.run(3)
        ledger_backoffs = [
            e.time_s for e in trainer.comm.ledger.events
            if e.op == "retry_backoff"
        ]
        assert ledger_backoffs == [1.0, 5.0, 5.0]

    def test_rewind_restores_loss_scaler_state(self, tmp_path):
        """A rewound step must also roll back the dynamic scaler's
        counters, or the faulted arm grows its scale on a different
        cadence and diverges."""
        cfg = TrainConfig(
            world_size=2, batch=BatchSpec(2, 6), base_lr=0.2,
            loss_scale="dynamic",
        )
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=5,
                        retries=2)]
        )
        chaos = runner_for(plan, tmp_path, world=2, cfg=cfg)
        faulted = chaos.run(5)

        (tmp_path / "clean").mkdir(exist_ok=True)
        baseline = runner_for(FaultPlan(), tmp_path / "clean", world=2,
                              cfg=cfg)
        clean = baseline.run(5)

        assert faulted.scaler.scale == clean.scaler.scale
        clean_weights = final_weights(clean)
        for name, data in final_weights(faulted).items():
            np.testing.assert_array_equal(
                data, clean_weights[name], err_msg=name
            )

    def test_exhausted_retries_escalate_to_eviction(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=4,
                        rank=2, retries=50)]
        )
        runner = runner_for(plan, tmp_path, max_retries=2)
        trainer = runner.run(4)
        assert trainer.config.world_size == 2
        kinds = [e.kind for e in runner.events]
        assert "retries-exhausted" in kinds
        assert "resume" in kinds
        assert runner.lr_scale == pytest.approx(2 / 3)


class TestElasticShrink:
    def test_rank_loss_shrinks_world_and_resumes(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=9, rank=2)]
        )
        runner = runner_for(plan, tmp_path, checkpoint_every=2)
        trainer = runner.run(6)
        assert trainer.config.world_size == 2
        assert trainer.global_step == 6
        assert runner.lr_scale == pytest.approx(2 / 3)
        assert len(runner.timelines) == 2
        kinds = [e.kind for e in runner.events]
        assert "rank-loss" in kinds and "resume" in kinds
        assert_replicas_synchronized(trainer.replicas, atol=0.0)
        # Both generations appear in the merged trace.
        generations = {
            e["args"]["generation"] for e in runner.chrome_trace()
        }
        assert generations == {0, 1}

    def test_world_of_one_cannot_shrink(self, tmp_path):
        plan = FaultPlan(
            [FaultEvent(FaultKind.RANK_LOSS, collective_index=0, rank=0)]
        )
        runner = runner_for(plan, tmp_path, world=1, cfg=word_config(1))
        with pytest.raises(RankFailureError):
            runner.run(3)

    def test_acceptance_scenario(self, tmp_path):
        """ISSUE acceptance: 2 transient link faults + 1 permanent rank
        loss complete end-to-end; retry/backoff time is visible in the
        trace and the final replicas are bit-identical."""
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=3,
                           rank=1, retries=1),
                FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=8,
                           rank=0, retries=2),
                FaultEvent(FaultKind.RANK_LOSS, collective_index=20,
                           rank=2),
            ],
            seed=0,
        )
        runner = runner_for(plan, tmp_path, checkpoint_every=2)
        trainer = runner.run(10)
        assert trainer.global_step == 10
        assert trainer.config.world_size == 2
        assert_replicas_synchronized(trainer.replicas, atol=0.0)
        names = {e["name"] for e in runner.chrome_trace()}
        assert any(n.startswith("retry-backoff:") for n in names)
        assert "checkpoint" in names


class TestDifferentialChaos:
    """Same plan, two arms: chaos vs fault-free."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_transient_only_plan_is_bit_exact(self, tmp_path, seed):
        plan = FaultPlan.random(
            seed=seed, world_size=3, num_collectives=25,
            n_transient=2, n_rank_loss=0,
        ).only_transient()
        # Budget above the plan's worst case (2 events x <=3 retries can
        # stack at one index) so no transient escalates to an eviction.
        chaos = runner_for(plan, tmp_path, base_backoff_s=0.1, max_retries=8)
        faulted = chaos.run(6)
        assert len(chaos.trainer.comm.injected) > 0, (
            "plan injected nothing; differential arm is vacuous"
        )

        baseline = runner_for(FaultPlan(), tmp_path / "clean")
        (tmp_path / "clean").mkdir(exist_ok=True)
        clean = baseline.run(6)

        clean_weights = final_weights(clean)
        for name, data in final_weights(faulted).items():
            np.testing.assert_array_equal(
                data, clean_weights[name],
                err_msg=f"{name} diverged under transient faults (seed "
                        f"{seed}): retries are not bit-exact",
            )

    def test_transient_bit_exact_with_stateful_dropout_model(self, tmp_path):
        """The adversarial case for rewind: dropout RNG streams and
        carried BPTT state are both consumed mid-step."""
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 6), base_lr=2e-3)
        plan = FaultPlan(
            [
                FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=3,
                           retries=2),
                FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=9,
                           rank=1, retries=1),
            ]
        )
        chaos = runner_for(
            plan, tmp_path, world=2, factory=char_factory, cfg=cfg
        )
        faulted = chaos.run(5)
        assert len(chaos.trainer.comm.injected) == 3

        (tmp_path / "clean").mkdir(exist_ok=True)
        baseline = runner_for(
            FaultPlan(), tmp_path / "clean", world=2, factory=char_factory,
            cfg=cfg,
        )
        clean = baseline.run(5)

        clean_weights = final_weights(clean)
        for name, data in final_weights(faulted).items():
            np.testing.assert_array_equal(
                data, clean_weights[name], err_msg=name
            )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_elastic_shrink_perplexity_within_tolerance(self, tmp_path, seed):
        plan = FaultPlan.random(
            seed=seed, world_size=3, num_collectives=30,
            n_transient=1, n_rank_loss=1,
        )
        chaos = runner_for(plan, tmp_path, checkpoint_every=2)
        faulted = chaos.run(8)
        assert faulted.config.world_size == 2
        assert faulted.global_step == 8

        (tmp_path / "clean").mkdir(exist_ok=True)
        baseline = runner_for(FaultPlan(), tmp_path / "clean")
        clean = baseline.run(8)

        ppl_faulted = perplexity(faulted.evaluate())
        ppl_clean = perplexity(clean.evaluate())
        # The elastic arm trains part of the run at 2/3 the global batch
        # with a rescaled LR; it cannot be bit-exact, but it must land in
        # the same perplexity regime as the undisturbed run.
        assert np.isfinite(ppl_faulted)
        assert ppl_faulted == pytest.approx(ppl_clean, rel=0.25)
