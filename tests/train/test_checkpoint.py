"""Tests for checkpoint save/resume and state dicts."""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.nn import Linear, Module, Parameter
from repro.optim import SGD, Adam
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    load_checkpoint,
    save_checkpoint,
)

VOCAB = 60
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6, num_samples=8
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def word_trainer(world=2, seed_offset=0):
    cfg = TrainConfig(
        world_size=world, batch=BatchSpec(2, 6), base_lr=0.2,
        init_seed=1234 + seed_offset,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


def char_trainer(world=2):
    cfg = TrainConfig(world_size=world, batch=BatchSpec(2, 6), base_lr=1e-3)
    mcfg = CharLMConfig(vocab_size=VOCAB, embedding_dim=6, hidden_dim=8,
                        depth=2, dropout=0.0)
    return DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            mcfg, rng, dropout_rng=np.random.default_rng(rank)
        ),
        lambda params, lr: Adam(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


class TestModuleStateDict:
    def test_roundtrip(self):
        m = Linear(3, 4, np.random.default_rng(0))
        state = m.state_dict()
        m.weight.data[:] = 0.0
        m.load_state_dict(state)
        assert m.weight.data.any()

    def test_state_is_a_copy(self):
        m = Linear(3, 4, np.random.default_rng(0))
        state = m.state_dict()
        state["weight"][:] = 99.0
        assert not (m.weight.data == 99.0).any()

    def test_mismatched_names_rejected(self):
        m = Linear(3, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            m.load_state_dict({"weight": m.weight.data})  # missing bias
        with pytest.raises(ValueError):
            m.load_state_dict(m.state_dict() | {"extra": np.zeros(1)})

    def test_mismatched_shape_rejected(self):
        m = Linear(3, 4, np.random.default_rng(0))
        bad = m.state_dict()
        bad["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(bad)

    def test_nested_modules(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, np.random.default_rng(1))
                self.b = Parameter(np.ones(3))

        net = Net()
        state = net.state_dict()
        assert set(state) == {"a.weight", "a.bias", "b"}
        net.b.data[:] = 7.0
        net.load_state_dict(state)
        np.testing.assert_allclose(net.b.data, 1.0)


class TestOptimizerStateDict:
    def test_sgd_roundtrip(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.5, clip_norm=2.0)
        state = opt.state_dict()
        opt2 = SGD([p], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.5
        assert opt2.clip_norm == 2.0

    def test_adam_roundtrip_preserves_moments(self):
        p = Parameter(np.zeros((3, 2)))
        opt = Adam([p], lr=0.01)
        p.accumulate_grad(np.ones((3, 2)))
        opt.step()
        state = opt.state_dict()

        p2 = Parameter(np.zeros((3, 2)))
        opt2 = Adam([p2], lr=0.01)
        opt2.load_state_dict(state)
        # Both continue identically from here.
        for o, q in ((opt, p), (opt2, p2)):
            q.data[:] = 0.0
            q.accumulate_grad(np.full((3, 2), 0.5))
            o.step()
        np.testing.assert_allclose(p.data, p2.data, rtol=1e-12)

    def test_adam_shape_mismatch_rejected(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.01)
        state = opt.state_dict()
        state["m0"] = np.zeros(5)
        with pytest.raises(ValueError):
            opt.load_state_dict(state)


class TestCheckpointRoundtrip:
    def test_resume_is_bit_identical(self, tmp_path):
        """Train 4 steps, checkpoint, train 4 more; vs 8 straight."""
        straight = word_trainer()
        resumed = word_trainer()
        for _ in range(4):
            straight.train_step()
            resumed.train_step()
        ckpt = tmp_path / "step4.npz"
        save_checkpoint(ckpt, resumed)

        # A fresh trainer with *different* init must land on the
        # checkpointed weights exactly.
        fresh = word_trainer(seed_offset=999)
        step = load_checkpoint(ckpt, fresh)
        assert step == 4
        for _ in range(4):
            straight.train_step()
            fresh.train_step()
        for (n, a), (_, b) in zip(
            straight.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)

    def test_adam_trainer_resume(self, tmp_path):
        tr = char_trainer()
        for _ in range(3):
            tr.train_step()
        ckpt = tmp_path / "char.npz"
        save_checkpoint(ckpt, tr)
        fresh = char_trainer()
        load_checkpoint(ckpt, fresh)
        tr.train_step()
        fresh.train_step()
        for (n, a), (_, b) in zip(
            tr.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-12, err_msg=n)

    def test_all_replicas_restored(self, tmp_path):
        tr = word_trainer(world=3)
        tr.train_step()
        ckpt = tmp_path / "w3.npz"
        save_checkpoint(ckpt, tr)
        fresh = word_trainer(world=3, seed_offset=5)
        load_checkpoint(ckpt, fresh)
        from repro.train import assert_replicas_synchronized

        assert_replicas_synchronized(fresh.replicas, atol=0.0)

    def test_world_size_mismatch_rejected(self, tmp_path):
        tr = word_trainer(world=2)
        ckpt = tmp_path / "w2.npz"
        save_checkpoint(ckpt, tr)
        with pytest.raises(ValueError):
            load_checkpoint(ckpt, word_trainer(world=4))

    def test_dynamic_scaler_state_restored(self, tmp_path):
        def scaled_trainer():
            cfg = TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.2,
                loss_scale="dynamic",
            )
            return DistributedTrainer(
                lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
                lambda params, lr: SGD(params, lr),
                CORPUS.train, CORPUS.valid, cfg,
            )

        tr = scaled_trainer()
        tr.scaler.growth_interval = 2
        for _ in range(5):
            tr.train_step()
        assert tr.scaler.scale > 1024.0  # grew at least once
        ckpt = tmp_path / "scaled.npz"
        save_checkpoint(ckpt, tr)

        fresh = scaled_trainer()
        fresh.scaler.growth_interval = 2
        load_checkpoint(ckpt, fresh)
        assert fresh.scaler.scale == tr.scaler.scale
        assert fresh.scaler._clean_steps == tr.scaler._clean_steps
        assert fresh.skipped_steps == tr.skipped_steps
        # Continuation is bit-identical.
        tr.train_step()
        fresh.train_step()
        for (n, a), (_, b) in zip(
            tr.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)

    def test_scaler_checkpoint_requires_scaler_trainer(self, tmp_path):
        cfg = TrainConfig(
            world_size=2, batch=BatchSpec(2, 6), base_lr=0.2,
            loss_scale=512.0,
        )
        tr = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )
        ckpt = tmp_path / "static.npz"
        save_checkpoint(ckpt, tr)
        with pytest.raises(ValueError):
            load_checkpoint(ckpt, word_trainer())

    def test_diverged_replicas_refuse_to_checkpoint(self, tmp_path):
        tr = word_trainer()
        tr.replicas[1].embedding.weight.data[0, 0] += 1.0
        with pytest.raises(AssertionError):
            save_checkpoint(tmp_path / "bad.npz", tr)
