"""Tests for checkpoint save/resume and state dicts."""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.nn import Linear, Module, Parameter
from repro.optim import SGD, Adam
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    load_checkpoint,
    save_checkpoint,
)

VOCAB = 60
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6, num_samples=8
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def word_trainer(world=2, seed_offset=0):
    cfg = TrainConfig(
        world_size=world, batch=BatchSpec(2, 6), base_lr=0.2,
        init_seed=1234 + seed_offset,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


def char_trainer(world=2):
    cfg = TrainConfig(world_size=world, batch=BatchSpec(2, 6), base_lr=1e-3)
    mcfg = CharLMConfig(vocab_size=VOCAB, embedding_dim=6, hidden_dim=8,
                        depth=2, dropout=0.0)
    return DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            mcfg, rng, dropout_rng=np.random.default_rng(rank)
        ),
        lambda params, lr: Adam(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


class TestModuleStateDict:
    def test_roundtrip(self):
        m = Linear(3, 4, np.random.default_rng(0))
        state = m.state_dict()
        m.weight.data[:] = 0.0
        m.load_state_dict(state)
        assert m.weight.data.any()

    def test_state_is_a_copy(self):
        m = Linear(3, 4, np.random.default_rng(0))
        state = m.state_dict()
        state["weight"][:] = 99.0
        assert not (m.weight.data == 99.0).any()

    def test_mismatched_names_rejected(self):
        m = Linear(3, 4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            m.load_state_dict({"weight": m.weight.data})  # missing bias
        with pytest.raises(ValueError):
            m.load_state_dict(m.state_dict() | {"extra": np.zeros(1)})

    def test_mismatched_shape_rejected(self):
        m = Linear(3, 4, np.random.default_rng(0))
        bad = m.state_dict()
        bad["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            m.load_state_dict(bad)

    def test_nested_modules(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, np.random.default_rng(1))
                self.b = Parameter(np.ones(3))

        net = Net()
        state = net.state_dict()
        assert set(state) == {"a.weight", "a.bias", "b"}
        net.b.data[:] = 7.0
        net.load_state_dict(state)
        np.testing.assert_allclose(net.b.data, 1.0)


class TestOptimizerStateDict:
    def test_sgd_roundtrip(self):
        p = Parameter(np.zeros(2))
        opt = SGD([p], lr=0.5, clip_norm=2.0)
        state = opt.state_dict()
        opt2 = SGD([p], lr=0.1)
        opt2.load_state_dict(state)
        assert opt2.lr == 0.5
        assert opt2.clip_norm == 2.0

    def test_adam_roundtrip_preserves_moments(self):
        p = Parameter(np.zeros((3, 2)))
        opt = Adam([p], lr=0.01)
        p.accumulate_grad(np.ones((3, 2)))
        opt.step()
        state = opt.state_dict()

        p2 = Parameter(np.zeros((3, 2)))
        opt2 = Adam([p2], lr=0.01)
        opt2.load_state_dict(state)
        # Both continue identically from here.
        for o, q in ((opt, p), (opt2, p2)):
            q.data[:] = 0.0
            q.accumulate_grad(np.full((3, 2), 0.5))
            o.step()
        np.testing.assert_allclose(p.data, p2.data, rtol=1e-12)

    def test_adam_shape_mismatch_rejected(self):
        p = Parameter(np.zeros(2))
        opt = Adam([p], lr=0.01)
        state = opt.state_dict()
        state["m0"] = np.zeros(5)
        with pytest.raises(ValueError):
            opt.load_state_dict(state)


class TestCheckpointRoundtrip:
    def test_resume_is_bit_identical(self, tmp_path):
        """Train 4 steps, checkpoint, train 4 more; vs 8 straight."""
        straight = word_trainer()
        resumed = word_trainer()
        for _ in range(4):
            straight.train_step()
            resumed.train_step()
        ckpt = tmp_path / "step4.npz"
        save_checkpoint(ckpt, resumed)

        # A fresh trainer with *different* init must land on the
        # checkpointed weights exactly.
        fresh = word_trainer(seed_offset=999)
        step = load_checkpoint(ckpt, fresh)
        assert step == 4
        for _ in range(4):
            straight.train_step()
            fresh.train_step()
        for (n, a), (_, b) in zip(
            straight.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)

    def test_adam_trainer_resume(self, tmp_path):
        tr = char_trainer()
        for _ in range(3):
            tr.train_step()
        ckpt = tmp_path / "char.npz"
        save_checkpoint(ckpt, tr)
        fresh = char_trainer()
        load_checkpoint(ckpt, fresh)
        tr.train_step()
        fresh.train_step()
        for (n, a), (_, b) in zip(
            tr.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-12, err_msg=n)

    def test_all_replicas_restored(self, tmp_path):
        tr = word_trainer(world=3)
        tr.train_step()
        ckpt = tmp_path / "w3.npz"
        save_checkpoint(ckpt, tr)
        fresh = word_trainer(world=3, seed_offset=5)
        load_checkpoint(ckpt, fresh)
        from repro.train import assert_replicas_synchronized

        assert_replicas_synchronized(fresh.replicas, atol=0.0)

    def test_world_size_mismatch_rejected(self, tmp_path):
        tr = word_trainer(world=2)
        ckpt = tmp_path / "w2.npz"
        save_checkpoint(ckpt, tr)
        with pytest.raises(ValueError):
            load_checkpoint(ckpt, word_trainer(world=4))

    def test_dynamic_scaler_state_restored(self, tmp_path):
        def scaled_trainer():
            cfg = TrainConfig(
                world_size=2, batch=BatchSpec(2, 6), base_lr=0.2,
                loss_scale="dynamic",
            )
            return DistributedTrainer(
                lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
                lambda params, lr: SGD(params, lr),
                CORPUS.train, CORPUS.valid, cfg,
            )

        tr = scaled_trainer()
        tr.scaler.growth_interval = 2
        for _ in range(5):
            tr.train_step()
        assert tr.scaler.scale > 1024.0  # grew at least once
        ckpt = tmp_path / "scaled.npz"
        save_checkpoint(ckpt, tr)

        fresh = scaled_trainer()
        fresh.scaler.growth_interval = 2
        load_checkpoint(ckpt, fresh)
        assert fresh.scaler.scale == tr.scaler.scale
        assert fresh.scaler._clean_steps == tr.scaler._clean_steps
        assert fresh.skipped_steps == tr.skipped_steps
        # Continuation is bit-identical.
        tr.train_step()
        fresh.train_step()
        for (n, a), (_, b) in zip(
            tr.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)

    def test_scaler_checkpoint_requires_scaler_trainer(self, tmp_path):
        cfg = TrainConfig(
            world_size=2, batch=BatchSpec(2, 6), base_lr=0.2,
            loss_scale=512.0,
        )
        tr = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )
        ckpt = tmp_path / "static.npz"
        save_checkpoint(ckpt, tr)
        with pytest.raises(ValueError):
            load_checkpoint(ckpt, word_trainer())

    def test_diverged_replicas_refuse_to_checkpoint(self, tmp_path):
        tr = word_trainer()
        tr.replicas[1].embedding.weight.data[0, 0] += 1.0
        with pytest.raises(AssertionError):
            save_checkpoint(tmp_path / "bad.npz", tr)


class TestRngLimbEncoding:
    def test_roundtrip_exact_128_bit(self):
        from repro.train.checkpoint import (
            _decode_rng_state,
            _encode_rng_state,
        )

        rng = np.random.default_rng(123)
        rng.random(7)  # advance so has_uint32/uinteger may be set
        rng.integers(0, 10)
        state = rng.bit_generator.state
        limbs = _encode_rng_state(state)
        assert limbs.dtype == np.uint64 and limbs.shape == (6,)
        decoded = _decode_rng_state(limbs)
        assert decoded == state

    def test_non_pcg64_rejected(self):
        from repro.train.checkpoint import _encode_rng_state

        with pytest.raises(ValueError, match="PCG64"):
            _encode_rng_state({"bit_generator": "MT19937", "state": {}})

    def test_wrong_shape_rejected(self):
        from repro.train.checkpoint import _decode_rng_state

        with pytest.raises(ValueError):
            _decode_rng_state(np.zeros(5, dtype=np.uint64))


def dropout_trainer(world=2):
    """A char trainer whose steps consume per-replica dropout streams —
    the case checkpoint v1 could not resume bit-exactly."""
    cfg = TrainConfig(world_size=world, batch=BatchSpec(2, 6), base_lr=1e-3)
    mcfg = CharLMConfig(vocab_size=VOCAB, embedding_dim=6, hidden_dim=8,
                        depth=2, dropout=0.25)
    return DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            mcfg, rng, dropout_rng=np.random.default_rng(rank)
        ),
        lambda params, lr: Adam(params, lr),
        CORPUS.train, CORPUS.valid, cfg,
    )


class TestCheckpointV2:
    def test_version_is_two(self, tmp_path):
        tr = word_trainer()
        ckpt = tmp_path / "v2.npz"
        save_checkpoint(ckpt, tr)
        with np.load(ckpt) as data:
            assert int(data["meta/version"]) == 2
            rng_keys = [k for k in data.files if k.startswith("rng/")]
            assert "rng/strategy" in rng_keys
            assert "rng/group_of_rank" in rng_keys
            assert "rng/seed_of_group" in rng_keys

    def test_dropout_resume_is_bit_identical(self, tmp_path):
        """The v1 bug: resumed runs re-seeded dropout streams.  v2 must
        continue a dropout model bit-exactly."""
        straight = dropout_trainer()
        victim = dropout_trainer()
        for _ in range(3):
            straight.train_step()
            victim.train_step()
        ckpt = tmp_path / "dropout.npz"
        save_checkpoint(ckpt, victim)

        fresh = dropout_trainer()
        assert load_checkpoint(ckpt, fresh) == 3
        for _ in range(2):
            straight.train_step()
            fresh.train_step()
        for (n, a), (_, b) in zip(
            straight.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)

    def test_per_replica_streams_saved_separately(self, tmp_path):
        tr = dropout_trainer(world=3)
        tr.train_step()
        ckpt = tmp_path / "streams.npz"
        save_checkpoint(ckpt, tr)
        with np.load(ckpt) as data:
            replica_keys = [
                k for k in data.files if k.startswith("rng/replica")
            ]
        assert len(replica_keys) == 3  # one dropout stream per replica
        assert {k.split("/")[1] for k in replica_keys} == {
            "replica0", "replica1", "replica2"
        }

    def test_seed_assignment_restored(self, tmp_path):
        tr = word_trainer()
        for _ in range(2):
            tr.train_step()
        ckpt = tmp_path / "seeds.npz"
        save_checkpoint(ckpt, tr)
        fresh = word_trainer(seed_offset=42)
        load_checkpoint(ckpt, fresh)
        assert fresh.seed_assignment.strategy == tr.seed_assignment.strategy
        np.testing.assert_array_equal(
            fresh.seed_assignment.group_of_rank,
            tr.seed_assignment.group_of_rank,
        )
        np.testing.assert_array_equal(
            fresh.seed_assignment.seed_of_group,
            tr.seed_assignment.seed_of_group,
        )

    def test_v1_checkpoint_still_loads(self, tmp_path):
        """A version-1 file (no rng/ arrays) restores weights and
        counters; RNG streams are simply left as built."""
        tr = dropout_trainer()
        for _ in range(2):
            tr.train_step()
        v2 = tmp_path / "modern.npz"
        save_checkpoint(v2, tr)
        with np.load(v2) as data:
            arrays = {
                k: data[k] for k in data.files if not k.startswith("rng/")
            }
        arrays["meta/version"] = np.array(1)
        v1 = tmp_path / "legacy.npz"
        np.savez(v1, **arrays)

        fresh = dropout_trainer()
        before_streams = [r.rng_state() for r in fresh.replicas]
        assert load_checkpoint(v1, fresh) == 2
        assert fresh.global_step == 2
        for (n, a), (_, b) in zip(
            tr.replicas[0].named_parameters(),
            fresh.replicas[0].named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)
        # v1 carries no streams: the trainer keeps its own.
        assert [r.rng_state() for r in fresh.replicas] == before_streams

    def test_unsupported_version_rejected(self, tmp_path):
        tr = word_trainer()
        ckpt = tmp_path / "future.npz"
        save_checkpoint(ckpt, tr)
        with np.load(ckpt) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["meta/version"] = np.array(99)
        bad = tmp_path / "v99.npz"
        np.savez(bad, **arrays)
        with pytest.raises(ValueError, match="unsupported checkpoint"):
            load_checkpoint(bad, word_trainer())


class TestElasticLoad:
    def test_shrunken_world_adopts_dense_reindexing(self, tmp_path):
        tr = dropout_trainer(world=3)
        for _ in range(2):
            tr.train_step()
        ckpt = tmp_path / "w3.npz"
        save_checkpoint(ckpt, tr)

        survivor = dropout_trainer(world=2)
        assert load_checkpoint(ckpt, survivor, elastic=True) == 2
        from repro.train import assert_replicas_synchronized

        assert_replicas_synchronized(survivor.replicas, atol=0.0)
        # New rank r adopted saved replica r's streams.
        with np.load(ckpt) as data:
            from repro.train.checkpoint import _decode_rng_state

            saved = {
                k: _decode_rng_state(data[k])
                for k in data.files
                if k.startswith("rng/replica")
            }
        for rank, replica in enumerate(survivor.replicas):
            for mod_path, state in replica.rng_state().items():
                assert state == saved[f"rng/replica{rank}/{mod_path}"]
        survivor.train_step()  # the shrunken trainer keeps working

    def test_elastic_growth_rejected(self, tmp_path):
        tr = word_trainer(world=2)
        ckpt = tmp_path / "w2.npz"
        save_checkpoint(ckpt, tr)
        with pytest.raises(ValueError, match="cannot grow"):
            load_checkpoint(ckpt, word_trainer(world=4), elastic=True)

    def test_elastic_same_world_is_plain_restore(self, tmp_path):
        tr = word_trainer(world=2)
        tr.train_step()
        ckpt = tmp_path / "same.npz"
        save_checkpoint(ckpt, tr)
        fresh = word_trainer(world=2, seed_offset=9)
        assert load_checkpoint(ckpt, fresh, elastic=True) == 1
