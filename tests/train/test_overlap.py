"""Bit-exactness and scheduling tests for overlapped training.

The refactor's contract: ``overlap=True`` changes *when* collectives are
issued (layer-by-layer during backward, drained afterwards), never *what*
they compute.  Loss trajectories, wire bytes, and ledger event counts
must match the blocking path bit-for-bit, while the timeline makespan
shrinks because comm hides behind recorded backward compute.
"""

import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
)

VOCAB = 64
MODEL_CFG = WordLMConfig(
    vocab_size=VOCAB,
    embedding_dim=8,
    hidden_dim=12,
    projection_dim=8,
    num_samples=16,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 4000, seed=0)

# Recorded from the pre-refactor blocking implementation.  Any drift
# here means the async engine changed numerics, not just scheduling.
BASELINE_LOSSES = [
    3.983903574988421,
    4.137694160886854,
    3.8124471924432983,
    4.076225002854148,
    3.9420808504201634,
]
BASELINE_WIRE_BYTES = 59712
BASELINE_EVENTS = 45
BASELINE_EVAL = 3.7978426081997867


def make_trainer(**cfg_overrides):
    cfg = TrainConfig(
        world_size=2,
        batch=BatchSpec(2, 10),
        base_lr=0.3,
        use_unique=True,
        **cfg_overrides,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(MODEL_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train,
        CORPUS.valid,
        cfg,
    )


def run_five_steps(trainer):
    losses = [trainer.train_step() for _ in range(5)]
    return losses, trainer.evaluate()


class TestBitExactness:
    def test_blocking_path_matches_recorded_baseline(self):
        """Regression pin: the refactored blocking path (issue+wait)
        reproduces the pre-refactor run exactly."""
        trainer = make_trainer()
        losses, eval_nll = run_five_steps(trainer)
        assert losses == BASELINE_LOSSES
        assert trainer.comm.ledger.total_wire_bytes_per_rank == BASELINE_WIRE_BYTES
        assert len(trainer.comm.ledger.events) == BASELINE_EVENTS
        assert eval_nll == BASELINE_EVAL

    def test_overlapped_path_matches_recorded_baseline(self):
        """overlap=True must be bit-exact with the same recorded run —
        identical losses, identical bytes, identical event count."""
        trainer = make_trainer(overlap=True, compute_seconds_per_step=1e-3)
        losses, eval_nll = run_five_steps(trainer)
        assert losses == BASELINE_LOSSES
        assert trainer.comm.ledger.total_wire_bytes_per_rank == BASELINE_WIRE_BYTES
        assert len(trainer.comm.ledger.events) == BASELINE_EVENTS
        assert eval_nll == BASELINE_EVAL

    def test_overlap_without_compute_model_still_exact(self):
        trainer = make_trainer(overlap=True)
        losses, _ = run_five_steps(trainer)
        assert losses == BASELINE_LOSSES


class TestOverlapTimeline:
    def test_overlap_shrinks_makespan(self):
        """With recorded per-step compute, issuing collectives during
        backward hides comm the blocking schedule exposes."""
        blocking = make_trainer(compute_seconds_per_step=1e-3)
        overlapped = make_trainer(overlap=True, compute_seconds_per_step=1e-3)
        run_five_steps(blocking)
        run_five_steps(overlapped)
        assert (
            overlapped.comm.timeline.makespan
            < blocking.comm.timeline.makespan
        )

    def test_blocking_exposes_all_comm(self):
        """The blocking schedule records compute before issuing, so every
        comm second is exposed; the overlapped schedule hides some."""
        blocking = make_trainer(compute_seconds_per_step=1e-3)
        overlapped = make_trainer(overlap=True, compute_seconds_per_step=1e-3)
        run_five_steps(blocking)
        run_five_steps(overlapped)
        assert (
            overlapped.comm.timeline.exposed_comm_time()
            < blocking.comm.timeline.exposed_comm_time()
        )

    def test_ledger_scope_attribution_unchanged(self):
        blocking = make_trainer()
        overlapped = make_trainer(overlap=True)
        run_five_steps(blocking)
        run_five_steps(overlapped)
        assert (
            overlapped.comm.ledger.bytes_by_scope()
            == blocking.comm.ledger.bytes_by_scope()
        )

    def test_compute_seconds_validation(self):
        with pytest.raises(ValueError):
            make_trainer(compute_seconds_per_step=-1.0)
        with pytest.raises(ValueError):
            make_trainer(compute_seconds_per_step=0.0)
