"""Tests for the SPMD distributed trainer."""

import numpy as np
import pytest

from repro.core.compression import Fp16Codec
from repro.core.seeding import SeedStrategy
from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.optim import SGD, Adam
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    assert_replicas_synchronized,
    max_replica_divergence,
)

VOCAB = 60
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6, num_samples=8
)
CHAR_CFG = CharLMConfig(vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, depth=2, dropout=0.0)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def word_trainer(world=4, **cfg_overrides):
    cfg = TrainConfig(
        world_size=world,
        batch=BatchSpec(2, 6),
        base_lr=0.2,
        **cfg_overrides,
    )
    return DistributedTrainer(
        lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
        lambda params, lr: SGD(params, lr),
        CORPUS.train,
        CORPUS.valid,
        cfg,
    )


def char_trainer(world=2, **cfg_overrides):
    cfg = TrainConfig(
        world_size=world, batch=BatchSpec(2, 6), base_lr=1e-3, **cfg_overrides
    )
    return DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            CHAR_CFG, rng, dropout_rng=np.random.default_rng(1000 + rank)
        ),
        lambda params, lr: Adam(params, lr),
        CORPUS.train,
        CORPUS.valid,
        cfg,
    )


class TestReplicaConsistency:
    """The core invariant: replicas stay bit-identical through training."""

    @pytest.mark.parametrize("use_unique", [True, False])
    def test_word_lm_replicas_stay_synchronized(self, use_unique):
        tr = word_trainer(use_unique=use_unique)
        for _ in range(4):
            tr.train_step()
        assert_replicas_synchronized(tr.replicas, atol=0.0)

    def test_char_lm_replicas_stay_synchronized(self):
        tr = char_trainer()
        for _ in range(4):
            tr.train_step()
        assert_replicas_synchronized(tr.replicas, atol=0.0)

    def test_fp16_codec_keeps_replicas_synchronized(self):
        """Compression is lossy but *identical* on all ranks."""
        tr = word_trainer(codec=Fp16Codec(512.0))
        for _ in range(3):
            tr.train_step()
        assert_replicas_synchronized(tr.replicas, atol=0.0)

    def test_divergence_helper(self):
        tr = word_trainer(world=2)
        assert max_replica_divergence(tr.replicas) == 0.0
        tr.replicas[1].embedding.weight.data[0, 0] += 1.0
        assert max_replica_divergence(tr.replicas) == pytest.approx(1.0)
        with pytest.raises(AssertionError):
            assert_replicas_synchronized(tr.replicas)


class TestExchangeEquivalence:
    def test_unique_and_baseline_train_identically(self):
        """Strategy choice must not change the learned model (float64)."""
        tr_u = word_trainer(use_unique=True)
        tr_b = word_trainer(use_unique=False)
        for _ in range(4):
            tr_u.train_step()
            tr_b.train_step()
        for (n, pu), (_, pb) in zip(
            tr_u.replicas[0].named_parameters(),
            tr_b.replicas[0].named_parameters(),
        ):
            np.testing.assert_allclose(
                pu.data, pb.data, rtol=1e-9, atol=1e-12, err_msg=n
            )


class TestTraining:
    def test_epoch_improves_perplexity(self):
        tr = word_trainer(world=2)
        start = np.exp(tr.evaluate())
        stats = tr.train_epoch(max_steps=40, evals_per_epoch=1)
        assert stats.final_perplexity < start

    def test_lr_schedule_applied_per_epoch(self):
        tr = word_trainer(world=2, lr_decay=0.9)
        s0 = tr.train_epoch(max_steps=2)
        s1 = tr.train_epoch(max_steps=2)
        assert s1.lr == pytest.approx(s0.lr * 0.9)
        assert tr.optimizers[0].lr == s1.lr

    def test_eval_points_recorded(self):
        tr = word_trainer(world=2)
        stats = tr.train_epoch(max_steps=6, evals_per_epoch=3)
        assert len(stats.eval_points) == 3
        assert stats.eval_points[-1].epoch == pytest.approx(1.0)

    def test_history_accumulates(self):
        tr = word_trainer(world=2)
        tr.train_epoch(max_steps=2)
        tr.train_epoch(max_steps=2)
        assert [s.epoch for s in tr.history] == [0, 1]

    def test_global_step_advances(self):
        tr = word_trainer(world=2)
        tr.train_step()
        tr.train_step()
        assert tr.global_step == 2

    def test_max_steps_validation(self):
        tr = word_trainer(world=2)
        with pytest.raises(ValueError):
            tr.train_epoch(max_steps=0)


class TestSeeding:
    def test_all_same_strategy_shares_candidates(self):
        tr = word_trainer(world=4, seed_strategy=SeedStrategy.ALL_SAME)
        gens = tr.seed_assignment.rank_generators(step=0)
        draws = [g.integers(0, 1000, 5).tolist() for g in gens]
        assert all(d == draws[0] for d in draws)

    def test_per_rank_strategy_differs(self):
        tr = word_trainer(world=4, seed_strategy=SeedStrategy.PER_RANK)
        gens = tr.seed_assignment.rank_generators(step=0)
        draws = {tuple(g.integers(0, 1000, 5).tolist()) for g in gens}
        assert len(draws) > 1

    def test_shared_seeds_shrink_output_exchange(self):
        """ALL_SAME must move fewer output-embedding bytes than PER_RANK."""
        tr_same = word_trainer(world=4, seed_strategy=SeedStrategy.ALL_SAME)
        tr_diff = word_trainer(world=4, seed_strategy=SeedStrategy.PER_RANK)
        for _ in range(2):
            tr_same.train_step()
            tr_diff.train_step()

        def out_bytes(tr):
            return sum(
                b
                for scope, b in tr.comm.ledger.bytes_by_scope().items()
                if "loss_layer" in scope
            )

        assert out_bytes(tr_same) < out_bytes(tr_diff)


class TestValidation:
    def test_comm_world_mismatch_rejected(self):
        from repro.cluster import Communicator

        cfg = TrainConfig(world_size=4, batch=BatchSpec(2, 6), base_lr=0.2)
        with pytest.raises(ValueError):
            DistributedTrainer(
                lambda rng, rank: WordLanguageModel(WORD_CFG, rng),
                lambda params, lr: SGD(params, lr),
                CORPUS.train,
                CORPUS.valid,
                cfg,
                comm=Communicator(2, track_memory=False),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(world_size=0, batch=BatchSpec(1, 1), base_lr=0.1)
        with pytest.raises(ValueError):
            TrainConfig(world_size=1, batch=BatchSpec(1, 1), base_lr=0.0)

    def test_num_nodes(self):
        cfg = TrainConfig(world_size=12, batch=BatchSpec(1, 1), base_lr=0.1)
        assert cfg.num_nodes == 2
