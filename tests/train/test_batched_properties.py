"""Seeded randomized property test for the batched execution fast path.

200 random configurations (world size, architecture, batch shape,
dropout probability — i.e. per-replica RNG stream consumption —
statefulness, accumulation, loss scale, overlap mode) each train a few
steps twice: once with ``batched=True`` and once with ``batched=False``.
The property is **bit-for-bit identity** of losses, every replica's
parameters, the carried BPTT state and the full optimizer state.  Driven
by :mod:`tests.proptest` (shrinks integer parameters on failure and
names the reproducing ``seed=/case=`` pair).
"""

import numpy as np

from repro.data.batching import BatchSpec
from repro.optim.adam import Adam
from repro.train.char_lm import CharLanguageModel
from repro.train.config import CharLMConfig, TrainConfig
from repro.train.trainer import DistributedTrainer

from ..proptest import run_property

N_CASES = 200


def gen_case(rng: np.random.Generator) -> dict:
    overlap = bool(rng.integers(0, 2))
    return {
        "world": int(rng.integers(2, 7)),
        "vocab": int(rng.integers(12, 80)),
        "emb": int(rng.integers(2, 10)),
        "hidden": int(rng.integers(2, 14)),
        "depth": int(rng.integers(1, 4)),
        "seqs": int(rng.integers(1, 4)),
        "seq_len": int(rng.integers(2, 7)),
        "accum": int(rng.integers(1, 3)),
        "steps": int(rng.integers(1, 4)),
        "dropout_x10": int(rng.integers(0, 6)),  # 0.0 .. 0.5
        "stateful": bool(rng.integers(0, 2)),
        "scaled": bool(rng.integers(0, 2)),
        "overlap": overlap,
        "init_seed": int(rng.integers(0, 2**31)),
        "data_seed": int(rng.integers(0, 2**31)),
    }


def _build(params: dict, batched: bool) -> DistributedTrainer:
    model_cfg = CharLMConfig(
        vocab_size=params["vocab"],
        embedding_dim=params["emb"],
        hidden_dim=params["hidden"],
        depth=params["depth"],
        dropout=params["dropout_x10"] / 10.0,
    )
    cfg = TrainConfig(
        world_size=params["world"],
        batch=BatchSpec(params["seqs"], params["seq_len"]),
        base_lr=3e-3,
        init_seed=params["init_seed"],
        data_seed=params["data_seed"],
        accumulation_steps=params["accum"],
        loss_scale=128.0 if params["scaled"] else None,
        overlap=params["overlap"],
        compute_seconds_per_step=1e-3 if params["overlap"] else None,
        batched=batched,
    )
    data_rng = np.random.default_rng(params["data_seed"])
    train = data_rng.integers(0, params["vocab"], size=2500).astype(np.int64)
    valid = data_rng.integers(0, params["vocab"], size=400).astype(np.int64)

    def factory(init_rng, rank):
        return CharLanguageModel(
            model_cfg,
            init_rng,
            dropout_rng=np.random.default_rng((params["init_seed"], rank)),
            stateful=params["stateful"],
        )

    return DistributedTrainer(
        factory, lambda p, lr: Adam(p, lr), train, valid, cfg
    )


def prop_batched_is_bit_exact(params: dict, rng: np.random.Generator) -> None:
    fast = _build(params, batched=True)
    slow = _build(params, batched=False)
    assert fast.batched_executor is not None
    fast_losses = [fast.train_step() for _ in range(params["steps"])]
    slow_losses = [slow.train_step() for _ in range(params["steps"])]
    assert fast_losses == slow_losses, "losses diverged"
    for ra, rb in zip(fast.replicas, slow.replicas):
        for (name, pa), (_, pb) in zip(
            ra.named_parameters(), rb.named_parameters()
        ):
            assert np.array_equal(pa.data, pb.data), f"param {name}"
        assert (ra._state is None) == (rb._state is None), "state presence"
        if ra._state is not None:
            assert np.array_equal(ra._state, rb._state), "carried state"
    for oa, ob in zip(fast.optimizers, slow.optimizers):
        da, db = oa.state_dict(), ob.state_dict()
        for key in da:
            va, vb = da[key], db[key]
            if isinstance(va, np.ndarray):
                assert np.array_equal(va, vb), f"opt state {key}"
            else:
                assert va == vb, f"opt state {key}"
    # Dropout generators must have consumed identical draws: the next
    # value from every replica's stream must agree between the paths.
    if params["dropout_x10"] > 0:
        for ra, rb in zip(fast.replicas, slow.replicas):
            assert (
                ra.dropout._rng.random() == rb.dropout._rng.random()
            ), "dropout RNG streams desynchronized"


def test_batched_execution_property():
    assert (
        run_property(prop_batched_is_bit_exact, gen_case, n_cases=N_CASES)
        == N_CASES
    )
