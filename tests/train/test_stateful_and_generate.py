"""Tests for stateful BPTT and text generation."""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.data.batching import Batch
from repro.optim import SGD
from repro.train import (
    CharLanguageModel,
    CharLMConfig,
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    assert_replicas_synchronized,
    generate,
    next_token_distribution,
)

VOCAB = 60
WORD_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, projection_dim=6, num_samples=8
)
CHAR_CFG = CharLMConfig(
    vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, depth=2, dropout=0.0
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 6000, seed=0)


def batch(shape=(2, 5), seed=0):
    rng = np.random.default_rng(seed)
    return Batch(
        inputs=rng.integers(0, VOCAB, shape), targets=rng.integers(0, VOCAB, shape)
    )


class TestStatefulModels:
    def test_word_lm_carries_state(self):
        m = WordLanguageModel(WORD_CFG, np.random.default_rng(0), stateful=True)
        m.step(batch(), np.random.default_rng(1))
        assert m._state is not None
        m.reset_state()
        assert m._state is None

    def test_stateless_by_default(self):
        m = WordLanguageModel(WORD_CFG, np.random.default_rng(0))
        m.step(batch(), np.random.default_rng(1))
        assert m._state is None

    def test_state_changes_next_step_loss(self):
        a = WordLanguageModel(WORD_CFG, np.random.default_rng(0), stateful=True)
        b = WordLanguageModel(WORD_CFG, np.random.default_rng(0), stateful=False)
        rngs = [np.random.default_rng(5), np.random.default_rng(5)]
        # First step identical; second differs because `a` carries state.
        la1 = a.step(batch(seed=1), rngs[0])
        lb1 = b.step(batch(seed=1), rngs[1])
        assert la1 == lb1
        a.zero_grad(), b.zero_grad()
        rngs = [np.random.default_rng(6), np.random.default_rng(6)]
        la2 = a.step(batch(seed=2), rngs[0])
        lb2 = b.step(batch(seed=2), rngs[1])
        assert la2 != lb2

    def test_batch_shape_change_resets_carry(self):
        m = WordLanguageModel(WORD_CFG, np.random.default_rng(0), stateful=True)
        m.step(batch(shape=(2, 5)), np.random.default_rng(1))
        # No crash when the sequence count changes.
        m.step(batch(shape=(3, 5), seed=2), np.random.default_rng(2))

    def test_eval_does_not_touch_state(self):
        m = WordLanguageModel(WORD_CFG, np.random.default_rng(0), stateful=True)
        m.step(batch(), np.random.default_rng(1))
        state = m._state
        m.eval_nll([batch(seed=3)])
        assert m._state is state

    def test_char_lm_state_carry(self):
        m = CharLanguageModel(
            CHAR_CFG, np.random.default_rng(0),
            dropout_rng=np.random.default_rng(1), stateful=True,
        )
        m.step(batch())
        assert m._state is not None
        m.reset_state()
        assert m._state is None

    def test_stateful_distributed_training_stays_synchronized(self):
        cfg = TrainConfig(world_size=3, batch=BatchSpec(2, 6), base_lr=0.2)
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(WORD_CFG, rng, stateful=True),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )
        trainer.train_epoch(max_steps=5, evals_per_epoch=1)
        assert_replicas_synchronized(trainer.replicas, atol=0.0)

    def test_trainer_resets_state_each_epoch(self):
        cfg = TrainConfig(world_size=2, batch=BatchSpec(2, 6), base_lr=0.2)
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(WORD_CFG, rng, stateful=True),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )
        trainer.train_step()
        assert trainer.replicas[0]._state is not None
        trainer.train_epoch(max_steps=1, evals_per_epoch=1)  # resets first
        # After the reset + 1 step, state exists again; the reset itself
        # is observable through the epoch hook having run without error.
        assert trainer.replicas[0]._state is not None


class TestGeneration:
    @pytest.fixture(scope="class")
    def word_model(self):
        return WordLanguageModel(WORD_CFG, np.random.default_rng(0))

    @pytest.fixture(scope="class")
    def char_model(self):
        return CharLanguageModel(
            CHAR_CFG, np.random.default_rng(0),
            dropout_rng=np.random.default_rng(1),
        )

    def test_distribution_is_valid(self, word_model):
        probs = next_token_distribution(word_model, np.array([1, 2, 3]))
        assert probs.shape == (VOCAB,)
        assert probs.min() >= 0
        assert probs.sum() == pytest.approx(1.0)

    def test_char_model_distribution(self, char_model):
        probs = next_token_distribution(char_model, np.array([0, 5]))
        assert probs.sum() == pytest.approx(1.0)

    def test_generate_length_and_range(self, word_model):
        out = generate(word_model, np.array([0]), 20, np.random.default_rng(0))
        assert out.shape == (20,)
        assert out.min() >= 0 and out.max() < VOCAB

    def test_generate_deterministic_by_rng(self, word_model):
        a = generate(word_model, np.array([3]), 10, np.random.default_rng(7))
        b = generate(word_model, np.array([3]), 10, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_low_temperature_concentrates(self, word_model):
        """At temperature -> 0 every draw from a fixed prompt is the
        argmax; at high temperature draws spread out."""
        probs = next_token_distribution(word_model, np.array([1]))
        top1 = int(np.argmax(probs))
        cold = [
            int(generate(word_model, np.array([1]), 1,
                         np.random.default_rng(s), temperature=1e-4)[0])
            for s in range(8)
        ]
        hot = [
            int(generate(word_model, np.array([1]), 1,
                         np.random.default_rng(s), temperature=50.0)[0])
            for s in range(8)
        ]
        assert all(t == top1 for t in cold)
        assert len(set(hot)) > 1

    def test_top_k_restricts_support(self, word_model):
        probs = next_token_distribution(word_model, np.array([1]))
        top1 = int(np.argmax(probs))
        out = generate(
            word_model, np.array([1]), 10, np.random.default_rng(0), top_k=1
        )
        # With top_k=1 every next-step draw is the argmax of its context;
        # at least the first draw is predictable.
        assert out[0] == top1

    def test_trained_model_reflects_corpus_statistics(self):
        """After training on a Zipf stream, frequent types get more
        probability mass than rare ones."""
        from repro.optim import Adam

        model = CharLanguageModel(
            CHAR_CFG, np.random.default_rng(0),
            dropout_rng=np.random.default_rng(1),
        )
        opt = Adam(list(model.parameters()), lr=5e-3)
        stream = CORPUS.train
        for i in range(60):
            start = (i * 40) % (stream.size - 41)
            window = stream[start : start + 41]
            b = Batch(inputs=window[:-1].reshape(2, 20),
                      targets=window[1:].reshape(2, 20))
            model.step(b)
            opt.step()
        probs = next_token_distribution(model, CORPUS.valid[:10])
        assert probs[:5].sum() > probs[-5:].sum()

    def test_validation(self, word_model):
        with pytest.raises(ValueError):
            generate(word_model, np.array([]), 5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            generate(word_model, np.array([1]), -1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            generate(word_model, np.array([1]), 1, np.random.default_rng(0),
                     temperature=0.0)
        with pytest.raises(ValueError):
            generate(word_model, np.array([1]), 1, np.random.default_rng(0),
                     top_k=0)
        with pytest.raises(ValueError):
            next_token_distribution(word_model, np.array([[1, 2]]))


class TestGenerationContextWindow:
    def test_max_context_slides(self):
        """Long generations must not feed unbounded context back in."""
        model = WordLanguageModel(WORD_CFG, np.random.default_rng(0))
        out = generate(
            model, np.arange(5) % VOCAB, 30, np.random.default_rng(1),
            max_context=4,
        )
        assert out.shape == (30,)

    def test_max_context_changes_predictions(self):
        """A context window shorter than the prompt must alter the
        distribution (the model sees a different suffix)."""
        model = WordLanguageModel(WORD_CFG, np.random.default_rng(0))
        long_ctx = np.array([1, 2, 3, 4, 5, 6, 7, 8])
        full = next_token_distribution(model, long_ctx)
        short = next_token_distribution(model, long_ctx[-2:])
        assert not np.allclose(full, short)
