"""Tests for tied embeddings and gradient accumulation."""

import numpy as np
import pytest

from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
from repro.data.batching import Batch
from repro.optim import SGD
from repro.train import (
    DistributedTrainer,
    TrainConfig,
    WordLanguageModel,
    WordLMConfig,
    assert_replicas_synchronized,
)

VOCAB = 60
TIED_CFG = WordLMConfig(
    vocab_size=VOCAB, embedding_dim=8, hidden_dim=10, projection_dim=8,
    num_samples=8, tie_embeddings=True,
)
CORPUS = make_corpus(ONE_BILLION_WORD.scaled(VOCAB), 8000, seed=0)


def batch(seed=0, shape=(2, 5)):
    rng = np.random.default_rng(seed)
    return Batch(
        inputs=rng.integers(0, VOCAB, shape), targets=rng.integers(0, VOCAB, shape)
    )


class TestTiedEmbeddings:
    def test_weight_is_shared_object(self):
        m = WordLanguageModel(TIED_CFG, np.random.default_rng(0))
        assert m.loss_layer.weight is m.embedding.weight

    def test_parameters_deduplicated(self):
        tied = WordLanguageModel(TIED_CFG, np.random.default_rng(0))
        untied = WordLanguageModel(
            TIED_CFG.scaled(tie_embeddings=False), np.random.default_rng(0)
        )
        assert (
            untied.num_parameters() - tied.num_parameters()
            == VOCAB * TIED_CFG.embedding_dim
        )
        names = [n for n, _ in tied.named_parameters()]
        assert len(names) == len(set(names))
        params = list(tied.parameters())
        assert len({id(p) for p in params}) == len(params)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WordLMConfig(
                vocab_size=50, embedding_dim=8, hidden_dim=10,
                projection_dim=12, num_samples=8, tie_embeddings=True,
            )

    def test_both_paths_contribute_gradients(self):
        """One step must leave sparse grads from the input lookup AND
        the sampled-softmax output on the single shared matrix."""
        m = WordLanguageModel(TIED_CFG, np.random.default_rng(0))
        m.step(batch(), np.random.default_rng(1))
        # Input path: one contribution; output path: two (targets +
        # candidates) -> at least three sparse entries on the tied param.
        assert len(m.embedding.weight.sparse_grads) >= 3

    def test_optimizer_updates_tied_weight_once(self):
        """A single SGD step with a known sparse grad must apply exactly
        once even though the parameter is reachable via two modules."""
        m = WordLanguageModel(TIED_CFG, np.random.default_rng(0))
        w = m.embedding.weight
        before = w.data[5].copy()
        from repro.nn.parameter import SparseGrad

        w.accumulate_sparse_grad(
            SparseGrad(np.array([5], np.int64), np.ones((1, 8)))
        )
        SGD(list(m.parameters()), lr=1.0).step()
        np.testing.assert_allclose(w.data[5], before - 1.0)

    def test_distributed_training_with_tied_weights(self):
        cfg = TrainConfig(world_size=3, batch=BatchSpec(2, 6), base_lr=0.2)
        trainer = DistributedTrainer(
            lambda rng, rank: WordLanguageModel(TIED_CFG, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )
        before = trainer.evaluate()
        trainer.train_epoch(max_steps=25, evals_per_epoch=1)
        assert_replicas_synchronized(trainer.replicas, atol=0.0)
        assert trainer.history[-1].eval_points[-1].nll < before


class TestGradientAccumulation:
    @staticmethod
    def make_trainer(world, accum, batch_spec):
        cfg = TrainConfig(
            world_size=world, batch=batch_spec, base_lr=0.2,
            accumulation_steps=accum,
        )
        model_cfg = WordLMConfig(
            vocab_size=VOCAB, embedding_dim=6, hidden_dim=8,
            projection_dim=6, num_samples=8,
        )
        return DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            CORPUS.train, CORPUS.valid, cfg,
        )

    def test_consumes_accum_windows_per_step(self):
        tr = self.make_trainer(2, accum=3, batch_spec=BatchSpec(2, 6))
        tr.train_step()
        assert tr.global_step == 1
        assert tr.data_step == 3

    def test_replicas_stay_synchronized(self):
        tr = self.make_trainer(2, accum=2, batch_spec=BatchSpec(2, 6))
        for _ in range(3):
            tr.train_step()
        assert_replicas_synchronized(tr.replicas, atol=0.0)

    def test_accumulation_equals_larger_batch(self):
        """Two accumulated micro-batches == one batch twice as large
        along the batch axis (mean-of-means with equal sizes).  Uses the
        char LM's deterministic full softmax so gradients are exactly
        comparable."""
        from repro.train import CharLanguageModel, CharLMConfig

        char_cfg = CharLMConfig(
            vocab_size=VOCAB, embedding_dim=6, hidden_dim=8, depth=2,
            dropout=0.0,
        )
        model_a = CharLanguageModel(
            char_cfg, np.random.default_rng(0),
            dropout_rng=np.random.default_rng(1),
        )
        model_b = CharLanguageModel(
            char_cfg, np.random.default_rng(0),
            dropout_rng=np.random.default_rng(1),
        )
        b1, b2 = batch(seed=1, shape=(2, 5)), batch(seed=2, shape=(2, 5))
        merged = Batch(
            inputs=np.concatenate([b1.inputs, b2.inputs]),
            targets=np.concatenate([b1.targets, b2.targets]),
        )
        # A: accumulate two micro-steps, then halve (mean of means).
        model_a.step(b1)
        model_a.step(b2)
        for p in model_a.parameters():
            if p.grad is not None:
                p.grad *= 0.5
            for s in p.sparse_grads:
                s.values *= 0.5
        # B: one merged step.
        model_b.step(merged)
        for (n, pa), (_, pb) in zip(
            model_a.named_parameters(), model_b.named_parameters()
        ):
            np.testing.assert_allclose(
                pa.full_grad(), pb.full_grad(), rtol=1e-9, atol=1e-12,
                err_msg=n,
            )

    def test_epoch_length_scales_down(self):
        tr1 = self.make_trainer(2, accum=1, batch_spec=BatchSpec(2, 6))
        tr4 = self.make_trainer(2, accum=4, batch_spec=BatchSpec(2, 6))
        s1 = tr1.train_epoch(evals_per_epoch=1)
        s4 = tr4.train_epoch(evals_per_epoch=1)
        assert tr4.global_step * 4 <= tr1.global_step + 4
        assert s1.epoch == s4.epoch == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(
                world_size=1, batch=BatchSpec(1, 1), base_lr=0.1,
                accumulation_steps=0,
            )
