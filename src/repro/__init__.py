"""repro — reproduction of "Language Modeling at Scale" (Patwary et al.,
IPPS 2019).

Zipf-aware scalable data-parallel language-model training, built on a
simulated multi-GPU cluster:

* :mod:`repro.cluster` — devices with byte-exact memory accounting, a
  two-tier interconnect, MPI-style collectives with cost models;
* :mod:`repro.nn` — pure-numpy NN stack (embeddings with sparse
  gradients, LSTM, RHN, full & sampled softmax);
* :mod:`repro.optim` — sparse-aware SGD/Adam, LR scaling, loss scalers;
* :mod:`repro.data` — Zipf–Mandelbrot synthetic corpora and the
  type/token statistics of Figure 1;
* :mod:`repro.core` — the paper's contribution: uniqueness, seeding and
  compression;
* :mod:`repro.train` — word/char LM assemblies and the SPMD trainer;
* :mod:`repro.perf` — the analytic model behind Tables III-V;
* :mod:`repro.analysis` — correctness tooling: the REPRO lint rules and
  the runtime collective/compression sanitizer;
* :mod:`repro.telemetry` — the unified observability layer: metrics
  registry, Prometheus/JSON exporters, merged multi-generation chrome
  traces, and per-step JSONL sessions;
* :mod:`repro.serve` — the inference serving path: continuous batching,
  per-request state caching, replica-sharded embedding lookup, and
  Zipfian/bursty traffic over the simulated cluster.
"""

from . import (
    analysis,
    cluster,
    core,
    data,
    nn,
    optim,
    perf,
    report,
    serve,
    sim,
    telemetry,
    train,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "cluster",
    "core",
    "data",
    "nn",
    "optim",
    "perf",
    "report",
    "serve",
    "sim",
    "telemetry",
    "train",
    "__version__",
]
