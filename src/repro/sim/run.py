"""End-to-end simulated cluster runs: one call, one report.

:class:`SimulatedRun` wires together everything the library models —
real SPMD training for accuracy, the communicator's ledger for wire
volume and alpha-beta time, and the per-device allocators for memory
(including persistent model/optimizer footprints, so OOM happens exactly
where a real cluster of the given devices would abort).

The resulting :class:`RunReport` is the simulated analogue of "what the
job's logs would say": perplexity trajectory, communication breakdown,
peak memory, and whether the configuration fits at all.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..cluster.communicator import Communicator
from ..cluster.device import DeviceOOMError, DeviceSpec, TITAN_X
from ..data.corpus import SyntheticCorpus
from ..train.config import TrainConfig
from ..train.metrics import perplexity
from ..train.trainer import DistributedTrainer

__all__ = ["RunReport", "SimulatedRun"]


@dataclass
class RunReport:
    """What a simulated training run observed."""

    world_size: int
    steps: int
    completed: bool
    oom: bool
    oom_message: str = ""
    initial_perplexity: float = float("nan")
    final_perplexity: float = float("nan")
    wire_bytes_per_rank: int = 0
    comm_seconds: float = 0.0
    peak_memory_bytes: int = 0
    model_bytes: int = 0
    bytes_by_op: dict = field(default_factory=dict)
    time_by_op: dict = field(default_factory=dict)

    @property
    def perplexity_improvement(self) -> float:
        return (self.initial_perplexity - self.final_perplexity) / self.initial_perplexity

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"simulated run: {self.world_size} GPUs, {self.steps} steps, "
            + ("completed" if self.completed else f"ABORTED ({self.oom_message})"),
        ]
        if self.completed:
            lines.append(
                f"  perplexity {self.initial_perplexity:.2f} -> "
                f"{self.final_perplexity:.2f} "
                f"({self.perplexity_improvement:.0%} better)"
            )
        lines.append(
            f"  wire {self.wire_bytes_per_rank / 1e6:.2f} MB/GPU, "
            f"comm {self.comm_seconds * 1e3:.1f} ms simulated, "
            f"peak memory {self.peak_memory_bytes / 1e6:.2f} MB/GPU "
            f"(model {self.model_bytes / 1e6:.2f} MB)"
        )
        return "\n".join(lines)


class SimulatedRun:
    """Configure and execute one training run on simulated hardware.

    Parameters
    ----------
    model_factory, optimizer_factory, corpus, config:
        As for :class:`~repro.train.trainer.DistributedTrainer`.
    device_spec:
        The GPU to simulate (capacity matters: small devices reproduce
        the paper's baseline OOMs).
    optimizer_slots:
        Per-parameter optimizer-state copies charged to device memory
        (0 for SGD, 2 for Adam).
    """

    def __init__(
        self,
        model_factory: Callable,
        optimizer_factory: Callable,
        corpus: SyntheticCorpus,
        config: TrainConfig,
        device_spec: DeviceSpec = TITAN_X,
        optimizer_slots: int = 0,
    ):
        if optimizer_slots < 0:
            raise ValueError("optimizer_slots must be non-negative")
        self.comm = Communicator(
            config.world_size, device_spec=device_spec, track_memory=True
        )
        self.trainer = DistributedTrainer(
            model_factory,
            optimizer_factory,
            corpus.train,
            corpus.valid,
            config,
            comm=self.comm,
        )
        # Charge the persistent per-GPU residency: parameters, gradients,
        # optimizer state (these never leave device memory in a real run).
        params = self.trainer.replicas[0].parameter_bytes()
        self.model_bytes = params * (2 + optimizer_slots)
        for dev in self.comm.devices:
            dev.alloc(self.model_bytes, tag="model+grads+optimizer")

    def execute(self, steps: int) -> RunReport:
        """Train for ``steps`` optimizer steps, capturing the report.

        An out-of-memory abort is captured in the report rather than
        raised — callers sweep configurations and tabulate OOM cells the
        way the paper's tables do.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        report = RunReport(
            world_size=self.comm.world_size,
            steps=steps,
            completed=False,
            oom=False,
            model_bytes=self.model_bytes,
        )
        try:
            report.initial_perplexity = perplexity(self.trainer.evaluate())
            for _ in range(steps):
                self.trainer.train_step()
            report.final_perplexity = perplexity(self.trainer.evaluate())
            report.completed = True
        except DeviceOOMError as exc:
            report.oom = True
            report.oom_message = str(exc)
        ledger = self.comm.ledger
        report.wire_bytes_per_rank = ledger.total_wire_bytes_per_rank
        report.comm_seconds = ledger.total_time_s
        report.peak_memory_bytes = self.comm.peak_bytes_per_rank
        report.bytes_by_op = ledger.bytes_by_op()
        report.time_by_op = ledger.time_by_op()
        return report
