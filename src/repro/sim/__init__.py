"""End-to-end simulated cluster runs combining real training with the
memory/cost simulation: one call, one report."""

from .run import RunReport, SimulatedRun

__all__ = ["RunReport", "SimulatedRun"]
