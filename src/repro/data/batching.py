"""Data-parallel batching: shard a token stream across simulated GPUs.

Terminology follows the paper (Section II-B): each GPU processes a
*local batch* of ``K`` tokens per step, arranged as ``K/c`` sequences of
length ``c``.  With ``G`` GPUs the *global batch* is ``G*K`` tokens —
the ``N`` whose type count ``U`` drives every complexity bound.

Sharding is contiguous per rank (rank r gets the r-th slice of the
stream), matching how data-parallel input pipelines partition a corpus;
each rank then walks its shard in standard truncated-BPTT layout:
``sequences_per_rank`` parallel streams advancing ``seq_len`` tokens a
step, targets shifted by one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatchSpec", "Batch", "ShardedBatcher", "make_eval_batches"]


@dataclass(frozen=True)
class BatchSpec:
    """Shape of each rank's per-step input.

    ``local_batch_tokens`` (the paper's ``K``) =
    ``sequences_per_rank * seq_len``.
    """

    sequences_per_rank: int
    seq_len: int

    def __post_init__(self) -> None:
        if self.sequences_per_rank <= 0:
            raise ValueError("sequences_per_rank must be positive")
        if self.seq_len <= 0:
            raise ValueError("seq_len must be positive")

    @property
    def local_batch_tokens(self) -> int:
        return self.sequences_per_rank * self.seq_len

    def global_batch_tokens(self, world_size: int) -> int:
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        return self.local_batch_tokens * world_size


@dataclass(frozen=True)
class Batch:
    """One rank's step input: ``inputs[i, t]`` predicts ``targets[i, t]``."""

    inputs: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if self.inputs.shape != self.targets.shape:
            raise ValueError("inputs and targets must share a shape")
        if self.inputs.ndim != 2:
            raise ValueError("batches are 2-D: (sequences, seq_len)")

    @property
    def n_tokens(self) -> int:
        return int(self.inputs.size)


class ShardedBatcher:
    """Deterministic per-rank batch iterator over a shared token stream.

    Parameters
    ----------
    tokens:
        The full training stream (1-D int array).
    spec:
        Per-rank batch shape.
    world_size:
        Number of simulated ranks.

    Notes
    -----
    Each rank's shard is reshaped into ``sequences_per_rank`` parallel
    streams.  ``steps_per_epoch`` is the number of full BPTT windows the
    shortest stream supports; the epoch's token coverage is
    ``steps_per_epoch * global_batch``.
    """

    def __init__(
        self,
        tokens: np.ndarray,
        spec: BatchSpec,
        world_size: int,
        shuffle_seed: int | None = None,
    ):
        tokens = np.asarray(tokens)
        if tokens.ndim != 1:
            raise ValueError("tokens must be 1-D")
        if world_size <= 0:
            raise ValueError("world_size must be positive")
        self.spec = spec
        self.world_size = world_size
        self.shuffle_seed = shuffle_seed

        shard_len = tokens.size // world_size
        self._stream_len = shard_len // spec.sequences_per_rank
        # One extra token is needed for the final target shift.
        self.steps_per_epoch = (self._stream_len - 1) // spec.seq_len
        if self.steps_per_epoch <= 0:
            raise ValueError(
                f"stream of {tokens.size} tokens too short for "
                f"{world_size} ranks x {spec.sequences_per_rank} seqs x "
                f"seq_len {spec.seq_len}"
            )
        # The corpus is cut into world * sequences_per_rank contiguous
        # segments; an epoch permutation (when shuffling) reassigns which
        # segment feeds which parallel stream — every rank derives the
        # same permutation, keeping the SPMD step deterministic.
        n_segments = world_size * spec.sequences_per_rank
        self._segments = tokens[: n_segments * self._stream_len].reshape(
            n_segments, self._stream_len
        )
        self.set_epoch(0)

    def set_epoch(self, epoch: int) -> None:
        """Select the epoch's segment->stream assignment.

        With ``shuffle_seed`` unset the assignment is the identity every
        epoch (fully deterministic streams, as the paper's pipelines);
        otherwise a permutation seeded by ``(shuffle_seed, epoch)``
        reshuffles which corpus segment each parallel stream reads.
        """
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        n_segments = self._segments.shape[0]
        if self.shuffle_seed is None:
            order = np.arange(n_segments)
        else:
            order = np.random.default_rng(
                (self.shuffle_seed, epoch)
            ).permutation(n_segments)
        per_rank = self.spec.sequences_per_rank
        self._streams = [
            self._segments[order[r * per_rank : (r + 1) * per_rank]]
            for r in range(self.world_size)  # mesh-ok: the batcher's world IS the data-parallel degree (trainer passes d)
        ]

    def batch(self, rank: int, step: int) -> Batch:
        """The ``step``-th batch of ``rank`` (both zero-based)."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        if not 0 <= step < self.steps_per_epoch:
            raise ValueError(
                f"step {step} out of range (epoch has {self.steps_per_epoch})"
            )
        s = self.spec.seq_len
        window = self._streams[rank][:, step * s : step * s + s + 1]
        return Batch(inputs=window[:, :-1].copy(), targets=window[:, 1:].copy())

    def step_batches(self, step: int) -> list[Batch]:
        """All ranks' batches for one step, index = rank."""
        return [self.batch(r, step) for r in range(self.world_size)]  # mesh-ok: the batcher's world IS the data-parallel degree

    def global_tokens_per_step(self) -> int:
        return self.spec.global_batch_tokens(self.world_size)


def make_eval_batches(
    tokens: np.ndarray, spec: BatchSpec, max_batches: int | None = None
) -> list[Batch]:
    """Single-stream evaluation batches over a validation split."""
    batcher = ShardedBatcher(tokens, spec, world_size=1)
    n = batcher.steps_per_epoch
    if max_batches is not None:
        if max_batches <= 0:
            raise ValueError("max_batches must be positive")
        n = min(n, max_batches)
    return [batcher.batch(0, i) for i in range(n)]
