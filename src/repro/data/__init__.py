"""Corpus substrate: Zipfian synthetic datasets, vocabularies, batching,
and the type/token statistics behind Figure 1."""

from .batching import Batch, BatchSpec, ShardedBatcher, make_eval_batches
from .corpus import (
    AMAZON_REVIEWS,
    COMMON_CRAWL,
    FIGURE1_PRESETS,
    GUTENBERG,
    ONE_BILLION_WORD,
    PRESETS,
    TIEBA,
    DatasetPreset,
    SyntheticCorpus,
    make_corpus,
)
from .burstiness import batch_duplication, make_bursty_tokens
from .text import CharTokenizer, TextCorpus, WordTokenizer, encode_corpus
from .stats import (
    HeapsFit,
    fit_heaps_law,
    token_type_gap,
    type_token_curve,
    types_at,
)
from .vocab import Vocabulary, coverage_of_top_k
from .zipf import (
    ZipfMandelbrot,
    fit_zipf_exponent,
    heaps_exponent_for_zipf,
    zipf_exponent_for_heaps,
)

__all__ = [
    "make_bursty_tokens",
    "batch_duplication",
    "WordTokenizer",
    "CharTokenizer",
    "TextCorpus",
    "encode_corpus",
    "Batch",
    "BatchSpec",
    "ShardedBatcher",
    "make_eval_batches",
    "DatasetPreset",
    "SyntheticCorpus",
    "make_corpus",
    "PRESETS",
    "FIGURE1_PRESETS",
    "ONE_BILLION_WORD",
    "GUTENBERG",
    "COMMON_CRAWL",
    "AMAZON_REVIEWS",
    "TIEBA",
    "HeapsFit",
    "fit_heaps_law",
    "types_at",
    "type_token_curve",
    "token_type_gap",
    "Vocabulary",
    "coverage_of_top_k",
    "ZipfMandelbrot",
    "fit_zipf_exponent",
    "heaps_exponent_for_zipf",
    "zipf_exponent_for_heaps",
]
