"""Bursty token streams: the cache/repetition model.

Real text repeats locally — a word used once in a document is far more
likely to recur soon ("burstiness", Church & Gale).  The i.i.d.
Zipf–Mandelbrot generators capture global frequency structure but not
this local clustering, which matters for the paper's techniques: the
uniqueness exchange saves in proportion to *within-batch* duplication,
so i.i.d. streams **understate** its wins on real corpora.

:func:`make_bursty_tokens` implements the classic cache model: with
probability ``p_repeat`` the next token re-draws uniformly from the last
``window`` tokens, otherwise from the base distribution.  Global
frequencies stay (approximately) Zipfian while local duplication rises —
quantified by :func:`batch_duplication`.
"""

from __future__ import annotations

import numpy as np

from .zipf import ZipfMandelbrot

__all__ = ["make_bursty_tokens", "batch_duplication"]


def make_bursty_tokens(
    distribution: ZipfMandelbrot,
    n_tokens: int,
    rng: np.random.Generator,
    p_repeat: float = 0.3,
    window: int = 100,
) -> np.ndarray:
    """Sample a bursty stream from a base distribution + recency cache.

    Parameters
    ----------
    distribution:
        The base (global-frequency) distribution.
    p_repeat:
        Probability each position copies a recent token instead of
        drawing fresh; 0 reduces to the i.i.d. stream.
    window:
        Recency cache length.

    Implementation: fresh draws, repeat-coin flips, and cache offsets are
    all vectorized; only the dependency chain (which position each repeat
    copies) runs in a Python loop, at ~1e6 tokens/s.
    """
    if n_tokens <= 0:
        raise ValueError("n_tokens must be positive")
    if not 0.0 <= p_repeat < 1.0:
        raise ValueError("p_repeat must be in [0, 1)")
    if window <= 0:
        raise ValueError("window must be positive")

    fresh = distribution.sample(n_tokens, rng)
    if p_repeat == 0.0:
        return fresh
    repeat = rng.random(n_tokens) < p_repeat
    repeat[0] = False
    # For each repeat position i, copy position i - offset_i (clipped).
    offsets = rng.integers(1, window + 1, size=n_tokens)

    out = fresh.copy()
    repeat_positions = np.flatnonzero(repeat)
    for i in repeat_positions:
        out[i] = out[max(0, i - int(offsets[i]))]
    return out


def batch_duplication(
    tokens: np.ndarray, batch_tokens: int
) -> float:
    """Mean tokens-per-type ratio over consecutive batches of a stream.

    This is the quantity the uniqueness technique converts into savings:
    a batch with duplication d moves ~d x fewer gradient rows.
    """
    tokens = np.asarray(tokens)
    if batch_tokens <= 0:
        raise ValueError("batch_tokens must be positive")
    n_batches = tokens.size // batch_tokens
    if n_batches == 0:
        raise ValueError("stream shorter than one batch")
    ratios = []
    for b in range(n_batches):
        chunk = tokens[b * batch_tokens : (b + 1) * batch_tokens]
        ratios.append(chunk.size / np.unique(chunk).size)
    return float(np.mean(ratios))
