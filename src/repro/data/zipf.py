"""Zipf–Mandelbrot distributions: sampling and exponent estimation.

Zipf's law is the load-bearing empirical fact of the paper: word
frequency is inversely proportional to frequency rank,
``p(r) ∝ 1 / (r + q)^s``, and as a consequence the number of distinct
types ``U`` in a sample of ``N`` tokens grows sub-linearly (Heaps' law,
``U ∝ N^beta`` with the paper's measured ``beta = 0.64``).

This module provides:

* :class:`ZipfMandelbrot` — a finite-vocabulary Zipf–Mandelbrot
  distribution with vectorized inverse-CDF sampling;
* :func:`fit_zipf_exponent` — least-squares estimate of ``s`` from
  observed frequency counts;
* :func:`heaps_exponent_for_zipf` — the asymptotic Heaps exponent a
  given Zipf exponent induces (``beta = 1/s`` for ``s > 1``), used for
  preset calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ZipfMandelbrot",
    "fit_zipf_exponent",
    "heaps_exponent_for_zipf",
    "zipf_exponent_for_heaps",
]


@dataclass(frozen=True)
class ZipfMandelbrot:
    """Finite Zipf–Mandelbrot distribution over ranks ``0 .. vocab_size-1``.

    ``p(rank) ∝ 1 / (rank + 1 + shift)^exponent`` — rank 0 is the most
    frequent type.  ``shift`` (Mandelbrot's ``q``) flattens the head,
    which distinguishes e.g. web text (Common Crawl) from book text.

    Parameters
    ----------
    vocab_size:
        Number of distinct types.
    exponent:
        Zipf exponent ``s``; natural language sits near 1.0-1.6.
    shift:
        Mandelbrot shift ``q >= 0``.
    """

    vocab_size: int
    exponent: float = 1.5
    shift: float = 0.0
    _cdf: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        if self.exponent <= 0:
            raise ValueError("exponent must be positive")
        if self.shift < 0:
            raise ValueError("shift must be non-negative")
        ranks = np.arange(1, self.vocab_size + 1, dtype=np.float64)
        weights = (ranks + self.shift) ** (-self.exponent)
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        object.__setattr__(self, "_cdf", cdf)

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each rank, most frequent first."""
        probs = np.diff(self._cdf, prepend=0.0)
        return probs

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` token ids (= frequency ranks) by inverse-CDF lookup.

        Returns an ``int64`` array; ids are frequency ranks, so id 0 is
        the most common type — convenient for frequency-ordered vocabs.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        u = rng.random(n)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def expected_types(self, n_tokens: int) -> float:
        """Expected number of distinct types in a sample of ``n_tokens``.

        ``E[U] = sum_r (1 - (1 - p_r)^N)`` — exact under i.i.d. sampling,
        evaluated stably through ``expm1``/``log1p``.
        """
        if n_tokens < 0:
            raise ValueError("n_tokens must be non-negative")
        if n_tokens == 0:
            return 0.0
        # p_r == 1 (single-type vocab) gives log1p(-1) = -inf, whose
        # expm1 is exactly -1 — the correct certain-hit limit.
        with np.errstate(divide="ignore"):
            log_miss = n_tokens * np.log1p(-self.pmf)
        return float(-np.expm1(log_miss).sum())


def fit_zipf_exponent(counts: np.ndarray, min_count: int = 1) -> float:
    """Least-squares fit of the Zipf exponent from frequency counts.

    ``counts`` is any array of per-type occurrence counts (order
    irrelevant).  Types with fewer than ``min_count`` occurrences are
    dropped (the tail is noisy); the exponent is the negated slope of
    ``log count`` against ``log rank``.
    """
    counts = np.asarray(counts, dtype=np.float64)
    counts = np.sort(counts[counts >= min_count])[::-1]
    if counts.size < 3:
        raise ValueError("need at least 3 types above min_count to fit")
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    slope, _intercept = np.polyfit(np.log(ranks), np.log(counts), 1)
    return float(-slope)


def heaps_exponent_for_zipf(zipf_exponent: float) -> float:
    """Asymptotic Heaps exponent induced by a Zipf exponent.

    For an unbounded Zipf distribution with ``s > 1`` the type count
    grows as ``U ∝ N^(1/s)``; for ``s <= 1`` growth is (nearly) linear.
    """
    if zipf_exponent <= 0:
        raise ValueError("zipf_exponent must be positive")
    if zipf_exponent <= 1.0:
        return 1.0
    return 1.0 / zipf_exponent


def zipf_exponent_for_heaps(heaps_exponent: float) -> float:
    """Inverse of :func:`heaps_exponent_for_zipf` — preset calibration aid.

    The paper measures ``U ∝ N^0.64`` across its four corpora, which an
    ideal Zipf source reproduces with ``s = 1 / 0.64 ≈ 1.56``.
    """
    if not 0 < heaps_exponent <= 1:
        raise ValueError("heaps_exponent must be in (0, 1]")
    return 1.0 / heaps_exponent
