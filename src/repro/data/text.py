"""Real-text front end: tokenization and corpus encoding.

The synthetic Zipf generators stand in for the paper's corpora, but a
downstream user adopting this library has *text*.  This module provides
the paper's preprocessing (Section IV-A): lower-casing, word
tokenization [37], frequency-ranked vocabulary truncation, and
character-level encoding — producing the integer token streams the rest
of the stack consumes.

Word ids are frequency ranks (0 = most frequent), matching the synthetic
corpora's convention, so the log-uniform candidate sampler and the
Zipf-freq seeding remain correctly calibrated on real text.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

__all__ = ["WordTokenizer", "CharTokenizer", "TextCorpus", "encode_corpus"]

_WORD_RE = re.compile(r"[a-z0-9]+(?:'[a-z]+)?|[^\sa-z0-9]")


class WordTokenizer:
    """Lower-casing word tokenizer in the spirit of the paper's NLTK use.

    Splits on alphanumeric runs (keeping simple apostrophe contractions
    together) and emits punctuation as individual tokens.
    """

    def tokenize(self, text: str) -> list[str]:
        return _WORD_RE.findall(text.lower())


class CharTokenizer:
    """Character tokenizer: every character is a token.

    ``lower`` folds case, matching how the paper sizes the 98-symbol
    English character vocabulary.
    """

    def __init__(self, lower: bool = True):
        self.lower = lower

    def tokenize(self, text: str) -> list[str]:
        return list(text.lower() if self.lower else text)


@dataclass
class TextCorpus:
    """An encoded text corpus: id stream + the id<->string mapping.

    Attributes
    ----------
    tokens:
        The encoded stream (int64), OOV mapped to ``unk_id``.
    itos:
        id -> surface string, frequency-ranked; last entry is ``<unk>``.
    counts:
        Training-frequency of each id (``<unk>`` holds the OOV mass).
    """

    tokens: np.ndarray
    itos: list[str]
    counts: np.ndarray
    _stoi: dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def vocab_size(self) -> int:
        return len(self.itos)

    @property
    def unk_id(self) -> int:
        return len(self.itos) - 1

    def stoi(self, token: str) -> int:
        """Surface string -> id (``unk_id`` when unseen)."""
        if not self._stoi:
            self._stoi = {s: i for i, s in enumerate(self.itos)}
        return self._stoi.get(token, self.unk_id)

    def decode(self, ids: np.ndarray, sep: str = " ") -> str:
        """Ids back to text (diagnostics and sampling demos)."""
        return sep.join(self.itos[int(i)] for i in np.asarray(ids).reshape(-1))

    def coverage(self) -> float:
        """Fraction of the stream covered by in-vocabulary types."""
        if self.tokens.size == 0:
            raise ValueError("empty corpus")
        return float((self.tokens != self.unk_id).mean())


def encode_corpus(
    text: str,
    tokenizer: WordTokenizer | CharTokenizer | None = None,
    max_vocab: int | None = None,
) -> TextCorpus:
    """Tokenize text and encode it against a frequency-ranked vocabulary.

    Parameters
    ----------
    text:
        Raw corpus text.
    tokenizer:
        Defaults to :class:`WordTokenizer`.
    max_vocab:
        Keep only the most frequent types (the paper's 100K cut); an
        ``<unk>`` slot is appended.

    Ties in frequency are broken lexicographically so encoding is
    deterministic across runs and platforms.
    """
    tokenizer = tokenizer if tokenizer is not None else WordTokenizer()
    surface = tokenizer.tokenize(text)
    if not surface:
        raise ValueError("text produced no tokens")
    freq = Counter(surface)
    ranked = sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))
    if max_vocab is not None:
        if max_vocab <= 0:
            raise ValueError("max_vocab must be positive")
        ranked = ranked[:max_vocab]
    itos = [s for s, _ in ranked] + ["<unk>"]
    stoi = {s: i for i, s in enumerate(itos[:-1])}
    unk = len(itos) - 1
    tokens = np.fromiter(
        (stoi.get(s, unk) for s in surface), dtype=np.int64, count=len(surface)
    )
    counts = np.zeros(len(itos), dtype=np.int64)
    ids, c = np.unique(tokens, return_counts=True)
    counts[ids] = c
    corpus = TextCorpus(tokens=tokens, itos=itos, counts=counts)
    corpus._stoi = stoi | {"<unk>": unk}
    return corpus
