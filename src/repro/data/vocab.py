"""Vocabulary construction: frequency-ranked, truncated, with coverage.

The paper (Section IV-A) builds word vocabularies by keeping the 100,000
most frequent words after lower-casing/tokenization, noting that although
the corpora contain 2M-24M distinct words, this simple truncation covers
99% of the running text — another direct consequence of Zipf's law.
Character vocabularies are used whole (98 symbols for English, ~15K for
Chinese).

Out-of-vocabulary tokens map to a reserved ``<unk>`` id.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Vocabulary", "coverage_of_top_k"]

UNK_TOKEN = "<unk>"


@dataclass
class Vocabulary:
    """Frequency-ranked vocabulary mapping type ids to counts.

    Built via :meth:`from_counts` or :meth:`from_token_ids`.  Internally
    types are numpy integer ids; ``id_map`` maps a raw (corpus) type id
    to its vocabulary id (frequency rank, 0 = most frequent), with OOV
    raw ids mapped to :attr:`unk_id`.
    """

    counts: np.ndarray
    raw_ids: np.ndarray
    unk_id: int
    _lookup: dict[int, int] = field(default_factory=dict, repr=False)

    @classmethod
    def from_counts(
        cls, raw_ids: np.ndarray, counts: np.ndarray, max_size: int | None = None
    ) -> "Vocabulary":
        """Build from parallel arrays of raw type ids and their counts.

        ``max_size`` truncates to the most frequent types (the paper's
        100K cut); an ``<unk>`` slot is appended after truncation, so the
        resulting size is ``min(max_size, len(raw_ids)) + 1``.
        """
        raw_ids = np.asarray(raw_ids, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if raw_ids.shape != counts.shape or raw_ids.ndim != 1:
            raise ValueError("raw_ids and counts must be 1-D and parallel")
        if np.unique(raw_ids).size != raw_ids.size:
            raise ValueError("raw_ids must be unique")
        if (counts < 0).any():
            raise ValueError("counts must be non-negative")
        order = np.argsort(-counts, kind="stable")
        raw_ids, counts = raw_ids[order], counts[order]
        if max_size is not None:
            if max_size <= 0:
                raise ValueError("max_size must be positive")
            raw_ids, counts = raw_ids[:max_size], counts[:max_size]
        unk_id = raw_ids.size
        vocab = cls(
            counts=np.concatenate([counts, [0]]),
            raw_ids=np.concatenate([raw_ids, [-1]]),
            unk_id=unk_id,
        )
        vocab._lookup = {int(r): i for i, r in enumerate(raw_ids)}
        return vocab

    @classmethod
    def from_token_ids(
        cls, tokens: np.ndarray, max_size: int | None = None
    ) -> "Vocabulary":
        """Count a raw token id stream and build the vocabulary from it."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 1:
            raise ValueError("tokens must be 1-D")
        raw_ids, counts = np.unique(tokens, return_counts=True)
        return cls.from_counts(raw_ids, counts, max_size=max_size)

    def __len__(self) -> int:
        return int(self.counts.size)

    @property
    def size(self) -> int:
        return len(self)

    def encode(self, tokens: np.ndarray) -> np.ndarray:
        """Map raw token ids to vocabulary ids, OOV -> ``unk_id``.

        Vectorized: builds a searchsorted index over in-vocab raw ids.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        in_vocab_raw = self.raw_ids[: self.unk_id]
        order = np.argsort(in_vocab_raw)
        sorted_raw = in_vocab_raw[order]
        pos = np.searchsorted(sorted_raw, tokens)
        pos = np.clip(pos, 0, sorted_raw.size - 1)
        hit = sorted_raw[pos] == tokens
        out = np.full(tokens.shape, self.unk_id, dtype=np.int64)
        out[hit] = order[pos[hit]]
        return out

    def coverage(self, tokens: np.ndarray) -> float:
        """Fraction of a raw token stream covered by in-vocab types."""
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.size == 0:
            raise ValueError("empty token stream")
        encoded = self.encode(tokens)
        return float((encoded != self.unk_id).mean())

    def frequency_probs(self) -> np.ndarray:
        """Empirical unigram distribution over vocabulary ids.

        The ``<unk>`` slot gets the leftover mass implied by its zero
        stored count (i.e. zero here; callers wanting OOV mass should
        re-encode a stream).  Used by the Zipf-frequency seeding strategy
        and the log-uniform candidate sampler calibration.
        """
        total = self.counts.sum()
        if total == 0:
            raise ValueError("vocabulary has no counts")
        return self.counts / total


def coverage_of_top_k(counts: np.ndarray, k: int) -> float:
    """Fraction of running text the top-``k`` most frequent types cover.

    Reproduces the paper's observation that a 100K cut of a multi-million
    type corpus covers ~99% of tokens.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.ndim != 1 or counts.size == 0:
        raise ValueError("counts must be a non-empty 1-D array")
    if (counts < 0).any():
        raise ValueError("counts must be non-negative")
    if k <= 0:
        raise ValueError("k must be positive")
    total = counts.sum()
    if total == 0:
        raise ValueError("counts sum to zero")
    top = np.sort(counts)[::-1][:k]
    return float(top.sum() / total)
