"""Type–token statistics: the measurements behind Figure 1.

Figure 1 of the paper plots the number of distinct *types* (unique
words, ``U``) against the number of *tokens* (``N``) for four corpora,
observing the Heaps-law power fit ``U = 7.02 N^0.64`` and a ~100x gap at
``N = 40M``.  This module computes those curves and fits from raw token
id streams, fully vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "types_at",
    "type_token_curve",
    "fit_heaps_law",
    "HeapsFit",
    "token_type_gap",
]


def types_at(tokens: np.ndarray, checkpoints: np.ndarray) -> np.ndarray:
    """Distinct-type counts of each prefix ``tokens[:n]`` for n in checkpoints.

    Single O(N log N) pass: a token position contributes a *new* type iff
    it is the first occurrence of its id, so the running type count at
    prefix length ``n`` is the number of first-occurrence positions < n.

    Parameters
    ----------
    tokens:
        1-D integer array of token ids.
    checkpoints:
        Prefix lengths (need not be sorted); each must be in
        ``0 .. len(tokens)``.
    """
    tokens = np.asarray(tokens)
    if tokens.ndim != 1:
        raise ValueError("tokens must be 1-D")
    checkpoints = np.asarray(checkpoints, dtype=np.int64)
    if checkpoints.size and (
        checkpoints.min() < 0 or checkpoints.max() > tokens.size
    ):
        raise ValueError("checkpoints must lie in [0, len(tokens)]")
    _, first_pos = np.unique(tokens, return_index=True)
    first_pos = np.sort(first_pos)
    return np.searchsorted(first_pos, checkpoints, side="left").astype(np.int64)


def type_token_curve(
    tokens: np.ndarray, num_points: int = 20, start: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """Log-spaced (N, U) points for a Figure-1-style plot.

    Returns ``(ns, us)`` with ``ns`` log-spaced from ``start`` to the
    stream length and ``us[i]`` the number of types in ``tokens[:ns[i]]``.
    """
    tokens = np.asarray(tokens)
    if tokens.size < start:
        raise ValueError(
            f"token stream of length {tokens.size} shorter than start={start}"
        )
    if num_points < 2:
        raise ValueError("num_points must be at least 2")
    ns = np.unique(
        np.geomspace(start, tokens.size, num_points).astype(np.int64)
    )
    return ns, types_at(tokens, ns)


@dataclass(frozen=True)
class HeapsFit:
    """Power-law fit ``U = coefficient * N^exponent`` with fit quality."""

    coefficient: float
    exponent: float
    r_squared: float

    def predict(self, n_tokens: np.ndarray | float) -> np.ndarray | float:
        return self.coefficient * np.asarray(n_tokens, dtype=np.float64) ** self.exponent


def fit_heaps_law(ns: np.ndarray, us: np.ndarray) -> HeapsFit:
    """Least-squares Heaps-law fit in log-log space.

    The paper reports ``U = 7.02 N^0.64`` with R² = 1.00 over its four
    datasets pooled.
    """
    ns = np.asarray(ns, dtype=np.float64)
    us = np.asarray(us, dtype=np.float64)
    if ns.shape != us.shape or ns.ndim != 1:
        raise ValueError("ns and us must be 1-D arrays of equal length")
    if ns.size < 2:
        raise ValueError("need at least 2 points to fit")
    if (ns <= 0).any() or (us <= 0).any():
        raise ValueError("all counts must be positive for a log-log fit")
    log_n, log_u = np.log(ns), np.log(us)
    slope, intercept = np.polyfit(log_n, log_u, 1)
    pred = slope * log_n + intercept
    ss_res = float(((log_u - pred) ** 2).sum())
    ss_tot = float(((log_u - log_u.mean()) ** 2).sum())
    r2 = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return HeapsFit(
        coefficient=float(np.exp(intercept)), exponent=float(slope), r_squared=r2
    )


def token_type_gap(tokens: np.ndarray, n: int | None = None) -> float:
    """The ``N / U`` ratio at prefix length ``n`` (default: full stream).

    This is the headline "~100x" gap of Figure 1 at N = 40M tokens, and
    directly bounds the uniqueness technique's gradient-volume saving.
    """
    tokens = np.asarray(tokens)
    if n is None:
        n = tokens.size
    if not 0 < n <= tokens.size:
        raise ValueError(f"n={n} out of range for stream of {tokens.size}")
    u = int(types_at(tokens, np.array([n]))[0])
    return n / u
