"""Synthetic corpora standing in for the paper's datasets (Table I).

The paper evaluates on four corpora — One-Billion-Word (1b), Gutenberg
(gb), Amazon Reviews (ar) and Baidu Tieba — plus Common Crawl (cc) for
the Figure-1 type/token study.  None are redistributable here (and Tieba
is proprietary), so each is replaced by a **Zipf–Mandelbrot synthetic
stream** whose distributional parameters are chosen to reproduce the
properties the paper's results depend on:

* the Heaps-law type growth ``U ∝ N^~0.64`` (Figure 1, and the
  asymptotic-complexity reduction of the uniqueness technique);
* the vocabulary regime (98-char English, ~15K-char Chinese, 100K-word
  truncated word vocabularies);
* the corpus-scale ratios used in weak scaling (Tieba 3 GB : 12 GB :
  93 GB ≈ 1 : 4 : 32).

Full-scale sizes from Table I are carried as metadata so Table-I and
perf benches can report paper-scale numbers, while the actual generated
streams are shrunk to tractable lengths via ``n_tokens``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .zipf import ZipfMandelbrot

__all__ = [
    "DatasetPreset",
    "SyntheticCorpus",
    "ONE_BILLION_WORD",
    "GUTENBERG",
    "COMMON_CRAWL",
    "AMAZON_REVIEWS",
    "TIEBA",
    "PRESETS",
    "FIGURE1_PRESETS",
    "make_corpus",
]


@dataclass(frozen=True)
class DatasetPreset:
    """Generation parameters + full-scale metadata for one corpus.

    Attributes
    ----------
    name, language:
        Identification, as in Table I.
    unit:
        ``"word"`` or ``"char"`` — the token unit of the synthetic stream.
    vocab_size:
        Number of distinct types the generator can emit.  For word
        streams this models the *underlying* type inventory (millions in
        the real corpora — scaled down here); model vocabularies then
        truncate it.
    zipf_exponent, zipf_shift:
        Zipf–Mandelbrot shape.  Exponents near ``1/0.64 = 1.56`` yield
        the paper's Heaps exponent; per-dataset variation separates the
        four curves of Figure 1.
    full_chars, full_words, full_bytes:
        Table I full-scale statistics (``None`` where the paper reports
        NA).
    train_split:
        Train fraction numerator of the paper's split (99:1 for 1b/gb,
        1000:1 for ar/tieba).
    """

    name: str
    language: str
    unit: str
    vocab_size: int
    zipf_exponent: float
    zipf_shift: float
    full_chars: float | None
    full_words: float | None
    full_bytes: float | None
    train_split: int = 99

    def __post_init__(self) -> None:
        if self.unit not in ("word", "char"):
            raise ValueError(f"unit must be 'word' or 'char', got {self.unit!r}")
        if self.vocab_size <= 1:
            raise ValueError("vocab_size must exceed 1")
        if self.train_split < 1:
            raise ValueError("train_split must be >= 1")

    def distribution(self) -> ZipfMandelbrot:
        return ZipfMandelbrot(
            vocab_size=self.vocab_size,
            exponent=self.zipf_exponent,
            shift=self.zipf_shift,
        )

    def scaled(self, vocab_size: int) -> "DatasetPreset":
        """A copy shrunk to ``vocab_size`` types (test-scale runs).

        The Mandelbrot shift scales proportionally with the vocabulary so
        the *shape* of the distribution (relative head flatness, hence
        duplication behaviour) is preserved: a 100-shift over 800K types
        and a 0.0125-shift over 100 types put the same relative mass in
        the head.
        """
        if vocab_size <= 1:
            raise ValueError("vocab_size must exceed 1")
        ratio = vocab_size / self.vocab_size
        return replace(
            self, vocab_size=vocab_size, zipf_shift=self.zipf_shift * ratio
        )


# --- Word-level presets (Figure 1 curves; Table I rows) --------------------
# Exponents hover around 1.56 (=> Heaps exponent ~0.64) and Mandelbrot
# shifts around 100 (which sets the Heaps *coefficient*: real text's head
# is far flatter than pure Zipf, and q ~ 100 reproduces the paper's
# U = 7.02 N^0.64 fit almost exactly).  Dataset-specific variation —
# curated book text (gb) steeper, web text (cc) flatter — splays the
# four Figure-1 curves as in the paper.

ONE_BILLION_WORD = DatasetPreset(
    name="1b",
    language="English",
    unit="word",
    vocab_size=800_000,
    zipf_exponent=1.58,
    zipf_shift=90.0,
    full_chars=4.19e9,
    full_words=0.78e9,
    full_bytes=3.94 * 1024**3,
    train_split=99,
)

GUTENBERG = DatasetPreset(
    name="gb",
    language="English",
    unit="word",
    vocab_size=2_000_000,
    zipf_exponent=1.66,
    zipf_shift=75.0,
    full_chars=8.90e9,
    full_words=1.81e9,
    full_bytes=8.29 * 1024**3,
    train_split=99,
)

COMMON_CRAWL = DatasetPreset(
    name="cc",
    language="English",
    unit="word",
    vocab_size=24_000_000,
    zipf_exponent=1.52,
    zipf_shift=130.0,
    full_chars=None,
    full_words=None,
    full_bytes=None,
    train_split=99,
)

AMAZON_REVIEWS = DatasetPreset(
    name="ar",
    language="English",
    unit="word",
    vocab_size=12_000_000,
    zipf_exponent=1.56,
    zipf_shift=105.0,
    full_chars=38.76e9,
    full_words=7.01e9,
    full_bytes=37.04 * 1024**3,
    train_split=1000,
)

#: Chinese character stream: vocabulary of 15,437 symbols as in §V-C.
TIEBA = DatasetPreset(
    name="tieba",
    language="Chinese",
    unit="char",
    vocab_size=15_437,
    zipf_exponent=1.25,
    zipf_shift=1.0,
    full_chars=34.36e9,
    full_words=None,
    full_bytes=93.12 * 1024**3,
    train_split=1000,
)

PRESETS: dict[str, DatasetPreset] = {
    p.name: p
    for p in (ONE_BILLION_WORD, GUTENBERG, COMMON_CRAWL, AMAZON_REVIEWS, TIEBA)
}

#: The four word-level curves shown in Figure 1.
FIGURE1_PRESETS = (ONE_BILLION_WORD, GUTENBERG, COMMON_CRAWL, AMAZON_REVIEWS)


@dataclass(frozen=True)
class SyntheticCorpus:
    """A generated token-id stream with its train/validation split.

    Token ids are frequency ranks under the preset's distribution
    (0 = most frequent), so a frequency-ordered model vocabulary is the
    identity truncation.
    """

    preset: DatasetPreset
    tokens: np.ndarray
    train: np.ndarray
    valid: np.ndarray

    @property
    def n_tokens(self) -> int:
        return int(self.tokens.size)


def make_corpus(
    preset: DatasetPreset, n_tokens: int, seed: int = 0
) -> SyntheticCorpus:
    """Generate a synthetic corpus of ``n_tokens`` under ``preset``.

    The split follows the paper (Section IV-A): ``train_split:1`` with a
    fixed random seed, sampled without replacement — realized here as a
    seeded permutation of contiguous blocks so both splits keep local
    sequence structure.
    """
    if n_tokens <= 0:
        raise ValueError("n_tokens must be positive")
    rng = np.random.default_rng(seed)
    tokens = preset.distribution().sample(n_tokens, rng)

    denom = preset.train_split + 1
    n_valid = max(1, n_tokens // denom)
    # Hold out one contiguous block chosen by the seeded rng: contiguity
    # preserves sequence statistics for validation perplexity.
    start_max = n_tokens - n_valid
    start = int(rng.integers(0, start_max + 1))
    valid = tokens[start : start + n_valid]
    train = np.concatenate([tokens[:start], tokens[start + n_valid :]])
    return SyntheticCorpus(preset=preset, tokens=tokens, train=train, valid=valid)
