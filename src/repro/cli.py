"""Command-line interface: run the reproduction's experiments directly.

Subcommands::

    python -m repro.cli zipf     [--dataset 1b --tokens 1000000]
    python -m repro.cli train    [--model word|char --gpus 8 --steps 100 ...]
    python -m repro.cli perf     [--table 3|4|5]
    python -m repro.cli example  # the Section III-A worked example
    python -m repro.cli lint     [paths ... --rules REPRO001,REPRO006]
    python -m repro.cli serve-bench [--model word --gpus 4 --requests 48
                                     --slo 0.5 --fault-plan plan.json]
    python -m repro.cli trace    TELEMETRY_DIR [--out trace.json]
    python -m repro.cli verify-spmd [paths ... --gpus 4 --steps 8
                                     --fault-plan plan.json]

Every command prints the same rows the corresponding paper table or
figure reports; heavy lifting is delegated to the library so the CLI is
a thin, testable shell.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Language Modeling at Scale' "
        "(Patwary et al., IPPS 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_zipf = sub.add_parser("zipf", help="Figure 1 type/token statistics")
    p_zipf.add_argument("--dataset", default="1b",
                        choices=["1b", "gb", "cc", "ar", "tieba"])
    p_zipf.add_argument("--tokens", type=int, default=1_000_000)
    p_zipf.add_argument("--seed", type=int, default=0)

    p_train = sub.add_parser("train", help="miniature distributed training")
    p_train.add_argument("--model", default="word", choices=["word", "char"])
    p_train.add_argument("--gpus", type=int, default=4)
    p_train.add_argument("--steps", type=int, default=100)
    p_train.add_argument("--vocab", type=int, default=300)
    p_train.add_argument("--corpus-tokens", type=int, default=40_000)
    p_train.add_argument("--baseline", action="store_true",
                         help="use the ALLGATHER baseline instead of the "
                         "paper's unique exchange")
    p_train.add_argument("--fp16", action="store_true",
                         help="enable FP16 compression-scaling on the wire")
    p_train.add_argument("--wire-codec", default=None,
                         choices=["auto", "fp16", "delta", "rle", "entropy",
                                  "none"],
                         help="wire-compression policy: 'fp16' compresses "
                         "value traffic, 'delta'/'rle'/'entropy' losslessly "
                         "compress the index allgather, 'auto' selects per "
                         "message from the crossover cost model, 'none' is "
                         "the explicit uncompressed baseline")
    p_train.add_argument("--wire-chunk-bytes", type=int, default=None,
                         metavar="N",
                         help="chunk the compressed index gather into N-byte "
                         "pieces so encode of chunk i+1 overlaps transmit "
                         "of chunk i (requires --wire-codec)")
    p_train.add_argument("--fused-reduce", action="store_true",
                         help="run dense gradient allreduces as fused "
                         "compress-reduce rings: the value codec is applied "
                         "inside the collective and partial sums travel "
                         "compressed (bit-identical numerics; flat ring "
                         "only, not with --mesh)")
    p_train.add_argument("--wire-learn", action="store_true",
                         help="after each epoch, feed measured wire "
                         "telemetry back into the adaptive selector's "
                         "throughput table (requires --wire-codec auto)")
    p_train.add_argument("--mesh", default=None, metavar="SPEC",
                         help="hybrid-parallelism mesh over the world, e.g. "
                         "'pipe=2,tensor=2,data=G/4' (axes default to 1; "
                         "'G/4' or an empty value means 'whatever remains'; "
                         "the product must equal --gpus); gradient sync "
                         "runs on the data axis only and pipeline "
                         "activation sends are charged on the pipe axis")
    p_train.add_argument("--seed-strategy", default="per_rank",
                         choices=[s.value for s in _seed_strategies()])
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument("--sanitize", action="store_true",
                         help="wrap the communicator and codec in the "
                         "runtime sanitizer (collective mismatch, FP16 "
                         "overflow, and ledger-scope checking)")
    p_train.add_argument("--overlap", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="issue gradient collectives layer-by-layer "
                         "during backward instead of in one blocking sync "
                         "(numerics are bit-identical either way)")
    p_train.add_argument("--resilient", action="store_true",
                         help="run under the supervised recovery loop "
                         "(ResilientRunner): transient faults are retried "
                         "with backoff, permanent rank losses shrink the "
                         "world and resume from checkpoint")
    p_train.add_argument("--fault-plan", default=None, metavar="FILE",
                         help="JSON FaultPlan to replay through a "
                         "ChaosCommunicator (implies --resilient); without "
                         "a file a demo plan with two transient link "
                         "faults and one rank loss is injected")
    p_train.add_argument("--checkpoint", default=None, metavar="FILE",
                         help="checkpoint path for --resilient runs "
                         "(default: a temporary file)")
    p_train.add_argument("--verify-spmd", action="store_true",
                         help="attach the lockstep verifier to the "
                         "communicator: every collective's (op, tag, shape, "
                         "dtype) fingerprint is cross-checked across ranks "
                         "at barrier/wait points, converting would-be "
                         "deadlocks into immediate diagnostics")
    p_train.add_argument("--telemetry-dir", default=None, metavar="DIR",
                         help="stream per-step JSONL, Prometheus/JSON "
                         "metric exports, and merged chrome traces into "
                         "DIR (see docs/OBSERVABILITY.md); inspect with "
                         "the 'trace' subcommand")

    p_perf = sub.add_parser("perf", help="paper-scale time/memory tables")
    p_perf.add_argument("--table", type=int, default=3, choices=[3, 4, 5])

    p_gen = sub.add_parser(
        "generate", help="train a tiny char LM on sample text and sample from it"
    )
    p_gen.add_argument("--steps", type=int, default=150)
    p_gen.add_argument("--length", type=int, default=80)
    p_gen.add_argument("--temperature", type=float, default=0.7)
    p_gen.add_argument("--prompt", default="the ")
    p_gen.add_argument("--seed", type=int, default=0)

    sub.add_parser("example", help="Section III-A worked memory example")

    p_lint = sub.add_parser(
        "lint", help="run the REPRO static-analysis rules over source paths"
    )
    p_lint.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories (default: src/repro)")
    p_lint.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                        "(default: all registered rules)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="describe the registered rules and exit")

    p_verify = sub.add_parser(
        "verify-spmd",
        help="two-layer SPMD collective-matching verification: static "
        "rank-divergence lint (REPRO010-012) plus a dynamic lockstep "
        "replay of a fault plan under the LockstepVerifier",
    )
    p_verify.add_argument("paths", nargs="*", default=["src/repro"],
                          help="files or directories for the static pass "
                          "(default: src/repro)")
    p_verify.add_argument("--gpus", type=int, default=4,
                          help="world size for the dynamic replay")
    p_verify.add_argument("--steps", type=int, default=8,
                          help="training steps for the dynamic replay")
    p_verify.add_argument("--fault-plan", default=None, metavar="FILE",
                          help="JSON FaultPlan to replay under the verifier "
                          "(default: a demo plan with one transient link "
                          "fault)")
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument("--static-only", action="store_true",
                          help="skip the dynamic lockstep replay")
    p_verify.add_argument("--dynamic-only", action="store_true",
                          help="skip the static taint lint")

    p_serve = sub.add_parser(
        "serve-bench",
        help="continuous-batching inference benchmark: Zipfian/bursty "
        "traffic through the serving engine vs. naive one-at-a-time "
        "decode, with latency/goodput metrics from telemetry",
    )
    p_serve.add_argument("--model", default="word", choices=["word", "char"])
    p_serve.add_argument("--gpus", type=int, default=4,
                         help="replica-group size for the sharded lookup")
    p_serve.add_argument("--requests", type=int, default=48)
    p_serve.add_argument("--vocab", type=int, default=200)
    p_serve.add_argument("--max-batch", type=int, default=8)
    p_serve.add_argument("--temperature", type=float, default=0.0)
    p_serve.add_argument("--slo", type=float, default=None, metavar="SECONDS",
                         help="per-request SLO budget; queued requests "
                         "past it are dropped (default: no deadline)")
    p_serve.add_argument("--cache-budget", type=int, default=None,
                         metavar="BYTES",
                         help="state-cache budget (default: 4 MiB)")
    p_serve.add_argument("--fault-plan", default=None, metavar="FILE",
                         help="JSON FaultPlan replayed through a "
                         "ChaosCommunicator during serving")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--telemetry-dir", default=None, metavar="DIR",
                         help="stream per-decode-step JSONL and metric "
                         "exports into DIR")

    p_trace = sub.add_parser(
        "trace", help="merge and validate the traces of a telemetry dir"
    )
    p_trace.add_argument("telemetry_dir", metavar="TELEMETRY_DIR",
                         help="directory written by train --telemetry-dir")
    p_trace.add_argument("--out", default=None, metavar="FILE",
                         help="merged chrome trace output path "
                         "(default: TELEMETRY_DIR/trace.json)")
    return parser


def _seed_strategies():
    from repro.core.seeding import SeedStrategy

    return list(SeedStrategy)


def _cmd_zipf(args: argparse.Namespace) -> int:
    from repro.data import (
        PRESETS,
        fit_heaps_law,
        make_corpus,
        token_type_gap,
        type_token_curve,
    )
    from repro.report import format_series

    preset = PRESETS[args.dataset]
    scaled = preset.scaled(min(preset.vocab_size, max(2, args.tokens // 5)))
    corpus = make_corpus(scaled, args.tokens, seed=args.seed)
    ns, us = type_token_curve(corpus.tokens, num_points=12)
    fit = fit_heaps_law(ns, us)
    print(format_series(args.dataset, ns.tolist(), us.tolist()))
    print(
        f"Heaps fit: U = {fit.coefficient:.2f} N^{fit.exponent:.3f} "
        f"(R^2 = {fit.r_squared:.4f}); paper: U = 7.02 N^0.64"
    )
    print(f"Token/type gap at N = {args.tokens}: "
          f"{token_type_gap(corpus.tokens):.1f}x")
    return 0


def _validate_train_args(args: argparse.Namespace) -> str | None:
    """Parse-time validation of ``train`` flag combinations.

    Returns an actionable error message, or ``None`` when the
    combination is runnable.  Catching these before corpus/model
    construction keeps a typo'd mesh spec or a doomed flag pairing from
    failing minutes into a run with a library traceback.
    """
    if args.gpus <= 0:
        return f"--gpus must be positive, got {args.gpus}"
    if args.steps <= 0:
        return f"--steps must be positive, got {args.steps}"
    if args.wire_chunk_bytes is not None and args.wire_codec is None:
        return ("--wire-chunk-bytes only chunks the compressed index "
                "gather; add --wire-codec (e.g. --wire-codec delta)")
    if args.wire_learn and args.wire_codec != "auto":
        return ("--wire-learn feeds the adaptive selector's throughput "
                "table; it requires --wire-codec auto")
    if args.mesh is None:
        return None
    from repro.cluster import hybrid_mesh

    try:
        mesh = hybrid_mesh(args.mesh, args.gpus)
    except ValueError as exc:
        return f"--mesh {args.mesh!r} is invalid for --gpus {args.gpus}: {exc}"
    if args.fp16 or args.wire_codec is not None:
        return ("--mesh does not compose with --fp16/--wire-codec: the "
                "sharded data-axis exchange carries raw values; drop the "
                "codec flags or the mesh")
    if args.fused_reduce:
        return ("--fused-reduce rides the flat ring; it does not compose "
                "with --mesh")
    if args.overlap:
        return ("--mesh uses the blocking sync schedule; drop --overlap "
                "(numerics are identical either way)")
    if args.sanitize:
        return ("--mesh and --sanitize are mutually exclusive: the "
                "sanitizer wraps the flat communicator API, not the "
                "per-axis mesh collectives")
    if (args.resilient or args.fault_plan is not None) and (
        mesh.axis_size("data") == 1
    ):
        return (f"--resilient cannot recover on mesh {args.mesh!r}: "
                f"rank-loss recovery collapses the data axis only, and "
                f"data=1 leaves nothing to collapse; use data>=2 or drop "
                f"--resilient")
    return None


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import Fp16Codec, SeedStrategy
    from repro.data import BatchSpec, ONE_BILLION_WORD, TIEBA, make_corpus
    from repro.optim import SGD, Adam
    from repro.train import (
        CharLanguageModel,
        CharLMConfig,
        DistributedTrainer,
        TrainConfig,
        WordLanguageModel,
        WordLMConfig,
        max_replica_divergence,
        perplexity,
    )

    error = _validate_train_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2

    is_word = args.model == "word"
    preset = ONE_BILLION_WORD if is_word else TIEBA
    corpus = make_corpus(preset.scaled(args.vocab), args.corpus_tokens,
                         seed=args.seed)
    codec = Fp16Codec(512.0) if args.fp16 else None
    comm = None
    if args.sanitize:
        from repro.analysis import Sanitizer, sanitize_codec
        from repro.cluster import Communicator

        codec = sanitize_codec(codec)
        comm = Sanitizer(
            Communicator(args.gpus, track_memory=False),
            require_scope=True,
            lockstep=args.verify_spmd,
        )
    elif args.verify_spmd and not (args.resilient or args.fault_plan):
        from repro.cluster import Communicator, LockstepVerifier

        comm = Communicator(args.gpus, track_memory=False)
        LockstepVerifier.attach(comm)
    cfg = TrainConfig(
        world_size=args.gpus,
        batch=BatchSpec(2, 10),
        base_lr=0.3 if is_word else 3e-3,
        use_unique=not args.baseline,
        codec=codec,
        seed_strategy=SeedStrategy(args.seed_strategy),
        overlap=args.overlap,
        wire_codec=args.wire_codec,
        wire_chunk_bytes=args.wire_chunk_bytes,
        wire_sanitize=args.sanitize,
        fused_reduce=args.fused_reduce,
        wire_learn=args.wire_learn,
        mesh=args.mesh,
    )
    if is_word:
        model_cfg = WordLMConfig(
            vocab_size=args.vocab, embedding_dim=16, hidden_dim=24,
            projection_dim=16, num_samples=min(32, args.vocab - 1),
        )

        def make_trainer(run_cfg, run_comm):
            return DistributedTrainer(
                lambda rng, rank: WordLanguageModel(model_cfg, rng),
                lambda params, lr: SGD(params, lr),
                corpus.train, corpus.valid, run_cfg, comm=run_comm,
            )
    else:
        model_cfg = CharLMConfig(
            vocab_size=args.vocab, embedding_dim=12, hidden_dim=16,
            depth=2, dropout=0.0,
        )

        def make_trainer(run_cfg, run_comm):
            return DistributedTrainer(
                lambda rng, rank: CharLanguageModel(
                    model_cfg, rng, dropout_rng=np.random.default_rng(rank)
                ),
                lambda params, lr: Adam(params, lr),
                corpus.train, corpus.valid, run_cfg, comm=run_comm,
            )

    session = None
    if args.telemetry_dir is not None:
        from repro.telemetry import TelemetrySession

        session = TelemetrySession(args.telemetry_dir)

    if args.resilient or args.fault_plan is not None:
        if args.sanitize:
            print("error: --resilient and --sanitize are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        return _run_resilient(args, cfg, make_trainer, session)

    trainer = make_trainer(cfg, comm)
    if session is not None:
        session.adopt_trainer(trainer)
    elif args.wire_learn:
        # Learning needs the wire metrics even without a telemetry dir.
        from repro.telemetry import MetricsRegistry

        trainer.comm.metrics = MetricsRegistry()
    if args.verify_spmd and trainer.mesh_comm is not None:
        trainer.mesh_comm.attach_axis_verifiers()

    print(f"{args.model} LM | {args.gpus} simulated GPUs | vocab {args.vocab} "
          f"| exchange: {'allgather' if args.baseline else 'unique'}"
          f"{' + fp16' if args.fp16 else ''}"
          f"{f' | wire: {args.wire_codec}' if args.wire_codec else ''}"
          f"{' | fused-reduce' if args.fused_reduce else ''}"
          f"{' | wire-learn' if args.wire_learn else ''}"
          f"{f' | mesh: {args.mesh}' if args.mesh else ''}"
          f"{' | overlapped' if args.overlap else ''}"
          f"{' | sanitized' if args.sanitize else ''}"
          f"{' | lockstep-verified' if args.verify_spmd else ''}")
    print(f"initial val ppl: {perplexity(trainer.evaluate()):.2f}")
    for step in range(args.steps):
        loss = trainer.train_step()
        if (step + 1) % max(1, args.steps // 5) == 0:
            print(f"  step {step + 1:5d}  loss {loss:.3f}  "
                  f"val ppl {perplexity(trainer.evaluate()):.2f}")
    print(f"final val ppl: {perplexity(trainer.evaluate()):.2f}")
    print(f"wire MB/GPU: "
          f"{trainer.comm.ledger.total_wire_bytes_per_rank / 1e6:.2f}")
    if args.wire_codec:
        factor = trainer.comm.ledger.compression_factor(":indices")
        print(f"index compression: {factor:.2f}x (measured, logical/wire)")
    if args.wire_learn:
        learned = trainer.learn_wire_throughputs()
        if not learned:
            print("learned: no encoded wire traffic this run "
                  "(selector kept its prior throughput table)")
        for cname in sorted(learned):
            tp = learned[cname]
            print(f"learned {cname}: encode {tp.encode_bps / 1e6:.1f} MB/s, "
                  f"decode {tp.decode_bps / 1e6:.1f} MB/s")
    print(f"replica divergence: {max_replica_divergence(trainer.replicas):.1e}")
    if args.sanitize:
        op_log = trainer.comm.finish()
        print(f"sanitizer: {len(op_log)} collectives checked, 0 violations")
    if args.verify_spmd:
        verifier = getattr(trainer.comm, "verifier", None)
        if verifier is not None:
            verifier.check("train: end of run")
            print(f"lockstep: {verifier.collectives_observed} collective(s) "
                  f"fingerprint-verified across "
                  f"{len(verifier.live_ranks)} rank(s), 0 divergences")
        if trainer.mesh_comm is not None:
            trainer.mesh_comm.check_axes("train: end of run")
            print("lockstep: per-axis mesh subgroups verified, 0 divergences")
    if session is not None:
        summary = session.finalize()
        print(f"telemetry: {summary['steps']} steps, "
              f"{summary['trace']['events']} trace events -> "
              f"{args.telemetry_dir}")
    return 0


def _run_resilient(args: argparse.Namespace, cfg, make_trainer,
                   session=None) -> int:
    """The ``train --resilient`` path: supervised recovery over a fault plan."""
    import tempfile

    from repro.cluster import ChaosCommunicator, FaultEvent, FaultKind, FaultPlan
    from repro.train import ResilientRunner, max_replica_divergence, perplexity

    if args.fault_plan is not None:
        plan = FaultPlan.load(args.fault_plan)
    else:
        # Demo plan: two transient link faults early, one permanent rank
        # loss mid-run (skipped on a single-GPU world, which cannot shrink).
        events = [
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=2,
                       rank=min(1, args.gpus - 1)),
            FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=7,
                       rank=0, retries=2),
        ]
        if args.gpus > 1:
            events.append(
                FaultEvent(FaultKind.RANK_LOSS,
                           collective_index=3 * args.steps,
                           rank=args.gpus - 1)
            )
        plan = FaultPlan(events, seed=args.seed)
    comm = ChaosCommunicator(args.gpus, plan=plan, track_memory=False)
    if getattr(args, "verify_spmd", False):
        from repro.cluster import LockstepVerifier

        LockstepVerifier.attach(comm)
    checkpoint = args.checkpoint or str(
        Path(tempfile.mkdtemp(prefix="repro-resilient-")) / "checkpoint.npz"
    )
    runner = ResilientRunner(
        make_trainer, cfg, checkpoint, comm=comm,
        checkpoint_every=max(1, args.steps // 4),
        telemetry=session,
    )
    print(f"resilient {args.model} LM | {args.gpus} simulated GPUs | "
          f"{len(plan)} scheduled fault(s) | checkpoint: {checkpoint}")
    trainer = runner.run(args.steps)
    for event in runner.events:
        print(f"  [{event.kind:>17}] step {event.global_step:4d}  {event.detail}")
    retries = sum(1 for e in runner.events if e.kind == "retry")
    print(f"final world: {trainer.config.world_size} | "
          f"final val ppl: {perplexity(trainer.evaluate()):.2f} | "
          f"lr scale: {runner.lr_scale:.3f}")
    print(f"replica divergence: {max_replica_divergence(trainer.replicas):.1e}")
    print(f"simulated time: {runner.total_simulated_time():.4f}s "
          f"across {len(runner.timelines)} communicator generation(s), "
          f"{retries} retr{'y' if retries == 1 else 'ies'} charged")
    if getattr(args, "verify_spmd", False):
        total = sum(v.collectives_observed for v in runner.verifiers
                    if v is not None)
        print(f"lockstep: {total} collective(s) fingerprint-verified "
              f"across {len(runner.verifiers)} verifier generation(s), "
              f"0 divergences")
    if session is not None:
        summary = session.finalize()
        print(f"telemetry: {summary['steps']} steps, "
              f"{summary['events']} recovery events, "
              f"{summary['trace']['events']} trace events -> "
              f"{args.telemetry_dir}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        ALL_TECHNIQUES,
        BASELINE,
        CHAR_LM_1B,
        CHAR_LM_TIEBA,
        WORD_LM_1B,
        PerfModel,
    )
    from repro.report import format_table

    if args.table in (3, 4):
        workload = WORD_LM_1B if args.table == 3 else CHAR_LM_1B
        model = PerfModel(workload)
        rows = []
        for g in (8, 16, 24, 32, 64):
            oom = model.is_oom(g, BASELINE)
            rows.append(
                [
                    g,
                    "OOM *" if oom else f"{model.epoch_hours(g, BASELINE):.1f}",
                    f"{model.epoch_hours(g, ALL_TECHNIQUES):.1f}",
                    f"{model.parallel_efficiency(g, ALL_TECHNIQUES):.0%}",
                ]
            )
        print(
            format_table(
                ["GPUs", "without (h)", "with (h)", "efficiency"],
                rows,
                title=f"Table {'III' if args.table == 3 else 'IV'} — "
                f"{workload.name}",
            )
        )
    else:
        rows = []
        base = None
        for g, factor in ((6, 1), (24, 4), (192, 32)):
            w = CHAR_LM_TIEBA.scaled(tokens_per_epoch=1.07e9 * factor)
            h = PerfModel(w).epoch_hours(g, ALL_TECHNIQUES)
            base = base or h
            rows.append([g, f"{factor}x", f"{h:.1f}", f"{h / base:.2f}x"])
        print(
            format_table(
                ["GPUs", "data", "hours", "increase"],
                rows,
                title="Table V — Tieba weak scaling",
            )
        )
    return 0


def _cmd_example(_args: argparse.Namespace) -> int:
    from repro.core import worked_example_256_gpus

    ex = worked_example_256_gpus()
    print("Section III-A worked example (256 GPUs, K = 19,200, D = 1792):")
    print(f"  baseline ALLGATHER : {ex.baseline_memory_bytes / 1e9:6.1f} GB/GPU")
    print(f"  unique exchange    : {ex.unique_memory_bytes / 1e9:6.3f} GB/GPU")
    print(f"  reduction          : {ex.reduction_factor:6.0f}x  (paper: 256x)")
    return 0


_SAMPLE_TEXT = (
    "the quick brown fox jumps over the lazy dog while the quiet river "
    "runs past the old stone bridge and the wind moves through the tall "
    "grass where the small birds sing in the early light of the morning "
    "and the slow clouds drift over the green hills toward the distant "
    "sea where the white ships sail on the long waves under the open sky "
)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.data import BatchSpec, CharTokenizer, encode_corpus
    from repro.optim import Adam
    from repro.train import (
        CharLanguageModel,
        CharLMConfig,
        DistributedTrainer,
        TrainConfig,
        bits_per_char,
        generate,
    )

    corpus = encode_corpus(_SAMPLE_TEXT * 12, tokenizer=CharTokenizer())
    split = int(corpus.tokens.size * 0.95)
    cfg = TrainConfig(world_size=2, batch=BatchSpec(4, 16), base_lr=4e-3)
    model_cfg = CharLMConfig(
        vocab_size=corpus.vocab_size, embedding_dim=12, hidden_dim=32,
        depth=2, dropout=0.0,
    )
    trainer = DistributedTrainer(
        lambda rng, rank: CharLanguageModel(
            model_cfg, rng, dropout_rng=np.random.default_rng(rank),
            stateful=True,
        ),
        lambda params, lr: Adam(params, lr),
        corpus.tokens[:split], corpus.tokens[split:], cfg,
    )
    print(f"training a char LM on {corpus.tokens.size} characters "
          f"({corpus.vocab_size} symbols), {args.steps} steps...")
    for _ in range(args.steps):
        trainer.train_step()
    print(f"validation: {bits_per_char(trainer.evaluate()):.2f} bits/char")
    prompt_ids = np.array(
        [corpus.stoi(c) for c in args.prompt], dtype=np.int64
    )
    sample = generate(
        trainer.replicas[0], prompt_ids, args.length,
        np.random.default_rng(args.seed), temperature=args.temperature,
    )
    print(f"sample: {args.prompt}{corpus.decode(sample, sep='')}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        LintEngine,
        default_rules,
        format_findings,
        iter_rule_classes,
    )

    if args.list_rules:
        for cls in iter_rule_classes():
            print(f"{cls.rule_id}  {cls.title}")
            print(f"    {cls.rationale}")
        return 0
    only = None
    if args.rules is not None:
        only = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        engine = LintEngine(default_rules(only))
    except ValueError as exc:
        known = ", ".join(cls.rule_id for cls in iter_rule_classes())
        print(f"error: {exc} (known rules: {known})", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = engine.lint_paths(args.paths)
    print(format_findings(findings))
    return 1 if findings else 0


_SPMD_RULES = ["REPRO010", "REPRO011", "REPRO012"]


def _cmd_verify_spmd(args: argparse.Namespace) -> int:
    """Two-layer SPMD verification: static taint lint + dynamic lockstep.

    The static pass runs only the rank-divergence rules (REPRO010–012)
    over the given paths; the dynamic pass replays a fault plan through
    a miniature resilient training run with the
    :class:`~repro.cluster.lockstep.LockstepVerifier` attached, so any
    collective-sequence divergence surfaces as an immediate error
    instead of a simulated deadlock.  Exit code 1 on any finding or
    divergence, 0 when both layers are clean.
    """
    from repro.analysis import LintEngine, default_rules, format_findings

    if args.static_only and args.dynamic_only:
        print("error: --static-only and --dynamic-only are mutually "
              "exclusive", file=sys.stderr)
        return 2
    rc = 0
    if not args.dynamic_only:
        missing = [p for p in args.paths if not Path(p).exists()]
        if missing:
            print(f"error: no such path: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        findings = LintEngine(default_rules(_SPMD_RULES)).lint_paths(args.paths)
        print(f"static ({', '.join(_SPMD_RULES)} over "
              f"{', '.join(args.paths)}): {format_findings(findings)}")
        if findings:
            rc = 1
    if not args.static_only:
        rc = max(rc, _verify_spmd_dynamic(args))
    return rc


def _verify_spmd_dynamic(args: argparse.Namespace) -> int:
    """Replay a fault plan under the lockstep verifier (dynamic layer)."""
    import tempfile

    from repro.analysis import SanitizerError
    from repro.cluster import (
        ChaosCommunicator,
        FaultEvent,
        FaultKind,
        FaultPlan,
        LockstepVerifier,
    )
    from repro.data import BatchSpec, ONE_BILLION_WORD, make_corpus
    from repro.optim import SGD
    from repro.train import (
        DistributedTrainer,
        ResilientRunner,
        TrainConfig,
        WordLanguageModel,
        WordLMConfig,
    )

    if args.fault_plan is not None:
        plan = FaultPlan.load(args.fault_plan)
    else:
        plan = FaultPlan(
            [FaultEvent(FaultKind.TRANSIENT_LINK, collective_index=2,
                        rank=min(1, args.gpus - 1))],
            seed=args.seed,
        )
    comm = ChaosCommunicator(args.gpus, plan=plan, track_memory=False)
    LockstepVerifier.attach(comm)
    vocab = 120
    corpus = make_corpus(ONE_BILLION_WORD.scaled(vocab), 8_000, seed=args.seed)
    cfg = TrainConfig(world_size=args.gpus, batch=BatchSpec(2, 10),
                      base_lr=0.3)
    model_cfg = WordLMConfig(
        vocab_size=vocab, embedding_dim=8, hidden_dim=12,
        projection_dim=8, num_samples=16,
    )

    def make_trainer(run_cfg, run_comm):
        return DistributedTrainer(
            lambda rng, rank: WordLanguageModel(model_cfg, rng),
            lambda params, lr: SGD(params, lr),
            corpus.train, corpus.valid, run_cfg, comm=run_comm,
        )

    checkpoint = str(
        Path(tempfile.mkdtemp(prefix="repro-verify-spmd-")) / "checkpoint.npz"
    )
    runner = ResilientRunner(
        make_trainer, cfg, checkpoint, comm=comm,
        checkpoint_every=max(1, args.steps // 2),
    )
    print(f"dynamic: replaying {len(plan)} fault(s) over {args.steps} steps "
          f"on {args.gpus} simulated GPUs under the lockstep verifier")
    try:
        trainer = runner.run(args.steps)
        final = getattr(trainer.comm, "verifier", None)
        if final is not None:
            final.check("verify-spmd: end of run")
    except SanitizerError as exc:
        print(f"dynamic: LOCKSTEP VIOLATION — {exc}", file=sys.stderr)
        return 1
    total = sum(v.collectives_observed for v in runner.verifiers
                if v is not None)
    print(f"dynamic: lockstep OK — {total} collective(s) "
          f"fingerprint-verified across {len(runner.verifiers)} "
          f"verifier generation(s), 0 divergences")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Serve a deterministic traffic stream; print the latency story.

    Runs the same requests through the continuous-batching engine and
    the naive one-request-at-a-time baseline (token-identical by
    construction — the differential suite enforces it), then prints the
    telemetry-derived comparison: p50/p99 TTFT, per-token latency,
    goodput under SLO, and the cache/recovery counters.
    """
    from repro.cluster.communicator import Communicator
    from repro.cluster.failures import ChaosCommunicator, FaultPlan
    from repro.serve import (
        ArrivalSpec,
        ServeConfig,
        ServingEngine,
        TrafficConfig,
        generate_traffic,
        naive_serve,
        report_to_registry,
    )
    from repro.telemetry import MetricsRegistry, TelemetrySession

    rng = np.random.default_rng(args.seed)
    if args.model == "word":
        from repro.train.config import WordLMConfig
        from repro.train.word_lm import WordLanguageModel
        from repro.serve import WordLMDecoder

        model_config = WordLMConfig(
            vocab_size=args.vocab,
            embedding_dim=32,
            hidden_dim=64,
            projection_dim=32,
            num_samples=16,
        )
        def make_decoder():
            return WordLMDecoder(
                WordLanguageModel(model_config, np.random.default_rng(args.seed))
            )
    else:
        from repro.train.config import CharLMConfig
        from repro.train.char_lm import CharLanguageModel
        from repro.serve import CharLMDecoder

        model_config = CharLMConfig(
            vocab_size=args.vocab,
            embedding_dim=16,
            hidden_dim=48,
            depth=3,
            dropout=0.0,
        )
        def make_decoder():
            return CharLMDecoder(
                CharLanguageModel(model_config, np.random.default_rng(args.seed))
            )

    traffic = TrafficConfig(
        num_requests=args.requests,
        vocab_size=args.vocab,
        prompt_pool=max(8, args.requests // 4),
        arrivals=ArrivalSpec(
            calm_rate=50.0, burst_rate=500.0, mean_calm_s=0.1, mean_burst_s=0.05
        ),
        slo_s=args.slo if args.slo is not None else float("inf"),
        seed=args.seed,
    )
    requests = generate_traffic(traffic)
    config = ServeConfig(
        max_batch=args.max_batch,
        temperature=args.temperature,
        seed=args.seed,
        drop_expired=args.slo is not None,
        cache_budget_bytes=(
            args.cache_budget if args.cache_budget is not None else 1 << 22
        ),
        decode_token_s=2e-3,
        prefill_token_s=5e-4,
    )

    if args.fault_plan is not None:
        plan = FaultPlan.load(args.fault_plan)
        comm = ChaosCommunicator(args.gpus, plan=plan)
    else:
        comm = Communicator(args.gpus)

    session = None
    if args.telemetry_dir is not None:
        session = TelemetrySession(directory=Path(args.telemetry_dir))
    engine = ServingEngine(make_decoder(), comm, config, telemetry=session)
    report = engine.run(requests)
    registry = session.registry if session is not None else MetricsRegistry()
    summary = report_to_registry(report, registry)
    naive = naive_serve(make_decoder(), requests, config)
    if session is not None:
        session.finalize()

    print(f"serve-bench: {args.model} model, {args.gpus} GPUs, "
          f"{args.requests} requests, max_batch={args.max_batch}")
    print(f"  continuous: makespan {summary['makespan_s']:.4f}s, "
          f"{summary['decode_steps']} decode steps, "
          f"{summary['total_tokens']} tokens "
          f"({summary['tokens_per_s']:.1f} tok/s)")
    print(f"  naive:      makespan {naive.makespan_s:.4f}s "
          f"({naive.makespan_s / max(summary['makespan_s'], 1e-12):.2f}x "
          f"slower, token-identical)")
    print(f"  ttft:       p50 {summary['p50_ttft_s']:.4f}s, "
          f"p99 {summary['p99_ttft_s']:.4f}s")
    print(f"  per-token:  p50 {summary['p50_token_latency_s']:.4f}s, "
          f"p99 {summary['p99_token_latency_s']:.4f}s")
    print(f"  goodput:    {summary['goodput_rps']:.2f} req/s SLO-met "
          f"({summary['slo_met']}/{summary['requests']} requests, "
          f"{summary['dropped']} dropped)")
    cache = summary["cache"]
    print(f"  cache:      {cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions; "
          f"{summary['recomputes']} recomputes")
    print(f"  cluster:    {summary['wire_bytes_per_rank']} wire B/rank, "
          f"{summary['generations']} generation(s), "
          f"{summary['readmissions']} readmission(s)")
    if session is not None:
        print(f"  telemetry:  {args.telemetry_dir}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Merge, validate, and cross-check the exports of a telemetry dir.

    Re-merges the generation parts into one chrome trace, validates its
    structure (distinct pid/tid tracks, no negative timestamps, no
    same-track overlaps), and verifies that the Prometheus text export,
    the JSON export, and the ledger totals recomputed from the trace
    parts agree **exactly** — any drift between the three is a
    telemetry bug, not measurement noise.
    """
    import json

    from repro.telemetry import (
        TraceValidationError,
        flatten_samples,
        merged_trace,
        parse_prometheus_text,
        parts_from_json,
        run_totals_from_parts,
        validate_chrome_trace,
        write_trace,
    )

    directory = Path(args.telemetry_dir)
    parts_file = directory / "trace_parts.json"
    if not parts_file.exists():
        print(f"error: {parts_file} not found (was the run started with "
              f"train --telemetry-dir?)", file=sys.stderr)
        return 2
    with open(parts_file) as f:
        parts = parts_from_json(json.load(f))
    trace = merged_trace(parts)
    try:
        summary = validate_chrome_trace(trace)
    except TraceValidationError as exc:
        print(f"error: invalid merged trace: {exc}", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out is not None else directory / "trace.json"
    write_trace(out, trace)
    print(f"merged trace: {summary['events']} events on "
          f"{summary['tracks']} tracks ({len(summary['pids'])} pids, "
          f"generations {summary['generations']}) -> {out}")

    prom_file = directory / "metrics.prom"
    json_file = directory / "metrics.json"
    if not (prom_file.exists() and json_file.exists()):
        print("exports: not found, skipping agreement check")
        return 0
    with open(json_file) as f:
        json_flat = flatten_samples(json.load(f))
    prom_flat = flatten_samples(parse_prometheus_text(prom_file.read_text()))
    # Prometheus exposition carries no help-only families; compare the
    # sample sets, which must match key-for-key and value-for-value.
    if prom_flat != json_flat:
        diff = set(prom_flat.items()) ^ set(json_flat.items())
        print(f"error: Prometheus and JSON exports disagree on "
              f"{len(diff)} sample(s)", file=sys.stderr)
        return 1
    totals = run_totals_from_parts(parts)
    checks = {
        "repro_run_wire_bytes_per_rank": totals["wire_bytes_per_rank"],
        "repro_run_compression_factor": totals["compression_factor"],
        "repro_run_comm_time_seconds": totals["comm_time_s"],
        "repro_run_simulated_time_seconds": totals["simulated_time_s"],
    }
    for name, expected in checks.items():
        exported = json_flat.get((name, (), "value"))
        if exported != expected:
            print(f"error: {name} export {exported!r} != ledger total "
                  f"{expected!r}", file=sys.stderr)
            return 1
    print(f"exports: prometheus == json ({len(json_flat)} samples), "
          f"ledger totals agree exactly "
          f"(wire {totals['wire_bytes_per_rank']} B/rank, "
          f"compression {totals['compression_factor']:.3f}x, "
          f"comm {totals['comm_time_s']:.4f}s, "
          f"simulated {totals['simulated_time_s']:.4f}s)")
    return 0


_COMMANDS = {
    "zipf": _cmd_zipf,
    "train": _cmd_train,
    "perf": _cmd_perf,
    "generate": _cmd_generate,
    "example": _cmd_example,
    "lint": _cmd_lint,
    "verify-spmd": _cmd_verify_spmd,
    "serve-bench": _cmd_serve_bench,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point: parse ``argv`` and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
