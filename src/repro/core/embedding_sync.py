"""Gradient synchronization orchestration for SPMD replicas.

The trainer holds one model replica per simulated rank.  After each
backward pass, :class:`GradientSynchronizer` makes all replicas agree on
one global gradient:

* parameters with **dense** grads (RNN weights, softmax bias) go through
  a plain ALLREDUCE — what vision models do, as the paper notes;
* parameters with **sparse** grads (input embedding, sampled-softmax
  output embedding) go through the configured
  :class:`~repro.core.sparse_exchange.ExchangeStrategy` — the baseline
  ALLGATHER or the paper's unique exchange.

Gradients are *averaged* over ranks (the global batch is G x the local
batch and each rank computed a mean loss), so perplexity trajectories
are directly comparable across world sizes up to the LR scaling rule.

Two schedules are supported.  The default (``overlap=False``) issues and
completes each parameter's collective before touching the next — the
exact pre-async behaviour.  With ``overlap=True`` the synchronizer walks
parameters in reverse registration order (the order backward produces
gradients), *issues* every collective first — dense allreduces
interleaved with the sparse exchanges' first stage — and only then
drains the waits, so collectives queue up on the comm stream while
later parameters are still being issued.  Numerics are identical either
way; only the simulated timeline differs.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..cluster.communicator import Communicator
from ..nn.module import Module
from ..nn.parameter import Parameter, SparseGrad
from .compression import WireCodec
from .mesh_exchange import (
    MeshShardLayout,
    dense_mesh_allreduce,
    sparse_mesh_exchange,
)
from .sparse_exchange import AllGatherExchange, ExchangeStrategy
from .wire.fused import icompressed_allreduce
from .wire.policy import WirePolicy

__all__ = ["GradientSynchronizer", "concat_token_grads"]


def concat_token_grads(param: Parameter) -> SparseGrad | None:
    """All token-level sparse contributions of one rank, un-coalesced.

    The exchange strategies receive *token-level* gradients — the
    baseline gathers all G·K rows verbatim, and the unique path performs
    its own local reduction (step 2) — so coalescing here would skew the
    baseline's measured cost.
    """
    if not param.sparse_grads:
        return None
    if len(param.sparse_grads) == 1:
        s = param.sparse_grads[0]
        out = SparseGrad._unsafe(s.indices, s.values)
        cached = getattr(s, "_coalesced", None)
        if cached is not None:
            out._coalesced = cached
        return out
    indices = np.concatenate([s.indices for s in param.sparse_grads])
    values = np.concatenate([s.values for s in param.sparse_grads])
    return SparseGrad(indices=indices, values=values)


class GradientSynchronizer:
    """Synchronize gradients across per-rank model replicas.

    Parameters
    ----------
    comm:
        The simulated communicator.
    strategy:
        Sparse-exchange strategy (default: the baseline ALLGATHER, so
        "enable the paper's technique" is an explicit, visible choice).
    codec:
        Optional wire codec also applied to dense allreduce traffic.
    wire:
        Optional :class:`~repro.core.wire.policy.WirePolicy`.  When
        ``codec`` is None its value codec (fixed or adaptively selected
        per message) covers the dense allreduces; the sparse strategies
        carry their own reference to the same policy for index traffic.
    average:
        Divide the summed gradient by world size (mean-of-means).  On by
        default; turn off for sum semantics.
    overlap:
        Use the issue-all-then-drain schedule in :meth:`sync_replicas`
        (see module docstring).  Off by default: the blocking schedule
        is the bit-exact reference, including its ledger event order.
    on_issue:
        Optional hook ``f(param_name)`` called immediately *before* each
        parameter's collectives are issued on the overlapped path.  The
        trainer uses it to record that parameter's slice of backward
        compute on the timeline — the "backward produces this layer's
        gradient, then its bucket is issued" interleaving.  Ignored on
        the blocking path.
    mesh_comm:
        Optional :class:`~repro.cluster.mesh.MeshCommunicator` over a
        hybrid ``(pipe, tensor, data)`` mesh.  When set, replicas are
        data-parallel groups (one per ``data`` coordinate, not one per
        flat rank) and every gradient is exchanged on the **data axis
        only** via :mod:`repro.core.mesh_exchange` — sharded over the
        combined model axes, bit-exact to the flat path on a
        ``(1, 1, G)`` mesh.  Incompatible with codecs, wire policies,
        and the overlapped schedule (the mesh path is blocking).
    fused_reduce:
        Route dense allreduces through the fused compress-reduce ring
        (:func:`~repro.core.wire.fused.icompressed_allreduce`): the
        value codec is applied *inside* the collective, summed in the
        compressed domain, with per-hop wire bytes on the ledger.
        Requires the resolved value codec to be summable (fp16 /
        identity / None); bit-identical numerics to the unfused path
        by construction.  Incompatible with ``mesh_comm``.
    """

    def __init__(
        self,
        comm: Communicator,
        strategy: ExchangeStrategy | None = None,
        codec: WireCodec | None = None,
        average: bool = True,
        overlap: bool = False,
        on_issue: Callable[[str], None] | None = None,
        wire: WirePolicy | None = None,
        mesh_comm=None,
        fused_reduce: bool = False,
    ):
        self.comm = comm
        self.strategy = strategy if strategy is not None else AllGatherExchange()
        self.codec = codec
        self.wire = wire
        self.average = average
        self.overlap = overlap
        self.on_issue = on_issue
        self.mesh_comm = mesh_comm
        self.fused_reduce = fused_reduce
        self._layout = None
        if mesh_comm is not None:
            if codec is not None or wire is not None:
                raise ValueError(
                    "mesh gradient sync does not compose with codecs or "
                    "wire policies yet; drop codec/wire or the mesh"
                )
            if overlap:
                raise ValueError(
                    "mesh gradient sync is blocking; overlap=True is not "
                    "supported with mesh_comm"
                )
            if fused_reduce:
                raise ValueError(
                    "fused_reduce rides the flat ring; it does not "
                    "compose with mesh_comm"
                )
            self._layout = MeshShardLayout(mesh_comm.mesh)

    def _issue_dense(
        self, params: list[Parameter], tag: str, shared: bool = False
    ) -> Callable[[], None]:
        """Issue one dense allreduce; return the finisher that applies it.

        ``shared`` applies the reduced gradient as **one array object on
        every rank** instead of per-rank buffer copies — valid only under
        the caller's promise that post-sync grads are read-only (the
        trainer's fused-apply path: rank 0's optimizer consumes them,
        every other rank's are cleared by state replication).
        """
        grads = []
        for p in params:
            if p.grad is None:
                raise ValueError(f"{tag}: rank missing dense grad")
            grads.append(p.grad)
        codec = self.codec
        if codec is None and self.wire is not None:
            codec = self.wire.resolve_value_codec(grads, self.comm)
        if self.fused_reduce:
            if codec is not None and not getattr(codec, "summable", False):
                raise ValueError(
                    f"fused_reduce needs a summable value codec (fp16 / "
                    f"identity / none); {codec.name!r} frames cannot be "
                    "summed on the wire"
                )
            fused_handle = icompressed_allreduce(
                self.comm,
                grads,
                codec=codec,
                tag=tag,
                chunk_bytes=(
                    self.wire.chunk_bytes if self.wire is not None else None
                ),
                charge_compute=(
                    self.wire.charge_codec_compute
                    if self.wire is not None
                    else True
                ),
                shared_result=shared,
            )

            def finish_fused() -> None:
                outs = fused_handle.wait()  # already decoded per rank
                if shared:
                    reduced = outs[0]
                    if self.average:
                        reduced = reduced / self.comm.world_size
                    for p in params:
                        p.grad = reduced
                    return
                for p, out in zip(params, outs):
                    p.grad = (
                        out / self.comm.world_size if self.average else out
                    )

            return finish_fused
        if codec is not None:
            encoded = [codec.encode(g) for g in grads]
            handle = self.comm.iallreduce(
                encoded, tag=tag, payload_bytes=grads[0].nbytes
            )
        else:
            # The batched executor hands out per-rank grads as rank-order
            # rows of one contiguous block and marks rank 0's parameter
            # with it; verifying every grad still aliases that block (an
            # accumulated ``old + new`` grad does not) lets the allreduce
            # skip restacking G views.  Bit-identical either way.
            block = getattr(params[0], "_grad_block", None)
            if block is not None and (
                block.shape != (len(params),) + grads[0].shape
                or any(g.base is not block for g in grads)
            ):
                block = None
            handle = self.comm.iallreduce(
                grads, tag=tag, stacked=block, shared_result=shared
            )

        def finish() -> None:
            reduced = handle.wait()[0]
            if codec is not None:
                reduced = codec.decode(reduced, grads[0].dtype)
            if self.average:
                reduced = reduced / self.comm.world_size
            if shared:
                # Caller promised read-only consumption: every rank gets
                # the same buffer, skipping world-1 copies.
                for p in params:
                    p.grad = reduced
                return
            # One stacked buffer, fanned out as disjoint per-rank views:
            # same values as per-rank copies at a fraction of the cost.
            stacked = np.empty(
                (len(params),) + reduced.shape, dtype=reduced.dtype
            )
            stacked[:] = reduced
            for p, row in zip(params, stacked):
                p.grad = row

        return finish

    def _issue_sparse(
        self, params: list[Parameter], tag: str, shared: bool = False
    ) -> Callable[[], None]:
        """Start one sparse exchange; return the finisher that applies it.

        ``shared`` hands every rank the same post-exchange
        :class:`SparseGrad` object (read-only by the caller's promise) —
        see :meth:`_issue_dense`.
        """
        grads = []
        for p in params:
            g = concat_token_grads(p)
            if g is None:
                raise ValueError(f"{tag}: rank missing sparse grad")
            grads.append(g)
        pending = self.strategy.iexchange(self.comm, grads, tag=tag)

        def finish() -> None:
            exchanged = pending.wait()
            # Both strategies return one shared result object per rank;
            # hoist the (identical) averaging out of the rank loop and
            # fan the values out as disjoint per-rank views.
            result_shared = all(r is exchanged[0] for r in exchanged[1:])
            if result_shared and self.average:
                first = exchanged[0]
                values = first.values / self.comm.world_size
                if shared:
                    sg = SparseGrad._unsafe(first.indices, values)
                    for p in params:
                        p.sparse_grads = [sg]
                    return
                stacked = np.empty(
                    (len(params),) + values.shape, dtype=values.dtype
                )
                stacked[:] = values
                unsafe = SparseGrad._unsafe
                for p, rows in zip(params, stacked):
                    p.sparse_grads = [unsafe(first.indices, rows)]
                return
            for p, result in zip(params, exchanged):
                values = (
                    result.values / self.comm.world_size
                    if self.average
                    else result.values
                )
                p.sparse_grads = [
                    SparseGrad(indices=result.indices, values=values)
                ]

        return finish

    def sync_dense(
        self, params: list[Parameter], tag: str, shared: bool = False
    ) -> None:
        """ALLREDUCE one dense-grad parameter across ranks, in place."""
        self._issue_dense(params, tag, shared=shared)()

    def sync_sparse(
        self, params: list[Parameter], tag: str, shared: bool = False
    ) -> None:
        """Exchange one sparse-grad parameter across ranks, in place."""
        self._issue_sparse(params, tag, shared=shared)()

    _named_cache: tuple[tuple[int, ...], list[dict], list[str]] | None = None

    def _named_params(
        self, replicas: list[Module], world: int
    ) -> tuple[list[dict], list[str]]:
        """Validate replica structure; return per-rank name->param maps.

        Walking ``named_parameters`` over every replica costs a module
        tree traversal per rank per sync — a real hot path at large G.
        Module structure is fixed after construction, so the walk is
        memoized per replica-identity list.
        """
        cached = self._named_cache
        key = tuple(id(r) for r in replicas)
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        if len(replicas) != world:
            raise ValueError(
                f"{len(replicas)} replicas for world size {world}"
            )
        named = [dict(r.named_parameters()) for r in replicas]
        names = list(named[0].keys())
        for d in named[1:]:
            if list(d.keys()) != names:
                raise ValueError("replicas are not structurally identical")
        self._named_cache = (key, named, names)
        return named, names

    def sync_replicas(
        self, replicas: list[Module], shared_grads: bool = False
    ) -> None:
        """Synchronize every parameter of per-rank replicas of one model.

        Walks parameters by name (replicas are structurally identical);
        a parameter is synced sparse if *any* rank produced sparse grads
        for it this step, dense if any rank produced dense grads —
        tied-embedding setups can hit both paths for one parameter.

        ``shared_grads`` is the caller's promise that every rank's
        post-sync gradient is consumed **read-only** (and at most once —
        the trainer's fused-apply path, where rank 0's optimizer steps
        and the rest replicate its state).  Synced values then land as
        one shared object per parameter instead of world copies; bits
        are identical.  Ignored on the mesh path, which rebuilds per-rank
        buffers anyway.

        With ``overlap=True`` this uses the issue-all-then-drain
        schedule described in the module docstring.  With ``mesh_comm``
        set, replicas are data-parallel groups and the exchange runs on
        the mesh's data axis (see the class docstring).
        """
        if self.mesh_comm is not None:
            self._sync_replicas_mesh(replicas)
            return
        named, names = self._named_params(replicas, self.comm.world_size)
        if self.overlap:
            self._sync_replicas_overlapped(
                named, names, shared_grads=shared_grads
            )
            return
        for name in names:
            params = [d[name] for d in named]
            has_sparse = any(p.sparse_grads for p in params)
            has_dense = any(p.grad is not None for p in params)
            with self.comm.ledger.scope(name.replace("/", "-")):
                if has_dense:
                    self.sync_dense(
                        params, tag=f"{name}:dense", shared=shared_grads
                    )
                if has_sparse:
                    self.sync_sparse(params, tag=name, shared=shared_grads)

    def _sync_replicas_overlapped(
        self, named: list[dict], names: list[str], shared_grads: bool = False
    ) -> None:
        """Issue every parameter's collectives first, then drain.

        Parameters are issued in *reverse* registration order — the
        order backward produces gradients — so a timeline-carrying
        communicator sees dense buckets and the sparse exchanges' index
        gathers queue up back-to-back, the way an eager DDP-style hook
        would issue them.  Finishers then drain in the same order;
        sparse second-stage collectives (the value allreduce, which
        depends on gathered indices) are issued during the drain, under
        the owning parameter's ledger scope.
        """
        issued: list[tuple[str, Callable[[], None]]] = []
        for name in reversed(names):
            params = [d[name] for d in named]
            has_sparse = any(p.sparse_grads for p in params)
            has_dense = any(p.grad is not None for p in params)
            if self.on_issue is not None and (has_dense or has_sparse):
                self.on_issue(name)
            scope_name = name.replace("/", "-")
            with self.comm.ledger.scope(scope_name):
                if has_dense:
                    issued.append(
                        (
                            scope_name,
                            self._issue_dense(
                                params,
                                tag=f"{name}:dense",
                                shared=shared_grads,
                            ),
                        )
                    )
                if has_sparse:
                    issued.append(
                        (
                            scope_name,
                            self._issue_sparse(
                                params, tag=name, shared=shared_grads
                            ),
                        )
                    )
        for scope_name, finish in issued:
            with self.comm.ledger.scope(scope_name):
                finish()

    def _sync_replicas_mesh(self, replicas: list[Module]) -> None:
        """Data-axis-only sync of the d data-parallel replica groups.

        Dense grads go through :func:`dense_mesh_allreduce` (sharded
        over the combined model axes); sparse grads through
        :func:`sparse_mesh_exchange` (vocabulary row ranges per model
        shard, uniqueness algorithm per data subgroup).  Averaging
        divides by the data-axis size — the number of independent
        mini-batches, identical to dividing by G on a flat world.
        """
        layout = self._layout
        named, names = self._named_params(replicas, layout.data_size)
        for name in names:
            params = [m[name] for m in named]
            has_sparse = any(p.sparse_grads for p in params)
            has_dense = any(p.grad is not None for p in params)
            with self.comm.ledger.scope(name.replace("/", "-")):
                if has_dense:
                    grads = []
                    for p in params:
                        if p.grad is None:
                            raise ValueError(f"{name}: rank missing dense grad")
                        grads.append(p.grad)
                    reduced = dense_mesh_allreduce(
                        self.mesh_comm,
                        grads,
                        layout=layout,
                        tag=f"{name}:dense",
                        average=self.average,
                    )
                    for p, g in zip(params, reduced):
                        p.grad = g.astype(p.data.dtype, copy=False).copy()
                if has_sparse:
                    grads = []
                    for p in params:
                        g = concat_token_grads(p)
                        if g is None:
                            raise ValueError(
                                f"{name}: rank missing sparse grad"
                            )
                        grads.append(g)
                    exchanged = sparse_mesh_exchange(
                        self.mesh_comm,
                        grads,
                        num_rows=params[0].data.shape[0],
                        layout=layout,
                        tag=name,
                        average=self.average,
                    )
                    for p, result in zip(params, exchanged):
                        p.sparse_grads = [result]
