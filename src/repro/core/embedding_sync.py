"""Gradient synchronization orchestration for SPMD replicas.

The trainer holds one model replica per simulated rank.  After each
backward pass, :class:`GradientSynchronizer` makes all replicas agree on
one global gradient:

* parameters with **dense** grads (RNN weights, softmax bias) go through
  a plain ALLREDUCE — what vision models do, as the paper notes;
* parameters with **sparse** grads (input embedding, sampled-softmax
  output embedding) go through the configured
  :class:`~repro.core.sparse_exchange.ExchangeStrategy` — the baseline
  ALLGATHER or the paper's unique exchange.

Gradients are *averaged* over ranks (the global batch is G x the local
batch and each rank computed a mean loss), so perplexity trajectories
are directly comparable across world sizes up to the LR scaling rule.
"""

from __future__ import annotations

import numpy as np

from ..cluster.communicator import Communicator
from ..nn.module import Module
from ..nn.parameter import Parameter, SparseGrad
from .compression import WireCodec
from .sparse_exchange import AllGatherExchange, ExchangeStrategy

__all__ = ["GradientSynchronizer", "concat_token_grads"]


def concat_token_grads(param: Parameter) -> SparseGrad | None:
    """All token-level sparse contributions of one rank, un-coalesced.

    The exchange strategies receive *token-level* gradients — the
    baseline gathers all G·K rows verbatim, and the unique path performs
    its own local reduction (step 2) — so coalescing here would skew the
    baseline's measured cost.
    """
    if not param.sparse_grads:
        return None
    if len(param.sparse_grads) == 1:
        s = param.sparse_grads[0]
        return SparseGrad(indices=s.indices, values=s.values)
    indices = np.concatenate([s.indices for s in param.sparse_grads])
    values = np.concatenate([s.values for s in param.sparse_grads])
    return SparseGrad(indices=indices, values=values)


class GradientSynchronizer:
    """Synchronize gradients across per-rank model replicas.

    Parameters
    ----------
    comm:
        The simulated communicator.
    strategy:
        Sparse-exchange strategy (default: the baseline ALLGATHER, so
        "enable the paper's technique" is an explicit, visible choice).
    codec:
        Optional wire codec also applied to dense allreduce traffic.
    average:
        Divide the summed gradient by world size (mean-of-means).  On by
        default; turn off for sum semantics.
    """

    def __init__(
        self,
        comm: Communicator,
        strategy: ExchangeStrategy | None = None,
        codec: WireCodec | None = None,
        average: bool = True,
    ):
        self.comm = comm
        self.strategy = strategy if strategy is not None else AllGatherExchange()
        self.codec = codec
        self.average = average

    def sync_dense(self, params: list[Parameter], tag: str) -> None:
        """ALLREDUCE one dense-grad parameter across ranks, in place."""
        grads = []
        for p in params:
            if p.grad is None:
                raise ValueError(f"{tag}: rank missing dense grad")
            grads.append(p.grad)
        if self.codec is not None:
            wire = [self.codec.encode(g) for g in grads]
            reduced_wire = self.comm.allreduce(wire, tag=tag)[0]
            reduced = self.codec.decode(reduced_wire, grads[0].dtype)
        else:
            reduced = self.comm.allreduce(grads, tag=tag)[0]
        if self.average:
            reduced = reduced / self.comm.world_size
        for p in params:
            p.grad = reduced.copy()

    def sync_sparse(self, params: list[Parameter], tag: str) -> None:
        """Exchange one sparse-grad parameter across ranks, in place."""
        grads = []
        for p in params:
            g = concat_token_grads(p)
            if g is None:
                raise ValueError(f"{tag}: rank missing sparse grad")
            grads.append(g)
        exchanged = self.strategy.exchange(self.comm, grads, tag=tag)
        for p, result in zip(params, exchanged):
            values = result.values / self.comm.world_size if self.average else result.values
            p.sparse_grads = [SparseGrad(indices=result.indices, values=values)]

    def sync_replicas(self, replicas: list[Module]) -> None:
        """Synchronize every parameter of per-rank replicas of one model.

        Walks parameters by name (replicas are structurally identical);
        a parameter is synced sparse if *any* rank produced sparse grads
        for it this step, dense if any rank produced dense grads —
        tied-embedding setups can hit both paths for one parameter.
        """
        if len(replicas) != self.comm.world_size:
            raise ValueError(
                f"{len(replicas)} replicas for world size {self.comm.world_size}"
            )
        named = [dict(r.named_parameters()) for r in replicas]
        names = list(named[0].keys())
        for d in named[1:]:
            if list(d.keys()) != names:
                raise ValueError("replicas are not structurally identical")
        for name in names:
            params = [d[name] for d in named]
            has_sparse = any(p.sparse_grads for p in params)
            has_dense = any(p.grad is not None for p in params)
            with self.comm.ledger.scope(name.replace("/", "-")):
                if has_dense:
                    self.sync_dense(params, tag=f"{name}:dense")
                if has_sparse:
                    self.sync_sparse(params, tag=name)
