"""The *seeding* technique (Section III-B): controlled randomness for
sampled softmax.

With per-GPU random seeds, the G sampled candidate sets are disjoint
with high probability for a large vocabulary, so the output-embedding
gradient exchange sees ~G·S distinct rows — the Zipf compression
evaporates.  With a single shared seed all GPUs sample the *same* S
words, maximizing overlap but hurting accuracy through lost sample
diversity.

The paper explores the spectrum: assign the G GPUs to ``m`` *seed
groups*; GPUs within a group share a sampler seed.  Evaluated choices
for ``m``: ``G`` (fully independent), ``log2 G``, ``ln G``, ``log10 G``,
``1`` (fully shared), the power law ``G^0.64``, and *Zipf-freq* — group
**sizes** proportional to the Zipf frequency distribution, which Figure 7
shows matches full-G accuracy at far fewer distinct seeds (pareto
optimal).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..cluster.process_group import partition_ranks
from ..data.zipf import ZipfMandelbrot

__all__ = [
    "SeedStrategy",
    "num_seed_groups",
    "seed_group_sizes",
    "SeedAssignment",
    "assign_seeds",
    "expected_unique_sampled",
]

#: Empirical power-law exponent from the paper (U ∝ N^0.64).
PAPER_ALPHA = 0.64


class SeedStrategy(str, Enum):
    """How many distinct sampler seeds G GPUs use, and how they spread."""

    ALL_SAME = "all_same"          # 1 seed: max overlap, worst accuracy
    PER_RANK = "per_rank"          # G seeds: the accuracy reference ("G")
    LOG2 = "log2"                  # ~log2(G) seeds
    LOGE = "loge"                  # ~ln(G) seeds
    LOG10 = "log10"                # ~log10(G) seeds
    POWER_LAW = "power_law"        # ~G^0.64 seeds, equal group sizes
    ZIPF_FREQ = "zipf_freq"        # ~G^0.64 seeds, Zipf-proportional sizes


def num_seed_groups(strategy: SeedStrategy, world_size: int) -> int:
    """Number of distinct seeds ``m`` for a given strategy and G GPUs."""
    if world_size <= 0:
        raise ValueError("world_size must be positive")
    g = world_size
    if strategy is SeedStrategy.ALL_SAME:
        m = 1
    elif strategy is SeedStrategy.PER_RANK:
        m = g
    elif strategy is SeedStrategy.LOG2:
        m = round(math.log2(g)) if g > 1 else 1
    elif strategy is SeedStrategy.LOGE:
        m = round(math.log(g)) if g > 1 else 1
    elif strategy is SeedStrategy.LOG10:
        m = round(math.log10(g)) if g > 1 else 1
    elif strategy in (SeedStrategy.POWER_LAW, SeedStrategy.ZIPF_FREQ):
        m = round(g**PAPER_ALPHA)
    else:  # pragma: no cover - exhaustive over enum
        raise ValueError(f"unknown strategy {strategy}")
    return max(1, min(m, g))


def seed_group_sizes(strategy: SeedStrategy, world_size: int) -> list[int]:
    """Group sizes (summing to G), largest group first.

    Equal-split for every strategy except ``ZIPF_FREQ``, whose sizes are
    proportional to a Zipf pmf over groups — many GPUs share the "head"
    seed while tail seeds serve few GPUs, mirroring how word frequency
    itself distributes.
    """
    m = num_seed_groups(strategy, world_size)
    if strategy is not SeedStrategy.ZIPF_FREQ:
        return [g.size for g in partition_ranks(world_size, m)]
    pmf = ZipfMandelbrot(vocab_size=m, exponent=1.0).pmf
    raw = pmf * world_size
    sizes = np.maximum(1, np.floor(raw).astype(int))
    # Distribute the remainder to the largest groups, preserving order.
    deficit = world_size - int(sizes.sum())
    i = 0
    while deficit > 0:
        sizes[i % m] += 1
        deficit -= 1
        i += 1
    while deficit < 0:
        # Shrink from the tail but never below one rank per group.
        for j in range(m - 1, -1, -1):
            if sizes[j] > 1:
                sizes[j] -= 1
                deficit += 1
                break
        else:  # pragma: no cover - impossible while m <= world_size
            raise RuntimeError("cannot satisfy group sizes")
    assert int(sizes.sum()) == world_size
    return sizes.tolist()


@dataclass(frozen=True)
class SeedAssignment:
    """Per-rank sampler seeds realizing a strategy.

    Attributes
    ----------
    strategy:
        The generating strategy.
    group_of_rank:
        ``group_of_rank[r]`` = seed-group index of rank r.
    seed_of_group:
        Distinct 64-bit seeds, one per group.
    """

    strategy: SeedStrategy
    group_of_rank: np.ndarray
    seed_of_group: np.ndarray

    @property
    def world_size(self) -> int:
        return int(self.group_of_rank.size)

    @property
    def num_groups(self) -> int:
        return int(self.seed_of_group.size)

    def seed_of_rank(self, rank: int) -> int:
        """The sampler seed rank ``r`` uses this training run."""
        return int(self.seed_of_group[self.group_of_rank[rank]])

    def rank_generators(self, step: int = 0) -> list[np.random.Generator]:
        """Per-rank candidate-sampler generators for one training step.

        Ranks in the same group receive generators in the *same state*
        (seeded identically, keyed by step), hence draw identical
        candidate sets — the mechanism that restores inter-GPU overlap.
        """
        return [
            np.random.default_rng((self.seed_of_rank(r), step))
            for r in range(self.world_size)  # mesh-ok: one sampler stream per flat rank by contract
        ]


def assign_seeds(
    strategy: SeedStrategy, world_size: int, base_seed: int = 0
) -> SeedAssignment:
    """Build the rank->seed mapping for a strategy.

    Group seeds are spawned from ``base_seed`` via ``SeedSequence`` so
    distinct groups get statistically independent streams.
    """
    sizes = seed_group_sizes(strategy, world_size)
    group_of_rank = np.repeat(np.arange(len(sizes)), sizes)
    seeds = np.random.SeedSequence(base_seed).generate_state(len(sizes), np.uint64)
    return SeedAssignment(
        strategy=strategy,
        group_of_rank=group_of_rank,
        seed_of_group=seeds,
    )


def expected_unique_sampled(
    num_groups: int, num_samples: int, vocab_size: int
) -> float:
    """Expected distinct candidate words over ``num_groups`` independent
    log-uniform samples of size S each.

    Under the log-uniform sampler, group g's candidate set has S unique
    ids; across m independent groups the union's expectation is
    ``sum_k 1 - (1 - q_k)^m`` with ``q_k`` = inclusion probability of id
    k in one group's sample.  Used to size the output-embedding exchange
    in the performance model: comm volume follows the union, which the
    seeding technique shrinks from ~G·S toward ~m·S.
    """
    if num_groups <= 0 or num_samples <= 0:
        raise ValueError("num_groups and num_samples must be positive")
    if vocab_size <= 1:
        raise ValueError("vocab_size must exceed 1")
    if num_samples >= vocab_size:
        return float(vocab_size)
    ids = np.arange(vocab_size, dtype=np.float64)
    p = np.log((ids + 2.0) / (ids + 1.0)) / np.log(vocab_size + 1.0)

    # One group's sample is drawn *without* replacement (unique=True), so
    # its inclusion probabilities q_k must sum to exactly S.  Model the
    # rejection sampler as S' effective with-replacement draws and solve
    # for S' such that the expected distinct count equals S.
    def distinct(draws: float) -> np.ndarray:
        return -np.expm1(draws * np.log1p(-p))

    lo, hi = float(num_samples), float(num_samples)
    while distinct(hi).sum() < num_samples - 1e-9:
        hi *= 2.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if distinct(mid).sum() < num_samples:
            lo = mid
        else:
            hi = mid
    q = np.clip(distinct(0.5 * (lo + hi)), 0.0, 1.0 - 1e-15)
    union = -np.expm1(num_groups * np.log1p(-q))
    return float(union.sum())
